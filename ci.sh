#!/usr/bin/env bash
# Offline CI gate: everything here must pass with no network access
# (all dependencies are vendored under vendor/ — see README "Offline builds").
#
#   ./ci.sh         # full gate: build, tests, clippy, fmt, bench smoke
#   ./ci.sh quick   # tier-1 only: release build + root test suite
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release

echo "==> test (root package)"
cargo test -q

if [[ "${1:-}" == "quick" ]]; then
    echo "ci.sh quick: OK"
    exit 0
fi

echo "==> test (workspace)"
cargo test --workspace -q

echo "==> clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fmt"
cargo fmt --all --check

# Serve smoke: drive the online serving path end to end (8 clients × 20
# requests, micro-batched). serve_bench exits non-zero if any request is
# shed or the metrics snapshot comes back incomplete.
echo "==> serve smoke"
cargo run --release -q -p dace-eval --bin serve_bench -- --smoke

# Bench smoke: compile and run each bench once in test mode (no sampling);
# catches bit-rot in the criterion harness wiring without the full run.
echo "==> bench smoke"
cargo test --benches -p dace-bench -q

echo "ci.sh: OK"
