#!/usr/bin/env bash
# Offline CI gate: everything here must pass with no network access
# (all dependencies are vendored under vendor/ — see README "Offline builds").
#
#   ./ci.sh         # full gate: build, tests, clippy, fmt, bench smoke
#   ./ci.sh quick   # tier-1 only: release build + root test suite
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release

echo "==> test (root package)"
cargo test -q

if [[ "${1:-}" == "quick" ]]; then
    echo "ci.sh quick: OK"
    exit 0
fi

echo "==> test (workspace)"
cargo test --workspace -q

echo "==> clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fmt"
cargo fmt --all --check

# Serve smoke: drive the online serving path end to end (8 clients × 20
# requests, micro-batched). serve_bench exits non-zero if any request is
# shed or the metrics snapshot comes back incomplete.
echo "==> serve smoke"
cargo run --release -q -p dace-eval --bin serve_bench -- --smoke

# Observability smoke: a 2-epoch training run must emit a parseable JSONL
# run manifest (one record per epoch with the expected keys), the serve
# registry's Prometheus export must carry the serve_* metric families, and
# the flight-recorder trace (drained after server shutdown, so the flush
# cannot race live workers) must come back as a non-empty event array.
echo "==> obs smoke"
OBS_TMP=$(mktemp -d)
trap 'rm -rf "$OBS_TMP"' EXIT
cargo run --release -q -p dace-eval --bin serve_bench -- --smoke --epochs 2 \
    --manifest "$OBS_TMP/manifest.jsonl" --prom "$OBS_TMP/metrics.prom" \
    --trace "$OBS_TMP/trace.json"
jq -es 'length >= 2
        and all(.[]; has("phase") and has("epoch") and has("train_loss")
                     and has("grad_norm") and has("lr") and has("epoch_ms")
                     and has("early_stop"))
        and (map(select(.phase == "pretrain")) | length >= 2)
        and (map(select(.phase == "lora")) | length >= 1)' \
    "$OBS_TMP/manifest.jsonl" >/dev/null \
    || { echo "FAIL: run manifest malformed"; exit 1; }
grep -q 'serve_e2e_us{quantile="0.5"}' "$OBS_TMP/metrics.prom" \
    || { echo "FAIL: Prometheus export missing serve_e2e_us quantiles"; exit 1; }
grep -q '^serve_completed_total ' "$OBS_TMP/metrics.prom" \
    || { echo "FAIL: Prometheus export missing serve counters"; exit 1; }
jq -e 'length > 0 and all(.[]; has("name") and has("ts") and has("pid"))' \
    "$OBS_TMP/trace.json" >/dev/null \
    || { echo "FAIL: smoke trace empty or malformed"; exit 1; }

# Health smoke: the estimator health plane end to end. serve_bench
# --introspect drives a mini observe→retrain→swap run against a server with
# a durable journal, SLO burn-rate tracking and a live introspection
# endpoint, hits /health, /metrics, /events, /version and /trace through
# its in-process HTTP client (no curl), and injects a breaker-open window
# that must flip /health to "degraded" and auto-dump a diagnostic bundle.
# The binary exits non-zero on any violated gate; the journal tail and the
# report JSON are re-asserted here: at least one SwapPromoted record, a
# burn-rate Alert carrying both window burns and the threshold, an intact
# causal trace from DriftTripped through SwapPromoted into the flight
# recorder, and introspection-enabled throughput within 3% of the disabled
# baseline.
echo "==> health smoke"
cargo run --release -q -p dace-eval --bin serve_bench -- \
    --introspect --smoke --json --events "$OBS_TMP/events.json" \
    >"$OBS_TMP/health.json"
jq -e '(map(.event | objects | keys[0] | select(. == "SwapPromoted")) | length >= 1)
       and (map(.event.Alert? | select(. != null)) | length >= 1)
       and (map(.event.Alert? | select(. != null))
            | all(has("fast_burn") and has("slow_burn") and has("threshold")))' \
    "$OBS_TMP/events.json" >/dev/null \
    || { echo "FAIL: journal tail missing swap/alert records"; cat "$OBS_TMP/events.json"; exit 1; }
jq -e '.drift_trips >= 1
       and .swaps_promoted >= 1
       and .probation_passed >= 1
       and .trace_match and .trace_in_recorder
       and .alerts >= 1
       and .alert_fast_burn > .alert_threshold
       and .alert_slow_burn > .alert_threshold
       and .health_ok_seen and .health_degraded_seen
       and .breaker_opened_journaled
       and .bundles_dumped >= 1
       and .endpoints_ok
       and .throughput_ratio >= 0.97' \
    "$OBS_TMP/health.json" >/dev/null \
    || { echo "FAIL: health smoke out of bounds"; cat "$OBS_TMP/health.json"; exit 1; }

# Chaos smoke: run the serving path under a fixed seeded fault plan (1%
# worker kills, 1% batch panics, 0.5% checkpoint corruption) with a
# circuit-broken fallback estimator. serve_bench itself exits non-zero on
# any contract violation; the emitted JSON is re-asserted here: ≥99% of
# requests answered (degraded answers count, shed does not), the worker
# pool never dies, every degraded answer is flagged and counted, and the
# corrupted-checkpoint rejection path fired.
echo "==> chaos smoke"
cargo run --release -q -p dace-eval --bin serve_bench -- \
    --chaos --smoke --json --chaos-seed 3405 >"$OBS_TMP/chaos.json"
jq -e '.availability >= 0.99
       and .pool_exhausted == 0
       and .completed == .requests
       and .degraded <= .completed
       and .checkpoint_rejects >= 1' \
    "$OBS_TMP/chaos.json" >/dev/null \
    || { echo "FAIL: chaos smoke out of bounds"; cat "$OBS_TMP/chaos.json"; exit 1; }

# Sharding smoke: the sharded scheduler plus the quantized fast tier.
# serve_bench --shards exits non-zero itself on any violated gate
# (per-shard completion parity > 1.25 in the saturated parity pass, a
# lost or duplicated request under work-stealing, zero steals under
# forced imbalance, the quantized tier outside its q-error bound, or —
# only on machines with at least as many cores as shards — 1→4 shard
# scaling below 3×); the emitted JSON is re-asserted here.
echo "==> sharding smoke"
cargo run --release -q -p dace-eval --bin serve_bench -- \
    --shards 4 --smoke --json >"$OBS_TMP/sharding.json"
jq -e '.parity_ratio <= 1.25
       and .steal_lost == 0
       and .steal_answered == .steal_requests
       and .steal_count >= 1
       and .quantized_max_qerror < 1.5
       and ((.scaling_gated | not) or .scaling_1_to_max >= 3.0)' \
    "$OBS_TMP/sharding.json" >/dev/null \
    || { echo "FAIL: sharding smoke out of bounds"; cat "$OBS_TMP/sharding.json"; exit 1; }

# Tenants smoke: the multi-tenant isolation gate. serve_bench --tenants
# exits non-zero itself on any violated gate (per-tenant p99 fairness
# spread over 3× among equal-weight tenants, any cross-tenant
# featurization-cache hit, well-behaved availability under 99% while one
# tenant floods at 10× its quota, a cold-tenant request shed instead of
# answered zero-shot, an unbounded adapter hot set, or a dead fault
# site); the emitted JSON is re-asserted here. The committed isolation
# record results/tenants.md comes from the full (non-smoke) run.
echo "==> tenants smoke"
cargo run --release -q -p dace-eval --bin serve_bench -- \
    --tenants --smoke --json >"$OBS_TMP/tenants.json"
jq -e '.fairness.p99_spread <= 3
       and .fairness.gated_tenants >= 2
       and .bleed.cross_tenant_hits == 0
       and .bleed.first_pass_misses == (.bleed.tenants * .bleed.plans_per_tenant)
       and .noisy.well_behaved_availability >= 0.99
       and .noisy.quota_rejected >= 1
       and .noisy.well_behaved_shed == 0
       and .paging.unanswered == 0
       and .paging.cold_all_degraded
       and .paging.adapter_evictions >= 1
       and .paging.injected_corrupt_failures >= 1' \
    "$OBS_TMP/tenants.json" >/dev/null \
    || { echo "FAIL: tenants smoke out of bounds"; cat "$OBS_TMP/tenants.json"; exit 1; }

# Adaptive smoke: run the observe→retrain→swap loop end to end (clean
# traffic → sustained 6× drift → background retrain → shadow eval →
# checkpointed promotion → probation), plus a sabotaged sub-run whose
# garbage candidate must be rejected. serve_bench itself exits non-zero on
# any contract violation; the emitted JSON is re-asserted here: drift was
# detected, exactly the clean run's retrain promoted a new version,
# post-swap q-error p90 recovered to within 1.2× of the pre-drift p90, no
# probation rollback fired on the clean run, and the sabotaged candidate
# never published.
echo "==> adaptive smoke"
cargo run --release -q -p dace-eval --bin serve_bench -- \
    --adaptive --smoke --json >"$OBS_TMP/adaptive.json"
jq -e '.drift_trips >= 1
       and .retrains_succeeded >= 1
       and .promotions >= 1
       and .versions_after > .versions_before
       and .rollbacks == 0
       and .post_q_p90 <= .pre_q_p90 * 1.2
       and .sabotage_rejections >= 1
       and .sabotage_promotions == 0' \
    "$OBS_TMP/adaptive.json" >/dev/null \
    || { echo "FAIL: adaptive smoke out of bounds"; cat "$OBS_TMP/adaptive.json"; exit 1; }

# Plan-search smoke: put DACE inside the optimizer on a 3-database suite
# (train, search with the learned scorer, execute every pick) and gate on
# the subsystem's contract. plansearch itself exits non-zero on violation;
# the emitted JSON is re-asserted here: the sub-plan memo shared work,
# DACE-picked plans didn't regress total executed latency by more than 5%
# against the analytic picks, and the router routed every query.
echo "==> plansearch smoke"
cargo run --release -q -p dace-eval --bin plansearch -- --smoke --json \
    >"$OBS_TMP/plansearch.json"
jq -e '.scoring.memo_hit_rate > 0
       and .learned_total_ms <= .analytic_total_ms * 1.05
       and .routing.routed_queries > 0
       and .routing.routed_queries == .queries' \
    "$OBS_TMP/plansearch.json" >/dev/null \
    || { echo "FAIL: plansearch smoke out of bounds"; cat "$OBS_TMP/plansearch.json"; exit 1; }

# Bench smoke: compile and run each bench once in test mode (no sampling);
# catches bit-rot in the criterion harness wiring without the full run.
echo "==> bench smoke"
cargo test --benches -p dace-bench -q

# Allocation smoke: the counting-allocator bench must show a steady-state
# training epoch allocating under its committed ceiling (the binary asserts
# the ceiling and the >= 90% reduction vs the re-packing baseline itself);
# the emitted JSON is additionally sanity-checked here.
echo "==> alloc smoke"
cargo bench -q -p dace-bench --bench train_alloc -- --out "$OBS_TMP/bench_train.json"
jq -e '.samples_per_sec > 0
       and .alloc_reduction >= 0.9
       and .alloc_bytes_per_epoch_workspace <= .alloc_ceiling_bytes
       and .single_plan_forward_us > 0' \
    "$OBS_TMP/bench_train.json" >/dev/null \
    || { echo "FAIL: BENCH_train.json out of bounds"; exit 1; }

echo "ci.sh: OK"
