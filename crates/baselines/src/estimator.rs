//! The common estimator interface.

use dace_plan::{Dataset, PlanTree};

/// Latency floor before log transforms, matching `dace-core`.
const MS_FLOOR: f64 = 1e-4;

/// Log-space training target for a plan's root latency.
#[inline]
pub fn log_ms(ms: f64) -> f32 {
    ms.max(MS_FLOOR).ln() as f32
}

/// A trainable cost estimator: everything the evaluation harness needs to
/// run a model through the paper's experiments.
pub trait CostEstimator {
    /// Short display name used in result tables.
    fn name(&self) -> &'static str;

    /// Train on labeled plans.
    fn fit(&mut self, train: &Dataset);

    /// Predict a plan's latency in milliseconds.
    fn predict_ms(&self, tree: &PlanTree) -> f64;

    /// Total scalar parameters (for the model-size column of Table II).
    fn param_count(&self) -> usize;

    /// Model size in megabytes (f32 parameters).
    fn size_mb(&self) -> f64 {
        (self.param_count() * 4) as f64 / 1_048_576.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_ms_floors_tiny_values() {
        assert!(log_ms(0.0).is_finite());
        assert!(log_ms(-5.0).is_finite());
        assert!((log_ms(1.0) - 0.0).abs() < 1e-6);
        assert!(log_ms(100.0) > log_ms(1.0));
    }
}
