#![warn(missing_docs)]
//! Re-implementations of the paper's baseline cost estimators, all built on
//! `dace-nn` and sharing the [`CostEstimator`] trait.
//!
//! | Model | Family | Architecture (as described in the paper's Sec. V-A) |
//! |---|---|---|
//! | [`PgLinear`] | DBMS | linear regression mapping optimizer cost → time (the paper's "PostgreSQL" row) |
//! | [`Mscn`] | WDM | deep sets over table / join / predicate one-hots, mean pool, MLP |
//! | [`QppNet`] | WDM | per-node-type MLPs; child outputs feed parents; every sub-plan supervised equally |
//! | [`TPool`] | WDM | shared node encoder + recursive tree pooling + multi-task (cost & cardinality) heads |
//! | [`QueryFormer`] | WDM | deep transformer with height embeddings, tree-bias attention and a super node |
//! | [`ZeroShot`] | ADM | node-type-specific MLPs with bottom-up message passing |
//!
//! [`Mscn`] and [`QueryFormer`] optionally take a pre-trained
//! [`dace_core::DaceEstimator`] as an encoder (knowledge integration,
//! Eq. 9), yielding the paper's DACE-MSCN and DACE-QueryFormer.
//!
//! Simplifications vs. the original codebases (documented per module and in
//! DESIGN.md): TPool's string embeddings become hashed predicate features;
//! QueryFormer's learnable per-distance attention bias is a fixed
//! `−λ·distance` schedule (the inductive bias is preserved, the scalar is
//! not learned).

mod estimator;
mod mscn;
mod pg_linear;
mod plan_feat;
mod qppnet;
mod queryformer;
mod tpool;
mod zeroshot;

pub use estimator::{log_ms, CostEstimator};
pub use mscn::Mscn;
pub use pg_linear::PgLinear;
pub use plan_feat::{node_features, plan_predicates, plan_tables, HASH_BUCKETS};
pub use qppnet::QppNet;
pub use queryformer::QueryFormer;
pub use tpool::TPool;
pub use zeroshot::ZeroShot;
