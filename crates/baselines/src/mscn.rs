//! MSCN (Kipf et al.): multi-set convolutional network over table, join and
//! predicate sets, with optional DACE knowledge integration (Eq. 9).

use dace_core::DaceEstimator;
use dace_nn::{Adam, Linear, Param, Relu, Tensor2};
use dace_plan::{Dataset, PlanTree};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::estimator::{log_ms, CostEstimator};
use crate::plan_feat::{
    plan_joins, plan_predicates, plan_tables, JOIN_FEAT, PRED_FEAT, TABLE_FEAT,
};

/// Hidden width of the per-set MLPs and the output MLP.
const HIDDEN: usize = 256;

/// A per-set deep-sets encoder: 2-layer MLP per element, mean pool.
#[derive(Debug, Clone)]
struct SetEncoder {
    l1: Linear,
    l2: Linear,
    relu1: Relu,
    relu2: Relu,
    last_count: usize,
}

impl SetEncoder {
    fn new(input: usize, seed: u64) -> SetEncoder {
        SetEncoder {
            l1: Linear::new(input, HIDDEN, seed),
            l2: Linear::new(HIDDEN, HIDDEN, seed ^ 0xA1),
            relu1: Relu::new(),
            relu2: Relu::new(),
            last_count: 0,
        }
    }

    /// Encode a set (`k × input`) into a pooled `1 × HIDDEN` vector.
    fn forward(&mut self, set: &Tensor2) -> Tensor2 {
        self.last_count = set.rows();
        if set.rows() == 0 {
            return Tensor2::zeros(1, HIDDEN);
        }
        let h = self
            .relu2
            .forward(&self.l2.forward(&self.relu1.forward(&self.l1.forward(set))));
        mean_pool(&h)
    }

    fn forward_inference(&self, set: &Tensor2) -> Tensor2 {
        if set.rows() == 0 {
            return Tensor2::zeros(1, HIDDEN);
        }
        let h = self.relu2.forward_inference(
            &self.l2.forward_inference(
                &self
                    .relu1
                    .forward_inference(&self.l1.forward_inference(set)),
            ),
        );
        mean_pool(&h)
    }

    fn backward(&mut self, d_pooled: &Tensor2) {
        if self.last_count == 0 {
            return;
        }
        // Mean pooling distributes the gradient evenly over elements.
        let k = self.last_count;
        let mut dh = Tensor2::zeros(k, HIDDEN);
        for r in 0..k {
            for c in 0..HIDDEN {
                dh.set(r, c, d_pooled.get(0, c) / k as f32);
            }
        }
        let d = self.relu2.backward(&dh);
        let d = self.l2.backward(&d);
        let d = self.relu1.backward(&d);
        let _ = self.l1.backward(&d);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.l1.params_mut();
        p.extend(self.l2.params_mut());
        p
    }

    fn param_count(&self) -> usize {
        self.l1.param_count() + self.l2.param_count()
    }
}

fn mean_pool(x: &Tensor2) -> Tensor2 {
    let sums = x.col_sums();
    let k = x.rows().max(1) as f32;
    Tensor2::from_vec(1, x.cols(), sums.into_iter().map(|s| s / k).collect())
}

/// The MSCN estimator. Pass a pre-trained DACE to [`Mscn::with_encoder`] to
/// build DACE-MSCN: the plan's `h₂` embedding is concatenated to the pooled
/// set encodings before the output MLP (the paper's Eq. 9).
pub struct Mscn {
    tables: SetEncoder,
    joins: SetEncoder,
    preds: SetEncoder,
    out1: Linear,
    out_relu: Relu,
    out2: Linear,
    encoder: Option<DaceEstimator>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Plans per optimizer step.
    pub batch: usize,
    seed: u64,
}

impl Mscn {
    /// Plain MSCN.
    pub fn new(seed: u64) -> Mscn {
        Mscn::build(seed, None)
    }

    /// DACE-MSCN: knowledge integration with a pre-trained DACE encoder.
    pub fn with_encoder(seed: u64, encoder: DaceEstimator) -> Mscn {
        Mscn::build(seed, Some(encoder))
    }

    fn build(seed: u64, encoder: Option<DaceEstimator>) -> Mscn {
        let enc_dim = if encoder.is_some() {
            dace_core::ENCODING_DIM
        } else {
            0
        };
        Mscn {
            tables: SetEncoder::new(TABLE_FEAT, seed ^ 0x01),
            joins: SetEncoder::new(JOIN_FEAT, seed ^ 0x02),
            preds: SetEncoder::new(PRED_FEAT, seed ^ 0x03),
            out1: Linear::new(3 * HIDDEN + enc_dim, HIDDEN, seed ^ 0x04),
            out_relu: Relu::new(),
            out2: Linear::new(HIDDEN, 1, seed ^ 0x05),
            encoder,
            epochs: 30,
            lr: 1e-3,
            batch: 64,
            seed,
        }
    }

    fn featurize(&self, tree: &PlanTree) -> (Tensor2, Tensor2, Tensor2, Vec<f32>) {
        let to_tensor = |rows: Vec<Vec<f32>>, width: usize| {
            let k = rows.len();
            let mut t = Tensor2::zeros(k, width);
            for (i, row) in rows.into_iter().enumerate() {
                t.row_mut(i).copy_from_slice(&row);
            }
            t
        };
        let tables = to_tensor(plan_tables(tree), TABLE_FEAT);
        let joins = to_tensor(plan_joins(tree), JOIN_FEAT);
        let preds = to_tensor(plan_predicates(tree), PRED_FEAT);
        let emb = self
            .encoder
            .as_ref()
            .map(|e| e.encode(tree))
            .unwrap_or_default();
        (tables, joins, preds, emb)
    }

    /// Training forward: returns the predicted log-latency.
    fn forward(&mut self, tree: &PlanTree) -> f32 {
        let (t, j, p, emb) = self.featurize(tree);
        let pt = self.tables.forward(&t);
        let pj = self.joins.forward(&j);
        let pp = self.preds.forward(&p);
        let mut concat = Vec::with_capacity(3 * HIDDEN + emb.len());
        concat.extend_from_slice(pt.row(0));
        concat.extend_from_slice(pj.row(0));
        concat.extend_from_slice(pp.row(0));
        concat.extend_from_slice(&emb);
        let x = Tensor2::from_vec(1, concat.len(), concat);
        let h = self.out_relu.forward(&self.out1.forward(&x));
        self.out2.forward(&h).get(0, 0)
    }

    fn backward(&mut self, d_pred: f32) {
        let d = Tensor2::from_vec(1, 1, vec![d_pred]);
        let d = self.out2.backward(&d);
        let d = self.out_relu.backward(&d);
        let d = self.out1.backward(&d);
        // Split the concat gradient back to the three encoders (the DACE
        // embedding segment is an input, not a parameter — dropped).
        let slice = |lo: usize| Tensor2::from_vec(1, HIDDEN, d.row(0)[lo..lo + HIDDEN].to_vec());
        self.tables.backward(&slice(0));
        self.joins.backward(&slice(HIDDEN));
        self.preds.backward(&slice(2 * HIDDEN));
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.tables.params_mut();
        p.extend(self.joins.params_mut());
        p.extend(self.preds.params_mut());
        p.extend(self.out1.params_mut());
        p.extend(self.out2.params_mut());
        p
    }
}

impl CostEstimator for Mscn {
    fn name(&self) -> &'static str {
        if self.encoder.is_some() {
            "DACE-MSCN"
        } else {
            "MSCN"
        }
    }

    fn fit(&mut self, train: &Dataset) {
        assert!(!train.is_empty());
        let targets: Vec<f32> = train.plans.iter().map(|p| log_ms(p.latency_ms())).collect();
        let mut opt = Adam::new(self.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5417);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            let batch_size = self.batch.max(1);
            // Split borrow: collect batches of indices, then loop.
            for start in (0..order.len()).step_by(batch_size) {
                let batch = &order[start..(start + batch_size).min(order.len())];
                for &i in batch {
                    let pred = self.forward(&train.plans[i].tree);
                    let d = 2.0 * (pred - targets[i]) / batch.len() as f32;
                    self.backward(d);
                }
                opt.step(&mut self.params_mut());
            }
        }
    }

    fn predict_ms(&self, tree: &PlanTree) -> f64 {
        let (t, j, p, emb) = self.featurize(tree);
        let pt = self.tables.forward_inference(&t);
        let pj = self.joins.forward_inference(&j);
        let pp = self.preds.forward_inference(&p);
        let mut concat = Vec::with_capacity(3 * HIDDEN + emb.len());
        concat.extend_from_slice(pt.row(0));
        concat.extend_from_slice(pj.row(0));
        concat.extend_from_slice(pp.row(0));
        concat.extend_from_slice(&emb);
        let x = Tensor2::from_vec(1, concat.len(), concat);
        let h = self
            .out_relu
            .forward_inference(&self.out1.forward_inference(&x));
        (self.out2.forward_inference(&h).get(0, 0) as f64).exp()
    }

    fn param_count(&self) -> usize {
        self.tables.param_count()
            + self.joins.param_count()
            + self.preds.param_count()
            + self.out1.param_count()
            + self.out2.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_plan::{
        CmpOp, LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, PredicateInfo, ScanInfo,
        TreeBuilder,
    };
    use rand::Rng;

    /// Dataset where latency depends on which table is scanned and the
    /// predicate literal — data characteristics MSCN is built to learn.
    fn mscn_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plans = (0..n)
            .map(|_| {
                let table_id = rng.gen_range(0..4u32);
                let rank = rng.gen_range(0.0..1.0f64);
                let ms = (table_id as f64 + 1.0) * 10.0 * (0.1 + rank);
                let mut b = TreeBuilder::new();
                let id = {
                    let mut node = PlanNode::new(
                        NodeType::SeqScan,
                        OpPayload::Scan(ScanInfo {
                            table_id,
                            table_name: format!("t{table_id}"),
                            predicates: vec![PredicateInfo {
                                column_id: table_id * 64 + 1,
                                op: CmpOp::Lt,
                                literal_rank: rank,
                                literal_rank_hi: 0.0,
                                est_selectivity: rank,
                            }],
                        }),
                    );
                    node.est_cost = 100.0;
                    node.est_rows = 1000.0;
                    node.actual_ms = ms;
                    b.leaf(node)
                };
                LabeledPlan {
                    tree: b.finish(id),
                    db_id: 0,
                    machine: MachineId::M1,
                }
            })
            .collect();
        Dataset::from_plans(plans)
    }

    #[test]
    fn learns_table_and_predicate_dependence() {
        let train = mscn_dataset(400, 1);
        let test = mscn_dataset(80, 2);
        let mut m = Mscn::new(7);
        m.epochs = 40;
        m.fit(&train);
        let mut qs: Vec<f64> = test
            .plans
            .iter()
            .map(|p| {
                let pred = m.predict_ms(&p.tree).max(1e-9);
                let act = p.latency_ms();
                (pred / act).max(act / pred)
            })
            .collect();
        qs.sort_by(f64::total_cmp);
        let median = qs[qs.len() / 2];
        assert!(median < 1.6, "median qerror {median}");
    }

    #[test]
    fn handles_empty_sets() {
        // A bare scan with no predicates: joins and predicates sets empty.
        let mut b = TreeBuilder::new();
        let id = {
            let mut n = PlanNode::new(
                NodeType::SeqScan,
                OpPayload::Scan(ScanInfo {
                    table_id: 0,
                    table_name: "t".into(),
                    predicates: vec![],
                }),
            );
            n.actual_ms = 1.0;
            b.leaf(n)
        };
        let plan = LabeledPlan {
            tree: b.finish(id),
            db_id: 0,
            machine: MachineId::M1,
        };
        let mut m = Mscn::new(1);
        m.epochs = 2;
        m.fit(&Dataset::from_plans(vec![plan.clone()]));
        assert!(m.predict_ms(&plan.tree).is_finite());
    }

    #[test]
    fn param_count_is_megabyte_scale() {
        let m = Mscn::new(0);
        // MSCN should be orders of magnitude larger than DACE (Table II).
        assert!(m.param_count() > 100_000);
        assert!(m.size_mb() > 0.5 && m.size_mb() < 10.0);
    }
}
