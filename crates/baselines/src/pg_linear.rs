//! The "PostgreSQL" baseline: a linear model mapping the optimizer's
//! estimated cost to execution time.
//!
//! The paper (Sec. V-B): "For PostgreSQL, the estimated cost is not in the
//! same units as the execution time, so we processed it with a linear model
//! as the execution time predicted by PostgreSQL." We fit ordinary least
//! squares in log–log space, which is the standard calibration.

use dace_plan::{Dataset, PlanTree};

use crate::estimator::{log_ms, CostEstimator};

/// `ln(time) ≈ a · ln(cost) + b`, fit by least squares.
#[derive(Debug, Clone)]
pub struct PgLinear {
    slope: f64,
    intercept: f64,
    fitted: bool,
}

impl PgLinear {
    /// Unfitted model (predicts cost unchanged until [`CostEstimator::fit`]).
    pub fn new() -> PgLinear {
        PgLinear {
            slope: 1.0,
            intercept: 0.0,
            fitted: false,
        }
    }

    /// Fitted coefficients `(slope, intercept)`.
    pub fn coefficients(&self) -> (f64, f64) {
        (self.slope, self.intercept)
    }
}

impl Default for PgLinear {
    fn default() -> Self {
        PgLinear::new()
    }
}

impl CostEstimator for PgLinear {
    fn name(&self) -> &'static str {
        "PostgreSQL"
    }

    fn fit(&mut self, train: &Dataset) {
        let n = train.len() as f64;
        if train.is_empty() {
            return;
        }
        let xs: Vec<f64> = train
            .plans
            .iter()
            .map(|p| (1.0 + p.tree.est_cost()).ln())
            .collect();
        let ys: Vec<f64> = train
            .plans
            .iter()
            .map(|p| log_ms(p.latency_ms()) as f64)
            .collect();
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let var: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        self.slope = if var > 1e-12 { cov / var } else { 0.0 };
        self.intercept = my - self.slope * mx;
        self.fitted = true;
    }

    fn predict_ms(&self, tree: &PlanTree) -> f64 {
        let x = (1.0 + tree.est_cost()).ln();
        (self.slope * x + self.intercept).exp()
    }

    fn param_count(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_plan::{LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};

    fn plan_with(cost: f64, ms: f64) -> LabeledPlan {
        let mut b = TreeBuilder::new();
        let id = {
            let mut n = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
            n.est_cost = cost;
            n.actual_ms = ms;
            b.leaf(n)
        };
        LabeledPlan {
            tree: b.finish(id),
            db_id: 0,
            machine: MachineId::M1,
        }
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        // time = 0.004 × cost ⇒ perfect log-log fit with slope 1.
        let ds = Dataset::from_plans(
            (1..200)
                .map(|i| plan_with(i as f64 * 50.0, i as f64 * 50.0 * 0.004))
                .collect(),
        );
        let mut pg = PgLinear::new();
        pg.fit(&ds);
        let (slope, _) = pg.coefficients();
        assert!((slope - 1.0).abs() < 0.05, "slope {slope}");
        let tree = &ds.plans[100].tree;
        let pred = pg.predict_ms(tree);
        let actual = ds.plans[100].latency_ms();
        assert!((pred / actual).max(actual / pred) < 1.1);
    }

    #[test]
    fn cannot_capture_operator_dependence() {
        // Two operator regimes with 10× different cost→time ratios: a
        // single linear model must be badly wrong on at least one.
        let mut plans = Vec::new();
        for i in 1..100 {
            let c = i as f64 * 100.0;
            plans.push(plan_with(c, c * 0.001));
            plans.push(plan_with(c, c * 0.01));
        }
        let ds = Dataset::from_plans(plans);
        let mut pg = PgLinear::new();
        pg.fit(&ds);
        let q = |p: &LabeledPlan| {
            let pred = pg.predict_ms(&p.tree).max(1e-9);
            let act = p.latency_ms();
            (pred / act).max(act / pred)
        };
        let worst = ds.plans.iter().map(q).fold(0.0f64, f64::max);
        assert!(worst > 2.0, "linear model should not fit both regimes");
    }

    #[test]
    fn param_count_is_trivial() {
        assert_eq!(PgLinear::new().param_count(), 2);
        assert!(PgLinear::new().size_mb() < 1e-4);
    }
}
