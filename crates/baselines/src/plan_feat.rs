//! Shared plan featurization for the predicate-learning baselines.
//!
//! Unlike DACE, the within-database models encode *data characteristics*:
//! which tables and columns a query touches and what its predicates look
//! like. Identifiers are hashed into fixed-size one-hot buckets — faithful
//! to how MSCN/TPool bind their encodings to one schema, and exactly why
//! these models cannot transfer across databases (bucket collisions carry
//! no cross-schema meaning).

use dace_nn::{RobustScaler, Tensor2};
use dace_plan::{CmpOp, Dataset, OpPayload, PlanTree, PredicateInfo, NODE_TYPE_COUNT};

/// One-hot hash space for table/column identifiers.
pub const HASH_BUCKETS: usize = 32;

/// Per-element width of the table set encoding.
pub const TABLE_FEAT: usize = HASH_BUCKETS;
/// Per-element width of the join set encoding (two hashed columns).
pub const JOIN_FEAT: usize = 2 * HASH_BUCKETS;
/// Per-element width of the predicate set encoding
/// (hashed column + op one-hot + two literal ranks + selectivity).
pub const PRED_FEAT: usize = HASH_BUCKETS + CmpOp::COUNT + 3;

#[inline]
fn bucket(id: u32) -> usize {
    // Fibonacci hashing spreads consecutive ids across buckets.
    ((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % HASH_BUCKETS
}

/// Hashed one-hot encodings of the tables a plan scans.
pub fn plan_tables(tree: &PlanTree) -> Vec<Vec<f32>> {
    tree.scan_nodes()
        .iter()
        .filter_map(|&id| tree.node(id).payload.as_scan())
        .map(|scan| {
            let mut v = vec![0.0; TABLE_FEAT];
            v[bucket(scan.table_id)] = 1.0;
            v
        })
        .collect()
}

/// Hashed encodings of the plan's join conditions.
pub fn plan_joins(tree: &PlanTree) -> Vec<Vec<f32>> {
    tree.ids()
        .filter_map(|id| tree.node(id).payload.as_join())
        .map(|join| {
            let mut v = vec![0.0; JOIN_FEAT];
            v[bucket(join.left_column)] = 1.0;
            v[HASH_BUCKETS + bucket(join.right_column)] = 1.0;
            v
        })
        .collect()
}

/// Encodings of the plan's filter predicates.
pub fn plan_predicates(tree: &PlanTree) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    for id in tree.ids() {
        if let OpPayload::Scan(scan) = &tree.node(id).payload {
            for p in &scan.predicates {
                out.push(encode_predicate(p));
            }
        }
    }
    out
}

fn encode_predicate(p: &PredicateInfo) -> Vec<f32> {
    let mut v = vec![0.0; PRED_FEAT];
    v[bucket(p.column_id)] = 1.0;
    v[HASH_BUCKETS + p.op.index()] = 1.0;
    let base = HASH_BUCKETS + CmpOp::COUNT;
    v[base] = p.literal_rank as f32;
    v[base + 1] = p.literal_rank_hi as f32;
    v[base + 2] = p.est_selectivity as f32;
    v
}

/// Per-node feature width used by the plan-structured baselines
/// (QPPNet / TPool / QueryFormer / Zero-Shot): node-type one-hot plus
/// scaled log cost and log cardinality, the same information DACE sees.
pub const NODE_FEAT: usize = NODE_TYPE_COUNT + 2;

/// Scalers for node cost/cardinality features; fit on training plans.
#[derive(Debug, Clone)]
pub struct NodeScalers {
    /// Scaler over log cost.
    pub cost: RobustScaler,
    /// Scaler over log cardinality.
    pub card: RobustScaler,
}

impl NodeScalers {
    /// Fit over all nodes of all plans.
    pub fn fit(train: &Dataset) -> NodeScalers {
        let mut costs = Vec::new();
        let mut cards = Vec::new();
        for p in &train.plans {
            for id in p.tree.ids() {
                let n = p.tree.node(id);
                costs.push((1.0 + n.est_cost).ln());
                cards.push((1.0 + n.est_rows).ln());
            }
        }
        NodeScalers {
            cost: RobustScaler::fit(&costs),
            card: RobustScaler::fit(&cards),
        }
    }
}

/// Per-node features of a whole plan in DFS order (`n × NODE_FEAT`).
pub fn node_features(tree: &PlanTree, scalers: &NodeScalers) -> Tensor2 {
    let order = tree.dfs();
    let mut x = Tensor2::zeros(order.len(), NODE_FEAT);
    for (i, &id) in order.iter().enumerate() {
        let node = tree.node(id);
        let row = x.row_mut(i);
        row[node.node_type.one_hot_index()] = 1.0;
        row[NODE_TYPE_COUNT] = scalers.cost.transform((1.0 + node.est_cost).ln()) as f32;
        row[NODE_TYPE_COUNT + 1] = scalers.card.transform((1.0 + node.est_rows).ln()) as f32;
    }
    x
}

/// Debug-check the traversal assumption every bottom-up baseline forward
/// pass relies on: [`PlanTree::dfs`] is a *preorder* (parent before
/// children), so iterating it **reversed** visits every child before its
/// parent, and a parent may read its children's caches unconditionally.
///
/// The property holds for any valid tree (`TreeBuilder::finish` validates
/// single-reachability), so this compiles to nothing in release builds; it
/// exists to fail loudly if the traversal or builder contract ever changes
/// instead of surfacing as an opaque `unwrap` on an empty cache slot.
pub fn debug_assert_child_before_parent(tree: &PlanTree) {
    if cfg!(debug_assertions) {
        let order = tree.dfs();
        let mut pos = vec![usize::MAX; tree.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for &id in &order {
            for &c in &tree.node(id).children {
                debug_assert!(
                    pos[c.index()] > pos[id.index()],
                    "DFS preorder must place parent {id:?} before child {c:?}: \
                     bottom-up passes iterate it reversed and read child caches \
                     before the parent's"
                );
            }
        }
    }
}

/// Feature vector of a single node (same layout as [`node_features`] rows).
pub fn single_node_features(
    tree: &PlanTree,
    id: dace_plan::NodeId,
    scalers: &NodeScalers,
) -> Vec<f32> {
    let node = tree.node(id);
    let mut row = vec![0.0; NODE_FEAT];
    row[node.node_type.one_hot_index()] = 1.0;
    row[NODE_TYPE_COUNT] = scalers.cost.transform((1.0 + node.est_cost).ln()) as f32;
    row[NODE_TYPE_COUNT + 1] = scalers.card.transform((1.0 + node.est_rows).ln()) as f32;
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_plan::{JoinInfo, LabeledPlan, MachineId, NodeType, PlanNode, ScanInfo, TreeBuilder};

    fn labeled_join_plan() -> LabeledPlan {
        let mut b = TreeBuilder::new();
        let s1 = b.leaf(PlanNode::new(
            NodeType::SeqScan,
            OpPayload::Scan(ScanInfo {
                table_id: 3,
                table_name: "t3".into(),
                predicates: vec![PredicateInfo {
                    column_id: 7,
                    op: CmpOp::Gt,
                    literal_rank: 0.4,
                    literal_rank_hi: 0.0,
                    est_selectivity: 0.6,
                }],
            }),
        ));
        let s2 = b.leaf(PlanNode::new(
            NodeType::IndexScan,
            OpPayload::Scan(ScanInfo {
                table_id: 9,
                table_name: "t9".into(),
                predicates: vec![],
            }),
        ));
        let j = b.internal(
            PlanNode::new(
                NodeType::HashJoin,
                OpPayload::Join(JoinInfo {
                    left_column: 193,
                    right_column: 576,
                    condition: "a = b".into(),
                }),
            ),
            vec![s1, s2],
        );
        LabeledPlan {
            tree: b.finish(j),
            db_id: 0,
            machine: MachineId::M1,
        }
    }

    #[test]
    fn set_featurization_shapes() {
        let plan = labeled_join_plan();
        let tables = plan_tables(&plan.tree);
        let joins = plan_joins(&plan.tree);
        let preds = plan_predicates(&plan.tree);
        assert_eq!(tables.len(), 2);
        assert_eq!(joins.len(), 1);
        assert_eq!(preds.len(), 1);
        assert_eq!(tables[0].len(), TABLE_FEAT);
        assert_eq!(joins[0].len(), JOIN_FEAT);
        assert_eq!(preds[0].len(), PRED_FEAT);
        // One-hot bits set.
        assert_eq!(tables[0].iter().filter(|&&v| v == 1.0).count(), 1);
        assert_eq!(joins[0].iter().filter(|&&v| v == 1.0).count(), 2);
        // Predicate literal and selectivity present.
        let base = HASH_BUCKETS + CmpOp::COUNT;
        assert!((preds[0][base] - 0.4).abs() < 1e-6);
        assert!((preds[0][base + 2] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn node_features_match_dfs_order() {
        let plan = labeled_join_plan();
        let ds = Dataset::from_plans(vec![plan.clone()]);
        let scalers = NodeScalers::fit(&ds);
        let x = node_features(&plan.tree, &scalers);
        assert_eq!(x.rows(), 3);
        assert_eq!(x.cols(), NODE_FEAT);
        // DFS: join, scan1, scan2.
        assert_eq!(x.get(0, NodeType::HashJoin.one_hot_index()), 1.0);
        assert_eq!(x.get(1, NodeType::SeqScan.one_hot_index()), 1.0);
        assert_eq!(x.get(2, NodeType::IndexScan.one_hot_index()), 1.0);
        // Single-node features agree with batch rows.
        let order = plan.tree.dfs();
        let single = single_node_features(&plan.tree, order[1], &scalers);
        assert_eq!(single, x.row(1).to_vec());
    }

    #[test]
    fn hashing_is_stable_and_in_range() {
        for id in 0..1000u32 {
            let b = bucket(id);
            assert!(b < HASH_BUCKETS);
            assert_eq!(b, bucket(id));
        }
    }
}
