//! QPPNet (Marcus & Papaemmanouil): plan-structured neural network with one
//! sub-network per operator type; child outputs feed parent inputs and every
//! sub-plan's latency is supervised **with equal weight** — the information
//! redundancy DACE's loss adjuster fixes (paper Sec. IV-B).

use dace_nn::{Adam, Linear, Param, Relu, Tensor2};
use dace_plan::{Dataset, PlanTree, NODE_TYPE_COUNT};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::estimator::{log_ms, CostEstimator};
use crate::plan_feat::{
    debug_assert_child_before_parent, single_node_features, NodeScalers, NODE_FEAT,
};

/// Width of the "data vector" a node passes to its parent.
const DATA_VEC: usize = 16;
/// Hidden width of each per-type sub-network.
const HIDDEN: usize = 256;
/// Input: own features + summed child outputs (prediction + data vector).
const INPUT: usize = NODE_FEAT + 1 + DATA_VEC;

/// One operator type's sub-network: input → hidden → (log-latency, data vec).
#[derive(Debug, Clone)]
struct TypeNet {
    l1: Linear,
    l2: Linear,
}

impl TypeNet {
    fn new(seed: u64) -> TypeNet {
        TypeNet {
            l1: Linear::new(INPUT, HIDDEN, seed),
            l2: Linear::new(HIDDEN, 1 + DATA_VEC, seed ^ 0xBB),
        }
    }
}

/// Per-node forward cache for the recursive passes.
struct NodeCache {
    x: Tensor2,
    h: Tensor2,
    out: Tensor2,
}

/// The QPPNet estimator.
pub struct QppNet {
    nets: Vec<TypeNet>,
    scalers: Option<NodeScalers>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Plans per optimizer step.
    pub batch: usize,
    seed: u64,
}

impl QppNet {
    /// Seeded, untrained QPPNet.
    pub fn new(seed: u64) -> QppNet {
        QppNet {
            nets: (0..NODE_TYPE_COUNT as u64)
                .map(|i| TypeNet::new(seed ^ (i * 0x9E37)))
                .collect(),
            scalers: None,
            epochs: 30,
            lr: 1e-3,
            batch: 64,
            seed,
        }
    }

    /// Post-order forward over the whole plan; returns per-node caches
    /// indexed by arena id.
    fn forward_plan(&self, tree: &PlanTree, scalers: &NodeScalers) -> Vec<Option<NodeCache>> {
        debug_assert_child_before_parent(tree);
        let mut caches: Vec<Option<NodeCache>> = (0..tree.len()).map(|_| None).collect();
        // Reverse DFS preorder = children before parents.
        let order = tree.dfs();
        for &id in order.iter().rev() {
            let node = tree.node(id);
            let mut x = vec![0.0f32; INPUT];
            x[..NODE_FEAT].copy_from_slice(&single_node_features(tree, id, scalers));
            for &c in &node.children {
                let child_out = &caches[c.index()]
                    .as_ref()
                    .expect("DFS invariant: child cached before parent")
                    .out;
                for k in 0..1 + DATA_VEC {
                    x[NODE_FEAT + k] += child_out.get(0, k);
                }
            }
            let x = Tensor2::from_vec(1, INPUT, x);
            let net = &self.nets[node.node_type.one_hot_index()];
            let a = net.l1.forward_inference(&x);
            let h = {
                let mut h = a;
                for v in h.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                h
            };
            let out = net.l2.forward_inference(&h);
            caches[id.index()] = Some(NodeCache { x, h, out });
        }
        caches
    }

    /// Pre-order backward: per-node output gradients flow from both the
    /// node's own loss term and its parent's input.
    fn backward_plan(&mut self, tree: &PlanTree, caches: &[Option<NodeCache>], d_pred: &[f32]) {
        let order = tree.dfs();
        let mut d_out: Vec<Tensor2> = (0..tree.len())
            .map(|_| Tensor2::zeros(1, 1 + DATA_VEC))
            .collect();
        // Own loss terms (aligned with DFS order of d_pred).
        for (i, &id) in order.iter().enumerate() {
            d_out[id.index()].set(0, 0, d_pred[i]);
        }
        for &id in &order {
            let node = tree.node(id);
            let cache = caches[id.index()]
                .as_ref()
                .expect("forward_plan caches every node");
            let net = &mut self.nets[node.node_type.one_hot_index()];
            let dh = net.l2.backward_from(&d_out[id.index()], &cache.h);
            let da = Relu::backward_from(&dh, &cache.h);
            let dx = net.l1.backward_from(&da, &cache.x);
            // Sum aggregation: each child receives the same slice gradient.
            for &c in &node.children {
                let dst = &mut d_out[c.index()];
                for k in 0..1 + DATA_VEC {
                    let cur = dst.get(0, k);
                    dst.set(0, k, cur + dx.get(0, NODE_FEAT + k));
                }
            }
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.nets
            .iter_mut()
            .flat_map(|n| {
                let mut p = n.l1.params_mut();
                p.extend(n.l2.params_mut());
                p
            })
            .collect()
    }

    fn root_pred(&self, tree: &PlanTree, scalers: &NodeScalers) -> f32 {
        let caches = self.forward_plan(tree, scalers);
        caches[tree.root().index()].as_ref().unwrap().out.get(0, 0)
    }
}

impl CostEstimator for QppNet {
    fn name(&self) -> &'static str {
        "QPPNet"
    }

    fn fit(&mut self, train: &Dataset) {
        assert!(!train.is_empty());
        let scalers = NodeScalers::fit(train);
        // Per-plan DFS-ordered sub-plan targets.
        let targets: Vec<Vec<f32>> = train
            .plans
            .iter()
            .map(|p| {
                p.tree
                    .dfs()
                    .iter()
                    .map(|&id| log_ms(p.tree.node(id).actual_ms))
                    .collect()
            })
            .collect();
        let mut opt = Adam::new(self.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5417);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            let bs = self.batch.max(1);
            for start in (0..order.len()).step_by(bs) {
                let batch = &order[start..(start + bs).min(order.len())];
                for &i in batch {
                    let tree = &train.plans[i].tree;
                    let caches = self.forward_plan(tree, &scalers);
                    let dfs = tree.dfs();
                    // Equal-weight sub-plan loss: mean squared log error
                    // over all nodes (QPPNet's defining training signal).
                    let n = dfs.len() as f32;
                    let d_pred: Vec<f32> = dfs
                        .iter()
                        .enumerate()
                        .map(|(k, &id)| {
                            let pred = caches[id.index()].as_ref().unwrap().out.get(0, 0);
                            2.0 * (pred - targets[i][k]) / (n * batch.len() as f32)
                        })
                        .collect();
                    self.backward_plan(tree, &caches, &d_pred);
                }
                opt.step(&mut self.params_mut());
            }
        }
        self.scalers = Some(scalers);
    }

    fn predict_ms(&self, tree: &PlanTree) -> f64 {
        let scalers = self.scalers.as_ref().expect("QPPNet not fitted");
        (self.root_pred(tree, scalers) as f64).exp()
    }

    fn param_count(&self) -> usize {
        self.nets
            .iter()
            .map(|n| n.l1.param_count() + n.l2.param_count())
            .sum()
    }
}

/// Shared test helper: a synthetic corpus where latency composes bottom-up
/// with operator-dependent rates — the structure tree models should learn.
#[cfg(test)]
pub(crate) fn tree_dataset(n: usize, seed: u64) -> Dataset {
    use dace_plan::{LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};
    use rand::Rng;
    let mut rng = SmallRng::seed_from_u64(seed);
    let plans = (0..n)
        .map(|_| {
            let mut b = TreeBuilder::new();
            let make_scan = |b: &mut TreeBuilder, rng: &mut SmallRng| {
                let cost = rng.gen_range(50.0..5_000.0f64);
                let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                node.est_cost = cost;
                node.est_rows = cost * 10.0;
                node.actual_ms = cost * 0.005;
                node.actual_rows = cost * 9.0;
                b.leaf(node)
            };
            let s1 = make_scan(&mut b, &mut rng);
            let s2 = make_scan(&mut b, &mut rng);
            let use_hash = rng.gen_bool(0.5);
            let (ty, rate) = if use_hash {
                (NodeType::HashJoin, 0.002)
            } else {
                (NodeType::NestedLoop, 0.015)
            };
            let child_ms = b.node(s1).actual_ms + b.node(s2).actual_ms;
            let join_cost = b.node(s1).est_cost + b.node(s2).est_cost;
            let join = {
                let mut node = PlanNode::new(ty, OpPayload::Other);
                node.est_cost = join_cost * 1.5;
                node.est_rows = 5_000.0;
                node.actual_ms = child_ms + join_cost * rate;
                node.actual_rows = 4_000.0;
                b.internal(node, vec![s1, s2])
            };
            let root = {
                let mut node = PlanNode::new(NodeType::GroupAggregate, OpPayload::Other);
                node.est_cost = join_cost * 1.6;
                node.est_rows = 1.0;
                node.actual_ms = b.node(join).actual_ms * 1.1;
                node.actual_rows = 1.0;
                b.internal(node, vec![join])
            };
            LabeledPlan {
                tree: b.finish(root),
                db_id: 0,
                machine: MachineId::M1,
            }
        })
        .collect();
    Dataset::from_plans(plans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median_qerror(model: &dyn CostEstimator, ds: &Dataset) -> f64 {
        let mut qs: Vec<f64> = ds
            .plans
            .iter()
            .map(|p| {
                let pred = model.predict_ms(&p.tree).max(1e-9);
                let act = p.latency_ms();
                (pred / act).max(act / pred)
            })
            .collect();
        qs.sort_by(f64::total_cmp);
        qs[qs.len() / 2]
    }

    #[test]
    fn learns_composed_tree_latencies() {
        let train = tree_dataset(400, 1);
        let test = tree_dataset(80, 2);
        let mut model = QppNet::new(3);
        model.epochs = 40;
        model.fit(&train);
        let q = median_qerror(&model, &test);
        assert!(q < 1.6, "median qerror {q}");
    }

    #[test]
    fn all_subplans_receive_gradient() {
        let train = tree_dataset(10, 4);
        let mut model = QppNet::new(5);
        let scalers = NodeScalers::fit(&train);
        let tree = &train.plans[0].tree;
        let caches = model.forward_plan(tree, &scalers);
        let d = vec![1.0f32; tree.len()];
        model.backward_plan(tree, &caches, &d);
        // Every operator type present in the plan must have gradients.
        for id in tree.ids() {
            let ty = tree.node(id).node_type;
            let net = &model.nets[ty.one_hot_index()];
            assert!(net.l1.w.grad.norm_sq() > 0.0, "{ty:?} got no gradient");
        }
    }

    #[test]
    fn per_type_networks_are_separate() {
        let model = QppNet::new(6);
        assert_eq!(model.nets.len(), NODE_TYPE_COUNT);
        // Seeded differently per type.
        assert_ne!(
            model.nets[0].l1.w.value.as_slice()[0],
            model.nets[1].l1.w.value.as_slice()[0]
        );
    }
}
