//! QueryFormer (Zhao): a deep tree transformer with height embeddings,
//! tree-bias attention and a super node, trained on the root latency only.
//! Optionally takes a pre-trained DACE encoder (DACE-QueryFormer).
//!
//! Faithful pieces: height embeddings added to the input projection, a
//! distance-dependent attention bias (closer tree neighbours attend more),
//! a learnable super node that aggregates the plan, multiple
//! attention + feed-forward layers with residuals. Simplification: the
//! per-distance bias scalar is a fixed `−λ·distance` schedule rather than a
//! learned embedding (the inductive bias — attention decaying with tree
//! distance — is preserved; see DESIGN.md).

use dace_core::DaceEstimator;
use dace_nn::{Adam, Linear, MaskedSelfAttention, Param, Relu, Tensor2};
use dace_plan::{Dataset, PlanTree};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::estimator::{log_ms, CostEstimator};
use crate::plan_feat::{node_features, NodeScalers, NODE_FEAT};

/// Model width.
const D: usize = 128;
/// Transformer layers (the paper uses 8; 6 keeps the size ordering of
/// Table II while halving training cost — see DESIGN.md).
const LAYERS: usize = 6;
/// Max height with a dedicated embedding row (deeper nodes clamp).
const MAX_HEIGHT: usize = 32;
/// Attention bias decay per unit of tree distance.
const DIST_LAMBDA: f32 = 0.4;
/// Bias for structurally unrelated node pairs.
const UNRELATED_BIAS: f32 = -4.0;

struct Layer {
    attn: MaskedSelfAttention,
    ff1: Linear,
    relu: Relu,
    ff2: Linear,
}

impl Layer {
    fn new(seed: u64) -> Layer {
        Layer {
            attn: MaskedSelfAttention::new(D, D, D, seed),
            ff1: Linear::new(D, 2 * D, seed ^ 0xF1),
            relu: Relu::new(),
            ff2: Linear::new(2 * D, D, seed ^ 0xF2),
        }
    }

    fn forward(&mut self, x: &Tensor2, bias: &[f32]) -> Tensor2 {
        let mut a = self.attn.forward_bias(x, bias);
        a.add_assign(x);
        let mut f = self.ff2.forward(&self.relu.forward(&self.ff1.forward(&a)));
        f.add_assign(&a);
        f
    }

    fn forward_inference(&self, x: &Tensor2, bias: &[f32]) -> Tensor2 {
        let mut a = self.attn.forward_bias_inference(x, bias);
        a.add_assign(x);
        let mut f = self
            .ff2
            .forward_inference(&self.relu.forward_inference(&self.ff1.forward_inference(&a)));
        f.add_assign(&a);
        f
    }

    fn backward(&mut self, dy: &Tensor2) -> Tensor2 {
        let d_ff = self
            .ff1
            .backward(&self.relu.backward(&self.ff2.backward(dy)));
        let mut da = d_ff;
        da.add_assign(dy);
        let d_attn = self.attn.backward(&da);
        let mut dx = d_attn;
        dx.add_assign(&da);
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.attn.params_mut();
        p.extend(self.ff1.params_mut());
        p.extend(self.ff2.params_mut());
        p
    }

    fn param_count(&self) -> usize {
        self.attn.param_count() + self.ff1.param_count() + self.ff2.param_count()
    }
}

/// The QueryFormer estimator.
pub struct QueryFormer {
    input: Linear,
    height_emb: Param,
    super_node: Param,
    layers: Vec<Layer>,
    head1: Linear,
    head_relu: Relu,
    head2: Linear,
    scalers: Option<NodeScalers>,
    encoder: Option<DaceEstimator>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Plans per optimizer step.
    pub batch: usize,
    seed: u64,
    /// Cached forward state for the height-embedding backward.
    last_heights: Vec<usize>,
}

impl QueryFormer {
    /// Plain QueryFormer.
    pub fn new(seed: u64) -> QueryFormer {
        QueryFormer::build(seed, None)
    }

    /// DACE-QueryFormer: concatenates the pre-trained DACE embedding to the
    /// super-node representation before the head (knowledge integration).
    pub fn with_encoder(seed: u64, encoder: DaceEstimator) -> QueryFormer {
        QueryFormer::build(seed, Some(encoder))
    }

    fn build(seed: u64, encoder: Option<DaceEstimator>) -> QueryFormer {
        let enc_dim = if encoder.is_some() {
            dace_core::ENCODING_DIM
        } else {
            0
        };
        QueryFormer {
            input: Linear::new(NODE_FEAT, D, seed ^ 0x20),
            height_emb: Param::new(Tensor2::uniform(MAX_HEIGHT, D, 0.05, seed ^ 0x21)),
            super_node: Param::new(Tensor2::uniform(1, D, 0.05, seed ^ 0x22)),
            layers: (0..LAYERS as u64)
                .map(|i| Layer::new(seed ^ (0x30 + i * 0x1111)))
                .collect(),
            head1: Linear::new(D + enc_dim, 64, seed ^ 0x23),
            head_relu: Relu::new(),
            head2: Linear::new(64, 1, seed ^ 0x24),
            scalers: None,
            encoder,
            epochs: 30,
            lr: 5e-4,
            batch: 64,
            seed,
            last_heights: Vec::new(),
        }
    }

    /// Attention bias over super node + plan nodes: position 0 is the super
    /// node (free attention to/from everything); real node pairs decay with
    /// tree distance along ancestor chains; unrelated pairs get a strong
    /// negative bias.
    fn build_bias(tree: &PlanTree) -> Vec<f32> {
        let n = tree.len();
        let m = n + 1;
        let heights = tree.heights();
        let anc = tree.ancestor_matrix();
        let mut bias = vec![0.0f32; m * m];
        for i in 0..n {
            for j in 0..n {
                let b = if i == j {
                    0.0
                } else if anc[i * n + j] || anc[j * n + i] {
                    -DIST_LAMBDA * (heights[i] as f32 - heights[j] as f32).abs()
                } else {
                    UNRELATED_BIAS
                };
                bias[(i + 1) * m + (j + 1)] = b;
            }
        }
        bias
    }

    /// Embed a plan: super node row + projected node features with height
    /// embeddings added.
    fn embed(&mut self, tree: &PlanTree, scalers: &NodeScalers) -> (Tensor2, Vec<f32>) {
        let feats = node_features(tree, scalers);
        let proj = self.input.forward(&feats);
        let heights: Vec<usize> = tree
            .heights()
            .iter()
            .map(|&h| (h as usize).min(MAX_HEIGHT - 1))
            .collect();
        let n = proj.rows();
        let mut x = Tensor2::zeros(n + 1, D);
        x.row_mut(0).copy_from_slice(self.super_node.value.row(0));
        for (i, &h) in heights.iter().enumerate() {
            let row = x.row_mut(i + 1);
            row.copy_from_slice(proj.row(i));
            for (v, e) in row.iter_mut().zip(self.height_emb.value.row(h)) {
                *v += e;
            }
        }
        self.last_heights = heights;
        (x, Self::build_bias(tree))
    }

    fn embed_inference(&self, tree: &PlanTree, scalers: &NodeScalers) -> (Tensor2, Vec<f32>) {
        let feats = node_features(tree, scalers);
        let proj = self.input.forward_inference(&feats);
        let n = proj.rows();
        let heights = tree.heights();
        let mut x = Tensor2::zeros(n + 1, D);
        x.row_mut(0).copy_from_slice(self.super_node.value.row(0));
        for (i, &hraw) in heights.iter().enumerate() {
            let row = x.row_mut(i + 1);
            row.copy_from_slice(proj.row(i));
            let h = (hraw as usize).min(MAX_HEIGHT - 1);
            for (v, e) in row.iter_mut().zip(self.height_emb.value.row(h)) {
                *v += e;
            }
        }
        (x, Self::build_bias(tree))
    }

    fn head(&self, super_repr: &[f32], emb: &[f32]) -> (Tensor2, Tensor2, f32) {
        let mut concat = Vec::with_capacity(super_repr.len() + emb.len());
        concat.extend_from_slice(super_repr);
        concat.extend_from_slice(emb);
        let x = Tensor2::from_vec(1, concat.len(), concat);
        let h = self
            .head_relu
            .forward_inference(&self.head1.forward_inference(&x));
        let pred = self.head2.forward_inference(&h).get(0, 0);
        (x, h, pred)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.input.params_mut();
        p.push(&mut self.height_emb);
        p.push(&mut self.super_node);
        for l in &mut self.layers {
            p.extend(l.params_mut());
        }
        p.extend(self.head1.params_mut());
        p.extend(self.head2.params_mut());
        p
    }
}

impl CostEstimator for QueryFormer {
    fn name(&self) -> &'static str {
        if self.encoder.is_some() {
            "DACE-QueryFormer"
        } else {
            "QueryFormer"
        }
    }

    fn fit(&mut self, train: &Dataset) {
        assert!(!train.is_empty());
        let scalers = NodeScalers::fit(train);
        let targets: Vec<f32> = train.plans.iter().map(|p| log_ms(p.latency_ms())).collect();
        let embeddings: Vec<Vec<f32>> = match &self.encoder {
            Some(e) => train.plans.iter().map(|p| e.encode(&p.tree)).collect(),
            None => vec![Vec::new(); train.len()],
        };
        let mut opt = Adam::new(self.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5417);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            let bs = self.batch.max(1);
            for start in (0..order.len()).step_by(bs) {
                let batch = &order[start..(start + bs).min(order.len())];
                for &i in batch {
                    let tree = &train.plans[i].tree;
                    let (mut x, bias) = self.embed(tree, &scalers);
                    // Hold intermediate layer outputs implicitly via module
                    // caches: forward layers in order.
                    for li in 0..LAYERS {
                        x = self.layers[li].forward(&x, &bias);
                    }
                    // Head on the super-node row, via the training path so
                    // caches are populated.
                    let mut concat = x.row(0).to_vec();
                    concat.extend_from_slice(&embeddings[i]);
                    let hx = Tensor2::from_vec(1, concat.len(), concat);
                    let h = self.head_relu.forward(&self.head1.forward(&hx));
                    let pred = self.head2.forward(&h).get(0, 0);

                    // Backward.
                    let d = 2.0 * (pred - targets[i]) / batch.len() as f32;
                    let d = Tensor2::from_vec(1, 1, vec![d]);
                    let d = self.head2.backward(&d);
                    let d = self.head_relu.backward(&d);
                    let d_hx = self.head1.backward(&d);
                    // Only the super-node slice flows back into the stack.
                    let mut dx = Tensor2::zeros(x.rows(), D);
                    dx.row_mut(0).copy_from_slice(&d_hx.row(0)[..D]);
                    for li in (0..LAYERS).rev() {
                        dx = self.layers[li].backward(&dx);
                    }
                    // Split: super node row and per-node rows.
                    for (c, v) in dx.row(0).iter().enumerate() {
                        let cur = self.super_node.grad.get(0, c);
                        self.super_node.grad.set(0, c, cur + v);
                    }
                    let n = dx.rows() - 1;
                    let mut d_proj = Tensor2::zeros(n, D);
                    for r in 0..n {
                        d_proj.row_mut(r).copy_from_slice(dx.row(r + 1));
                        let hrow = self.last_heights[r];
                        for (c, v) in dx.row(r + 1).iter().enumerate() {
                            let cur = self.height_emb.grad.get(hrow, c);
                            self.height_emb.grad.set(hrow, c, cur + v);
                        }
                    }
                    let _ = self.input.backward(&d_proj);
                }
                opt.step(&mut self.params_mut());
            }
        }
        self.scalers = Some(scalers);
    }

    fn predict_ms(&self, tree: &PlanTree) -> f64 {
        let scalers = self.scalers.as_ref().expect("QueryFormer not fitted");
        let (mut x, bias) = self.embed_inference(tree, scalers);
        for l in &self.layers {
            x = l.forward_inference(&x, &bias);
        }
        let emb = self
            .encoder
            .as_ref()
            .map(|e| e.encode(tree))
            .unwrap_or_default();
        let (_, _, pred) = self.head(x.row(0), &emb);
        (pred as f64).exp()
    }

    fn param_count(&self) -> usize {
        self.input.param_count()
            + self.height_emb.count()
            + self.super_node.count()
            + self.layers.iter().map(Layer::param_count).sum::<usize>()
            + self.head1.param_count()
            + self.head2.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qppnet::tree_dataset;

    #[test]
    fn learns_tree_latencies() {
        let train = tree_dataset(300, 31);
        let test = tree_dataset(60, 32);
        let mut model = QueryFormer::new(33);
        model.epochs = 30;
        model.fit(&train);
        let mut qs: Vec<f64> = test
            .plans
            .iter()
            .map(|p| {
                let pred = model.predict_ms(&p.tree).max(1e-9);
                let act = p.latency_ms();
                (pred / act).max(act / pred)
            })
            .collect();
        qs.sort_by(f64::total_cmp);
        let q = qs[qs.len() / 2];
        assert!(q < 1.8, "median qerror {q}");
    }

    #[test]
    fn is_the_largest_baseline() {
        let qf = QueryFormer::new(1);
        // Table II: QueryFormer dwarfs everything else.
        assert!(qf.param_count() > 500_000, "{}", qf.param_count());
    }

    #[test]
    fn bias_matrix_structure() {
        let train = tree_dataset(1, 2);
        let tree = &train.plans[0].tree;
        let bias = QueryFormer::build_bias(tree);
        let m = tree.len() + 1;
        // Super node row and column are zero.
        for j in 0..m {
            assert_eq!(bias[j], 0.0);
            assert_eq!(bias[j * m], 0.0);
        }
        // Tree corpus: root(agg) → join → {scan, scan}; DFS = [agg, join,
        // scan, scan]. The sibling scans (DFS positions 2 and 3 → bias rows
        // 3 and 4) are structurally unrelated.
        assert_eq!(bias[3 * m + 4], UNRELATED_BIAS);
        // Parent-child decays by distance 1.
        assert!((bias[m + 2] + DIST_LAMBDA).abs() < 1e-6);
    }
}
