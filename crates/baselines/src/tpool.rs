//! TPool (Sun & Li's end-to-end learned estimator): a shared node encoder
//! with recursive tree pooling and **multi-task** heads predicting both the
//! execution time and the cardinality of the plan.
//!
//! Simplification vs. the original: the paper's string-predicate embeddings
//! (learned over value tokens) become the hashed predicate encodings of
//! [`crate::plan_feat`] pooled per node — no pre-trained word vectors exist
//! offline, and the hashed features exercise the same code path: per-node
//! predicate information flowing into a tree-pooled representation.

use dace_nn::{Adam, Linear, Param, Relu, Tensor2};
use dace_plan::{Dataset, OpPayload, PlanTree};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::estimator::{log_ms, CostEstimator};
use crate::plan_feat::{
    debug_assert_child_before_parent, single_node_features, NodeScalers, NODE_FEAT, PRED_FEAT,
};

/// Node representation width.
const HIDDEN: usize = 256;
/// Encoder input: node features + pooled predicate encoding.
const ENC_IN: usize = NODE_FEAT + PRED_FEAT;

struct NodeCache {
    enc_in: Tensor2,
    enc_out: Tensor2,
    comb_in: Tensor2,
    repr: Tensor2,
    /// For each hidden dim, which child's pooled value won the max (or
    /// `usize::MAX` when the zero vector won / no children).
    argmax: Vec<usize>,
}

/// The TPool estimator.
pub struct TPool {
    encoder: Linear,
    combine: Linear,
    cost_head1: Linear,
    cost_head2: Linear,
    card_head: Linear,
    scalers: Option<NodeScalers>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Plans per optimizer step.
    pub batch: usize,
    /// Weight of the auxiliary cardinality task.
    pub card_task_weight: f32,
    seed: u64,
}

impl TPool {
    /// Seeded, untrained TPool.
    pub fn new(seed: u64) -> TPool {
        TPool {
            encoder: Linear::new(ENC_IN, HIDDEN, seed ^ 0x70),
            combine: Linear::new(2 * HIDDEN, HIDDEN, seed ^ 0x71),
            cost_head1: Linear::new(HIDDEN, 64, seed ^ 0x72),
            cost_head2: Linear::new(64, 1, seed ^ 0x73),
            card_head: Linear::new(HIDDEN, 1, seed ^ 0x74),
            scalers: None,
            epochs: 30,
            lr: 1e-3,
            batch: 64,
            card_task_weight: 0.5,
            seed,
        }
    }

    /// Mean-pooled predicate features of one node's scan payload.
    fn node_predicates(tree: &PlanTree, id: dace_plan::NodeId) -> Vec<f32> {
        let mut pooled = vec![0.0f32; PRED_FEAT];
        if let OpPayload::Scan(scan) = &tree.node(id).payload {
            if !scan.predicates.is_empty() {
                let encs: Vec<Vec<f32>> = crate::plan_feat::plan_predicates(&tree.sub_plan(id));
                let k = encs.len().max(1) as f32;
                for e in encs {
                    for (p, v) in pooled.iter_mut().zip(e) {
                        *p += v / k;
                    }
                }
            }
        }
        pooled
    }

    /// Bottom-up forward with per-dimension max pooling over children.
    ///
    /// Walks the DFS preorder **reversed**, so every child's cache exists
    /// by the time its parent pools over it (see
    /// [`debug_assert_child_before_parent`]).
    fn forward_plan(&self, tree: &PlanTree, scalers: &NodeScalers) -> Vec<Option<NodeCache>> {
        debug_assert_child_before_parent(tree);
        let mut caches: Vec<Option<NodeCache>> = (0..tree.len()).map(|_| None).collect();
        let order = tree.dfs();
        for &id in order.iter().rev() {
            let node = tree.node(id);
            let mut enc_in = vec![0.0f32; ENC_IN];
            enc_in[..NODE_FEAT].copy_from_slice(&single_node_features(tree, id, scalers));
            enc_in[NODE_FEAT..].copy_from_slice(&Self::node_predicates(tree, id));
            let enc_in = Tensor2::from_vec(1, ENC_IN, enc_in);
            let enc_out = relu_copy(self.encoder.forward_inference(&enc_in));

            // Max pool children representations per dimension.
            let mut pooled = vec![0.0f32; HIDDEN];
            let mut argmax = vec![usize::MAX; HIDDEN];
            for &c in &node.children {
                let ch = &caches[c.index()]
                    .as_ref()
                    .expect("DFS invariant: child cached before parent")
                    .repr;
                for j in 0..HIDDEN {
                    let v = ch.get(0, j);
                    if v > pooled[j] {
                        pooled[j] = v;
                        argmax[j] = c.index();
                    }
                }
            }
            let mut comb_in = vec![0.0f32; 2 * HIDDEN];
            comb_in[..HIDDEN].copy_from_slice(enc_out.row(0));
            comb_in[HIDDEN..].copy_from_slice(&pooled);
            let comb_in = Tensor2::from_vec(1, 2 * HIDDEN, comb_in);
            let repr = relu_copy(self.combine.forward_inference(&comb_in));
            caches[id.index()] = Some(NodeCache {
                enc_in,
                enc_out,
                comb_in,
                repr,
                argmax,
            });
        }
        caches
    }

    /// Heads on the root representation: (hidden, log-ms, log-card).
    fn heads(&self, root_repr: &Tensor2) -> (Tensor2, f32, f32) {
        let h = relu_copy(self.cost_head1.forward_inference(root_repr));
        let cost = self.cost_head2.forward_inference(&h).get(0, 0);
        let card = self.card_head.forward_inference(root_repr).get(0, 0);
        (h, cost, card)
    }

    #[allow(clippy::too_many_arguments)]
    fn backward_plan(
        &mut self,
        tree: &PlanTree,
        caches: &[Option<NodeCache>],
        head_h: &Tensor2,
        d_cost: f32,
        d_card: f32,
    ) {
        let root = tree.root().index();
        let root_repr = &caches[root]
            .as_ref()
            .expect("forward_plan caches every node")
            .repr;
        // Cost head.
        let d = Tensor2::from_vec(1, 1, vec![d_cost]);
        let d = self.cost_head2.backward_from(&d, head_h);
        let d = Relu::backward_from(&d, head_h);
        let mut d_root = self.cost_head1.backward_from(&d, root_repr);
        // Cardinality head (multi-task).
        let dc = Tensor2::from_vec(1, 1, vec![d_card]);
        d_root.add_assign(&self.card_head.backward_from(&dc, root_repr));

        // Top-down through max pooling.
        let order = tree.dfs();
        let mut d_repr: Vec<Tensor2> = (0..tree.len()).map(|_| Tensor2::zeros(1, HIDDEN)).collect();
        d_repr[root] = d_root;
        for &id in &order {
            let cache = caches[id.index()]
                .as_ref()
                .expect("forward_plan caches every node");
            let d = Relu::backward_from(&d_repr[id.index()], &cache.repr);
            let d_comb = self.combine.backward_from(&d, &cache.comb_in);
            // Encoder segment.
            let d_enc = Tensor2::from_vec(1, HIDDEN, d_comb.row(0)[..HIDDEN].to_vec());
            let d_enc = Relu::backward_from(&d_enc, &cache.enc_out);
            let _ = self.encoder.backward_from(&d_enc, &cache.enc_in);
            // Max-pool routes each dim's gradient to the winning child.
            for j in 0..HIDDEN {
                let winner = cache.argmax[j];
                if winner != usize::MAX {
                    let g = d_comb.get(0, HIDDEN + j);
                    let cur = d_repr[winner].get(0, j);
                    d_repr[winner].set(0, j, cur + g);
                }
            }
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.encoder.params_mut();
        p.extend(self.combine.params_mut());
        p.extend(self.cost_head1.params_mut());
        p.extend(self.cost_head2.params_mut());
        p.extend(self.card_head.params_mut());
        p
    }
}

fn relu_copy(mut x: Tensor2) -> Tensor2 {
    for v in x.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    x
}

impl CostEstimator for TPool {
    fn name(&self) -> &'static str {
        "TPool"
    }

    fn fit(&mut self, train: &Dataset) {
        assert!(!train.is_empty());
        let scalers = NodeScalers::fit(train);
        let cost_targets: Vec<f32> = train.plans.iter().map(|p| log_ms(p.latency_ms())).collect();
        let card_targets: Vec<f32> = train
            .plans
            .iter()
            .map(|p| (1.0 + p.tree.node(p.tree.root()).actual_rows).ln() as f32)
            .collect();
        let mut opt = Adam::new(self.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5417);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            let bs = self.batch.max(1);
            for start in (0..order.len()).step_by(bs) {
                let batch = &order[start..(start + bs).min(order.len())];
                for &i in batch {
                    let tree = &train.plans[i].tree;
                    let caches = self.forward_plan(tree, &scalers);
                    let root_repr = &caches[tree.root().index()]
                        .as_ref()
                        .expect("forward_plan caches every node")
                        .repr;
                    let (h, cost, card) = self.heads(root_repr);
                    let d_cost = 2.0 * (cost - cost_targets[i]) / batch.len() as f32;
                    let d_card =
                        self.card_task_weight * 2.0 * (card - card_targets[i]) / batch.len() as f32;
                    self.backward_plan(tree, &caches, &h, d_cost, d_card);
                }
                opt.step(&mut self.params_mut());
            }
        }
        self.scalers = Some(scalers);
    }

    fn predict_ms(&self, tree: &PlanTree) -> f64 {
        let scalers = self.scalers.as_ref().expect("TPool not fitted");
        let caches = self.forward_plan(tree, scalers);
        let root_repr = &caches[tree.root().index()]
            .as_ref()
            .expect("forward_plan caches every node")
            .repr;
        let (_, cost, _) = self.heads(root_repr);
        (cost as f64).exp()
    }

    fn param_count(&self) -> usize {
        self.encoder.param_count()
            + self.combine.param_count()
            + self.cost_head1.param_count()
            + self.cost_head2.param_count()
            + self.card_head.param_count()
    }
}

impl TPool {
    /// Predicted root cardinality (the multi-task second output).
    pub fn predict_cardinality(&self, tree: &PlanTree) -> f64 {
        let scalers = self.scalers.as_ref().expect("TPool not fitted");
        let caches = self.forward_plan(tree, scalers);
        let root_repr = &caches[tree.root().index()]
            .as_ref()
            .expect("forward_plan caches every node")
            .repr;
        let (_, _, card) = self.heads(root_repr);
        (card as f64).exp() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qppnet::tree_dataset;

    #[test]
    fn learns_latency_and_cardinality_jointly() {
        let train = tree_dataset(400, 21);
        let test = tree_dataset(80, 22);
        let mut model = TPool::new(23);
        model.epochs = 40;
        model.fit(&train);
        let mut qs: Vec<f64> = test
            .plans
            .iter()
            .map(|p| {
                let pred = model.predict_ms(&p.tree).max(1e-9);
                let act = p.latency_ms();
                (pred / act).max(act / pred)
            })
            .collect();
        qs.sort_by(f64::total_cmp);
        let q = qs[qs.len() / 2];
        assert!(q < 1.8, "median qerror {q}");
        // The cardinality head should be in the right ballpark too
        // (root actual_rows is 1.0 in the corpus).
        let card = model.predict_cardinality(&test.plans[0].tree);
        assert!(card.is_finite() && card < 1_000.0, "card {card}");
    }

    #[test]
    fn max_pool_routes_gradients() {
        let train = tree_dataset(5, 24);
        let mut model = TPool::new(25);
        model.epochs = 1;
        model.batch = 1;
        model.fit(&train);
        let fresh = TPool::new(25);
        // Compare the whole matrices, not a fixed prefix: the first rows of
        // `w` correspond to one input dimension each, and whether a given
        // unit's ReLU is alive at init (hence whether those specific weights
        // receive gradient) depends on the seed stream. The invariant being
        // tested is that gradients flow through the max pool into both
        // layers at all, which the full-matrix comparison captures.
        assert_ne!(
            model.combine.w.value.as_slice(),
            fresh.combine.w.value.as_slice()
        );
        assert_ne!(
            model.encoder.w.value.as_slice(),
            fresh.encoder.w.value.as_slice()
        );
    }
}
