//! Zero-Shot (Hilprecht & Binnig): node-type-specific MLPs with bottom-up
//! message passing — the across-database baseline DACE is measured against.
//!
//! Each node's hidden state is `MLP_type([features ‖ mean(children hidden)])`
//! and the root hidden state feeds an output MLP. Only the root latency is
//! supervised (no sub-plan learning — Fig. 4's motivation for DACE).

use dace_nn::{Adam, Linear, Param, Relu, Tensor2};
use dace_plan::{Dataset, PlanTree, NODE_TYPE_COUNT};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::estimator::{log_ms, CostEstimator};
use crate::plan_feat::{
    debug_assert_child_before_parent, single_node_features, NodeScalers, NODE_FEAT,
};

/// Hidden state width propagated up the tree.
const HIDDEN: usize = 128;
/// Per-type MLP input: node features + mean child hidden.
const INPUT: usize = NODE_FEAT + HIDDEN;

#[derive(Debug, Clone)]
struct TypeNet {
    l1: Linear,
    l2: Linear,
}

impl TypeNet {
    fn new(seed: u64) -> TypeNet {
        TypeNet {
            l1: Linear::new(INPUT, HIDDEN, seed),
            l2: Linear::new(HIDDEN, HIDDEN, seed ^ 0xCC),
        }
    }
}

struct NodeCache {
    x: Tensor2,
    h1: Tensor2,
    h2: Tensor2,
    n_children: usize,
}

/// The Zero-Shot estimator.
pub struct ZeroShot {
    nets: Vec<TypeNet>,
    out1: Linear,
    out2: Linear,
    scalers: Option<NodeScalers>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Plans per optimizer step.
    pub batch: usize,
    seed: u64,
}

impl ZeroShot {
    /// Seeded, untrained Zero-Shot model.
    pub fn new(seed: u64) -> ZeroShot {
        ZeroShot {
            nets: (0..NODE_TYPE_COUNT as u64)
                .map(|i| TypeNet::new(seed ^ (i * 0xA5A5)))
                .collect(),
            out1: Linear::new(HIDDEN, 64, seed ^ 0x0111),
            out2: Linear::new(64, 1, seed ^ 0x0112),
            scalers: None,
            epochs: 30,
            lr: 1e-3,
            batch: 64,
            seed,
        }
    }

    /// Bottom-up message passing; returns per-node caches (arena-indexed).
    fn forward_plan(&self, tree: &PlanTree, scalers: &NodeScalers) -> Vec<Option<NodeCache>> {
        debug_assert_child_before_parent(tree);
        let mut caches: Vec<Option<NodeCache>> = (0..tree.len()).map(|_| None).collect();
        let order = tree.dfs();
        for &id in order.iter().rev() {
            let node = tree.node(id);
            let mut x = vec![0.0f32; INPUT];
            x[..NODE_FEAT].copy_from_slice(&single_node_features(tree, id, scalers));
            let k = node.children.len();
            if k > 0 {
                for &c in &node.children {
                    let ch = &caches[c.index()]
                        .as_ref()
                        .expect("DFS invariant: child cached before parent")
                        .h2;
                    for j in 0..HIDDEN {
                        x[NODE_FEAT + j] += ch.get(0, j) / k as f32;
                    }
                }
            }
            let x = Tensor2::from_vec(1, INPUT, x);
            let net = &self.nets[node.node_type.one_hot_index()];
            let h1 = relu_copy(net.l1.forward_inference(&x));
            let h2 = relu_copy(net.l2.forward_inference(&h1));
            caches[id.index()] = Some(NodeCache {
                x,
                h1,
                h2,
                n_children: k,
            });
        }
        caches
    }

    /// Root prediction from caches.
    fn head(&self, root_h: &Tensor2) -> (Tensor2, f32) {
        let o1 = relu_copy(self.out1.forward_inference(root_h));
        let pred = self.out2.forward_inference(&o1).get(0, 0);
        (o1, pred)
    }

    /// Backward from a root prediction gradient.
    fn backward_plan(
        &mut self,
        tree: &PlanTree,
        caches: &[Option<NodeCache>],
        o1: &Tensor2,
        d_pred: f32,
    ) {
        // Head.
        let d = Tensor2::from_vec(1, 1, vec![d_pred]);
        let d = self.out2.backward_from(&d, o1);
        let d = Relu::backward_from(&d, o1);
        let d_root_h = self.out1.backward_from(
            &d,
            &caches[tree.root().index()]
                .as_ref()
                .expect("forward_plan caches every node")
                .h2,
        );

        // Top-down through the tree.
        let order = tree.dfs();
        let mut d_h2: Vec<Tensor2> = (0..tree.len()).map(|_| Tensor2::zeros(1, HIDDEN)).collect();
        d_h2[tree.root().index()] = d_root_h;
        for &id in &order {
            let node = tree.node(id);
            let cache = caches[id.index()]
                .as_ref()
                .expect("forward_plan caches every node");
            let net = &mut self.nets[node.node_type.one_hot_index()];
            let d = Relu::backward_from(&d_h2[id.index()], &cache.h2);
            let d = net.l2.backward_from(&d, &cache.h1);
            let d = Relu::backward_from(&d, &cache.h1);
            let dx = net.l1.backward_from(&d, &cache.x);
            let k = cache.n_children;
            for &c in &node.children {
                let dst = &mut d_h2[c.index()];
                for j in 0..HIDDEN {
                    let cur = dst.get(0, j);
                    dst.set(0, j, cur + dx.get(0, NODE_FEAT + j) / k as f32);
                }
            }
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p: Vec<&mut Param> = self
            .nets
            .iter_mut()
            .flat_map(|n| {
                let mut v = n.l1.params_mut();
                v.extend(n.l2.params_mut());
                v
            })
            .collect();
        p.extend(self.out1.params_mut());
        p.extend(self.out2.params_mut());
        p
    }
}

fn relu_copy(mut x: Tensor2) -> Tensor2 {
    for v in x.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    x
}

impl CostEstimator for ZeroShot {
    fn name(&self) -> &'static str {
        "Zero-Shot"
    }

    fn fit(&mut self, train: &Dataset) {
        assert!(!train.is_empty());
        let scalers = NodeScalers::fit(train);
        let targets: Vec<f32> = train.plans.iter().map(|p| log_ms(p.latency_ms())).collect();
        let mut opt = Adam::new(self.lr);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5417);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            let bs = self.batch.max(1);
            for start in (0..order.len()).step_by(bs) {
                let batch = &order[start..(start + bs).min(order.len())];
                for &i in batch {
                    let tree = &train.plans[i].tree;
                    let caches = self.forward_plan(tree, &scalers);
                    let root_h = &caches[tree.root().index()]
                        .as_ref()
                        .expect("forward_plan caches every node")
                        .h2;
                    let (o1, pred) = self.head(root_h);
                    let d = 2.0 * (pred - targets[i]) / batch.len() as f32;
                    self.backward_plan(tree, &caches, &o1, d);
                }
                opt.step(&mut self.params_mut());
            }
        }
        self.scalers = Some(scalers);
    }

    fn predict_ms(&self, tree: &PlanTree) -> f64 {
        let scalers = self.scalers.as_ref().expect("Zero-Shot not fitted");
        let caches = self.forward_plan(tree, scalers);
        let root_h = &caches[tree.root().index()]
            .as_ref()
            .expect("forward_plan caches every node")
            .h2;
        let (_, pred) = self.head(root_h);
        (pred as f64).exp()
    }

    fn param_count(&self) -> usize {
        self.nets
            .iter()
            .map(|n| n.l1.param_count() + n.l2.param_count())
            .sum::<usize>()
            + self.out1.param_count()
            + self.out2.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qppnet::tree_dataset;

    #[test]
    fn learns_composed_tree_latencies() {
        let train = tree_dataset(400, 11);
        let test = tree_dataset(80, 12);
        let mut model = ZeroShot::new(13);
        model.epochs = 40;
        model.fit(&train);
        let mut qs: Vec<f64> = test
            .plans
            .iter()
            .map(|p| {
                let pred = model.predict_ms(&p.tree).max(1e-9);
                let act = p.latency_ms();
                (pred / act).max(act / pred)
            })
            .collect();
        qs.sort_by(f64::total_cmp);
        let q = qs[qs.len() / 2];
        assert!(q < 1.7, "median qerror {q}");
    }

    #[test]
    fn model_size_dwarfs_dace() {
        let model = ZeroShot::new(1);
        // The paper: Zero-Shot is ~33–42× larger than DACE.
        assert!(model.param_count() > 300_000, "{}", model.param_count());
    }

    #[test]
    fn gradients_reach_leaf_types() {
        let train = tree_dataset(5, 3);
        let mut model = ZeroShot::new(2);
        model.epochs = 1;
        model.batch = 1;
        model.fit(&train);
        // SeqScan (leaf type in the corpus) must have been updated.
        let fresh = ZeroShot::new(2);
        let idx = dace_plan::NodeType::SeqScan.one_hot_index();
        assert_ne!(
            model.nets[idx].l1.w.value.as_slice()[..8],
            fresh.nets[idx].l1.w.value.as_slice()[..8]
        );
    }
}
