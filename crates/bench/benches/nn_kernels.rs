//! Neural-network kernel benchmarks: the matmuls, attention and module
//! passes that dominate model training time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dace_nn::{Adam, Linear, LoraLinear, MaskedSelfAttention, Tensor2};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for n in [16usize, 64, 128] {
        let a = Tensor2::uniform(n, n, 1.0, 1);
        let b2 = Tensor2::uniform(n, n, 1.0, 2);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b2)))
        });
        group.bench_with_input(BenchmarkId::new("matmul_tn", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul_tn(&b2)))
        });
    }
    let mut s = Tensor2::uniform(32, 32, 4.0, 3);
    group.bench_function("softmax_rows_32x32", |b| {
        b.iter(|| {
            let mut x = s.clone();
            x.softmax_rows();
            black_box(&x);
        })
    });
    s.scale(1.0);
    group.finish();
}

fn bench_modules(c: &mut Criterion) {
    let mut group = c.benchmark_group("modules");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    // A DACE-shaped plan: 12 nodes, 18 features.
    let x = Tensor2::uniform(12, 18, 1.0, 4);
    let mask = vec![true; 12 * 12];

    let mut attn = MaskedSelfAttention::new(18, 128, 128, 5);
    group.bench_function("attention_fwd_bwd_12x18", |b| {
        b.iter(|| {
            let y = attn.forward(&x, &mask);
            black_box(attn.backward(&y));
        })
    });

    let mut linear = Linear::new(128, 128, 6);
    let h = Tensor2::uniform(12, 128, 1.0, 7);
    group.bench_function("linear_fwd_bwd_12x128", |b| {
        b.iter(|| {
            let y = linear.forward(&h);
            black_box(linear.backward(&y));
        })
    });

    let mut lora = LoraLinear::new(128, 128, 32, 8);
    group.bench_function("lora_fwd_bwd_12x128_r32", |b| {
        b.iter(|| {
            let y = lora.forward(&h);
            black_box(lora.backward(&y));
        })
    });

    let mut opt = Adam::new(1e-3);
    group.bench_function("adam_step_linear128", |b| {
        b.iter(|| {
            for p in linear.params_mut() {
                for g in p.grad.as_mut_slice() {
                    *g = 0.1;
                }
            }
            opt.step(&mut linear.params_mut());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_modules);
criterion_main!(benches);
