//! Observability substrate micro-benchmarks: the per-call costs the tracing
//! and metrics layers add to instrumented hot paths. The acceptance bar is
//! that a *disabled* span is a single relaxed atomic load (sub-nanosecond)
//! and an *enabled* span stays well under the microsecond scale of the
//! stages it wraps.
//!
//! Run with `cargo bench -p dace-bench --bench obs`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dace_obs::{set_tracing, span, Counter, FlightRecorder, Histogram, MetricsRegistry};

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    // Disabled span: the default state every instrumented call site pays.
    set_tracing(false);
    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _span = span!("bench_disabled");
            black_box(());
        })
    });

    // Enabled span: intern lookup + two Instant::now + a ring-buffer CAS.
    set_tracing(true);
    group.bench_function("span_enabled", |b| {
        b.iter(|| {
            let _span = span!("bench_enabled");
            black_box(());
        })
    });
    set_tracing(false);
    // Leave the global recorder empty for any later consumer.
    let _ = FlightRecorder::global().snapshot();

    // Counter increment: one relaxed fetch_add.
    let counter = Counter::new();
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            black_box(counter.get());
        })
    });

    // Histogram record: bucket index (leading-zeros math) + relaxed add.
    let hist = Histogram::new();
    group.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            hist.record(black_box(v));
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1) >> 32;
        })
    });

    // Registry resolution: the cold-path cost handles avoid on the hot path.
    let registry = MetricsRegistry::new();
    group.bench_function("registry_counter_lookup", |b| {
        b.iter(|| {
            black_box(registry.counter("obs_bench_counter")).inc();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
