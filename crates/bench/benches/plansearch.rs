//! Plan-search micro-benchmarks: driver overhead over the plain planner,
//! learned-search cost with and without the sub-plan memo, and raw batched
//! scoring throughput through `ScoreSession`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dace_catalog::{generate_database, suite_specs};
use dace_core::{ScoreSession, TrainConfig, Trainer};
use dace_engine::{collect_dataset, AnalyticScorer, CostModel, LearnedScorer, SearchSession};
use dace_plan::MachineId;
use dace_query::ComplexWorkloadGen;

fn bench_plansearch(c: &mut Criterion) {
    let db = generate_database(&suite_specs()[2], 0.05);
    let cm = CostModel::default();
    let queries = ComplexWorkloadGen::default().generate(&db, 64);
    let data = collect_dataset(
        &db,
        &ComplexWorkloadGen {
            seed: 0xBE7C4,
            ..ComplexWorkloadGen::default()
        }
        .generate(&db, 64),
        MachineId::M1,
    );
    let est = Trainer::new(TrainConfig {
        epochs: 3,
        ..TrainConfig::default()
    })
    .fit(&data)
    .expect("bench corpus is non-empty");

    let mut group = c.benchmark_group("plansearch");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    // Driver overhead: the search loop with the analytic scorer is the
    // planner's enumeration plus batching bookkeeping, nothing else.
    group.bench_function("analytic_plan", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(dace_engine::plan(&db, q, &cm).unwrap());
        })
    });
    group.bench_function("analytic_search", |b| {
        let session = SearchSession::new(&db, &cm);
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(session.plan(q, &mut AnalyticScorer).unwrap());
        })
    });

    // Learned search: every decision level is one batched DACE forward;
    // the memoized variant shares sub-tree scores across queries.
    group.bench_function("learned_search_no_memo", |b| {
        let session = SearchSession::new(&db, &cm);
        let mut scorer = LearnedScorer::new(&est, 0);
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(session.plan(q, &mut scorer).unwrap());
        })
    });
    group.bench_function("learned_search_memo", |b| {
        let session = SearchSession::new(&db, &cm);
        let mut scorer = LearnedScorer::new(&est, 1 << 16);
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(session.plan(q, &mut scorer).unwrap());
        })
    });

    // Raw batched scoring: the candidate traffic shape the driver emits
    // (dozens of sub-plans per level) through the session's packed forward.
    let trees: Vec<_> = data.plans.iter().map(|p| p.tree.clone()).collect();
    let refs: Vec<&dace_plan::PlanTree> = trees.iter().collect();
    group.bench_function("score_batch_64", |b| {
        let mut session = ScoreSession::new(&est);
        b.iter(|| {
            black_box(session.score_trees_ms(&refs).len());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plansearch);
criterion_main!(benches);
