//! Serving-path micro-benchmarks: the per-request costs that bound online
//! throughput. Each piece is benched in isolation so a regression points at
//! the layer that caused it — registry read, cache lookup, fingerprint,
//! featurization, and the end-to-end submit→wait round trip.
//!
//! Run with `cargo bench -p dace-bench --bench serve`. The closed-/open-loop
//! multi-client numbers live in `serve_bench` (crates/eval), not here:
//! criterion drives a single thread, which is exactly right for per-request
//! component costs and exactly wrong for contention behavior.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use dace_catalog::{generate_database, suite_specs};
use dace_core::{TrainConfig, Trainer};
use dace_engine::collect_dataset;
use dace_plan::{MachineId, PlanTree};
use dace_query::ComplexWorkloadGen;
use dace_serve::{DaceServer, ModelRegistry, ServeConfig, ShardedLruCache};

/// Shared fixture: a briefly trained estimator plus a plan pool.
fn fixture() -> (dace_core::DaceEstimator, Vec<PlanTree>) {
    let db = generate_database(&suite_specs()[0], 0.05);
    let gen = ComplexWorkloadGen {
        max_joins: 8,
        ..ComplexWorkloadGen::default()
    };
    let data = collect_dataset(&db, &gen.generate(&db, 96), MachineId::M1);
    let est = Trainer::new(TrainConfig {
        epochs: 1,
        ..Default::default()
    })
    .fit(&data)
    .unwrap();
    let pool = data.plans.into_iter().map(|p| p.tree).collect();
    (est, pool)
}

fn bench_serve(c: &mut Criterion) {
    let (est, pool) = fixture();
    let mut group = c.benchmark_group("serve_path");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(20);

    // Structural fingerprint: computed once per request on the submit path.
    let featurizer = est.featurizer.clone();
    group.bench_function("fingerprint", |b| {
        let mut i = 0;
        b.iter(|| {
            let t = &pool[i % pool.len()];
            i += 1;
            black_box(featurizer.fingerprint(t));
        })
    });

    // Featurization: the cache-miss cost the cache exists to avoid.
    group.bench_function("featurize_encode", |b| {
        let mut i = 0;
        b.iter(|| {
            let t = &pool[i % pool.len()];
            i += 1;
            black_box(featurizer.encode(t));
        })
    });

    // Cache hit: fingerprint → Arc<PlanFeatures> clone out of the LRU.
    let cache: ShardedLruCache<Arc<dace_core::PlanFeatures>> = ShardedLruCache::new(4096);
    let keys: Vec<u64> = pool
        .iter()
        .map(|t| {
            let k = featurizer.fingerprint(t);
            cache.insert(k, Arc::new(featurizer.encode(t)));
            k
        })
        .collect();
    group.bench_function("cache_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            let k = keys[i % keys.len()];
            i += 1;
            black_box(cache.get(k));
        })
    });

    // Registry resolve: the lock-free read every request performs.
    let registry = Arc::new(ModelRegistry::new(est.clone()));
    group.bench_function("registry_resolve", |b| {
        b.iter(|| black_box(registry.resolve(None).unwrap()))
    });

    // End-to-end: submit → scheduler → forward → respond, single in-flight
    // request (max_batch 1 so the drain loop never waits for fill). This is
    // the serve layer's per-request overhead plus one model forward.
    let server = DaceServer::new(
        registry.clone(),
        ServeConfig {
            max_batch: 1,
            workers: 1,
            ..ServeConfig::default()
        },
    );
    group.bench_function("request_roundtrip", |b| {
        let mut i = 0;
        b.iter(|| {
            let t = &pool[i % pool.len()];
            i += 1;
            black_box(server.predict(t).unwrap());
        })
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
