//! Substrate micro-benchmarks: data generation, statistics, cardinality
//! estimation, planning, execution and end-to-end label collection.
//! These bound the data-collection cost of every experiment and back the
//! "PostgreSQL" rows of Table II.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dace_catalog::{generate_database, suite_specs, ColumnStats};
use dace_engine::{collect_dataset, execute, plan_query, CostModel, MachineProfile};
use dace_plan::MachineId;
use dace_query::ComplexWorkloadGen;

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for scale in [0.05, 0.2] {
        group.bench_with_input(
            BenchmarkId::new("generate_imdb_like", scale),
            &scale,
            |b, &scale| b.iter(|| black_box(generate_database(&suite_specs()[0], scale))),
        );
    }
    let values: Vec<i64> = (0..100_000).map(|i| (i * 37) % 5_000).collect();
    group.bench_function("column_stats_100k", |b| {
        b.iter(|| black_box(ColumnStats::from_column(&values)))
    });
    group.finish();
}

fn bench_planner_executor(c: &mut Criterion) {
    let db = generate_database(&suite_specs()[0], 0.1);
    let queries = ComplexWorkloadGen::default().generate(&db, 128);
    let cost_model = CostModel::default();

    let mut group = c.benchmark_group("engine");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("plan_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(dace_engine::plan(&db, q, &cost_model).unwrap());
        })
    });
    group.bench_function("execute_plan", |b| {
        let plans: Vec<_> = queries
            .iter()
            .map(|q| plan_query(&db, q).unwrap())
            .collect();
        let mut i = 0;
        b.iter(|| {
            let mut p = plans[i % plans.len()].clone();
            i += 1;
            execute(&db, &mut p);
            black_box(p.actual_rows);
        })
    });
    group.bench_function("latency_annotate", |b| {
        let mut plans: Vec<_> = queries
            .iter()
            .map(|q| plan_query(&db, q).unwrap())
            .collect();
        for p in &mut plans {
            execute(&db, p);
        }
        let profile = MachineProfile::m1();
        let mut i = 0;
        b.iter(|| {
            let mut p = plans[i % plans.len()].clone();
            i += 1;
            profile.apply(&db, &mut p, i as u64);
            black_box(p.actual_ms);
        })
    });
    group.sample_size(10);
    group.bench_function("collect_dataset_64", |b| {
        b.iter(|| black_box(collect_dataset(&db, &queries[..64], MachineId::M1)))
    });
    group.finish();
}

fn bench_plan_structures(c: &mut Criterion) {
    let db = generate_database(&suite_specs()[0], 0.1);
    let queries = ComplexWorkloadGen::default().generate(&db, 32);
    let trees: Vec<_> = queries
        .iter()
        .map(|q| plan_query(&db, q).unwrap().to_plan_tree())
        .collect();
    let mut group = c.benchmark_group("plan");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("dfs+mask+heights", |b| {
        let mut i = 0;
        b.iter(|| {
            let t = &trees[i % trees.len()];
            i += 1;
            black_box((t.dfs(), t.ancestor_matrix(), t.heights()));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_datagen,
    bench_planner_executor,
    bench_plan_structures
);
criterion_main!(benches);
