//! Table II as Criterion benchmarks: training and inference throughput of
//! every estimator, plus the DBMS costing path ("PostgreSQL" row).
//!
//! Criterion reports time per iteration; one iteration = one query, so
//! queries/sec = 1 / (reported time). Run with
//! `cargo bench -p dace-bench --bench table2_throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dace_baselines::{CostEstimator, Mscn, QppNet, QueryFormer, TPool, ZeroShot};
use dace_catalog::{generate_database, suite_specs};
use dace_core::{TrainConfig, Trainer};
use dace_engine::collect_dataset;
use dace_plan::{Dataset, MachineId};
use dace_query::MscnWorkloadGen;

/// Shared corpus: a workload-3-style training slice plus test plans.
fn corpus() -> (dace_catalog::Database, Dataset, Dataset) {
    let db = generate_database(&suite_specs()[0], 0.1);
    let gen = MscnWorkloadGen::default();
    let train_q = gen.gen_train(&db, 256);
    let test_q = gen.gen_train(&db, 64);
    let train = collect_dataset(&db, &train_q, MachineId::M1);
    let test = collect_dataset(&db, &test_q, MachineId::M1);
    (db, train, test)
}

fn bench_inference(c: &mut Criterion) {
    let (db, train, test) = corpus();
    let mut group = c.benchmark_group("inference_per_query");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    // PostgreSQL = the optimizer costing path.
    let queries = MscnWorkloadGen::default().gen_train(&db, 64);
    group.bench_function("PostgreSQL(costing)", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(dace_engine::plan_query(&db, q).unwrap());
        })
    });

    // DACE, one plan at a time.
    let dace = Trainer::new(TrainConfig {
        epochs: 2,
        ..Default::default()
    })
    .fit(&train)
    .unwrap();
    group.bench_function("DACE", |b| {
        let mut i = 0;
        b.iter(|| {
            let p = &test.plans[i % test.len()];
            i += 1;
            black_box(dace.predict_ms(&p.tree));
        })
    });

    // DACE batched: the whole test set per iteration, reported per query
    // by scaling measurement (one iter covers test.len() queries).
    let trees: Vec<&dace_plan::PlanTree> = test.plans.iter().map(|p| &p.tree).collect();
    group.bench_function("DACE(batched-set)", |b| {
        b.iter(|| black_box(dace.predict_batch_ms(&trees)))
    });

    // Baselines (trained briefly; inference cost is architecture-bound).
    let mut mscn = Mscn::new(1);
    mscn.epochs = 1;
    let mut qpp = QppNet::new(2);
    qpp.epochs = 1;
    let mut tpool = TPool::new(3);
    tpool.epochs = 1;
    let mut qf = QueryFormer::new(4);
    qf.epochs = 1;
    let mut zs = ZeroShot::new(5);
    zs.epochs = 1;
    let mut models: Vec<Box<dyn CostEstimator>> = vec![
        Box::new(mscn),
        Box::new(qpp),
        Box::new(tpool),
        Box::new(qf),
        Box::new(zs),
    ];
    for m in &mut models {
        m.fit(&train);
    }
    for m in &models {
        group.bench_with_input(BenchmarkId::new("model", m.name()), m, |b, m| {
            let mut i = 0;
            b.iter(|| {
                let p = &test.plans[i % test.len()];
                i += 1;
                black_box(m.predict_ms(&p.tree));
            })
        });
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let (_, train, _) = corpus();
    let slice = Dataset::from_plans(train.plans[..64.min(train.len())].to_vec());
    let mut group = c.benchmark_group("training_per_64_queries");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);

    // Batched padded-tensor training loop (the production path) vs the
    // per-plan reference loop it replaced — same shuffles, same gradients
    // up to summation order. The reference row additionally pins the seed
    // matmul kernels (`set_reference_kernels`) so it times the *original*
    // configuration: the DACE/DACE(per-plan-seed) ratio is the full
    // batching + kernel speedup this rewrite delivered.
    group.bench_function("DACE", |b| {
        b.iter(|| {
            black_box(
                Trainer::new(TrainConfig {
                    epochs: 1,
                    ..Default::default()
                })
                .fit(&slice)
                .unwrap(),
            );
        })
    });
    // The pre-workspace batched loop: per-epoch re-shuffle + re-pack with
    // allocating kernels, pinned to the PR-1 kernel configuration
    // (`KernelTier::Avx2Baseline`: AVX2 tiles, dot-product matmul_nt,
    // unconditional output memset). The DACE/DACE(repack-baseline) ratio is
    // therefore the full win of this rewrite — workspace reuse +
    // epoch-persistent packing + the AVX-512/nt-packing kernel upgrades —
    // measured in-run rather than against a recorded number. Multi-epoch
    // rows show the packing amortization compounding.
    group.bench_function("DACE(repack-baseline)", |b| {
        dace_nn::set_kernel_tier(dace_nn::KernelTier::Avx2Baseline);
        b.iter(|| {
            black_box(
                Trainer::new(TrainConfig {
                    epochs: 1,
                    ..Default::default()
                })
                .fit_baseline_repack(&slice)
                .unwrap(),
            );
        });
        dace_nn::set_kernel_tier(dace_nn::KernelTier::Auto);
    });
    group.bench_function("DACE(5-epoch)", |b| {
        b.iter(|| {
            black_box(
                Trainer::new(TrainConfig {
                    epochs: 5,
                    ..Default::default()
                })
                .fit(&slice)
                .unwrap(),
            );
        })
    });
    group.bench_function("DACE(repack-baseline-5-epoch)", |b| {
        dace_nn::set_kernel_tier(dace_nn::KernelTier::Avx2Baseline);
        b.iter(|| {
            black_box(
                Trainer::new(TrainConfig {
                    epochs: 5,
                    ..Default::default()
                })
                .fit_baseline_repack(&slice)
                .unwrap(),
            );
        });
        dace_nn::set_kernel_tier(dace_nn::KernelTier::Auto);
    });
    group.bench_function("DACE(per-plan-seed)", |b| {
        dace_nn::set_reference_kernels(true);
        b.iter(|| {
            black_box(
                Trainer::new(TrainConfig {
                    epochs: 1,
                    ..Default::default()
                })
                .fit_per_plan_reference(&slice)
                .unwrap(),
            );
        });
        dace_nn::set_reference_kernels(false);
    });
    group.bench_function("DACE-LoRA(tune)", |b| {
        let mut est = Trainer::new(TrainConfig {
            epochs: 1,
            ..Default::default()
        })
        .fit(&slice)
        .unwrap();
        b.iter(|| est.fine_tune_lora(&slice, 1, 2e-3).unwrap())
    });
    group.bench_function("MSCN", |b| {
        b.iter(|| {
            let mut m = Mscn::new(9);
            m.epochs = 1;
            m.fit(&slice);
            black_box(m.param_count());
        })
    });
    group.bench_function("Zero-Shot", |b| {
        b.iter(|| {
            let mut m = ZeroShot::new(9);
            m.epochs = 1;
            m.fit(&slice);
            black_box(m.param_count());
        })
    });
    group.bench_function("QPPNet", |b| {
        b.iter(|| {
            let mut m = QppNet::new(9);
            m.epochs = 1;
            m.fit(&slice);
            black_box(m.param_count());
        })
    });
    group.bench_function("TPool", |b| {
        b.iter(|| {
            let mut m = TPool::new(9);
            m.epochs = 1;
            m.fit(&slice);
            black_box(m.param_count());
        })
    });
    group.bench_function("QueryFormer", |b| {
        b.iter(|| {
            let mut m = QueryFormer::new(9);
            m.epochs = 1;
            m.fit(&slice);
            black_box(m.param_count());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_training);
criterion_main!(benches);
