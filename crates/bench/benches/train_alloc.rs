//! Allocation-counting training benchmark (not a criterion bench — this is a
//! plain `harness = false` binary so it can install a `#[global_allocator]`).
//!
//! Proves the tentpole claim: after the warm-up epochs grow the workspace to
//! its high-water mark, a steady-state training epoch allocates (near) zero
//! heap bytes, while the pre-workspace loop (per-epoch re-shuffle + re-pack +
//! allocating kernels, preserved as [`Trainer::fit_baseline_repack`])
//! allocates megabytes per epoch. Exits non-zero if the steady state regresses
//! past the committed ceiling or the reduction drops below 90%, so `ci.sh` can
//! use it as a smoke gate. Writes a machine-readable summary to the path given
//! by `--out <path>` (skipped when absent, e.g. under `cargo test --benches`).

use std::sync::Arc;
use std::time::Instant;

use dace_bench::counting_alloc::{self, CountingAlloc};
use dace_bench::synthetic_training_set;
use dace_core::{TrainConfig, Trainer};
use dace_obs::{MemorySink, RunSink};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Committed ceiling on heap bytes a steady-state epoch may allocate. The
/// residual is the small per-batch bookkeeping (`params_mut` pointer `Vec`s
/// for the optimizer step and gradient-norm telemetry); the epoch's tensor
/// work runs entirely in the reused [`dace_core::Workspace`].
const STEADY_EPOCH_ALLOC_CEILING: u64 = 64 * 1024;

/// Minimum fraction of per-epoch bytes the workspace loop must shed relative
/// to the re-packing baseline (the issue's acceptance bar is 0.90).
const MIN_ALLOC_REDUCTION: f64 = 0.90;

const PLANS: usize = 256;
const EPOCHS: usize = 8;
/// Epochs 0–1 grow every scratch buffer to its high-water mark; steady state
/// is everything after.
const WARMUP_EPOCHS: usize = 2;

fn config() -> TrainConfig {
    TrainConfig {
        epochs: EPOCHS,
        ..TrainConfig::default()
    }
}

/// Per-epoch allocation figures for one training run: (steady-state max
/// bytes/epoch, mean steady epoch wall ms).
fn run(fit: impl FnOnce(&Trainer)) -> (u64, f64) {
    let sink = Arc::new(MemorySink::new());
    let trainer = Trainer::with_sink(config(), sink.clone() as Arc<dyn RunSink>);
    fit(&trainer);
    let records: Vec<_> = sink
        .records()
        .into_iter()
        .filter(|r| r.alloc_bytes.is_some())
        .collect();
    assert!(
        records.len() >= EPOCHS,
        "expected >= {EPOCHS} epoch records with alloc_bytes, got {}",
        records.len()
    );
    let steady = &records[WARMUP_EPOCHS..];
    let max_bytes = steady.iter().filter_map(|r| r.alloc_bytes).max().unwrap();
    let mean_ms = steady.iter().map(|r| r.epoch_ms).sum::<f64>() / steady.len() as f64;
    (max_bytes, mean_ms)
}

fn main() {
    let mut out_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_path = args.next();
        }
        // Tolerate whatever else cargo test/bench passes (--bench, filters).
    }

    dace_obs::set_alloc_probe(counting_alloc::bytes_allocated);

    let train = synthetic_training_set(PLANS, 42);

    let (workspace_bytes, workspace_ms) = run(|t| {
        t.fit(&train).unwrap();
    });
    let (repack_bytes, _repack_ms) = run(|t| {
        t.fit_baseline_repack(&train).unwrap();
    });

    let reduction = 1.0 - workspace_bytes as f64 / repack_bytes.max(1) as f64;
    let samples_per_sec = PLANS as f64 / (workspace_ms / 1e3);

    // Single-plan end-to-end forward latency (featurize + workspace forward).
    let est = Trainer::new(config()).fit(&train).unwrap();
    let tree = &train.plans[0].tree;
    let reps = 2000;
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..reps {
        acc += est.predict_ms(tree);
    }
    let single_plan_forward_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    assert!(acc.is_finite());

    println!("steady-state epoch alloc (workspace loop): {workspace_bytes} B");
    println!("steady-state epoch alloc (repack baseline): {repack_bytes} B");
    println!("reduction: {:.2}%", reduction * 100.0);
    println!("training throughput: {samples_per_sec:.0} plans/s");
    println!("single-plan forward: {single_plan_forward_us:.1} µs");

    if let Some(path) = out_path {
        let json = format!(
            "{{\n  \"plans\": {PLANS},\n  \"epochs\": {EPOCHS},\n  \
             \"samples_per_sec\": {samples_per_sec:.1},\n  \
             \"alloc_bytes_per_epoch_workspace\": {workspace_bytes},\n  \
             \"alloc_bytes_per_epoch_repack\": {repack_bytes},\n  \
             \"alloc_reduction\": {reduction:.4},\n  \
             \"alloc_ceiling_bytes\": {STEADY_EPOCH_ALLOC_CEILING},\n  \
             \"single_plan_forward_us\": {single_plan_forward_us:.2}\n}}\n"
        );
        std::fs::write(&path, json).expect("write BENCH_train.json");
        println!("wrote {path}");
    }

    assert!(
        workspace_bytes <= STEADY_EPOCH_ALLOC_CEILING,
        "steady-state epoch allocated {workspace_bytes} B > ceiling {STEADY_EPOCH_ALLOC_CEILING} B"
    );
    assert!(
        reduction >= MIN_ALLOC_REDUCTION,
        "alloc reduction {reduction:.4} < required {MIN_ALLOC_REDUCTION}"
    );
}
