//! Criterion benchmark crate. See `benches/` for the benchmark
//! definitions: `table2_throughput` reproduces Table II, `substrate`
//! covers the optimizer/executor, `nn_kernels` the tensor library.
