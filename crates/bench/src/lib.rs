//! Criterion benchmark crate. See `benches/` for the benchmark
//! definitions: `table2_throughput` reproduces Table II, `substrate`
//! covers the optimizer/executor, `nn_kernels` the tensor library, and
//! `train_alloc` proves the zero-allocation steady state.
//!
//! The library half hosts the benchmark support code: a byte-counting
//! global allocator ([`counting_alloc`]) and the shared synthetic training
//! corpus ([`synthetic_training_set`]).

use dace_plan::{Dataset, LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A byte-counting wrapper around the system allocator, for proving the
/// training loop's steady state stays off the heap.
pub mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static BYTES: AtomicU64 = AtomicU64::new(0);
    static CALLS: AtomicU64 = AtomicU64::new(0);

    /// A [`GlobalAlloc`] that forwards to [`System`] while counting gross
    /// bytes requested (frees are not subtracted; `realloc` counts only the
    /// growth delta). Install per benchmark binary:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: CountingAlloc = CountingAlloc;
    /// dace_obs::set_alloc_probe(counting_alloc::bytes_allocated);
    /// ```
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            CALLS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            if new_size > layout.size() {
                BYTES.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
            }
            CALLS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            CALLS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }
    }

    /// Monotonic gross bytes allocated so far — the shape
    /// `dace_obs::set_alloc_probe` expects.
    pub fn bytes_allocated() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }

    /// Allocator calls (alloc + alloc_zeroed + realloc) so far.
    pub fn calls() -> u64 {
        CALLS.load(Ordering::Relaxed)
    }
}

/// Synthetic learnable dataset (the trainer's test corpus, shared with the
/// allocation benchmark): three-node plans whose latency depends on an
/// operator-specific cost multiplier the model must discover.
pub fn synthetic_training_set(n: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let plans = (0..n)
        .map(|_| {
            let mut b = TreeBuilder::new();
            let scan_cost = rng.gen_range(10.0..10_000.0f64);
            let scan_rows = scan_cost * rng.gen_range(5.0..15.0);
            let use_hash = rng.gen_bool(0.5);
            let scan = {
                let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                node.est_cost = scan_cost;
                node.est_rows = scan_rows;
                node.actual_ms = scan_cost * 0.004;
                node.actual_rows = scan_rows;
                b.leaf(node)
            };
            let scan2 = {
                let mut node = PlanNode::new(NodeType::IndexScan, OpPayload::Other);
                node.est_cost = scan_cost * 0.3;
                node.est_rows = scan_rows * 0.1;
                node.actual_ms = scan_cost * 0.01;
                node.actual_rows = scan_rows * 0.1;
                b.leaf(node)
            };
            let join_ty = if use_hash {
                NodeType::HashJoin
            } else {
                NodeType::NestedLoop
            };
            let mult = if use_hash { 0.002 } else { 0.02 };
            let root = {
                let mut node = PlanNode::new(join_ty, OpPayload::Other);
                node.est_cost = scan_cost * 2.0;
                node.est_rows = scan_rows;
                node.actual_ms = scan_cost * 2.0 * mult + scan_cost * 0.014;
                node.actual_rows = scan_rows;
                b.internal(node, vec![scan, scan2])
            };
            LabeledPlan {
                tree: b.finish(root),
                db_id: 0,
                machine: MachineId::M1,
            }
        })
        .collect();
    Dataset::from_plans(plans)
}
