//! A generated database: schema + columnar data + statistics.

use serde::{Deserialize, Serialize};

use crate::schema::{ColumnId, Schema, TableId};
use crate::stats::{ColumnStats, TableStats};
use crate::suite::DatabaseSpec;

/// Columnar data of one table: `columns[c][r]` is the code of row `r` in
/// column `c` (see crate docs for the code encodings; NULL is
/// [`crate::stats::NULL_CODE`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableData {
    /// One value vector per column.
    pub columns: Vec<Vec<i64>>,
}

impl TableData {
    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }
}

/// A fully materialized synthetic database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    /// The spec this database was generated from.
    pub spec: DatabaseSpec,
    /// The schema.
    pub schema: Schema,
    /// Columnar table data, parallel to `schema.tables`.
    pub tables: Vec<TableData>,
    /// Statistics, parallel to `schema.tables`.
    pub stats: Vec<TableStats>,
}

impl Database {
    /// Suite id of this database.
    #[inline]
    pub fn db_id(&self) -> u16 {
        self.spec.db_id
    }

    /// Data of `table`.
    #[inline]
    pub fn table_data(&self, table: TableId) -> &TableData {
        &self.tables[table.index()]
    }

    /// Statistics of `table`.
    #[inline]
    pub fn table_stats(&self, table: TableId) -> &TableStats {
        &self.stats[table.index()]
    }

    /// Statistics of a column by global id.
    #[inline]
    pub fn column_stats(&self, column: ColumnId) -> &ColumnStats {
        &self.stats[column.table().index()].columns[column.column() as usize]
    }

    /// Column values by global id.
    #[inline]
    pub fn column_data(&self, column: ColumnId) -> &[i64] {
        &self.tables[column.table().index()].columns[column.column() as usize]
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> u64 {
        self.stats.iter().map(|s| s.row_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::generate_database;
    use crate::schema::{ColumnId, TableId};
    use crate::suite::suite_specs;

    #[test]
    fn accessors_are_consistent() {
        let db = generate_database(&suite_specs()[4], 0.01);
        for tid in db.schema.table_ids() {
            let data = db.table_data(tid);
            let stats = db.table_stats(tid);
            assert_eq!(data.rows() as u64, stats.row_count);
            assert_eq!(data.columns.len(), db.schema.table(tid).columns.len());
            assert_eq!(data.columns.len(), stats.columns.len());
        }
        let cid = ColumnId::new(TableId(0), 0);
        assert_eq!(db.column_data(cid).len(), db.table_data(TableId(0)).rows());
        assert!(db.total_rows() > 0);
    }
}
