//! Seeded columnar data generation for a schema.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::database::{Database, TableData};
use crate::stats::{ColumnStats, TableStats, NULL_CODE};
use crate::suite::DatabaseSpec;
use crate::types::Distribution;

/// Generate the full database for `spec` at the given scale factor.
///
/// `scale` multiplies every table's row count (the data-drift experiment,
/// Fig. 7, regenerates the TPCH-like database at growing scales). Generation
/// is deterministic in `(spec.seed, scale)`.
pub fn generate_database(spec: &DatabaseSpec, scale: f64) -> Database {
    assert!(scale > 0.0, "scale must be positive");
    let schema = spec.build_schema();
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x9E37_79B9_7F4A_7C15);

    // Scaled row counts, known up front so FK columns can reference any
    // parent regardless of generation order.
    let rows: Vec<u64> = schema
        .tables
        .iter()
        .map(|t| ((t.base_rows as f64 * scale).round() as u64).max(2))
        .collect();

    let mut tables = Vec::with_capacity(schema.tables.len());
    for (ti, tdef) in schema.tables.iter().enumerate() {
        let n = rows[ti] as usize;
        let mut columns: Vec<Vec<i64>> = Vec::with_capacity(tdef.columns.len());
        for cdef in &tdef.columns {
            let mut col = generate_column(&cdef.distribution, n, &rows, &columns, &mut rng);
            if cdef.null_frac > 0.0 {
                for v in col.iter_mut() {
                    if rng.gen_bool(cdef.null_frac) {
                        *v = NULL_CODE;
                    }
                }
            }
            columns.push(col);
        }
        tables.push(TableData { columns });
    }

    let stats = tables
        .iter()
        .enumerate()
        .map(|(ti, t)| TableStats {
            row_count: rows[ti],
            columns: t
                .columns
                .iter()
                .map(|c| ColumnStats::from_column(c))
                .collect(),
        })
        .collect();

    Database {
        spec: spec.clone(),
        schema,
        tables,
        stats,
    }
}

/// Generate one column of `n` values.
fn generate_column(
    dist: &Distribution,
    n: usize,
    table_rows: &[u64],
    built_columns: &[Vec<i64>],
    rng: &mut SmallRng,
) -> Vec<i64> {
    match *dist {
        Distribution::Serial => (0..n as i64).collect(),
        Distribution::Uniform { lo, hi } => {
            let hi = hi.max(lo);
            (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
        }
        Distribution::Normal { mean, std } => (0..n)
            .map(|_| {
                let z = sample_standard_normal(rng);
                ((mean + std * z) * 100.0).round() as i64
            })
            .collect(),
        Distribution::Zipf { n: nv, s } => {
            let sampler = ZipfSampler::new(nv.max(1), s);
            (0..n).map(|_| sampler.sample(rng)).collect()
        }
        Distribution::ForeignKey { parent_table, s } => {
            let parent_rows = table_rows[parent_table as usize].max(1);
            if s <= 0.0 {
                (0..n)
                    .map(|_| rng.gen_range(0..parent_rows) as i64)
                    .collect()
            } else {
                let sampler = ZipfSampler::new(parent_rows, s);
                (0..n).map(|_| sampler.sample(rng)).collect()
            }
        }
        Distribution::Correlated {
            source_column,
            spread,
        } => {
            let src = &built_columns[source_column as usize];
            (0..n)
                .map(|i| {
                    let base = if src[i] == NULL_CODE { 0 } else { src[i] };
                    base + rng.gen_range(-spread..=spread)
                })
                .collect()
        }
    }
}

/// Box–Muller standard normal sample.
fn sample_standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Inverse-CDF Zipf sampler over values `0..n` (value 0 is the hottest —
/// like low-id rows being the popular entities in real datasets).
///
/// For large `n` the CDF table would be big, so the sampler approximates the
/// Zipf CDF with the continuous bounded-Pareto inverse, which is accurate to
/// within a few percent for s in (0, 2] — more than enough for generating
/// skewed synthetic data.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    /// Exact cumulative weights for small n.
    cdf: Option<Vec<f64>>,
}

impl ZipfSampler {
    /// Sampler over `0..n` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Self {
        let cdf = if n <= 4096 {
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(n as usize);
            for k in 1..=n {
                acc += 1.0 / (k as f64).powf(s);
                cdf.push(acc);
            }
            let total = acc;
            for v in cdf.iter_mut() {
                *v /= total;
            }
            Some(cdf)
        } else {
            None
        };
        ZipfSampler { n, s, cdf }
    }

    /// Draw one value in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> i64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        if let Some(cdf) = &self.cdf {
            let idx = cdf.partition_point(|&c| c < u);
            return idx.min(self.n as usize - 1) as i64;
        }
        // Continuous inverse of the bounded Pareto CDF on [1, n].
        let n = self.n as f64;
        let v = if (self.s - 1.0).abs() < 1e-9 {
            n.powf(u)
        } else {
            let one_s = 1.0 - self.s;
            (u * (n.powf(one_s) - 1.0) + 1.0).powf(1.0 / one_s)
        };
        (v.floor() as i64 - 1).clamp(0, self.n as i64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::suite_specs;

    #[test]
    fn generation_is_deterministic() {
        let spec = &suite_specs()[2];
        let a = generate_database(spec, 0.02);
        let b = generate_database(spec, 0.02);
        assert_eq!(a.tables.len(), b.tables.len());
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.columns, tb.columns);
        }
    }

    #[test]
    fn scale_changes_row_counts() {
        let spec = &suite_specs()[3];
        let small = generate_database(spec, 0.01);
        let large = generate_database(spec, 0.03);
        assert!(large.tables[0].columns[0].len() > small.tables[0].columns[0].len());
    }

    #[test]
    fn fk_values_reference_valid_parent_rows() {
        let spec = &suite_specs()[1];
        let db = generate_database(spec, 0.02);
        for e in &db.schema.fks {
            let parent_rows = db.stats[e.parent.index()].row_count as i64;
            let col = &db.tables[e.child.index()].columns[e.child_column as usize];
            for &v in col.iter().take(500) {
                if v != NULL_CODE {
                    assert!((0..parent_rows).contains(&v), "dangling FK value {v}");
                }
            }
        }
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let sampler = ZipfSampler::new(100, 1.2);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            let v = sampler.sample(&mut rng);
            assert!((0..100).contains(&v));
            counts[v as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        // Hottest value should dominate clearly under s=1.2.
        assert!(counts[0] as f64 > 0.1 * 20_000.0);
    }

    #[test]
    fn large_n_zipf_uses_continuous_approximation() {
        let sampler = ZipfSampler::new(1_000_000, 1.1);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut below_1000 = 0;
        for _ in 0..5_000 {
            let v = sampler.sample(&mut rng);
            assert!((0..1_000_000).contains(&v));
            if v < 1000 {
                below_1000 += 1;
            }
        }
        // Heavy skew: a large share of mass in the first 0.1% of values.
        assert!(below_1000 > 1_000, "got {below_1000}");
    }

    #[test]
    fn serial_pk_is_dense() {
        let spec = &suite_specs()[0];
        let db = generate_database(spec, 0.01);
        for t in &db.tables {
            let pk = &t.columns[0];
            for (i, &v) in pk.iter().enumerate().take(100) {
                assert_eq!(v, i as i64);
            }
        }
    }
}
