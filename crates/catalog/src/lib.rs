#![warn(missing_docs)]
//! Synthetic database suite: schemas, seeded data generation and statistics.
//!
//! The paper evaluates on the Zero-Shot benchmark's 20 real databases (IMDB,
//! TPC-H, …). Those datasets are not available offline, so this crate builds
//! the closest synthetic equivalent: twenty seeded databases
//! ([`suite::suite_specs`]) with diverse schema shapes (star, snowflake,
//! chain), table counts (3–20), row counts, Zipf-skewed columns and
//! foreign-key graphs with variable fan-out. Diversity of schemas and data
//! distributions is exactly what the across-database experiments need —
//! within-database baselines must overfit to one schema while
//! across-database models must learn transferable knowledge.
//!
//! Data is columnar (`Vec<i64>` codes per column — text is dictionary-coded,
//! floats fixed-point, dates day numbers) so the executor in `dace-engine`
//! can evaluate predicates and joins vectorized. Statistics (equi-depth
//! histograms, most-common values, distinct counts) are computed from a
//! bounded *sample* of each column, deliberately reproducing the estimation
//! error a real DBMS inherits from sampled statistics.

mod database;
mod datagen;
mod schema;
mod stats;
pub mod suite;
mod types;

pub use database::{Database, TableData};
pub use datagen::generate_database;
pub use schema::{ColumnDef, ColumnId, FkEdge, Schema, TableDef, TableId};
pub use stats::{ColumnStats, Histogram, TableStats, HISTOGRAM_BUCKETS, MCV_COUNT, NULL_CODE};
pub use suite::{suite_specs, DatabaseSpec, SchemaShape, SUITE_SIZE};
pub use types::{ColumnType, Distribution};
