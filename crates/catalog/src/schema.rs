//! Schema definitions: tables, columns and foreign-key edges.

use serde::{Deserialize, Serialize};

use crate::types::{ColumnType, Distribution};

/// Index of a table within its schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl TableId {
    /// The table index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Database-global column id: `table_id * 64 + column_index`.
///
/// Plans and predicate encodings refer to columns by this id; 64 columns per
/// table is far above anything the generator emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnId(pub u32);

/// Columns-per-table stride used to form global column ids.
pub const COLUMNS_PER_TABLE_STRIDE: u32 = 64;

impl ColumnId {
    /// Compose from table id and column index.
    #[inline]
    pub fn new(table: TableId, column: u32) -> Self {
        debug_assert!(column < COLUMNS_PER_TABLE_STRIDE);
        ColumnId(table.0 * COLUMNS_PER_TABLE_STRIDE + column)
    }

    /// The table this column belongs to.
    #[inline]
    pub fn table(self) -> TableId {
        TableId(self.0 / COLUMNS_PER_TABLE_STRIDE)
    }

    /// The column's index within its table.
    #[inline]
    pub fn column(self) -> u32 {
        self.0 % COLUMNS_PER_TABLE_STRIDE
    }
}

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub col_type: ColumnType,
    /// Generating distribution.
    pub distribution: Distribution,
    /// Fraction of NULLs in `[0, 1)`.
    pub null_frac: f64,
    /// Whether the engine has a B-tree index on this column (primary keys
    /// and foreign keys always do).
    pub indexed: bool,
}

/// Definition of one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Row count at scale factor 1.0.
    pub base_rows: u64,
    /// Column definitions; column 0 is always the serial primary key.
    pub columns: Vec<ColumnDef>,
}

/// A foreign-key edge: `child.column` references `parent`'s primary key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FkEdge {
    /// Referencing table.
    pub child: TableId,
    /// Referencing column index within the child table.
    pub child_column: u32,
    /// Referenced table (its column 0 / primary key).
    pub parent: TableId,
}

/// A database schema: tables plus the FK graph the workload generator walks
/// to produce join queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Schema (database) name.
    pub name: String,
    /// Tables.
    pub tables: Vec<TableDef>,
    /// Foreign-key edges.
    pub fks: Vec<FkEdge>,
}

impl Schema {
    /// Table definition by id.
    #[inline]
    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.index()]
    }

    /// Column definition by global column id.
    #[inline]
    pub fn column(&self, id: ColumnId) -> &ColumnDef {
        &self.table(id.table()).columns[id.column() as usize]
    }

    /// All table ids.
    pub fn table_ids(&self) -> impl Iterator<Item = TableId> {
        (0..self.tables.len() as u32).map(TableId)
    }

    /// FK edges incident to `table` (either direction).
    pub fn fks_of(&self, table: TableId) -> Vec<FkEdge> {
        self.fks
            .iter()
            .filter(|e| e.child == table || e.parent == table)
            .copied()
            .collect()
    }

    /// Total number of columns across all tables.
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Render `CREATE TABLE` DDL for the whole schema (for docs/examples).
    pub fn render_ddl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (ti, t) in self.tables.iter().enumerate() {
            let _ = writeln!(out, "CREATE TABLE {} (", t.name);
            for (ci, c) in t.columns.iter().enumerate() {
                let pk = if ci == 0 { " PRIMARY KEY" } else { "" };
                let comma = if ci + 1 == t.columns.len() { "" } else { "," };
                let _ = writeln!(
                    out,
                    "    {} {}{}{}",
                    c.name,
                    c.col_type.sql_name(),
                    pk,
                    comma
                );
            }
            let _ = writeln!(out, ");");
            for e in self.fks.iter().filter(|e| e.child.index() == ti) {
                let _ = writeln!(
                    out,
                    "ALTER TABLE {} ADD FOREIGN KEY ({}) REFERENCES {} ({});",
                    t.name,
                    t.columns[e.child_column as usize].name,
                    self.table(e.parent).name,
                    self.table(e.parent).columns[0].name,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_id_roundtrip() {
        let id = ColumnId::new(TableId(7), 13);
        assert_eq!(id.table(), TableId(7));
        assert_eq!(id.column(), 13);
    }

    #[test]
    fn ddl_renders_pk_and_fk() {
        let schema = Schema {
            name: "demo".into(),
            tables: vec![
                TableDef {
                    name: "parent".into(),
                    base_rows: 10,
                    columns: vec![ColumnDef {
                        name: "id".into(),
                        col_type: ColumnType::Int,
                        distribution: Distribution::Serial,
                        null_frac: 0.0,
                        indexed: true,
                    }],
                },
                TableDef {
                    name: "child".into(),
                    base_rows: 100,
                    columns: vec![
                        ColumnDef {
                            name: "id".into(),
                            col_type: ColumnType::Int,
                            distribution: Distribution::Serial,
                            null_frac: 0.0,
                            indexed: true,
                        },
                        ColumnDef {
                            name: "parent_id".into(),
                            col_type: ColumnType::Int,
                            distribution: Distribution::ForeignKey {
                                parent_table: 0,
                                s: 0.0,
                            },
                            null_frac: 0.0,
                            indexed: true,
                        },
                    ],
                },
            ],
            fks: vec![FkEdge {
                child: TableId(1),
                child_column: 1,
                parent: TableId(0),
            }],
        };
        let ddl = schema.render_ddl();
        assert!(ddl.contains("CREATE TABLE parent"));
        assert!(ddl.contains("id BIGINT PRIMARY KEY"));
        assert!(ddl.contains("ADD FOREIGN KEY (parent_id) REFERENCES parent (id)"));
        assert_eq!(schema.fks_of(TableId(0)).len(), 1);
        assert_eq!(schema.total_columns(), 3);
    }
}
