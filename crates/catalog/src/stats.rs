//! Table statistics: equi-depth histograms, most-common values, distinct
//! counts — the inputs to the engine's cardinality estimator.
//!
//! Statistics are computed from a bounded sample of each column (like
//! PostgreSQL's `ANALYZE` with `default_statistics_target`), so they carry
//! realistic sampling error on skewed columns.

use serde::{Deserialize, Serialize};

/// Sentinel code representing SQL NULL in columnar storage.
pub const NULL_CODE: i64 = i64::MIN;

/// Number of equi-depth histogram buckets per column.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Number of most-common values tracked per column.
pub const MCV_COUNT: usize = 8;

/// Maximum rows sampled per column when computing statistics.
pub const STATS_SAMPLE_ROWS: usize = 10_000;

/// Equi-depth histogram over non-null, non-MCV values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// `bounds.len() == buckets + 1`; bucket `i` covers `[bounds[i], bounds[i+1]]`
    /// with equal row mass. Empty if the column had no histogram-worthy values.
    pub bounds: Vec<i64>,
}

impl Histogram {
    /// Fraction of values `< v` (exclusive), assuming uniform spread inside
    /// buckets — PostgreSQL's `ineq_histogram_selectivity` logic.
    pub fn fraction_below(&self, v: i64) -> f64 {
        let b = &self.bounds;
        if b.len() < 2 {
            return 0.5;
        }
        let buckets = b.len() - 1;
        if v <= b[0] {
            return 0.0;
        }
        if v > b[buckets] {
            return 1.0;
        }
        // Find the bucket containing v.
        let idx = match b.binary_search(&v) {
            Ok(i) => i.min(buckets - 1),
            Err(i) => i - 1,
        };
        let lo = b[idx];
        let hi = b[idx + 1];
        let within = if hi > lo {
            (v - lo) as f64 / (hi - lo) as f64
        } else {
            0.5
        };
        (idx as f64 + within) / buckets as f64
    }

    /// Quantile `q` in `[0,1]` mapped back to a value (inverse of
    /// [`Histogram::fraction_below`], up to bucket resolution).
    pub fn value_at(&self, q: f64) -> i64 {
        let b = &self.bounds;
        if b.len() < 2 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let buckets = (b.len() - 1) as f64;
        let pos = q * buckets;
        let idx = (pos.floor() as usize).min(b.len() - 2);
        let frac = pos - idx as f64;
        let lo = b[idx] as f64;
        let hi = b[idx + 1] as f64;
        (lo + frac * (hi - lo)).round() as i64
    }
}

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Estimated number of distinct non-null values.
    pub n_distinct: f64,
    /// Fraction of NULLs.
    pub null_frac: f64,
    /// Minimum non-null value (0 if all null).
    pub min: i64,
    /// Maximum non-null value (0 if all null).
    pub max: i64,
    /// Most common values with their frequencies (fraction of all rows).
    pub mcvs: Vec<(i64, f64)>,
    /// Equi-depth histogram over the remaining values.
    pub histogram: Histogram,
}

impl ColumnStats {
    /// Compute statistics from (a sample of) a column.
    pub fn from_column(values: &[i64]) -> ColumnStats {
        // Deterministic stride sample.
        let stride = (values.len() / STATS_SAMPLE_ROWS).max(1);
        let mut sample: Vec<i64> = values.iter().copied().step_by(stride).collect();
        let total = sample.len().max(1) as f64;
        let nulls = sample.iter().filter(|&&v| v == NULL_CODE).count() as f64;
        sample.retain(|&v| v != NULL_CODE);
        if sample.is_empty() {
            return ColumnStats {
                n_distinct: 0.0,
                null_frac: 1.0,
                min: 0,
                max: 0,
                mcvs: Vec::new(),
                histogram: Histogram { bounds: Vec::new() },
            };
        }
        sample.sort_unstable();
        let min = sample[0];
        let max = *sample.last().unwrap();

        // Distinct count and value frequencies from the sorted sample.
        let mut freqs: Vec<(i64, usize)> = Vec::new();
        for &v in &sample {
            match freqs.last_mut() {
                Some((last, count)) if *last == v => *count += 1,
                _ => freqs.push((v, 1)),
            }
        }
        let n_distinct = freqs.len() as f64;

        // MCVs: values noticeably more frequent than average.
        let avg = sample.len() as f64 / n_distinct;
        let mut candidates: Vec<(i64, usize)> = freqs
            .iter()
            .copied()
            .filter(|&(_, c)| (c as f64) > 1.5 * avg && c > 1)
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        candidates.truncate(MCV_COUNT);
        let mcvs: Vec<(i64, f64)> = candidates
            .iter()
            .map(|&(v, c)| (v, c as f64 / total))
            .collect();

        // Histogram over non-MCV values.
        let mcv_set: Vec<i64> = mcvs.iter().map(|&(v, _)| v).collect();
        let rest: Vec<i64> = sample
            .iter()
            .copied()
            .filter(|v| !mcv_set.contains(v))
            .collect();
        let histogram = equi_depth(&rest);

        ColumnStats {
            n_distinct,
            null_frac: nulls / total,
            min,
            max,
            mcvs,
            histogram,
        }
    }

    /// Total row-fraction captured by the MCV list.
    pub fn mcv_frac(&self) -> f64 {
        self.mcvs.iter().map(|&(_, f)| f).sum()
    }

    /// Approximate quantile (rank in `[0,1]`) of `v` within the column,
    /// used to normalize predicate literals for plan encodings.
    pub fn rank_of(&self, v: i64) -> f64 {
        if self.max <= self.min {
            return 0.5;
        }
        if self.histogram.bounds.len() >= 2 {
            self.histogram.fraction_below(v)
        } else {
            ((v - self.min) as f64 / (self.max - self.min) as f64).clamp(0.0, 1.0)
        }
    }

    /// Approximate value at quantile `q` (inverse of [`ColumnStats::rank_of`]).
    pub fn value_at_rank(&self, q: f64) -> i64 {
        if self.histogram.bounds.len() >= 2 {
            self.histogram.value_at(q)
        } else {
            let span = (self.max - self.min) as f64;
            self.min + (q.clamp(0.0, 1.0) * span).round() as i64
        }
    }
}

/// Build an equi-depth histogram over already-filtered values.
fn equi_depth(sorted_like: &[i64]) -> Histogram {
    if sorted_like.len() < 2 {
        return Histogram { bounds: Vec::new() };
    }
    let mut v = sorted_like.to_vec();
    v.sort_unstable();
    let buckets = HISTOGRAM_BUCKETS.min(v.len() - 1).max(1);
    let mut bounds = Vec::with_capacity(buckets + 1);
    for b in 0..=buckets {
        let idx = (b * (v.len() - 1)) / buckets;
        bounds.push(v[idx]);
    }
    Histogram { bounds }
}

/// Statistics of a whole table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Exact row count (a real DBMS keeps `reltuples` close to exact).
    pub row_count: u64,
    /// Per-column statistics, in column order.
    pub columns: Vec<ColumnStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_column_histogram_is_linear() {
        let values: Vec<i64> = (0..10_000).collect();
        let stats = ColumnStats::from_column(&values);
        assert_eq!(stats.min, 0);
        assert!(stats.null_frac.abs() < 1e-9);
        // fraction below the midpoint should be close to 0.5
        let f = stats.histogram.fraction_below(5_000);
        assert!((f - 0.5).abs() < 0.05, "got {f}");
        // rank/value round-trip.
        let v = stats.value_at_rank(0.25);
        assert!((stats.rank_of(v) - 0.25).abs() < 0.05);
    }

    #[test]
    fn skewed_column_yields_mcvs() {
        // 70% of rows are value 7.
        let mut values = vec![7i64; 7_000];
        values.extend(0..3_000);
        let stats = ColumnStats::from_column(&values);
        assert!(!stats.mcvs.is_empty());
        assert_eq!(stats.mcvs[0].0, 7);
        assert!((stats.mcvs[0].1 - 0.7).abs() < 0.05);
    }

    #[test]
    fn null_fraction_counted() {
        let mut values = vec![NULL_CODE; 500];
        values.extend(0..500);
        let stats = ColumnStats::from_column(&values);
        assert!((stats.null_frac - 0.5).abs() < 0.02);
    }

    #[test]
    fn all_null_column() {
        let values = vec![NULL_CODE; 100];
        let stats = ColumnStats::from_column(&values);
        assert_eq!(stats.null_frac, 1.0);
        assert_eq!(stats.n_distinct, 0.0);
    }

    #[test]
    fn fraction_below_is_monotone_and_bounded() {
        let values: Vec<i64> = (0..1000).map(|i| (i * i) % 997).collect();
        let stats = ColumnStats::from_column(&values);
        let mut prev = 0.0;
        for v in (-10..1010).step_by(7) {
            let f = stats.histogram.fraction_below(v);
            assert!((0.0..=1.0).contains(&f));
            assert!(f + 1e-12 >= prev, "not monotone at {v}");
            prev = f;
        }
    }

    #[test]
    fn constant_column() {
        let values = vec![42i64; 1000];
        let stats = ColumnStats::from_column(&values);
        assert_eq!(stats.min, 42);
        assert_eq!(stats.max, 42);
        assert_eq!(stats.n_distinct, 1.0);
        // rank_of degrades gracefully.
        assert_eq!(stats.rank_of(42), 0.5);
    }
}
