//! The 20-database synthetic suite standing in for the Zero-Shot benchmark.
//!
//! Each [`DatabaseSpec`] deterministically expands (via its seed) into a
//! [`Schema`] with a distinct shape, size and data-distribution mix. The
//! names echo the Zero-Shot suite's databases to keep the experiment tables
//! readable; the content is synthetic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::schema::{ColumnDef, FkEdge, Schema, TableDef, TableId};
use crate::types::{ColumnType, Distribution};

/// Number of databases in the suite (the paper's benchmark has 20).
pub const SUITE_SIZE: usize = 20;

/// Topology of a schema's foreign-key graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemaShape {
    /// One large fact table referencing every dimension table.
    Star,
    /// Fact → dimensions → sub-dimensions (two-level tree).
    Snowflake,
    /// A linear chain `t0 ← t1 ← … ← tn`.
    Chain,
    /// A random FK tree with a few extra cross edges.
    Mixed,
}

/// Parameters from which one synthetic database is generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatabaseSpec {
    /// Database name (IMDB-like, TPCH-like, …).
    pub name: String,
    /// Suite index, doubles as the `db_id` on labeled plans.
    pub db_id: u16,
    /// RNG seed for schema and data generation.
    pub seed: u64,
    /// FK-graph topology.
    pub shape: SchemaShape,
    /// Number of tables.
    pub n_tables: u32,
    /// Rows of the largest (fact) table at scale 1.0.
    pub fact_rows: u64,
    /// Rows of dimension tables at scale 1.0 (upper bound; the generator
    /// varies per table).
    pub dim_rows: u64,
    /// Zipf skew applied to categorical and FK columns (0 = uniform).
    pub skew: f64,
    /// Probability that an attribute column is correlated with another.
    pub correlation: f64,
    /// Attribute columns per table, in `attr_cols_min..=attr_cols_max`.
    pub attr_cols_min: u32,
    /// See `attr_cols_min`.
    pub attr_cols_max: u32,
}

/// The index of the IMDB-like database within [`suite_specs`], the database
/// the paper's workload-3 experiments hold out.
pub const IMDB_LIKE_DB: u16 = 0;

/// The index of the TPCH-like database, used for the data-drift experiment.
pub const TPCH_LIKE_DB: u16 = 1;

/// The full 20-database suite. Deterministic: the same specs every call.
pub fn suite_specs() -> Vec<DatabaseSpec> {
    // (name, shape, n_tables, fact_rows, dim_rows, skew, correlation)
    let presets: [(&str, SchemaShape, u32, u64, u64, f64, f64); SUITE_SIZE] = [
        (
            "imdb_like",
            SchemaShape::Snowflake,
            12,
            40_000,
            6_000,
            1.05,
            0.30,
        ),
        ("tpch_like", SchemaShape::Star, 8, 30_000, 4_000, 0.60, 0.20),
        (
            "accidents_like",
            SchemaShape::Star,
            4,
            20_000,
            2_500,
            0.90,
            0.35,
        ),
        (
            "airline_like",
            SchemaShape::Star,
            9,
            25_000,
            3_000,
            0.70,
            0.25,
        ),
        (
            "baseball_like",
            SchemaShape::Mixed,
            15,
            15_000,
            2_000,
            0.85,
            0.30,
        ),
        (
            "basketball_like",
            SchemaShape::Mixed,
            9,
            12_000,
            1_500,
            0.80,
            0.25,
        ),
        (
            "carcinogenesis_like",
            SchemaShape::Chain,
            6,
            8_000,
            2_000,
            0.50,
            0.15,
        ),
        (
            "consumer_like",
            SchemaShape::Star,
            3,
            18_000,
            1_000,
            1.10,
            0.40,
        ),
        (
            "credit_like",
            SchemaShape::Snowflake,
            8,
            22_000,
            2_500,
            0.75,
            0.20,
        ),
        (
            "employee_like",
            SchemaShape::Chain,
            6,
            16_000,
            1_200,
            0.40,
            0.10,
        ),
        (
            "financial_like",
            SchemaShape::Snowflake,
            8,
            26_000,
            3_500,
            0.95,
            0.30,
        ),
        ("fhnk_like", SchemaShape::Star, 3, 24_000, 1_800, 0.65, 0.20),
        (
            "geneea_like",
            SchemaShape::Mixed,
            17,
            14_000,
            1_600,
            0.88,
            0.35,
        ),
        (
            "genome_like",
            SchemaShape::Chain,
            6,
            30_000,
            5_000,
            0.55,
            0.15,
        ),
        (
            "hepatitis_like",
            SchemaShape::Star,
            7,
            9_000,
            900,
            0.70,
            0.25,
        ),
        (
            "movielens_like",
            SchemaShape::Snowflake,
            7,
            35_000,
            4_500,
            1.15,
            0.40,
        ),
        (
            "seznam_like",
            SchemaShape::Star,
            4,
            28_000,
            2_200,
            1.00,
            0.30,
        ),
        ("ssb_like", SchemaShape::Star, 5, 32_000, 3_800, 0.45, 0.15),
        (
            "tournament_like",
            SchemaShape::Mixed,
            10,
            11_000,
            1_400,
            0.78,
            0.22,
        ),
        (
            "walmart_like",
            SchemaShape::Snowflake,
            6,
            27_000,
            3_200,
            1.08,
            0.38,
        ),
    ];
    presets
        .iter()
        .enumerate()
        .map(
            |(i, &(name, shape, n_tables, fact_rows, dim_rows, skew, correlation))| DatabaseSpec {
                name: name.to_string(),
                db_id: i as u16,
                seed: 0xDACE_0000 + i as u64,
                shape,
                n_tables,
                fact_rows,
                dim_rows,
                skew,
                correlation,
                attr_cols_min: 2,
                attr_cols_max: 6,
            },
        )
        .collect()
}

impl DatabaseSpec {
    /// Expand the spec into a concrete [`Schema`].
    ///
    /// Table 0 is always the largest ("fact") table. Every table gets a
    /// serial primary key as column 0, FK columns as dictated by the shape,
    /// and a seeded mix of attribute columns.
    pub fn build_schema(&self) -> Schema {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.n_tables.max(2);
        let fk_targets = self.fk_parents(n, &mut rng);

        let mut tables = Vec::with_capacity(n as usize);
        let mut fks = Vec::new();
        for t in 0..n {
            let name = format!("{}_{}", table_basename(&mut rng), t);
            let base_rows = if t == 0 {
                self.fact_rows
            } else {
                // Dimensions vary from a tenth of dim_rows up to dim_rows.
                rng.gen_range(self.dim_rows / 10 + 1..=self.dim_rows)
            };
            let mut columns = vec![ColumnDef {
                name: "id".into(),
                col_type: ColumnType::Int,
                distribution: Distribution::Serial,
                null_frac: 0.0,
                indexed: true,
            }];
            // FK columns.
            for &parent in &fk_targets[t as usize] {
                let parent_name = format!("t{parent}_id");
                fks.push(FkEdge {
                    child: TableId(t),
                    child_column: columns.len() as u32,
                    parent: TableId(parent),
                });
                columns.push(ColumnDef {
                    name: parent_name,
                    col_type: ColumnType::Int,
                    distribution: Distribution::ForeignKey {
                        parent_table: parent,
                        s: if rng.gen_bool(0.5) {
                            (self.skew * 0.6).min(0.85)
                        } else {
                            0.0
                        },
                    },
                    null_frac: 0.0,
                    indexed: true,
                });
            }
            // Attribute columns.
            let n_attrs = rng.gen_range(self.attr_cols_min..=self.attr_cols_max);
            for a in 0..n_attrs {
                let source_column = if columns.len() > 1 && rng.gen_bool(self.correlation) {
                    Some(rng.gen_range(1..columns.len()) as u32)
                } else {
                    None
                };
                columns.push(self.attr_column(a, source_column, base_rows, &mut rng));
            }
            tables.push(TableDef {
                name,
                base_rows,
                columns,
            });
        }
        Schema {
            name: self.name.clone(),
            tables,
            fks,
        }
    }

    /// FK parents of each table according to the shape.
    fn fk_parents(&self, n: u32, rng: &mut SmallRng) -> Vec<Vec<u32>> {
        let mut parents = vec![Vec::new(); n as usize];
        match self.shape {
            SchemaShape::Star => {
                // Fact (0) references every dimension.
                for d in 1..n {
                    parents[0].push(d);
                }
            }
            SchemaShape::Snowflake => {
                // First layer: roughly half the tables are dimensions of the
                // fact; the rest hang off a random first-layer dimension.
                let first_layer = (n - 1).div_ceil(2).max(1);
                for d in 1..=first_layer {
                    parents[0].push(d);
                }
                for d in first_layer + 1..n {
                    let parent = rng.gen_range(1..=first_layer);
                    parents[d as usize].push(parent);
                }
            }
            SchemaShape::Chain => {
                for t in 0..n - 1 {
                    parents[t as usize].push(t + 1);
                }
            }
            SchemaShape::Mixed => {
                // Random tree rooted at 0 (each table references a random
                // earlier table — child holds the FK), plus a couple of
                // extra cross edges on the fact table.
                for t in 1..n {
                    let target = rng.gen_range(0..t);
                    // Edge direction: the *larger* table holds the FK; table
                    // 0 is largest, so reference from the smaller-indexed
                    // side toward the larger-indexed side half the time.
                    if rng.gen_bool(0.5) {
                        parents[t as usize].push(target);
                    } else {
                        parents[target as usize].push(t);
                    }
                }
            }
        }
        parents
    }

    /// One seeded attribute column.
    fn attr_column(
        &self,
        idx: u32,
        source_column: Option<u32>,
        base_rows: u64,
        rng: &mut SmallRng,
    ) -> ColumnDef {
        if let Some(source_column) = source_column {
            return ColumnDef {
                name: format!("attr{idx}_corr"),
                col_type: ColumnType::Int,
                distribution: Distribution::Correlated {
                    source_column,
                    spread: rng.gen_range(1..50),
                },
                null_frac: 0.0,
                indexed: false,
            };
        }
        let choice = rng.gen_range(0..5u32);
        let (col_type, distribution, name) = match choice {
            0 => (
                ColumnType::Int,
                Distribution::Uniform {
                    lo: 0,
                    hi: rng.gen_range(10..100_000),
                },
                format!("attr{idx}_num"),
            ),
            1 => (
                ColumnType::Text,
                Distribution::Zipf {
                    n: rng.gen_range(5..2_000),
                    s: self.skew,
                },
                format!("attr{idx}_cat"),
            ),
            2 => (
                ColumnType::Float,
                Distribution::Normal {
                    mean: rng.gen_range(0.0..1_000.0),
                    std: rng.gen_range(1.0..200.0),
                },
                format!("attr{idx}_val"),
            ),
            3 => (
                ColumnType::Date,
                Distribution::Uniform { lo: 0, hi: 9_000 },
                format!("attr{idx}_date"),
            ),
            _ => (
                ColumnType::Int,
                Distribution::Zipf {
                    n: rng.gen_range(2..(base_rows / 2).max(3)),
                    s: self.skew * 0.8,
                },
                format!("attr{idx}_code"),
            ),
        };
        ColumnDef {
            name,
            col_type,
            distribution,
            null_frac: if rng.gen_bool(0.3) {
                rng.gen_range(0.0..0.15)
            } else {
                0.0
            },
            indexed: rng.gen_bool(0.25),
        }
    }
}

fn table_basename(rng: &mut SmallRng) -> &'static str {
    const NAMES: [&str; 16] = [
        "orders", "items", "events", "users", "title", "cast", "company", "keyword", "region",
        "nation", "supplier", "part", "lineage", "games", "players", "votes",
    ];
    NAMES[rng.gen_range(0..NAMES.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_distinct_databases() {
        let specs = suite_specs();
        assert_eq!(specs.len(), SUITE_SIZE);
        let mut names: Vec<_> = specs.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), SUITE_SIZE);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.db_id, i as u16);
        }
    }

    #[test]
    fn schemas_are_deterministic() {
        let spec = &suite_specs()[0];
        let a = spec.build_schema();
        let b = spec.build_schema();
        assert_eq!(a, b);
    }

    #[test]
    fn every_schema_is_well_formed() {
        for spec in suite_specs() {
            let schema = spec.build_schema();
            assert_eq!(schema.tables.len(), spec.n_tables as usize);
            // Every FK edge points at valid tables/columns and the child
            // column really is an FK distribution onto the right parent.
            for e in &schema.fks {
                let child = schema.table(e.child);
                let col = &child.columns[e.child_column as usize];
                match col.distribution {
                    Distribution::ForeignKey { parent_table, .. } => {
                        assert_eq!(parent_table, e.parent.0);
                    }
                    ref other => panic!("FK edge onto non-FK column: {other:?}"),
                }
            }
            // Column 0 of every table is the serial PK.
            for t in &schema.tables {
                assert_eq!(t.columns[0].distribution, Distribution::Serial);
                assert!(t.base_rows > 0);
                assert!(t.columns.len() >= 2, "table with no attributes");
            }
            // The FK graph must connect at least two tables so joins exist.
            assert!(!schema.fks.is_empty(), "{}: no FK edges", schema.name);
        }
    }

    #[test]
    fn star_schema_fact_references_all_dims() {
        let spec = suite_specs()
            .into_iter()
            .find(|s| s.shape == SchemaShape::Star)
            .unwrap();
        let schema = spec.build_schema();
        let fact_fks = schema.fks.iter().filter(|e| e.child == TableId(0)).count();
        assert_eq!(fact_fks, spec.n_tables as usize - 1);
    }
}
