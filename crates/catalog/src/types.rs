//! Column types and value distributions for the data generator.

use serde::{Deserialize, Serialize};

/// Logical SQL type of a column.
///
/// All values are physically stored as `i64` codes (see the crate docs); the
/// logical type only affects SQL rendering and which predicates the workload
/// generator emits (e.g. `LIKE` only on text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// Fixed-point decimal, code = value * 100.
    Float,
    /// Dictionary-coded string, code = dictionary id.
    Text,
    /// Days since 2000-01-01.
    Date,
    /// 0 / 1.
    Bool,
}

impl ColumnType {
    /// SQL type name for DDL rendering.
    pub fn sql_name(self) -> &'static str {
        match self {
            ColumnType::Int => "BIGINT",
            ColumnType::Float => "NUMERIC(18,2)",
            ColumnType::Text => "TEXT",
            ColumnType::Date => "DATE",
            ColumnType::Bool => "BOOLEAN",
        }
    }
}

/// Value distribution a generated column is drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform integers in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Zipf over `n` distinct values with skew `s` (s = 0 is uniform;
    /// s around 1 is heavily skewed, like real-world categorical data).
    Zipf {
        /// Number of distinct values.
        n: u64,
        /// Skew exponent.
        s: f64,
    },
    /// Rounded normal with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Dense primary key: row i gets value i.
    Serial,
    /// Foreign key into another table's serial primary key, with Zipf skew
    /// `s` over the parent keys (s = 0 gives uniform fan-out).
    ForeignKey {
        /// Index of the parent table within the schema.
        parent_table: u32,
        /// Fan-out skew.
        s: f64,
    },
    /// Value correlated with another column of the same table:
    /// `v = other + noise`, noise ~ Uniform[-spread, spread]. Correlated
    /// columns are what break the optimizer's independence assumption and
    /// create realistic cardinality estimation errors.
    Correlated {
        /// Index of the source column within the table.
        source_column: u32,
        /// Half-width of the additive uniform noise.
        spread: i64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_names() {
        assert_eq!(ColumnType::Int.sql_name(), "BIGINT");
        assert_eq!(ColumnType::Text.sql_name(), "TEXT");
    }

    #[test]
    fn distributions_serialize_roundtrip() {
        let d = Distribution::Zipf { n: 100, s: 1.1 };
        let json = serde_json::to_string(&d).unwrap();
        let back: Distribution = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
