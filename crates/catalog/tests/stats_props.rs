//! Property tests for statistics: histograms, MCVs and rank mappings must
//! behave for arbitrary value distributions.

use dace_catalog::{ColumnStats, NULL_CODE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fraction_below_is_monotone_and_bounded(
        values in proptest::collection::vec(-10_000i64..10_000, 3..2_000),
        probes in proptest::collection::vec(-12_000i64..12_000, 1..20),
    ) {
        let stats = ColumnStats::from_column(&values);
        let mut sorted_probes = probes;
        sorted_probes.sort_unstable();
        let mut prev = 0.0f64;
        for &p in &sorted_probes {
            let f = stats.histogram.fraction_below(p);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f + 1e-9 >= prev, "monotonicity violated");
            prev = f;
        }
    }

    #[test]
    fn mcv_frequencies_are_a_subdistribution(
        values in proptest::collection::vec(0i64..50, 10..3_000)
    ) {
        let stats = ColumnStats::from_column(&values);
        let total = stats.mcv_frac();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&total));
        for &(_, f) in &stats.mcvs {
            prop_assert!(f > 0.0 && f <= 1.0);
        }
        // MCVs are distinct values.
        let mut vals: Vec<i64> = stats.mcvs.iter().map(|&(v, _)| v).collect();
        vals.sort_unstable();
        vals.dedup();
        prop_assert_eq!(vals.len(), stats.mcvs.len());
    }

    #[test]
    fn rank_and_value_are_rough_inverses(
        values in proptest::collection::vec(-1_000_000i64..1_000_000, 50..2_000),
        q in 0.05f64..0.95,
    ) {
        let stats = ColumnStats::from_column(&values);
        let v = stats.value_at_rank(q);
        let back = stats.rank_of(v);
        // Histogram resolution bounds the roundtrip error.
        prop_assert!((back - q).abs() < 0.25, "q={q} v={v} back={back}");
    }

    #[test]
    fn null_fraction_is_counted(
        n_null in 0usize..500,
        n_val in 1usize..500,
    ) {
        let mut values = vec![NULL_CODE; n_null];
        values.extend((0..n_val as i64).map(|i| i * 3));
        let stats = ColumnStats::from_column(&values);
        let expected = n_null as f64 / (n_null + n_val) as f64;
        prop_assert!((stats.null_frac - expected).abs() < 0.05);
        prop_assert!(stats.n_distinct >= 1.0);
    }

    #[test]
    fn min_max_bound_the_domain(values in proptest::collection::vec(-5_000i64..5_000, 1..1_000)) {
        let stats = ColumnStats::from_column(&values);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert!(stats.min >= lo);
        prop_assert!(stats.max <= hi);
        // Sampling strides can miss extremes but never invent new ones.
        prop_assert!(stats.min <= stats.max);
    }
}
