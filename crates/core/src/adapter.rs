//! Portable LoRA adapters — the hand-off unit between fine-tuning and
//! serving.
//!
//! [`DaceEstimator::fine_tune_lora`] trains only the MLP adapters
//! `ΔW = B·A` (Eq. 8); everything a deployment needs to specialize the
//! shared base model to one database is those six small matrices. A
//! [`LoraAdapter`] captures them (~25% of the base parameter count, a few
//! hundred KB serialized) so a registry can hot-swap a freshly tuned
//! adapter under live traffic without re-shipping the base model.
//!
//! [`DaceEstimator::fine_tune_lora`]: crate::DaceEstimator::fine_tune_lora

use dace_nn::Tensor2;
use serde::{Deserialize, Serialize};

/// The adapter weights of one [`LoraLinear`] layer: the down-projection `B`
/// (`in × r`) and up-projection `A` (`r × out`).
///
/// [`LoraLinear`]: dace_nn::LoraLinear
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoraLayerWeights {
    /// Down-projection `B`, `in × r`.
    pub b: Tensor2,
    /// Up-projection `A`, `r × out`.
    pub a: Tensor2,
}

/// The complete fine-tuned state of a DACE model: one `(B, A)` pair per MLP
/// layer, in layer order `l1, l2, l3`. Extract with
/// [`DaceEstimator::extract_adapter`], install with
/// [`DaceEstimator::with_adapter`].
///
/// [`DaceEstimator::extract_adapter`]: crate::DaceEstimator::extract_adapter
/// [`DaceEstimator::with_adapter`]: crate::DaceEstimator::with_adapter
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoraAdapter {
    /// Per-layer adapter weights (`l1`, `l2`, `l3`).
    pub layers: Vec<LoraLayerWeights>,
}

impl LoraAdapter {
    /// Total scalar parameters across all layers.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.b.len() + l.a.len()).sum()
    }

    /// Serialize to JSON (the registry hand-off format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("adapter serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<LoraAdapter, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Installing an adapter failed: the weights do not fit the target model's
/// layer shapes (wrong rank or layer widths). The model is left untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdapterError {
    /// What mismatched, with the offending and expected shapes.
    pub reason: String,
}

impl std::fmt::Display for AdapterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "incompatible LoRA adapter: {}", self.reason)
    }
}

impl std::error::Error for AdapterError {}
