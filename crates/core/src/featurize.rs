//! Plan featurization (the paper's Sec. IV-B encoder).
//!
//! Per node: 16-way one-hot of the operator type, then robust-scaled
//! `ln(1 + est_cost)` and `ln(1 + est_cardinality)` — nothing else. DACE
//! deliberately ignores predicates, tables and literals (Insight I): the
//! model must work on databases it has never seen.

use dace_nn::{RobustScaler, Tensor2, MASK_NEG};
use dace_plan::{Dataset, PlanTree, NODE_TYPE_COUNT};
use serde::{Deserialize, Serialize};

/// Node encoding width: 16 one-hot + scaled cost + scaled cardinality.
pub const FEATURE_DIM: usize = NODE_TYPE_COUNT + 2;

/// Featurization variants used by the ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FeatureConfig {
    /// Use the *actual* cardinality instead of the optimizer estimate —
    /// the DACE-A upper-bound variant of Fig. 12.
    pub use_actual_cardinality: bool,
    /// Disable the tree-structured attention mask (DACE w/o TA, Fig. 10):
    /// every node attends to every node.
    pub disable_tree_attention: bool,
}

/// Featurized plan, ready for the model.
#[derive(Debug, Clone)]
pub struct PlanFeatures {
    /// Node encodings in DFS order, `n × FEATURE_DIM`.
    pub x: Tensor2,
    /// Tree-structured attention mask (`n × n`, row-major): node `i` may
    /// attend to node `j` iff `i` is an ancestor-or-self of `j`.
    pub mask: Vec<bool>,
    /// Node heights in DFS order (root = 0).
    pub heights: Vec<u32>,
    /// Training target per node: `ln(actual_ms)` of the sub-plan.
    pub targets: Vec<f32>,
}

/// Latency floor before the log transform (sub-microsecond labels are
/// measurement noise).
const MS_FLOOR: f64 = 1e-4;

/// Latency ceiling in log-space for [`Featurizer::to_ms`]: `e^20` ms is
/// ≈ 135 hours, far beyond any real query, so clamping here only affects
/// degenerate (overflowed) model outputs.
const MAX_LOG_MS: f64 = 20.0;

/// Quantization resolution of [`Featurizer::fingerprint`]: log cost and log
/// cardinality are rounded to this many steps per nat before hashing, so
/// plans whose estimates differ by less than ~1/64 nat (~1.6%) share a
/// fingerprint — far finer than the model can distinguish.
const FINGERPRINT_STEPS_PER_NAT: f64 = 64.0;

/// `ln(1 + x)` with hostile inputs neutralized: NaN, ±∞ and values below
/// `-1` (whose log1p is undefined) encode as `0.0` — the same feature a
/// zero-cost node produces — instead of poisoning the whole batch tensor
/// with NaNs. Finite in-domain values are untouched (bit-identical to the
/// plain transform), so sanitization is a no-op for every plan a real
/// optimizer emits; the serving layer additionally *rejects* such plans up
/// front via `dace_plan::validate_plan`, making this the defense-in-depth
/// layer for callers that skip validation.
#[inline]
fn safe_log1p(x: f64) -> f64 {
    if x.is_finite() && x > -1.0 {
        (1.0 + x).ln()
    } else {
        0.0
    }
}

/// A mini-batch of featurized plans packed into one padded tensor, ready
/// for a single block-diagonal forward/backward pass.
///
/// Layout: plan `b` occupies rows `[b·n_max, (b+1)·n_max)` of `x`; its
/// `lens[b]` real nodes come first (DFS order) and the remaining rows are
/// zero padding. `bias` holds one `n_max × n_max` additive score matrix per
/// plan, concatenated: `0.0` where the tree mask allows attention,
/// [`MASK_NEG`] where it forbids it, and `-∞` wherever a padding row or
/// column is involved — so padding rows softmax to all-zero and contribute
/// exactly zero gradient. `targets` and `heights` align with `x`'s rows
/// (zeros at padding).
#[derive(Debug, Clone)]
pub struct PackedBatch {
    /// Packed node features, `(count · n_max) × FEATURE_DIM`.
    pub x: Tensor2,
    /// Compact node features: the same plans concatenated *without* padding
    /// rows (`Σ lens[b] × FEATURE_DIM`), plan `b`'s rows contiguous in order.
    /// This is the layout the workspace forward/backward passes consume —
    /// packing it once here is what lets the epoch loop skip the per-batch
    /// gather entirely.
    pub xc: Tensor2,
    /// Padded rows per plan slot.
    pub n_max: usize,
    /// Number of plans packed.
    pub count: usize,
    /// Real node count of each plan.
    pub lens: Vec<usize>,
    /// Concatenated per-plan additive attention biases (`count · n_max²`).
    pub bias: Vec<f32>,
    /// Per-row training targets (`ln` ms; `0.0` at padding rows).
    pub targets: Vec<f32>,
    /// Per-row node heights (`0` at padding rows).
    pub heights: Vec<u32>,
}

impl PackedBatch {
    /// Pack a mini-batch, padding every plan to the batch's largest plan.
    /// An empty batch is a typed [`TrainError::EmptyDataset`], not a panic:
    /// automated retrain paths chunk whatever a feedback window drained, and
    /// a degenerate window must not kill the trainer thread.
    ///
    /// [`TrainError::EmptyDataset`]: crate::TrainError::EmptyDataset
    pub fn pack(plans: &[&PlanFeatures]) -> Result<PackedBatch, crate::trainer::TrainError> {
        if plans.is_empty() {
            return Err(crate::trainer::TrainError::EmptyDataset);
        }
        let n_max = plans.iter().map(|p| p.x.rows()).max().unwrap();
        let count = plans.len();
        let total: usize = plans.iter().map(|p| p.x.rows()).sum();
        let mut x = Tensor2::zeros(count * n_max, FEATURE_DIM);
        let mut xc = Tensor2::zeros(total, FEATURE_DIM);
        let mut xc_row = 0;
        let mut bias = vec![f32::NEG_INFINITY; count * n_max * n_max];
        let mut targets = vec![0.0f32; count * n_max];
        let mut heights = vec![0u32; count * n_max];
        let mut lens = Vec::with_capacity(count);
        for (b, p) in plans.iter().enumerate() {
            let n = p.x.rows();
            lens.push(n);
            x.set_row_block(b * n_max, &p.x);
            xc.set_row_block(xc_row, &p.x);
            xc_row += n;
            let bias_b = &mut bias[b * n_max * n_max..(b + 1) * n_max * n_max];
            for i in 0..n {
                for j in 0..n {
                    bias_b[i * n_max + j] = if p.mask[i * n + j] { 0.0 } else { MASK_NEG };
                }
            }
            targets[b * n_max..b * n_max + n].copy_from_slice(&p.targets);
            heights[b * n_max..b * n_max + n].copy_from_slice(&p.heights);
        }
        Ok(PackedBatch {
            x,
            xc,
            n_max,
            count,
            lens,
            bias,
            targets,
            heights,
        })
    }

    /// Total packed rows (`count · n_max`).
    pub fn rows(&self) -> usize {
        self.count * self.n_max
    }
}

/// Fitted featurizer: the robust scalers are part of the pre-trained model
/// and travel with it to unseen databases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Featurizer {
    /// Scaler over `ln(1 + est_cost)`.
    pub cost_scaler: RobustScaler,
    /// Scaler over `ln(1 + est_rows)`.
    pub card_scaler: RobustScaler,
    /// Variant flags.
    pub config: FeatureConfig,
}

impl Featurizer {
    /// Fit scalers over every node of every training plan.
    pub fn fit(train: &Dataset, config: FeatureConfig) -> Featurizer {
        let mut costs = Vec::new();
        let mut cards = Vec::new();
        for plan in &train.plans {
            for id in plan.tree.ids() {
                let node = plan.tree.node(id);
                costs.push(safe_log1p(node.est_cost));
                let card = if config.use_actual_cardinality {
                    node.actual_rows
                } else {
                    node.est_rows
                };
                cards.push(safe_log1p(card));
            }
        }
        Featurizer {
            cost_scaler: RobustScaler::fit(&costs),
            card_scaler: RobustScaler::fit(&cards),
            config,
        }
    }

    /// Featurize one plan (targets come from the plan's actual labels; they
    /// are zeros for unlabeled inference plans).
    pub fn encode(&self, tree: &PlanTree) -> PlanFeatures {
        let order = tree.dfs();
        let n = order.len();
        let mut x = Tensor2::zeros(n, FEATURE_DIM);
        let mut targets = Vec::with_capacity(n);
        for (i, &id) in order.iter().enumerate() {
            let node = tree.node(id);
            let row = x.row_mut(i);
            row[node.node_type.one_hot_index()] = 1.0;
            row[NODE_TYPE_COUNT] = self.cost_scaler.transform(safe_log1p(node.est_cost)) as f32;
            let card = if self.config.use_actual_cardinality {
                node.actual_rows
            } else {
                node.est_rows
            };
            row[NODE_TYPE_COUNT + 1] = self.card_scaler.transform(safe_log1p(card)) as f32;
            targets.push(node.actual_ms.max(MS_FLOOR).ln() as f32);
        }
        let mask = if self.config.disable_tree_attention {
            vec![true; n * n]
        } else {
            tree.ancestor_matrix()
        };
        PlanFeatures {
            x,
            mask,
            heights: tree.heights(),
            targets,
        }
    }

    /// Structural fingerprint of a plan *under this featurizer* — the
    /// serve-path featurization-cache key.
    ///
    /// Hashes (FNV-1a, 64-bit) the featurizer identity (scaler parameters +
    /// config flags) and, per node in DFS order, the operator type, child
    /// count (preorder + child counts uniquely determine the tree shape,
    /// hence the attention mask) and the log cost/cardinality quantized to
    /// [`FINGERPRINT_STEPS_PER_NAT`] steps per nat (~1.6% resolution).
    /// Plans within a quantization cell share a cache line by design; the
    /// scaled features differ by far less than model noise at that
    /// granularity. Including the scaler parameters means a base-model swap
    /// with refitted scalers can never serve stale cached features.
    pub fn fingerprint(&self, tree: &PlanTree) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, v: u64) {
            *h ^= v;
            *h = h.wrapping_mul(FNV_PRIME);
        }
        let quant = |x: f64| -> u64 { ((x * FINGERPRINT_STEPS_PER_NAT).round() as i64) as u64 };
        let mut h = FNV_OFFSET;
        mix(&mut h, self.cost_scaler.median.to_bits());
        mix(&mut h, self.cost_scaler.iqr.to_bits());
        mix(&mut h, self.card_scaler.median.to_bits());
        mix(&mut h, self.card_scaler.iqr.to_bits());
        mix(
            &mut h,
            (self.config.use_actual_cardinality as u64) << 1
                | self.config.disable_tree_attention as u64,
        );
        for &id in &tree.dfs() {
            let node = tree.node(id);
            mix(&mut h, node.node_type.one_hot_index() as u64);
            mix(&mut h, node.children.len() as u64);
            mix(&mut h, quant(safe_log1p(node.est_cost)));
            let card = if self.config.use_actual_cardinality {
                node.actual_rows
            } else {
                node.est_rows
            };
            mix(&mut h, quant(safe_log1p(card)));
        }
        h
    }

    /// Convert a model output (log-ms) back to milliseconds.
    ///
    /// Degenerate logits are sanitized rather than propagated: NaN maps to
    /// the measurement floor, and the log-value is clamped to
    /// `[ln(MS_FLOOR), MAX_LOG_MS]` so the result is always finite and
    /// positive even for ±∞ inputs.
    #[inline]
    pub fn to_ms(log_ms: f32) -> f64 {
        if log_ms.is_nan() {
            return MS_FLOOR;
        }
        (log_ms as f64).clamp(MS_FLOOR.ln(), MAX_LOG_MS).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_plan::{LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};

    fn toy_plan(cost: f64, rows: f64, ms: f64) -> LabeledPlan {
        let mut b = TreeBuilder::new();
        let scan = {
            let mut n = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
            n.est_cost = cost / 2.0;
            n.est_rows = rows;
            n.actual_ms = ms / 2.0;
            n.actual_rows = rows * 1.5;
            b.leaf(n)
        };
        let root = {
            let mut n = PlanNode::new(NodeType::GroupAggregate, OpPayload::Other);
            n.est_cost = cost;
            n.est_rows = 1.0;
            n.actual_ms = ms;
            b.internal(n, vec![scan])
        };
        LabeledPlan {
            tree: b.finish(root),
            db_id: 0,
            machine: MachineId::M1,
        }
    }

    fn toy_dataset() -> Dataset {
        Dataset::from_plans(
            (1..50)
                .map(|i| toy_plan(i as f64 * 10.0, i as f64, i as f64))
                .collect(),
        )
    }

    #[test]
    fn encoding_has_one_hot_plus_scaled_scalars() {
        let ds = toy_dataset();
        let f = Featurizer::fit(&ds, FeatureConfig::default());
        let feats = f.encode(&ds.plans[10].tree);
        assert_eq!(feats.x.rows(), 2);
        assert_eq!(feats.x.cols(), FEATURE_DIM);
        // Row 0 is the root (GroupAggregate) in DFS order.
        assert_eq!(
            feats.x.get(0, NodeType::GroupAggregate.one_hot_index()),
            1.0
        );
        assert_eq!(feats.x.get(1, NodeType::SeqScan.one_hot_index()), 1.0);
        // Exactly one one-hot bit per row.
        for r in 0..2 {
            let ones = (0..NODE_TYPE_COUNT)
                .filter(|&c| feats.x.get(r, c) == 1.0)
                .count();
            assert_eq!(ones, 1);
        }
        assert_eq!(feats.heights, vec![0, 1]);
        assert_eq!(feats.mask, vec![true, true, false, true]);
    }

    #[test]
    fn targets_are_log_latency() {
        let ds = toy_dataset();
        let f = Featurizer::fit(&ds, FeatureConfig::default());
        let feats = f.encode(&ds.plans[5].tree);
        let root_ms = ds.plans[5].tree.actual_ms();
        assert!((feats.targets[0] as f64 - root_ms.ln()).abs() < 1e-5);
        assert!((Featurizer::to_ms(feats.targets[0]) - root_ms).abs() < 1e-3);
    }

    #[test]
    fn actual_cardinality_variant_changes_encoding() {
        let ds = toy_dataset();
        let est = Featurizer::fit(&ds, FeatureConfig::default());
        let act = Featurizer::fit(
            &ds,
            FeatureConfig {
                use_actual_cardinality: true,
                ..Default::default()
            },
        );
        let fe = est.encode(&ds.plans[10].tree);
        let fa = act.encode(&ds.plans[10].tree);
        // actual_rows = 1.5 × est_rows in the toy plans, so the cardinality
        // feature must differ.
        assert_ne!(
            fe.x.get(1, NODE_TYPE_COUNT + 1),
            fa.x.get(1, NODE_TYPE_COUNT + 1)
        );
    }

    #[test]
    fn no_tree_attention_gives_full_mask() {
        let ds = toy_dataset();
        let f = Featurizer::fit(
            &ds,
            FeatureConfig {
                disable_tree_attention: true,
                ..Default::default()
            },
        );
        let feats = f.encode(&ds.plans[0].tree);
        assert!(feats.mask.iter().all(|&b| b));
    }

    #[test]
    fn to_ms_sanitizes_degenerate_logits() {
        // Overflowed or NaN model outputs must never leak inf/NaN latencies
        // into downstream metrics.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1e30, -1e30] {
            let ms = Featurizer::to_ms(bad);
            assert!(ms.is_finite() && ms > 0.0, "to_ms({bad}) = {ms}");
        }
        // ln→exp round-trip of the floor is only approximate in f64.
        assert!((Featurizer::to_ms(f32::NEG_INFINITY) - MS_FLOOR).abs() < 1e-12);
        // In-range values are untouched.
        assert!((Featurizer::to_ms(2.0) - (2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn packed_batch_layout_and_bias() {
        let ds = toy_dataset();
        let f = Featurizer::fit(&ds, FeatureConfig::default());
        let a = f.encode(&ds.plans[3].tree); // 2 nodes
                                             // Single-node plan: just the root of a one-leaf tree won't happen
                                             // with toy plans, so pack two 2-node plans plus a padded slot check
                                             // via differing n_max from a hand-built 1-node comparison below.
        let b = f.encode(&ds.plans[7].tree); // 2 nodes
        let batch = PackedBatch::pack(&[&a, &b]).unwrap();
        assert_eq!(batch.count, 2);
        assert_eq!(batch.n_max, 2);
        assert_eq!(batch.lens, vec![2, 2]);
        assert_eq!(batch.rows(), 4);
        // Rows mirror the per-plan features.
        for i in 0..2 {
            for c in 0..FEATURE_DIM {
                assert_eq!(batch.x.get(i, c), a.x.get(i, c));
                assert_eq!(batch.x.get(2 + i, c), b.x.get(i, c));
            }
        }
        assert_eq!(&batch.targets[..2], &a.targets[..]);
        assert_eq!(&batch.targets[2..], &b.targets[..]);
        // Bias encodes the tree mask: root row attends to both nodes, leaf
        // row only to itself (mask = [t, t, f, t] per toy plan).
        assert_eq!(batch.bias[0], 0.0);
        assert_eq!(batch.bias[1], 0.0);
        assert_eq!(batch.bias[2], MASK_NEG);
        assert_eq!(batch.bias[3], 0.0);
    }

    #[test]
    fn packed_batch_pads_shorter_plans() {
        let ds = toy_dataset();
        let f = Featurizer::fit(&ds, FeatureConfig::default());
        let two = f.encode(&ds.plans[0].tree);
        // Truncate to a single-node plan by re-encoding a subtree: build a
        // 1-row PlanFeatures by hand from the leaf row.
        let one = PlanFeatures {
            x: two.x.row_block(1, 1),
            mask: vec![true],
            heights: vec![0],
            targets: vec![two.targets[1]],
        };
        let batch = PackedBatch::pack(&[&one, &two]).unwrap();
        assert_eq!(batch.n_max, 2);
        assert_eq!(batch.lens, vec![1, 2]);
        // Plan 0's padding row is zero features, zero target.
        for c in 0..FEATURE_DIM {
            assert_eq!(batch.x.get(1, c), 0.0);
        }
        assert_eq!(batch.targets[1], 0.0);
        // Plan 0's bias: real self-attention cell is 0.0; every cell that
        // touches the padding row/column is -inf.
        let inf = f32::NEG_INFINITY;
        assert_eq!(&batch.bias[..4], &[0.0, inf, inf, inf]);
        // The compact layout drops the padding row entirely: 1 + 2 rows.
        assert_eq!(batch.xc.rows(), 3);
        for c in 0..FEATURE_DIM {
            assert_eq!(batch.xc.get(0, c), one.x.get(0, c));
            assert_eq!(batch.xc.get(1, c), two.x.get(0, c));
            assert_eq!(batch.xc.get(2, c), two.x.get(1, c));
        }
    }

    #[test]
    fn hostile_estimates_encode_to_finite_features() {
        let ds = toy_dataset();
        let f = Featurizer::fit(&ds, FeatureConfig::default());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -2.0] {
            let mut plan = toy_plan(10.0, 5.0, 1.0);
            let root = plan.tree.root();
            plan.tree.node_mut(root).est_cost = bad;
            plan.tree.node_mut(root).est_rows = bad;
            let feats = f.encode(&plan.tree);
            for r in 0..feats.x.rows() {
                for c in 0..FEATURE_DIM {
                    assert!(feats.x.get(r, c).is_finite(), "x[{r},{c}] with {bad}");
                }
            }
            // The fingerprint must stay well-defined too (cache keys).
            let _ = f.fingerprint(&plan.tree);
        }
        // Finite in-domain estimates are bit-identical to the plain
        // transform: sanitization changes nothing for real plans.
        let plain = f.encode(&ds.plans[10].tree);
        assert_eq!(
            plain.x.get(0, NODE_TYPE_COUNT),
            f.cost_scaler
                .transform((1.0 + ds.plans[10].tree.node(ds.plans[10].tree.root()).est_cost).ln())
                as f32
        );
    }

    #[test]
    fn scalers_are_robust_to_scale() {
        let ds = toy_dataset();
        let f = Featurizer::fit(&ds, FeatureConfig::default());
        let feats = f.encode(&ds.plans[24].tree);
        // Scaled features of a mid-range plan should be O(1).
        assert!(feats.x.get(0, NODE_TYPE_COUNT).abs() < 5.0);
        assert!(feats.x.get(0, NODE_TYPE_COUNT + 1).abs() < 5.0);
    }
}
