#![warn(missing_docs)]
//! DACE — the Database-Agnostic Cost Estimator (the paper's contribution).
//!
//! The model corrects the DBMS optimizer's estimated cost into a latency
//! prediction without looking at any data characteristics: each plan node is
//! encoded as `one-hot(node type) ‖ scaled log cost ‖ scaled log cardinality`
//! (d = 18), a single-head tree-masked transformer layer (Eq. 5) mixes each
//! node with its descendants, and a three-layer MLP with LoRA adapters
//! (Eq. 6, 8) predicts the latency of **every sub-plan in parallel**.
//! Training weights each node's loss by `α^height` (Eq. 4, 7) — the
//! tree-structure-based loss adjustment that fixes QPPNet's information
//! redundancy.
//!
//! Entry points:
//! * [`Trainer::fit`] — pre-train on labeled plans from many databases;
//! * [`DaceEstimator::predict_ms`] — zero-shot latency prediction;
//! * [`DaceEstimator::fine_tune_lora`] — the across-more adaptation
//!   (train only `ΔW = B·A`, Sec. IV-D);
//! * [`DaceEstimator::encode`] — the pre-trained-encoder interface that
//!   feeds knowledge integration into within-database models (Eq. 9).

mod adapter;
mod featurize;
mod loss;
mod model;
mod persist;
mod quantized;
mod scoring;
mod trainer;

pub use adapter::{AdapterError, LoraAdapter, LoraLayerWeights};
pub use dace_nn::Workspace;
pub use featurize::{FeatureConfig, Featurizer, PackedBatch, PlanFeatures, FEATURE_DIM};
pub use loss::LossAdjuster;
pub use model::{DaceModel, ForwardTimings, ENCODING_DIM};
pub use persist::{
    decode_checkpoint, encode_checkpoint, fnv1a64, load_checkpoint, save_checkpoint,
    CheckpointError, CHECKPOINT_MAGIC,
};
pub use quantized::{QuantWorkspace, QuantizedEstimator, QuantizedModel};
pub use scoring::ScoreSession;
pub use trainer::{
    featurize_trees_sharded, quantile, DaceEstimator, TrainConfig, TrainError, Trainer,
};
