//! The tree-structure-based loss adjuster (Eq. 4 and 7).
//!
//! Nodes deeper in the plan get exponentially smaller loss weights
//! (`w = α^height`), so sub-plan supervision helps without the repeated
//! learning of deep nodes that plagues QPPNet (information redundancy):
//! a leaf under four ancestors is implicitly "seen" by every ancestor's
//! context, so its own direct loss contribution is discounted.

use serde::{Deserialize, Serialize};

/// Computes per-node loss weights `α^height`.
///
/// * `α = 0`  → DACE w/o SP: only the root (height 0) is supervised.
/// * `α = 1`  → DACE w/o LA: all sub-plans weighted equally (QPPNet-style).
/// * `α = 0.5` → the paper's tuned value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossAdjuster {
    /// The height-decay base in `[0, 1]`.
    pub alpha: f32,
}

impl Default for LossAdjuster {
    fn default() -> Self {
        LossAdjuster { alpha: 0.5 }
    }
}

impl LossAdjuster {
    /// Adjuster with the given α.
    pub fn new(alpha: f32) -> LossAdjuster {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        LossAdjuster { alpha }
    }

    /// Loss weight for one node height.
    #[inline]
    pub fn weight(&self, height: u32) -> f32 {
        if self.alpha == 0.0 {
            // 0^0 = 1 for the root, 0 elsewhere.
            if height == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.alpha.powi(height as i32)
        }
    }

    /// Weights for a whole plan's heights (DFS order).
    pub fn weights(&self, heights: &[u32]) -> Vec<f32> {
        heights.iter().map(|&h| self.weight(h)).collect()
    }

    /// Weighted squared-log-error loss and its gradient w.r.t. predictions.
    ///
    /// `loss = Σ_i w_i (pred_i − target_i)² / Σ_i w_i`; the normalization
    /// keeps gradient magnitudes comparable across plans of different sizes.
    pub fn loss_and_grad(
        &self,
        preds: &[f32],
        targets: &[f32],
        heights: &[u32],
    ) -> (f32, Vec<f32>) {
        assert_eq!(preds.len(), targets.len());
        assert_eq!(preds.len(), heights.len());
        let weights = self.weights(heights);
        let wsum: f32 = weights.iter().sum::<f32>().max(1e-12);
        let mut loss = 0.0;
        let mut grad = vec![0.0f32; preds.len()];
        for i in 0..preds.len() {
            let err = preds[i] - targets[i];
            loss += weights[i] * err * err;
            grad[i] = 2.0 * weights[i] * err / wsum;
        }
        (loss / wsum, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_match_paper_example() {
        // Fig. 3: α = 0.5 → heights 0..4 weigh 1, .5, .25, .125, .0625.
        let la = LossAdjuster::new(0.5);
        let w = la.weights(&[0, 1, 2, 3, 4]);
        assert_eq!(w, vec![1.0, 0.5, 0.25, 0.125, 0.0625]);
    }

    #[test]
    fn alpha_zero_supervises_root_only() {
        let la = LossAdjuster::new(0.0);
        assert_eq!(la.weights(&[0, 1, 2]), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn alpha_one_is_uniform() {
        let la = LossAdjuster::new(1.0);
        assert_eq!(la.weights(&[0, 3, 7]), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let la = LossAdjuster::new(0.5);
        let targets = [1.0f32, 2.0, 3.0];
        let heights = [0u32, 1, 1];
        let mut preds = vec![1.5f32, 1.0, 4.0];
        let (_, grad) = la.loss_and_grad(&preds, &targets, &heights);
        let eps = 1e-3;
        for i in 0..preds.len() {
            let orig = preds[i];
            preds[i] = orig + eps;
            let (lp, _) = la.loss_and_grad(&preds, &targets, &heights);
            preds[i] = orig - eps;
            let (lm, _) = la.loss_and_grad(&preds, &targets, &heights);
            preds[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad[i]).abs() < 1e-3, "i={i}: {num} vs {}", grad[i]);
        }
    }

    #[test]
    fn deeper_nodes_contribute_less() {
        let la = LossAdjuster::default();
        // Same error at the root vs. at height 3: root loss dominates.
        let (root_err, _) = la.loss_and_grad(&[2.0, 0.0], &[0.0, 0.0], &[0, 3]);
        let (deep_err, _) = la.loss_and_grad(&[0.0, 2.0], &[0.0, 0.0], &[0, 3]);
        assert!(root_err > deep_err * 5.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn rejects_bad_alpha() {
        let _ = LossAdjuster::new(1.5);
    }
}
