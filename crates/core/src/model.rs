//! The DACE network: one tree-masked attention layer feeding a three-layer
//! LoRA MLP that predicts every sub-plan's log-latency in parallel.

use dace_nn::{LoraLinear, LoraMode, MaskedSelfAttention, Param, Relu, Tensor2, Workspace};
use serde::{Deserialize, Serialize};

use crate::adapter::{AdapterError, LoraAdapter, LoraLayerWeights};
use crate::featurize::{PackedBatch, PlanFeatures, FEATURE_DIM};

/// Width of the penultimate hidden layer `h₂` — the encoding dimension the
/// pre-trained-encoder interface exposes (Eq. 9: `w_E = h₂`).
pub const ENCODING_DIM: usize = 64;

/// Attention key/query and value width (paper: `d_k = d_v = 128`).
const D_K: usize = 128;
const D_V: usize = 128;
/// MLP layer widths (paper: `W₁, W₂, W₃ = 128, 64, 1`).
const H1: usize = 128;
/// LoRA ranks per MLP layer (paper: `r₁, r₂, r₃ = 32, 16, 8`).
const RANKS: [usize; 3] = [32, 16, 8];

/// The DACE model (Sec. IV-C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaceModel {
    /// Tree-masked single-head self-attention (Eq. 5).
    pub attention: MaskedSelfAttention,
    /// MLP layer 1 with LoRA rank 32.
    pub l1: LoraLinear,
    /// MLP layer 2 with LoRA rank 16.
    pub l2: LoraLinear,
    /// MLP layer 3 with LoRA rank 8.
    pub l3: LoraLinear,
    #[serde(skip, default = "default_relus")]
    relus: (Relu, Relu),
    /// Padded row layout `(lens, n_max, via_workspace)` of the last
    /// [`forward_batch`] / [`forward_batch_reference`] call. `backward` uses
    /// it to gather the real rows out of the padded `d_pred` and to route
    /// the gradient through the workspace chain or the legacy layer caches.
    ///
    /// [`forward_batch`]: DaceModel::forward_batch
    /// [`forward_batch_reference`]: DaceModel::forward_batch_reference
    #[serde(skip)]
    batch_layout: Option<(Vec<usize>, usize, bool)>,
    /// Scratch arena for the compact batched forward/backward: activations
    /// and gradients live here and reuse capacity across mini-batches, so
    /// steady-state epochs stop allocating. Cloning a model (early-stopping
    /// snapshots) resets the arena instead of copying it.
    #[serde(skip)]
    ws: Workspace,
}

fn default_relus() -> (Relu, Relu) {
    (Relu::new(), Relu::new())
}

/// Wall-time split of one batched inference forward pass, for the serve
/// layer's per-stage telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardTimings {
    /// Time in the block-diagonal attention layer (µs).
    pub attention_us: u64,
    /// Time in the root-row MLP (µs).
    pub mlp_us: u64,
}

impl ForwardTimings {
    /// Sum two timing splits (chunked forwards accumulate into one total).
    pub fn accumulate(&mut self, other: ForwardTimings) {
        self.attention_us += other.attention_us;
        self.mlp_us += other.mlp_us;
    }
}

/// Copy each plan's `lens[b]` real rows out of the padded layout (plan `b`
/// at rows `[b·n_max, (b+1)·n_max)`) into a contiguous `Σ lens[b]`-row
/// tensor, dropping the padding rows.
fn gather_real_rows(x: &Tensor2, lens: &[usize], n_max: usize) -> Tensor2 {
    let total: usize = lens.iter().sum();
    let mut out = Tensor2::zeros(total, x.cols());
    let mut row = 0;
    for (b, &l) in lens.iter().enumerate() {
        out.set_row_block(row, &x.row_block(b * n_max, l));
        row += l;
    }
    out
}

/// Copy each block's first row (the plan root in DFS order) into a
/// `lens.len()`-row tensor.
fn gather_block_heads(a: &Tensor2, lens: &[usize]) -> Tensor2 {
    let mut out = Tensor2::zeros(lens.len(), a.cols());
    let mut start = 0;
    for (b, &l) in lens.iter().enumerate() {
        out.row_mut(b).copy_from_slice(a.row(start));
        start += l;
    }
    out
}

/// Inverse of [`gather_real_rows`]: place compact rows back at their padded
/// positions, leaving padding rows exactly zero.
fn scatter_real_rows(x: &Tensor2, lens: &[usize], n_max: usize) -> Tensor2 {
    let mut out = Tensor2::zeros(lens.len() * n_max, x.cols());
    let mut row = 0;
    for (b, &l) in lens.iter().enumerate() {
        out.set_row_block(b * n_max, &x.row_block(row, l));
        row += l;
    }
    out
}

impl DaceModel {
    /// Seeded model with the paper's dimensions.
    pub fn new(seed: u64) -> DaceModel {
        DaceModel {
            attention: MaskedSelfAttention::new(FEATURE_DIM, D_K, D_V, seed),
            l1: LoraLinear::new(D_V, H1, RANKS[0], seed ^ 0x01),
            l2: LoraLinear::new(H1, ENCODING_DIM, RANKS[1], seed ^ 0x02),
            l3: LoraLinear::new(ENCODING_DIM, 1, RANKS[2], seed ^ 0x03),
            relus: default_relus(),
            batch_layout: None,
            ws: Workspace::new(),
        }
    }

    /// Training forward pass: per-node log-latency predictions (`n × 1`).
    pub fn forward(&mut self, feats: &PlanFeatures) -> Tensor2 {
        self.batch_layout = None;
        let a = self.attention.forward(&feats.x, &feats.mask);
        let h1 = self.relus.0.forward(&self.l1.forward(&a));
        let h2 = self.relus.1.forward(&self.l2.forward(&h1));
        self.l3.forward(&h2)
    }

    /// Backward pass from per-node prediction gradients — `n × 1` after
    /// [`forward`], `count · n_max × 1` (padded layout) after
    /// [`forward_batch`]. Padding-row gradients must be zero; they are
    /// dropped by the gather, which is exactly what backpropagating them
    /// through zero-probability attention rows would produce.
    pub fn backward(&mut self, d_pred: &Tensor2) {
        match self.batch_layout.take() {
            Some((lens, n_max, true)) => {
                let d = gather_real_rows(d_pred, &lens, n_max);
                self.backward_compact(&d);
            }
            Some((lens, n_max, false)) => {
                let d = gather_real_rows(d_pred, &lens, n_max);
                let d = self.l3.backward(&d);
                let d = self.relus.1.backward(&d);
                let d = self.l2.backward(&d);
                let d = self.relus.0.backward(&d);
                let d = self.l1.backward(&d);
                // Attention is the first layer: dx is never consumed.
                self.attention.backward_params_only(&d);
            }
            None => {
                let d = self.l3.backward(d_pred);
                let d = self.relus.1.backward(&d);
                let d = self.l2.backward(&d);
                let d = self.relus.0.backward(&d);
                let d = self.l1.backward(&d);
                // Kept on the full `backward` (dx computed and dropped) so
                // the per-plan reference path matches the seed exactly.
                let _ = self.attention.backward(&d);
            }
        }
    }

    /// Batched training forward pass over a packed mini-batch — the
    /// workspace path ([`forward_batch_compact`]) plus a scatter of the
    /// compact predictions back into the padded `count · n_max × 1` layout
    /// (padding rows are exact zeros). The epoch loop skips the scatter by
    /// calling [`forward_batch_compact`] / [`batch_preds`] directly.
    ///
    /// [`forward_batch_compact`]: DaceModel::forward_batch_compact
    /// [`batch_preds`]: DaceModel::batch_preds
    pub fn forward_batch(&mut self, batch: &PackedBatch) -> Tensor2 {
        self.forward_batch_compact(batch);
        self.batch_layout = Some((batch.lens.clone(), batch.n_max, true));
        scatter_real_rows(&self.ws.preds, &batch.lens, batch.n_max)
    }

    /// The pre-workspace batched forward pass, kept verbatim as the
    /// reference/baseline: gathers the real rows out of the padded layout
    /// (allocating), runs the caching layers, and scatters back. Gradient-
    /// and bit-identical to [`DaceModel::forward_batch`]; used by the
    /// allocation benchmark's repack baseline and the equivalence tests.
    pub fn forward_batch_reference(&mut self, batch: &PackedBatch) -> Tensor2 {
        let xc = gather_real_rows(&batch.x, &batch.lens, batch.n_max);
        let a = self
            .attention
            .forward_packed(&xc, &batch.lens, batch.n_max, &batch.bias);
        let h1 = self.relus.0.forward(&self.l1.forward(&a));
        let h2 = self.relus.1.forward(&self.l2.forward(&h1));
        let preds = self.l3.forward(&h2);
        self.batch_layout = Some((batch.lens.clone(), batch.n_max, false));
        scatter_real_rows(&preds, &batch.lens, batch.n_max)
    }

    /// Allocation-free batched training forward over the batch's compact
    /// layout: every activation (attention Q/K/V/probs, MLP hiddens, LoRA
    /// intermediates, ReLU masks) lands in the model's workspace arena,
    /// reusing capacity from the previous mini-batch. Predictions are left
    /// in the workspace — read them with [`DaceModel::batch_preds`] — in
    /// compact row order (`Σ lens[b] × 1`). Pair with
    /// [`DaceModel::backward_compact`].
    pub fn forward_batch_compact(&mut self, batch: &PackedBatch) {
        self.batch_layout = None;
        let ws = &mut self.ws;
        ws.xc.copy_from(&batch.xc);
        ws.lens.clear();
        ws.lens.extend_from_slice(&batch.lens);
        self.attention.forward_packed_ws(
            &ws.xc,
            &ws.lens,
            batch.n_max,
            &batch.bias,
            &mut ws.attn,
            &mut ws.attn_out,
        );
        self.l1
            .forward_ws(&ws.attn_out, &mut ws.h1, &mut ws.xb1, &mut ws.tmp);
        Relu::forward_in_place(&mut ws.h1, &mut ws.mask1);
        self.l2
            .forward_ws(&ws.h1, &mut ws.h2, &mut ws.xb2, &mut ws.tmp);
        Relu::forward_in_place(&mut ws.h2, &mut ws.mask2);
        self.l3
            .forward_ws(&ws.h2, &mut ws.preds, &mut ws.xb3, &mut ws.tmp);
    }

    /// The compact predictions of the last
    /// [`DaceModel::forward_batch_compact`] call (`Σ lens[b] × 1`).
    pub fn batch_preds(&self) -> &Tensor2 {
        &self.ws.preds
    }

    /// Allocation-free backward from compact per-row prediction gradients
    /// (`Σ lens[b] × 1`, matching [`DaceModel::batch_preds`]): the entire
    /// chain runs on workspace buffers, accumulating parameter gradients in
    /// the same order as the caching path.
    pub fn backward_compact(&mut self, d_pred: &Tensor2) {
        let ws = &mut self.ws;
        self.l3.backward_ws(
            d_pred,
            &ws.h2,
            &ws.xb3,
            &mut ws.d1,
            &mut ws.dxb,
            &mut ws.gtmp,
        );
        Relu::backward_in_place(&mut ws.d1, &ws.mask2);
        self.l2.backward_ws(
            &ws.d1,
            &ws.h1,
            &ws.xb2,
            &mut ws.d2,
            &mut ws.dxb,
            &mut ws.gtmp,
        );
        Relu::backward_in_place(&mut ws.d2, &ws.mask1);
        self.l1.backward_ws(
            &ws.d2,
            &ws.attn_out,
            &ws.xb1,
            &mut ws.d1,
            &mut ws.dxb,
            &mut ws.gtmp,
        );
        // Attention is the first layer: only parameter gradients remain.
        self.attention
            .backward_params_ws(&ws.d1, &ws.xc, &ws.lens, &mut ws.attn);
    }

    /// Batched inference over a packed mini-batch: per-plan *root*
    /// log-latency predictions (the first real row of each block).
    ///
    /// Only the root rows run through the MLP: the attention output of
    /// every node is needed (the root attends to all descendants), but the
    /// per-node MLP predictions other than the root's are discarded by
    /// every caller of this entry point, so they are never computed. The
    /// MLP kernels are row-independent, making the root predictions
    /// bit-identical to the full per-node pass.
    pub fn predict_batch(&self, batch: &PackedBatch) -> Vec<f32> {
        let a = self.attention.forward_packed_inference(
            &batch.xc,
            &batch.lens,
            batch.n_max,
            &batch.bias,
        );
        let preds = self.mlp_inference(&gather_block_heads(&a, &batch.lens));
        (0..batch.count).map(|b| preds.get(b, 0)).collect()
    }

    /// Batched root-latency inference over already-featurized plans on the
    /// **compact** layout: plans are concatenated without padding rows, the
    /// per-plan boolean tree masks drive attention directly (no
    /// `n_max²`-per-plan bias buffer is built), and only each plan's root
    /// row runs through the MLP. This is the serving scheduler's forward
    /// path; results are identical to packing and running
    /// [`DaceModel::predict_batch`].
    pub fn predict_roots(&self, feats: &[&PlanFeatures]) -> Vec<f32> {
        self.predict_roots_timed(feats).0
    }

    /// [`predict_roots`](DaceModel::predict_roots) with per-stage wall-time
    /// attribution: how long the batch spent in block-diagonal attention vs
    /// the root-row MLP. Allocates a throwaway workspace; long-lived callers
    /// (the serve workers) hold one and use
    /// [`DaceModel::predict_roots_timed_ws`].
    pub fn predict_roots_timed(&self, feats: &[&PlanFeatures]) -> (Vec<f32>, ForwardTimings) {
        let mut ws = Workspace::new();
        let mut out = Vec::new();
        let timings = self.predict_roots_timed_ws(feats, &mut ws, &mut out);
        (out, timings)
    }

    /// Allocation-free batched root inference: the packed input, attention
    /// scratch and MLP activations all live in the caller's workspace, and
    /// root log-latency predictions are appended to `out` (cleared first).
    /// Once the workspace buffers reach the high-water batch size, repeated
    /// calls stop touching the allocator — this is the serve worker's
    /// steady-state forward path. Results are bit-identical to
    /// [`DaceModel::predict_roots_timed`].
    pub fn predict_roots_timed_ws(
        &self,
        feats: &[&PlanFeatures],
        ws: &mut Workspace,
        out: &mut Vec<f32>,
    ) -> ForwardTimings {
        out.clear();
        if feats.is_empty() {
            return ForwardTimings::default();
        }
        let total: usize = feats.iter().map(|f| f.x.rows()).sum();
        ws.xc.resize_zeroed(total, FEATURE_DIM);
        let mut row = 0;
        for f in feats {
            ws.xc.set_row_block(row, &f.x);
            row += f.x.rows();
        }
        let t_attn = std::time::Instant::now();
        self.attention.forward_masks_into(
            &ws.xc,
            feats.iter().map(|f| (f.x.rows(), f.mask.as_slice())),
            &mut ws.attn,
            &mut ws.attn_out,
        );
        let attention_us = t_attn.elapsed().as_micros() as u64;
        let t_mlp = std::time::Instant::now();
        // Only the root rows (each block's first row) run through the MLP.
        ws.heads.resize_zeroed(feats.len(), ws.attn_out.cols());
        let mut start = 0;
        for (b, f) in feats.iter().enumerate() {
            ws.heads.row_mut(b).copy_from_slice(ws.attn_out.row(start));
            start += f.x.rows();
        }
        self.l1
            .forward_ws(&ws.heads, &mut ws.h1, &mut ws.xb1, &mut ws.tmp);
        Relu::relu_in_place(&mut ws.h1);
        self.l2
            .forward_ws(&ws.h1, &mut ws.h2, &mut ws.xb2, &mut ws.tmp);
        Relu::relu_in_place(&mut ws.h2);
        self.l3
            .forward_ws(&ws.h2, &mut ws.preds, &mut ws.xb3, &mut ws.tmp);
        let mlp_us = t_mlp.elapsed().as_micros() as u64;
        out.extend((0..feats.len()).map(|b| ws.preds.get(b, 0)));
        ForwardTimings {
            attention_us,
            mlp_us,
        }
    }

    /// The three-layer LoRA MLP, inference mode, over arbitrary rows.
    fn mlp_inference(&self, a: &Tensor2) -> Tensor2 {
        let h1 = self
            .relus
            .0
            .forward_inference(&self.l1.forward_inference(a));
        let h2 = self
            .relus
            .1
            .forward_inference(&self.l2.forward_inference(&h1));
        self.l3.forward_inference(&h2)
    }

    /// Inference: per-node log-latency predictions without caching.
    pub fn predict(&self, feats: &PlanFeatures) -> Tensor2 {
        let a = self.attention.forward_inference(&feats.x, &feats.mask);
        let h1 = self
            .relus
            .0
            .forward_inference(&self.l1.forward_inference(&a));
        let h2 = self
            .relus
            .1
            .forward_inference(&self.l2.forward_inference(&h1));
        self.l3.forward_inference(&h2)
    }

    /// Root-node log-latency (node 0 in DFS order).
    pub fn predict_root(&self, feats: &PlanFeatures) -> f32 {
        self.predict(feats).get(0, 0)
    }

    /// The pre-trained-encoder output: the root's `h₂` activations
    /// (`ENCODING_DIM` values), the paper's `w_E` (Eq. 9).
    pub fn encode(&self, feats: &PlanFeatures) -> Vec<f32> {
        let a = self.attention.forward_inference(&feats.x, &feats.mask);
        let h1 = self
            .relus
            .0
            .forward_inference(&self.l1.forward_inference(&a));
        let h2 = self
            .relus
            .1
            .forward_inference(&self.l2.forward_inference(&h1));
        h2.row(0).to_vec()
    }

    /// All parameters (base + LoRA) for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.attention.params_mut();
        params.extend(self.l1.params_mut());
        params.extend(self.l2.params_mut());
        params.extend(self.l3.params_mut());
        params
    }

    /// Switch between pre-training and LoRA fine-tuning. In fine-tune mode
    /// the attention projections freeze too: the paper fine-tunes only
    /// `ΔW` of the MLP (Eq. 8).
    pub fn set_mode(&mut self, mode: LoraMode) {
        let finetune = mode == LoraMode::Finetune;
        for p in self.attention.params_mut() {
            p.trainable = !finetune;
        }
        self.l1.set_mode(mode);
        self.l2.set_mode(mode);
        self.l3.set_mode(mode);
    }

    /// Extract the current LoRA adapter weights (`l1`, `l2`, `l3`) — the
    /// complete fine-tuned state, since fine-tuning freezes everything else.
    pub fn extract_adapter(&self) -> LoraAdapter {
        let layer = |l: &LoraLinear| {
            let (b, a) = l.lora_weights();
            LoraLayerWeights {
                b: b.clone(),
                a: a.clone(),
            }
        };
        LoraAdapter {
            layers: vec![layer(&self.l1), layer(&self.l2), layer(&self.l3)],
        }
    }

    /// Install an extracted adapter. All-or-nothing: shapes are validated
    /// against every layer before any weight moves, so a failed install can
    /// never leave the model half-swapped.
    pub fn apply_adapter(&mut self, adapter: &LoraAdapter) -> Result<(), AdapterError> {
        if adapter.layers.len() != 3 {
            return Err(AdapterError {
                reason: format!("expected 3 layers, got {}", adapter.layers.len()),
            });
        }
        let shape = |t: &Tensor2| (t.rows(), t.cols());
        for (i, (layer, w)) in [&self.l1, &self.l2, &self.l3]
            .into_iter()
            .zip(&adapter.layers)
            .enumerate()
        {
            let (b, a) = layer.lora_weights();
            if shape(&w.b) != shape(b) || shape(&w.a) != shape(a) {
                return Err(AdapterError {
                    reason: format!(
                        "layer {} wants B {:?} / A {:?}, adapter has B {:?} / A {:?}",
                        i + 1,
                        shape(b),
                        shape(a),
                        shape(&w.b),
                        shape(&w.a)
                    ),
                });
            }
        }
        for (layer, w) in [&mut self.l1, &mut self.l2, &mut self.l3]
            .into_iter()
            .zip(&adapter.layers)
        {
            layer
                .set_lora_weights(w.b.clone(), w.a.clone())
                .expect("shapes pre-validated");
        }
        Ok(())
    }

    /// Switch every layer between train mode (activations cached / masks
    /// saved for backward) and eval mode (forward passes skip all caching —
    /// no clones on inference paths).
    pub fn set_train(&mut self, train: bool) {
        self.attention.set_train(train);
        self.l1.set_train(train);
        self.l2.set_train(train);
        self.l3.set_train(train);
        self.relus.0.set_train(train);
        self.relus.1.set_train(train);
    }

    /// Drop every parameter's optimizer state ([`Param::detach`]) and put
    /// the layers in eval mode: the inference-only form the serving
    /// registry shares across threads.
    pub fn detach(&mut self) {
        for p in self.params_mut() {
            p.detach();
        }
        self.set_train(false);
    }

    /// Reallocate optimizer state dropped by [`DaceModel::detach`] and
    /// restore train mode, making the model trainable again.
    pub fn restore_training_state(&mut self) {
        for p in self.params_mut() {
            p.restore_state();
        }
        self.set_train(true);
    }

    /// Base (non-LoRA) parameter count — the "DACE" row of Table II.
    pub fn base_param_count(&self) -> usize {
        self.attention.param_count()
            + self.l1.base_param_count()
            + self.l2.base_param_count()
            + self.l3.base_param_count()
    }

    /// LoRA adapter parameter count — what "DACE-LoRA" adds.
    pub fn lora_param_count(&self) -> usize {
        self.l1.lora_param_count() + self.l2.lora_param_count() + self.l3.lora_param_count()
    }

    /// Model size in megabytes (f32 parameters).
    pub fn size_mb(&self) -> f64 {
        (self.base_param_count() * 4) as f64 / 1_048_576.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{FeatureConfig, Featurizer};
    use dace_plan::{Dataset, LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};

    fn toy_features() -> PlanFeatures {
        let mut b = TreeBuilder::new();
        let s1 = {
            let mut n = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
            n.est_cost = 100.0;
            n.est_rows = 1000.0;
            n.actual_ms = 3.0;
            b.leaf(n)
        };
        let s2 = {
            let mut n = PlanNode::new(NodeType::IndexScan, OpPayload::Other);
            n.est_cost = 50.0;
            n.est_rows = 10.0;
            n.actual_ms = 1.0;
            b.leaf(n)
        };
        let j = {
            let mut n = PlanNode::new(NodeType::HashJoin, OpPayload::Other);
            n.est_cost = 400.0;
            n.est_rows = 500.0;
            n.actual_ms = 8.0;
            b.internal(n, vec![s1, s2])
        };
        let plan = LabeledPlan {
            tree: b.finish(j),
            db_id: 0,
            machine: MachineId::M1,
        };
        let ds = Dataset::from_plans(vec![plan.clone()]);
        let f = Featurizer::fit(&ds, FeatureConfig::default());
        f.encode(&plan.tree)
    }

    #[test]
    fn forward_shapes_are_per_node() {
        let mut model = DaceModel::new(1);
        let feats = toy_features();
        let preds = model.forward(&feats);
        assert_eq!(preds.rows(), 3);
        assert_eq!(preds.cols(), 1);
        assert!(preds.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_and_inference_forward_agree() {
        let mut model = DaceModel::new(2);
        let feats = toy_features();
        let a = model.forward(&feats);
        let b = model.predict(&feats);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
        assert_eq!(model.predict_root(&feats), b.get(0, 0));
    }

    #[test]
    fn encoder_output_has_encoding_dim() {
        let model = DaceModel::new(3);
        let feats = toy_features();
        let e = model.encode(&feats);
        assert_eq!(e.len(), ENCODING_DIM);
    }

    #[test]
    fn parameter_budget_is_lightweight() {
        let model = DaceModel::new(4);
        // The paper reports 0.064 MB for DACE and a LoRA add-on ~25% of it.
        assert!(
            model.size_mb() < 0.2,
            "model too large: {} MB",
            model.size_mb()
        );
        let lora_ratio = model.lora_param_count() as f64 / model.base_param_count() as f64;
        assert!(lora_ratio < 0.6, "LoRA ratio {lora_ratio}");
    }

    #[test]
    fn finetune_mode_freezes_base_weights() {
        let mut model = DaceModel::new(5);
        model.set_mode(LoraMode::Finetune);
        assert!(!model.attention.wq.trainable);
        assert!(!model.l1.w.trainable);
        assert!(model.l1.lora_a.trainable);
        model.set_mode(LoraMode::Pretrain);
        assert!(model.attention.wq.trainable);
        assert!(!model.l1.lora_a.trainable);
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut model = DaceModel::new(6);
        let feats = toy_features();
        let preds = model.forward(&feats);
        model.backward(&preds);
        let grad_norm: f32 = model.params_mut().iter().map(|p| p.grad.norm_sq()).sum();
        assert!(grad_norm > 0.0, "no gradient flowed");
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let model = DaceModel::new(7);
        let feats = toy_features();
        let before = model.predict_root(&feats);
        let json = serde_json::to_string(&model).unwrap();
        let restored: DaceModel = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.predict_root(&feats), before);
    }
}
