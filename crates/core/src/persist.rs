//! Crash-safe model persistence: checksummed checkpoint framing and atomic
//! file writes.
//!
//! A serving deployment reloads models from disk while traffic is live, so a
//! checkpoint that was torn by a crash mid-write, truncated by a full disk,
//! or bit-flipped in storage must be *detected and rejected* — never parsed
//! into a silently-wrong model. Two layers provide that:
//!
//! * **Framing** ([`encode_checkpoint`] / [`decode_checkpoint`]): the JSON
//!   payload is wrapped in a one-line header carrying a magic string, the
//!   exact payload length and an FNV-1a checksum over the payload bytes.
//!   The header grammar is deliberately strict (single spaces, lowercase
//!   hex, exact length) so that *any* single-byte corruption — header or
//!   payload — yields a typed [`CheckpointError`].
//! * **Atomicity** ([`save_checkpoint`]): writes go to a temporary file in
//!   the target directory, are fsynced, and then renamed over the target
//!   (rename within a directory is atomic on POSIX); the directory is
//!   fsynced afterwards so the rename itself survives a crash. A reader can
//!   therefore only ever observe the old complete file or the new complete
//!   file.
//!
//! The serving registry builds on this: its checkpoint-reload path keeps the
//! last good version published when a load fails, so corruption degrades to
//! "kept serving the previous model" rather than an outage.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::trainer::DaceEstimator;

/// Magic string opening every checkpoint header (version-bumped on any
/// format change).
pub const CHECKPOINT_MAGIC: &str = "DACE-CKPT-V1";

/// Why a checkpoint could not be loaded. Every failure mode a torn,
/// truncated or bit-flipped file can produce maps to a variant here — the
/// load path never panics and never returns a silently-wrong model.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure (open/read/write/rename/fsync).
    Io(std::io::Error),
    /// The header line is missing, malformed, or carries the wrong magic.
    BadHeader(String),
    /// The payload is shorter or longer than the header's declared length
    /// (a torn or truncated write).
    LengthMismatch {
        /// Bytes the header declared.
        declared: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// The payload hashes to a different checksum than the header recorded
    /// (bit rot or a partially-overwritten file).
    ChecksumMismatch {
        /// Checksum the header declared.
        declared: u64,
        /// Checksum of the bytes on disk.
        actual: u64,
    },
    /// The payload passed the checksum but is not a valid estimator (wrong
    /// schema or version skew).
    Parse(serde_json::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadHeader(why) => write!(f, "bad checkpoint header: {why}"),
            CheckpointError::LengthMismatch { declared, actual } => write!(
                f,
                "checkpoint truncated: header declares {declared} payload bytes, found {actual}"
            ),
            CheckpointError::ChecksumMismatch { declared, actual } => write!(
                f,
                "checkpoint checksum mismatch: header {declared:016x}, payload {actual:016x}"
            ),
            CheckpointError::Parse(e) => write!(f, "checkpoint payload unparseable: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a over `bytes` (64-bit) — the same hash family the featurization
/// cache keys with; hand-rolled to keep persistence dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Frame an estimator as checkpoint bytes:
/// `DACE-CKPT-V1 len=<decimal> fnv=<16 lowercase hex>\n<json payload>`.
pub fn encode_checkpoint(est: &DaceEstimator) -> Vec<u8> {
    let payload = est.to_json();
    let mut out = format!(
        "{CHECKPOINT_MAGIC} len={} fnv={:016x}\n",
        payload.len(),
        fnv1a64(payload.as_bytes())
    )
    .into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Parse checkpoint bytes, verifying the header, exact length and checksum
/// before touching serde. Strict by construction: any deviation from the
/// canonical framing (including trailing garbage, uppercase hex or extra
/// whitespace) is an error, so no single-byte corruption can round-trip to
/// an `Ok`.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<DaceEstimator, CheckpointError> {
    let bad = |why: &str| CheckpointError::BadHeader(why.to_string());
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| bad("no header line"))?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| bad("header not utf-8"))?;
    let payload = &bytes[nl + 1..];

    let mut fields = header.split(' ');
    let magic = fields.next().ok_or_else(|| bad("empty header"))?;
    if magic != CHECKPOINT_MAGIC {
        return Err(bad(&format!("magic {magic:?}")));
    }
    let len_field = fields.next().ok_or_else(|| bad("missing len field"))?;
    let fnv_field = fields.next().ok_or_else(|| bad("missing fnv field"))?;
    if fields.next().is_some() {
        return Err(bad("trailing header fields"));
    }
    let len_str = len_field
        .strip_prefix("len=")
        .ok_or_else(|| bad("len field malformed"))?;
    if len_str.is_empty() || !len_str.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad("len not a decimal integer"));
    }
    let declared: usize = len_str.parse().map_err(|_| bad("len overflows"))?;
    let fnv_str = fnv_field
        .strip_prefix("fnv=")
        .ok_or_else(|| bad("fnv field malformed"))?;
    // Exactly 16 lowercase hex digits: `from_str_radix` alone would also
    // accept uppercase, letting a case-flipping bit flip round-trip.
    if fnv_str.len() != 16
        || !fnv_str
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err(bad("fnv not 16 lowercase hex digits"));
    }
    let declared_fnv = u64::from_str_radix(fnv_str, 16).map_err(|_| bad("fnv unparseable"))?;

    if payload.len() != declared {
        return Err(CheckpointError::LengthMismatch {
            declared,
            actual: payload.len(),
        });
    }
    let actual_fnv = fnv1a64(payload);
    if actual_fnv != declared_fnv {
        return Err(CheckpointError::ChecksumMismatch {
            declared: declared_fnv,
            actual: actual_fnv,
        });
    }
    let json = std::str::from_utf8(payload)
        .map_err(|_| bad("payload not utf-8 despite checksum — impossible framing"))?;
    DaceEstimator::from_json(json).map_err(CheckpointError::Parse)
}

/// Atomically persist `est` to `path`: write `path.tmp-<pid>`, fsync it,
/// rename over `path`, fsync the directory. A crash at any point leaves
/// either the previous checkpoint or the new one — never a torn file at
/// `path` (the orphaned temp file, if any, fails [`decode_checkpoint`]'s
/// framing checks anyway).
pub fn save_checkpoint(path: &Path, est: &DaceEstimator) -> Result<(), CheckpointError> {
    let bytes = encode_checkpoint(est);
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Persist the rename itself: fsync the containing directory (POSIX
    // requires this for the new directory entry to survive a crash).
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load and verify a checkpoint written by [`save_checkpoint`].
pub fn load_checkpoint(path: &Path) -> Result<DaceEstimator, CheckpointError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    decode_checkpoint(&bytes)
}
