//! The quantized fast tier: an int8 twin of [`DaceModel`] built once per
//! registry swap, serving deadline-tight requests at reduced precision.
//!
//! [`QuantizedModel::from_model`] folds each MLP layer's LoRA delta into its
//! base weight and int8-quantizes everything (per-output-channel scales);
//! the forward pass mirrors [`DaceModel::predict_roots_timed_ws`] stage for
//! stage — pack, block-diagonal masked attention, root-row gather, 3-layer
//! MLP — so predictions differ from full precision only by quantization
//! error. Construction happens at swap time, never on the request path.

use dace_nn::{QuantScratch, QuantizedAttention, QuantizedLinear, Relu, Tensor2};
use std::time::Instant;

use crate::featurize::{Featurizer, PlanFeatures, FEATURE_DIM};
use crate::model::{DaceModel, ForwardTimings};
use crate::trainer::DaceEstimator;

/// Reusable scratch for the quantized forward: packed input, attention
/// buffers, root rows and MLP activations. One per worker; buffers grow to
/// the high-water batch size and then stop allocating — the same
/// steady-state story as the f32 [`Workspace`](dace_nn::Workspace).
#[derive(Debug, Default)]
pub struct QuantWorkspace {
    /// Int8 kernel scratch (quantized activation row, Q/K/V projections).
    pub qs: QuantScratch,
    xc: Tensor2,
    attn_out: Tensor2,
    heads: Tensor2,
    h1: Tensor2,
    h2: Tensor2,
    preds: Tensor2,
}

/// Int8 twin of [`DaceModel`]: quantized attention projections plus three
/// LoRA-folded quantized MLP layers. Holds no optimizer or training state —
/// inference only, cheap to rebuild on every swap.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    attention: QuantizedAttention,
    l1: QuantizedLinear,
    l2: QuantizedLinear,
    l3: QuantizedLinear,
}

impl QuantizedModel {
    /// Quantize a full-precision model. The current LoRA adapter (if any)
    /// is folded into the MLP base weights, so the twin reflects exactly
    /// the weights the f32 path would serve.
    pub fn from_model(model: &DaceModel) -> QuantizedModel {
        QuantizedModel {
            attention: QuantizedAttention::from_attention(&model.attention),
            l1: QuantizedLinear::from_lora(&model.l1),
            l2: QuantizedLinear::from_lora(&model.l2),
            l3: QuantizedLinear::from_lora(&model.l3),
        }
    }

    /// Quantized weight bytes — roughly 4× below the f32 parameters.
    pub fn bytes(&self) -> usize {
        self.attention.bytes() + self.l1.bytes() + self.l2.bytes() + self.l3.bytes()
    }

    /// Quantized twin of [`DaceModel::predict_roots_timed_ws`]: batched
    /// root log-latency inference over the compact layout, appending to
    /// `out` (cleared first). Same packing, same block masks, same
    /// root-row gather; only the matmuls run int8.
    pub fn predict_roots_timed_ws(
        &self,
        feats: &[&PlanFeatures],
        ws: &mut QuantWorkspace,
        out: &mut Vec<f32>,
    ) -> ForwardTimings {
        out.clear();
        if feats.is_empty() {
            return ForwardTimings::default();
        }
        let total: usize = feats.iter().map(|f| f.x.rows()).sum();
        ws.xc.resize_zeroed(total, FEATURE_DIM);
        let mut row = 0;
        for f in feats {
            ws.xc.set_row_block(row, &f.x);
            row += f.x.rows();
        }
        let t_attn = Instant::now();
        self.attention.forward_masks_into(
            &ws.xc,
            feats.iter().map(|f| (f.x.rows(), f.mask.as_slice())),
            &mut ws.qs,
            &mut ws.attn_out,
        );
        let attention_us = t_attn.elapsed().as_micros() as u64;
        let t_mlp = Instant::now();
        // Only the root rows (each block's first row) run through the MLP.
        ws.heads.resize_zeroed(feats.len(), ws.attn_out.cols());
        let mut start = 0;
        for (b, f) in feats.iter().enumerate() {
            ws.heads.row_mut(b).copy_from_slice(ws.attn_out.row(start));
            start += f.x.rows();
        }
        self.l1.forward_into(&ws.heads, &mut ws.h1, &mut ws.qs);
        Relu::relu_in_place(&mut ws.h1);
        self.l2.forward_into(&ws.h1, &mut ws.h2, &mut ws.qs);
        Relu::relu_in_place(&mut ws.h2);
        self.l3.forward_into(&ws.h2, &mut ws.preds, &mut ws.qs);
        let mlp_us = t_mlp.elapsed().as_micros() as u64;
        out.extend((0..feats.len()).map(|b| ws.preds.get(b, 0)));
        ForwardTimings {
            attention_us,
            mlp_us,
        }
    }
}

/// The fast-tier serving artifact: a [`QuantizedModel`] plus the batch
/// chunking knob, mirroring
/// [`DaceEstimator::predict_features_batch_ms_timed_ws`]. Featurization is
/// shared with the full-precision tier (the serve layer featurizes once and
/// routes features to either tier), so no featurizer is duplicated here.
#[derive(Debug, Clone)]
pub struct QuantizedEstimator {
    /// The int8 network.
    pub model: QuantizedModel,
    batch_plans: usize,
}

impl QuantizedEstimator {
    /// Build the fast tier from a full-precision estimator — called at
    /// every registry swap so the twin never lags the published weights.
    pub fn from_estimator(est: &DaceEstimator) -> QuantizedEstimator {
        QuantizedEstimator {
            model: QuantizedModel::from_model(&est.model),
            batch_plans: est.config.batch_plans,
        }
    }

    /// Quantized twin of
    /// [`DaceEstimator::predict_features_batch_ms_timed_ws`]: chunked
    /// batch prediction in milliseconds over caller-owned scratch,
    /// appended to `out` (cleared first), aligned with `feats`.
    pub fn predict_features_batch_ms_timed_ws(
        &self,
        feats: &[&PlanFeatures],
        ws: &mut QuantWorkspace,
        roots: &mut Vec<f32>,
        out: &mut Vec<f64>,
    ) -> ForwardTimings {
        let chunk = self.batch_plans.max(1);
        out.clear();
        let mut timings = ForwardTimings::default();
        for group in feats.chunks(chunk) {
            let t = self.model.predict_roots_timed_ws(group, ws, roots);
            timings.accumulate(t);
            out.extend(roots.iter().map(|&r| Featurizer::to_ms(r)));
        }
        timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{TrainConfig, Trainer};
    use dace_plan::{Dataset, LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn synthetic_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plans = (0..n)
            .map(|i| {
                let mut b = TreeBuilder::new();
                let kids: Vec<_> = (0..rng.gen_range(1..=3))
                    .map(|_| {
                        let mut n = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                        n.est_cost = rng.gen_range(10.0..1e4);
                        n.est_rows = rng.gen_range(1.0..1e5);
                        n.actual_ms = rng.gen_range(0.1..50.0);
                        b.leaf(n)
                    })
                    .collect();
                let mut root = PlanNode::new(NodeType::HashJoin, OpPayload::Other);
                root.est_cost = rng.gen_range(100.0..1e5);
                root.est_rows = rng.gen_range(1.0..1e6);
                root.actual_ms = rng.gen_range(1.0..200.0);
                let id = b.internal(root, kids);
                LabeledPlan {
                    tree: b.finish(id),
                    db_id: (i % 4) as u16,
                    machine: MachineId::M1,
                }
            })
            .collect();
        Dataset::from_plans(plans)
    }

    fn quick_estimator(seed: u64) -> DaceEstimator {
        let ds = synthetic_dataset(60, seed);
        Trainer::new(TrainConfig {
            epochs: 3,
            seed,
            ..Default::default()
        })
        .fit(&ds)
        .expect("training")
    }

    fn encode_all(est: &DaceEstimator, ds: &Dataset) -> Vec<PlanFeatures> {
        ds.plans
            .iter()
            .map(|p| est.featurizer.encode(&p.tree))
            .collect()
    }

    #[test]
    fn quantized_estimator_tracks_full_precision_within_qerror_bound() {
        let est = quick_estimator(41);
        let ds = synthetic_dataset(24, 42);
        let feats = encode_all(&est, &ds);
        let refs: Vec<&PlanFeatures> = feats.iter().collect();
        let full = est.predict_features_batch_ms(&refs);
        let q = QuantizedEstimator::from_estimator(&est);
        let mut ws = QuantWorkspace::default();
        let (mut roots, mut out) = (Vec::new(), Vec::new());
        q.predict_features_batch_ms_timed_ws(&refs, &mut ws, &mut roots, &mut out);
        assert_eq!(out.len(), full.len());
        for (a, b) in out.iter().zip(&full) {
            assert!(
                a.is_finite() && *a > 0.0,
                "quantized pred not positive: {a}"
            );
            let q_err = (a / b).max(b / a);
            assert!(q_err < 1.25, "tier divergence too large: {a} vs {b}");
        }
    }

    #[test]
    fn quantized_batching_is_chunk_invariant() {
        let est = quick_estimator(43);
        let ds = synthetic_dataset(10, 44);
        let feats = encode_all(&est, &ds);
        let refs: Vec<&PlanFeatures> = feats.iter().collect();
        let q = QuantizedEstimator::from_estimator(&est);
        let mut small = q.clone();
        small.batch_plans = 3;
        let mut ws = QuantWorkspace::default();
        let (mut roots, mut a, mut b) = (Vec::new(), Vec::new(), Vec::new());
        q.predict_features_batch_ms_timed_ws(&refs, &mut ws, &mut roots, &mut a);
        small.predict_features_batch_ms_timed_ws(&refs, &mut ws, &mut roots, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "chunking changed predictions");
        }
    }

    #[test]
    fn quantized_model_is_smaller_than_f32() {
        let est = quick_estimator(45);
        let q = QuantizedModel::from_model(&est.model);
        let f32_bytes = est.model.base_param_count() * 4;
        assert!(
            q.bytes() * 3 < f32_bytes,
            "quantized twin not smaller: {} vs {}",
            q.bytes(),
            f32_bytes
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let est = quick_estimator(46);
        let q = QuantizedEstimator::from_estimator(&est);
        let mut ws = QuantWorkspace::default();
        let (mut roots, mut out) = (Vec::new(), Vec::new());
        let t = q.predict_features_batch_ms_timed_ws(&[], &mut ws, &mut roots, &mut out);
        assert!(out.is_empty());
        assert_eq!(t, ForwardTimings::default());
    }
}
