//! Candidate-set scoring: the optimizer-facing batched inference session.
//!
//! Plan search asks a different question than serving: not "how long will
//! this finished plan take" once, but "which of these hundreds of candidate
//! sub-plans is cheapest" thousands of times per query. A [`ScoreSession`]
//! amortizes that traffic — it owns a persistent [`Workspace`] plus the
//! root/output scratch vectors, so every batch after the first runs the
//! block-diagonal forward without allocating, and it accumulates the
//! throughput counters (sub-plans scored, forward wall time) that the
//! plan-search experiments report.

use std::time::Instant;

use dace_plan::PlanTree;

use crate::featurize::PlanFeatures;
use crate::model::ForwardTimings;
use crate::trainer::DaceEstimator;
use dace_nn::Workspace;

/// A reusable batched-scoring session bound to one estimator.
///
/// Scores come back in candidate order as predicted latency in
/// milliseconds; per-plan results are independent of batch composition
/// (the packed forward is row-independent), which is what lets the search
/// memo reuse a score computed in one batch for a duplicate sub-tree seen
/// in another.
#[derive(Debug)]
pub struct ScoreSession<'a> {
    est: &'a DaceEstimator,
    ws: Workspace,
    roots: Vec<f32>,
    out: Vec<f64>,
    plans_scored: u64,
    batches: u64,
    forward_timings: ForwardTimings,
    wall_us: u64,
}

impl<'a> ScoreSession<'a> {
    /// A fresh session over `est`; scratch grows to the largest batch seen
    /// and is reused thereafter.
    pub fn new(est: &'a DaceEstimator) -> ScoreSession<'a> {
        ScoreSession {
            est,
            ws: Workspace::new(),
            roots: Vec::new(),
            out: Vec::new(),
            plans_scored: 0,
            batches: 0,
            forward_timings: ForwardTimings::default(),
            wall_us: 0,
        }
    }

    /// The estimator this session scores with.
    pub fn estimator(&self) -> &DaceEstimator {
        self.est
    }

    /// Structural fingerprint of `tree` under this session's featurizer —
    /// the memo key (quantized estimates, scaler-parameter-salted).
    pub fn fingerprint(&self, tree: &PlanTree) -> u64 {
        self.est.featurizer.fingerprint(tree)
    }

    /// Score a candidate batch: featurize each tree and run one chunked
    /// block-diagonal forward. Returns predicted root latencies (ms) in
    /// input order; the slice is valid until the next `score_*` call.
    pub fn score_trees_ms(&mut self, trees: &[&PlanTree]) -> &[f64] {
        let feats: Vec<PlanFeatures> = trees
            .iter()
            .map(|t| self.est.featurizer.encode(t))
            .collect();
        let refs: Vec<&PlanFeatures> = feats.iter().collect();
        self.score_features_ms_inner(&refs);
        &self.out
    }

    /// Score already-featurized candidates (the memo-miss path, where the
    /// driver featurized while deduplicating). Same output contract as
    /// [`ScoreSession::score_trees_ms`].
    pub fn score_features_ms(&mut self, feats: &[&PlanFeatures]) -> &[f64] {
        self.score_features_ms_inner(feats);
        &self.out
    }

    fn score_features_ms_inner(&mut self, feats: &[&PlanFeatures]) {
        if feats.is_empty() {
            self.out.clear();
            return;
        }
        let start = Instant::now();
        let timings = self.est.predict_features_batch_ms_timed_ws(
            feats,
            &mut self.ws,
            &mut self.roots,
            &mut self.out,
        );
        self.wall_us += start.elapsed().as_micros() as u64;
        self.forward_timings.accumulate(timings);
        self.plans_scored += feats.len() as u64;
        self.batches += 1;
    }

    /// Sub-plans scored across the session's lifetime.
    pub fn plans_scored(&self) -> u64 {
        self.plans_scored
    }

    /// Forward batches run.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Accumulated attention/MLP wall-time split across all batches.
    pub fn forward_timings(&self) -> ForwardTimings {
        self.forward_timings
    }

    /// Total wall time spent inside scoring calls (µs).
    pub fn wall_us(&self) -> u64 {
        self.wall_us
    }

    /// Sub-plan scores per second of scoring wall time (0 before the first
    /// batch).
    pub fn scores_per_sec(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.plans_scored as f64 / (self.wall_us as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{TrainConfig, Trainer};
    use dace_plan::{Dataset, LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A minimal learnable corpus (scan → join trees with varying costs).
    fn corpus(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plans = (0..n)
            .map(|_| {
                let mut b = TreeBuilder::new();
                let cost = rng.gen_range(10.0..10_000.0f64);
                let rows = cost * rng.gen_range(5.0..15.0);
                let scan = {
                    let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                    node.est_cost = cost;
                    node.est_rows = rows;
                    node.actual_ms = cost * 0.004;
                    node.actual_rows = rows;
                    b.leaf(node)
                };
                let root = {
                    let mut node = PlanNode::new(NodeType::HashJoin, OpPayload::Other);
                    node.est_cost = cost * 2.0;
                    node.est_rows = rows;
                    node.actual_ms = cost * 0.01;
                    node.actual_rows = rows;
                    b.internal(node, vec![scan])
                };
                LabeledPlan {
                    tree: b.finish(root),
                    db_id: 0,
                    machine: MachineId::M1,
                }
            })
            .collect();
        Dataset::from_plans(plans)
    }

    fn tiny_estimator() -> (DaceEstimator, Dataset) {
        let data = corpus(60, 11);
        let est = Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        })
        .fit(&data)
        .expect("fit");
        (est, data)
    }

    #[test]
    fn session_scores_match_one_shot_batch_api() {
        let (est, data) = tiny_estimator();
        let trees: Vec<&PlanTree> = data.plans.iter().take(16).map(|p| &p.tree).collect();
        let expect = est.predict_batch_ms(&trees);
        let mut sess = ScoreSession::new(&est);
        let got = sess.score_trees_ms(&trees).to_vec();
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert!(
                (g - e).abs() < 1e-9,
                "session score {g} != batch API score {e}"
            );
        }
        assert_eq!(sess.plans_scored(), 16);
        assert_eq!(sess.batches(), 1);
    }

    #[test]
    fn scores_are_batch_composition_invariant() {
        // The memo's correctness hinges on this: a sub-plan's score must not
        // depend on what else shared its batch.
        let (est, data) = tiny_estimator();
        let trees: Vec<&PlanTree> = data.plans.iter().take(12).map(|p| &p.tree).collect();
        let mut sess = ScoreSession::new(&est);
        let all = sess.score_trees_ms(&trees).to_vec();
        for (i, t) in trees.iter().enumerate() {
            let solo = sess.score_trees_ms(&[t])[0];
            assert!(
                (solo - all[i]).abs() < 1e-9,
                "plan {i}: solo {solo} != batched {}",
                all[i]
            );
        }
    }

    #[test]
    fn throughput_counters_accumulate() {
        let (est, data) = tiny_estimator();
        let trees: Vec<&PlanTree> = data.plans.iter().take(8).map(|p| &p.tree).collect();
        let mut sess = ScoreSession::new(&est);
        sess.score_trees_ms(&trees);
        sess.score_trees_ms(&trees[..4]);
        assert_eq!(sess.plans_scored(), 12);
        assert_eq!(sess.batches(), 2);
        assert!(sess.wall_us() > 0);
        assert!(sess.scores_per_sec() > 0.0);
        // Empty batches are free and uncounted.
        sess.score_trees_ms(&[]);
        assert_eq!(sess.batches(), 2);
    }
}
