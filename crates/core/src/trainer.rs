//! Training, LoRA fine-tuning and the estimator facade.
//!
//! Both [`Trainer::fit`] and [`DaceEstimator::fine_tune_lora`] run through
//! one shared mini-batch loop ([`run_epochs`]): each mini-batch is packed
//! into a single padded tensor ([`PackedBatch`]) and trained with **one**
//! block-diagonal forward/backward pass instead of one pass per plan. The
//! gradient is mathematically identical to the per-plan loop (the attention
//! bias is block-diagonal, padding rows contribute exactly zero), differing
//! only in floating-point summation order; the property tests in
//! `tests/props.rs` assert agreement to 1e-4. The pre-batching loop is kept
//! as [`Trainer::fit_per_plan_reference`] for equivalence testing and as
//! the benchmark baseline.

use std::sync::Arc;
use std::time::Instant;

use dace_nn::{Adam, LoraMode, Tensor2, Workspace};
use dace_obs::{alloc_probe_bytes, span, EpochRecord, MetricsRegistry, RunSink, Verbosity};
use dace_plan::{Dataset, LabeledPlan, PlanTree};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::adapter::{AdapterError, LoraAdapter};
use crate::featurize::{FeatureConfig, Featurizer, PackedBatch, PlanFeatures};
use crate::loss::LossAdjuster;
use crate::model::{DaceModel, ForwardTimings};

/// Why training or fine-tuning could not run. An automated retrain loop
/// (the serving layer's drift-triggered fine-tune) feeds whatever its
/// feedback window holds into these entry points; a window that drained
/// empty must degrade into a typed error the caller can count and skip,
/// never a panic that kills the trainer thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The dataset (or packed mini-batch) contained no plans.
    EmptyDataset,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "dataset is empty: nothing to train on"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Plans per optimizer step (gradient accumulation batch).
    pub batch_plans: usize,
    /// Loss-adjuster α (0 = root only, 1 = uniform, 0.5 = paper's value).
    pub alpha: f32,
    /// Initialization / shuffling seed.
    pub seed: u64,
    /// Featurization variant flags (ablations).
    pub features: FeatureConfig,
    /// Fraction of the training plans held out as a validation split for
    /// early stopping. `0.0` (the default) disables the split entirely and
    /// reproduces the fixed-epoch behavior.
    #[serde(default)]
    pub validation_fraction: f32,
    /// Consecutive epochs without validation improvement tolerated before
    /// stopping early and restoring the best weights. `0` (the default)
    /// disables early stopping.
    #[serde(default)]
    pub patience: usize,
    /// Threads for data-sharded featurization (`0` = all available cores).
    /// Featurization is pure per-plan work, so the result is identical at
    /// any thread count.
    #[serde(default)]
    pub featurize_threads: usize,
    /// Stderr progress during training ([`Verbosity::Quiet`] by default —
    /// telemetry sinks receive every epoch regardless).
    #[serde(default)]
    pub verbosity: Verbosity,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            lr: 1e-3,
            batch_plans: 64,
            alpha: 0.5,
            seed: 0xDACE,
            features: FeatureConfig::default(),
            validation_fraction: 0.0,
            patience: 0,
            featurize_threads: 0,
            verbosity: Verbosity::Quiet,
        }
    }
}

/// Featurize every tree, sharding the work across crossbeam scoped threads.
/// Output order matches `trees` regardless of thread count (featurization is
/// pure per-plan work). This is the one featurization entry point shared by
/// training, [`DaceEstimator::predict_batch_ms`] and the serving scheduler's
/// cache-miss path; small inputs (< 64 trees) take the serial path so
/// latency-sensitive callers never pay thread-spawn overhead.
pub fn featurize_trees_sharded(
    featurizer: &Featurizer,
    trees: &[&PlanTree],
    threads: usize,
) -> Vec<PlanFeatures> {
    let _span = span!("featurize");
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(trees.len().max(1));
    if threads <= 1 || trees.len() < 64 {
        return trees.iter().map(|t| featurizer.encode(t)).collect();
    }
    let chunk = trees.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = trees
            .chunks(chunk)
            .map(|ts| {
                scope.spawn(move |_| ts.iter().map(|t| featurizer.encode(t)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("featurization thread panicked"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope failed")
    .into_iter()
    .flatten()
    .collect()
}

/// [`featurize_trees_sharded`] over labeled plans.
fn featurize_sharded(
    featurizer: &Featurizer,
    plans: &[LabeledPlan],
    threads: usize,
) -> Vec<PlanFeatures> {
    let trees: Vec<&PlanTree> = plans.iter().map(|p| &p.tree).collect();
    featurize_trees_sharded(featurizer, &trees, threads)
}

/// Per-row loss gradient for a packed batch, matching the per-plan path:
/// each plan's weighted squared-log-error is normalized by its own weight
/// sum over *real* rows, then scaled by `1 / batch_size`. Padding rows get
/// gradient zero. Also returns the batch's mean per-plan weighted loss (the
/// quantity the gradient descends), which telemetry reports per epoch.
fn packed_grad(adjuster: &LossAdjuster, preds: &Tensor2, batch: &PackedBatch) -> (f32, Tensor2) {
    let mut d_pred = Tensor2::zeros(batch.rows(), 1);
    let inv_batch = 1.0 / batch.count as f32;
    let mut loss = 0.0f32;
    for b in 0..batch.count {
        let base = b * batch.n_max;
        let n = batch.lens[b];
        let mut wsum = 0.0f32;
        for i in 0..n {
            wsum += adjuster.weight(batch.heights[base + i]);
        }
        let wsum = wsum.max(1e-12);
        for i in 0..n {
            let w = adjuster.weight(batch.heights[base + i]);
            let err = preds.get(base + i, 0) - batch.targets[base + i];
            loss += w * err * err / wsum * inv_batch;
            d_pred.set(base + i, 0, 2.0 * w * err / wsum * inv_batch);
        }
    }
    (loss, d_pred)
}

/// [`packed_grad`] on the compact layout: `preds` has one row per *real*
/// node (`Σ lens[b]`), targets and heights are read through the batch's
/// padded index, and the gradient is written into the caller's reusable
/// buffer — no allocation once `d_pred` reaches capacity. Loss accumulation
/// order matches [`packed_grad`] exactly (padding rows contributed nothing
/// there), so the two are bit-identical on the rows that exist in both.
fn packed_grad_compact(
    adjuster: &LossAdjuster,
    preds: &Tensor2,
    batch: &PackedBatch,
    d_pred: &mut Tensor2,
) -> f32 {
    d_pred.resize_zeroed(preds.rows(), 1);
    let inv_batch = 1.0 / batch.count as f32;
    let mut loss = 0.0f32;
    let mut row = 0usize;
    for b in 0..batch.count {
        let base = b * batch.n_max;
        let n = batch.lens[b];
        let mut wsum = 0.0f32;
        for i in 0..n {
            wsum += adjuster.weight(batch.heights[base + i]);
        }
        let wsum = wsum.max(1e-12);
        for i in 0..n {
            let w = adjuster.weight(batch.heights[base + i]);
            let err = preds.get(row, 0) - batch.targets[base + i];
            loss += w * err * err / wsum * inv_batch;
            d_pred.set(row, 0, 2.0 * w * err / wsum * inv_batch);
            row += 1;
        }
    }
    loss
}

/// Gross heap bytes allocated since the `start` probe reading, when an
/// allocation probe is installed ([`dace_obs::set_alloc_probe`]).
fn alloc_delta(start: Option<u64>) -> Option<u64> {
    Some(alloc_probe_bytes()?.saturating_sub(start?))
}

/// Mean per-plan validation loss on a held-out index set, plus each held-out
/// plan's root Q-error (`max(pred/actual, actual/pred)` in ms space) for
/// telemetry quantiles.
fn validation_stats(
    model: &DaceModel,
    adjuster: &LossAdjuster,
    feats: &[PlanFeatures],
    val_idx: &[usize],
) -> (f32, Vec<f64>) {
    let _span = span!("validate");
    let mut total = 0.0f32;
    let mut qerrs = Vec::with_capacity(val_idx.len());
    for &i in val_idx {
        let f = &feats[i];
        let preds = model.predict(f);
        let pred_slice: Vec<f32> = (0..preds.rows()).map(|r| preds.get(r, 0)).collect();
        let (loss, _) = adjuster.loss_and_grad(&pred_slice, &f.targets, &f.heights);
        total += loss;
        // Root is row 0 in DFS order; Q-error compares in ms space.
        let pred_ms = Featurizer::to_ms(pred_slice[0]).max(1e-6);
        let actual_ms = Featurizer::to_ms(f.targets[0]).max(1e-6);
        qerrs.push((pred_ms / actual_ms).max(actual_ms / pred_ms));
    }
    (total / val_idx.len().max(1) as f32, qerrs)
}

/// Quantile of an unsorted sample set by exact rank (`ceil(p·n)`-th order
/// statistic), `None` on an empty set. Shared by training telemetry and the
/// serving layer's q-error drift detector — one definition of "p90" across
/// the whole observe→retrain loop.
pub fn quantile(samples: &mut [f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    Some(samples[rank - 1])
}

/// Per-run telemetry wiring threaded through [`run_epochs`]: which phase the
/// records belong to, where they go, and how chatty stderr is.
struct RunTelemetry<'a> {
    phase: &'static str,
    sink: Option<&'a dyn RunSink>,
    verbosity: Verbosity,
}

impl RunTelemetry<'_> {
    /// Whether per-epoch stats are worth computing at all.
    fn active(&self) -> bool {
        self.sink.is_some() || self.verbosity > Verbosity::Quiet
    }

    fn emit(&self, record: &EpochRecord) {
        if self.verbosity >= Verbosity::Epochs {
            eprintln!("{}", record.summary_line());
        }
        if let Some(sink) = self.sink {
            sink.epoch(record);
        }
    }
}

/// The shared mini-batch loop behind [`Trainer::fit`] and
/// [`DaceEstimator::fine_tune_lora`]: shuffle the plan order once, pack
/// every mini-batch once, then per epoch reshuffle only the *batch order*
/// and run one allocation-free block-diagonal forward/backward per batch
/// (workspace-compact path), one optimizer step per batch.
///
/// Epoch-persistent packing changes the schedule from per-epoch re-chunking
/// to a per-epoch permutation of fixed batches; every batch is still
/// visited exactly once per epoch in a seeded-random order, and
/// [`Trainer::fit_per_plan_reference`] mirrors the identical schedule for
/// the equivalence tests.
///
/// When `validation_fraction > 0` and `patience > 0`, a seeded validation
/// split (drawn from its own RNG stream so the shuffle stream is unchanged)
/// is scored after every epoch; training stops after `patience` epochs
/// without improvement and the best-scoring weights are restored.
#[allow(clippy::too_many_arguments)]
fn run_epochs(
    model: &mut DaceModel,
    adjuster: &LossAdjuster,
    feats: &[PlanFeatures],
    epochs: usize,
    lr: f32,
    batch_plans: usize,
    shuffle_seed: u64,
    validation_fraction: f32,
    patience: usize,
    telemetry: RunTelemetry<'_>,
) {
    // A serving snapshot (DaceModel::detach) has no optimizer state;
    // reallocate it so registry-loaded models can be fine-tuned directly.
    model.restore_training_state();
    let mut opt = Adam::new(lr);
    let mut rng = SmallRng::seed_from_u64(shuffle_seed);

    let early_stop = validation_fraction > 0.0 && patience > 0 && feats.len() >= 2;
    let (mut order, val_idx): (Vec<usize>, Vec<usize>) = if early_stop {
        // The split uses a dedicated RNG stream so enabling early stopping
        // does not perturb the mini-batch shuffle sequence.
        let mut split_rng = SmallRng::seed_from_u64(shuffle_seed ^ 0xDA7A_5B17);
        let mut idx: Vec<usize> = (0..feats.len()).collect();
        idx.shuffle(&mut split_rng);
        let val_len =
            ((feats.len() as f32 * validation_fraction) as usize).clamp(1, feats.len() - 1);
        let val = idx.split_off(feats.len() - val_len);
        (idx, val)
    } else {
        ((0..feats.len()).collect(), Vec::new())
    };

    // Pack every mini-batch once, before the first epoch. Plan membership
    // of each batch is frozen from here on; epochs permute the batch order.
    order.shuffle(&mut rng);
    let batches: Vec<PackedBatch> = order
        .chunks(batch_plans.max(1))
        .map(|chunk| {
            let refs: Vec<&PlanFeatures> = chunk.iter().map(|&i| &feats[i]).collect();
            PackedBatch::pack(&refs).expect("mini-batch chunks are non-empty")
        })
        .collect();
    let mut batch_order: Vec<usize> = (0..batches.len()).collect();
    // Reused gradient buffer: with the packs hoisted and the model running
    // on its workspace arena, the batch loop's steady state is
    // allocation-free.
    let mut d_buf = Tensor2::default();

    let telemetry_on = telemetry.active();
    let mut best_val = f32::INFINITY;
    let mut best_model: Option<DaceModel> = None;
    let mut bad_epochs = 0usize;
    for epoch in 0..epochs {
        let _span = span!("train_epoch");
        let epoch_started = Instant::now();
        batch_order.shuffle(&mut rng);
        let alloc_start = if telemetry_on {
            alloc_probe_bytes()
        } else {
            None
        };
        let mut loss_sum = 0.0f64;
        let mut batches_done = 0usize;
        let mut grad_norm = 0.0f64;
        for &bi in &batch_order {
            let packed = &batches[bi];
            model.forward_batch_compact(packed);
            let loss = packed_grad_compact(adjuster, model.batch_preds(), packed, &mut d_buf);
            loss_sum += f64::from(loss);
            batches_done += 1;
            model.backward_compact(&d_buf);
            if telemetry_on {
                // Gradient norm over the parameters the optimizer will
                // actually move (mirrors Adam's clip-norm accounting).
                let g: f32 = model
                    .params_mut()
                    .iter()
                    .filter(|p| p.trainable)
                    .map(|p| p.grad.norm_sq())
                    .sum();
                grad_norm = f64::from(g).sqrt();
            }
            opt.step(&mut model.params_mut());
        }
        // Sampled around the batch loop only: validation and snapshotting
        // below are allowed to allocate without polluting the metric.
        let alloc_bytes = alloc_delta(alloc_start);
        if let Some(bytes) = alloc_bytes {
            MetricsRegistry::global()
                .histogram("train_epoch_alloc_bytes")
                .record(bytes);
        }

        let mut val_loss = None;
        let mut qerrs: Vec<f64> = Vec::new();
        let decision = if early_stop {
            let (val, q) = validation_stats(model, adjuster, feats, &val_idx);
            val_loss = Some(f64::from(val));
            qerrs = q;
            if val < best_val {
                best_val = val;
                best_model = Some(model.clone());
                bad_epochs = 0;
                "improved".to_string()
            } else {
                bad_epochs += 1;
                if bad_epochs >= patience {
                    "stop".to_string()
                } else {
                    format!("patience {bad_epochs}/{patience}")
                }
            }
        } else {
            "continue".to_string()
        };

        if telemetry_on {
            telemetry.emit(&EpochRecord {
                phase: telemetry.phase.to_string(),
                epoch,
                epochs_planned: epochs,
                train_loss: loss_sum / batches_done.max(1) as f64,
                grad_norm,
                lr: f64::from(lr),
                epoch_ms: epoch_started.elapsed().as_secs_f64() * 1e3,
                val_loss,
                val_qerr_p50: quantile(&mut qerrs, 0.50),
                val_qerr_p90: quantile(&mut qerrs, 0.90),
                val_qerr_p99: quantile(&mut qerrs, 0.99),
                early_stop: decision,
                alloc_bytes,
                trace: dace_obs::current_trace(),
            });
        }
        if early_stop && bad_epochs >= patience {
            break;
        }
    }
    if let Some(best) = best_model {
        *model = best;
    }
    if let Some(sink) = telemetry.sink {
        sink.finish();
    }
}

/// The pre-workspace epoch loop, kept as the allocation/throughput
/// baseline: a full per-epoch plan shuffle followed by per-batch re-packing
/// and the padded (gather/scatter, layer-cache) forward/backward. This is
/// exactly what [`run_epochs`] did before epoch-persistent packing; the
/// `train_alloc` benchmark measures its per-epoch heap traffic against the
/// workspace loop's.
// Mirrors the historical `run_epochs` signature on purpose.
#[allow(clippy::too_many_arguments)]
fn run_epochs_repack_baseline(
    model: &mut DaceModel,
    adjuster: &LossAdjuster,
    feats: &[PlanFeatures],
    epochs: usize,
    lr: f32,
    batch_plans: usize,
    shuffle_seed: u64,
    telemetry: RunTelemetry<'_>,
) {
    model.restore_training_state();
    let mut opt = Adam::new(lr);
    let mut rng = SmallRng::seed_from_u64(shuffle_seed);
    let mut order: Vec<usize> = (0..feats.len()).collect();
    let telemetry_on = telemetry.active();
    for epoch in 0..epochs {
        let epoch_started = Instant::now();
        let alloc_start = if telemetry_on {
            alloc_probe_bytes()
        } else {
            None
        };
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for batch in order.chunks(batch_plans.max(1)) {
            let refs: Vec<&PlanFeatures> = batch.iter().map(|&i| &feats[i]).collect();
            let packed = PackedBatch::pack(&refs).expect("mini-batch chunks are non-empty");
            let preds = model.forward_batch_reference(&packed);
            let (loss, d_pred) = packed_grad(adjuster, &preds, &packed);
            loss_sum += f64::from(loss);
            batches += 1;
            model.backward(&d_pred);
            opt.step(&mut model.params_mut());
        }
        if telemetry_on {
            telemetry.emit(&EpochRecord {
                phase: telemetry.phase.to_string(),
                epoch,
                epochs_planned: epochs,
                train_loss: loss_sum / batches.max(1) as f64,
                grad_norm: 0.0,
                lr: f64::from(lr),
                epoch_ms: epoch_started.elapsed().as_secs_f64() * 1e3,
                val_loss: None,
                val_qerr_p50: None,
                val_qerr_p90: None,
                val_qerr_p99: None,
                early_stop: "continue".to_string(),
                alloc_bytes: alloc_delta(alloc_start),
                trace: dace_obs::current_trace(),
            });
        }
    }
    if let Some(sink) = telemetry.sink {
        sink.finish();
    }
}

/// Fits a [`DaceEstimator`] on a labeled dataset.
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    /// Hyper-parameters.
    pub config: TrainConfig,
    /// Per-epoch telemetry destination (run manifests); `None` trains
    /// without telemetry overhead.
    pub sink: Option<Arc<dyn RunSink>>,
}

impl Trainer {
    /// Trainer with a config.
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer { config, sink: None }
    }

    /// Trainer that reports every epoch to `sink` (e.g. a
    /// [`dace_obs::JsonlSink`] writing a `--manifest` file).
    pub fn with_sink(config: TrainConfig, sink: Arc<dyn RunSink>) -> Trainer {
        Trainer {
            config,
            sink: Some(sink),
        }
    }

    /// Pre-train DACE on `train` (plans from many databases).
    ///
    /// Featurization is sharded across threads; training runs the shared
    /// batched loop (one padded forward/backward per mini-batch). An empty
    /// dataset is a typed [`TrainError::EmptyDataset`], not a panic — the
    /// serving layer's auto-retrain feeds whatever its feedback window holds.
    pub fn fit(&self, train: &Dataset) -> Result<DaceEstimator, TrainError> {
        if train.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let cfg = self.config;
        let featurizer = Featurizer::fit(train, cfg.features);
        let mut model = DaceModel::new(cfg.seed);
        model.set_mode(LoraMode::Pretrain);
        let adjuster = LossAdjuster::new(cfg.alpha);

        // Featurize once; features are static during training.
        let feats = featurize_sharded(&featurizer, &train.plans, cfg.featurize_threads);
        run_epochs(
            &mut model,
            &adjuster,
            &feats,
            cfg.epochs,
            cfg.lr,
            cfg.batch_plans,
            cfg.seed ^ 0x5417,
            cfg.validation_fraction,
            cfg.patience,
            RunTelemetry {
                phase: "pretrain",
                sink: self.sink.as_deref(),
                verbosity: cfg.verbosity,
            },
        );
        Ok(DaceEstimator {
            model,
            featurizer,
            adjuster,
            config: cfg,
        })
    }

    /// [`fit`] through the pre-workspace epoch loop
    /// ([`run_epochs_repack_baseline`]): per-epoch re-shuffling and
    /// re-packing with the padded, allocating forward/backward. Kept as the
    /// measured "before" of the zero-allocation work — the `train_alloc`
    /// benchmark compares its heap traffic and throughput against [`fit`].
    /// Ignores early stopping (the baseline predates it in the bench).
    ///
    /// [`fit`]: Trainer::fit
    pub fn fit_baseline_repack(&self, train: &Dataset) -> Result<DaceEstimator, TrainError> {
        if train.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let cfg = self.config;
        let featurizer = Featurizer::fit(train, cfg.features);
        let mut model = DaceModel::new(cfg.seed);
        model.set_mode(LoraMode::Pretrain);
        let adjuster = LossAdjuster::new(cfg.alpha);
        let feats = featurize_sharded(&featurizer, &train.plans, cfg.featurize_threads);
        run_epochs_repack_baseline(
            &mut model,
            &adjuster,
            &feats,
            cfg.epochs,
            cfg.lr,
            cfg.batch_plans,
            cfg.seed ^ 0x5417,
            RunTelemetry {
                phase: "pretrain-repack-baseline",
                sink: self.sink.as_deref(),
                verbosity: cfg.verbosity,
            },
        );
        Ok(DaceEstimator {
            model,
            featurizer,
            adjuster,
            config: cfg,
        })
    }

    /// The pre-batching per-plan training loop, kept as the reference
    /// implementation: one forward/backward per plan with gradient
    /// accumulation across the mini-batch, on the same schedule as [`fit`]
    /// (plan order shuffled once, fixed batch membership, per-epoch batch
    /// permutation). Gradient-identical to [`fit`]'s batched loop up to
    /// floating-point summation order — the property tests assert agreement
    /// to 1e-4. Also serves as the benchmark baseline for the
    /// batched-throughput comparison.
    ///
    /// [`fit`]: Trainer::fit
    pub fn fit_per_plan_reference(&self, train: &Dataset) -> Result<DaceEstimator, TrainError> {
        if train.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let cfg = self.config;
        let featurizer = Featurizer::fit(train, cfg.features);
        let mut model = DaceModel::new(cfg.seed);
        model.set_mode(LoraMode::Pretrain);
        let adjuster = LossAdjuster::new(cfg.alpha);

        let feats: Vec<PlanFeatures> = train
            .plans
            .iter()
            .map(|p| featurizer.encode(&p.tree))
            .collect();

        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..feats.len()).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5417);
        // Mirror run_epochs' epoch-persistent schedule exactly: one plan
        // shuffle up front, fixed batch membership, then a per-epoch
        // permutation of the batch order from the same RNG stream.
        order.shuffle(&mut rng);
        let chunks: Vec<Vec<usize>> = order
            .chunks(cfg.batch_plans.max(1))
            .map(|c| c.to_vec())
            .collect();
        let mut batch_order: Vec<usize> = (0..chunks.len()).collect();
        for _epoch in 0..cfg.epochs {
            batch_order.shuffle(&mut rng);
            for &bi in &batch_order {
                let batch = &chunks[bi];
                for &i in batch {
                    let f = &feats[i];
                    let preds = model.forward(f);
                    let pred_slice: Vec<f32> = (0..preds.rows()).map(|r| preds.get(r, 0)).collect();
                    let (_, grad) = adjuster.loss_and_grad(&pred_slice, &f.targets, &f.heights);
                    let mut d_pred = Tensor2::zeros(preds.rows(), 1);
                    let inv_batch = 1.0 / batch.len() as f32;
                    for (r, g) in grad.iter().enumerate() {
                        d_pred.set(r, 0, g * inv_batch);
                    }
                    model.backward(&d_pred);
                }
                opt.step(&mut model.params_mut());
            }
        }
        Ok(DaceEstimator {
            model,
            featurizer,
            adjuster,
            config: cfg,
        })
    }
}

/// A trained DACE estimator: model + featurizer + loss adjuster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaceEstimator {
    /// The network.
    pub model: DaceModel,
    /// The fitted featurizer (part of the pre-trained artifact).
    pub featurizer: Featurizer,
    /// The loss adjuster used in (fine-)training.
    pub adjuster: LossAdjuster,
    /// The training configuration.
    pub config: TrainConfig,
}

impl DaceEstimator {
    /// Predict a plan's latency in milliseconds (root node only — inference
    /// has no sub-plan overhead, Sec. V-E).
    pub fn predict_ms(&self, tree: &PlanTree) -> f64 {
        let feats = self.featurizer.encode(tree);
        Featurizer::to_ms(self.model.predict_root(&feats))
    }

    /// Per-sub-plan latency predictions (ms), DFS order — the parallel
    /// sub-plan prediction of Eq. 6.
    pub fn predict_subplans_ms(&self, tree: &PlanTree) -> Vec<f64> {
        let feats = self.featurizer.encode(tree);
        let preds = self.model.predict(&feats);
        (0..preds.rows())
            .map(|r| Featurizer::to_ms(preds.get(r, 0)))
            .collect()
    }

    /// The pre-trained-encoder interface: the plan's `h₂` embedding (Eq. 9),
    /// for knowledge integration into within-database models.
    pub fn encode(&self, tree: &PlanTree) -> Vec<f32> {
        let feats = self.featurizer.encode(tree);
        self.model.encode(&feats)
    }

    /// Batched latency prediction (ms): featurize all plans (sharded across
    /// threads, same code path as training), pack them in chunks of
    /// `config.batch_plans`, and run one block-diagonal forward per chunk.
    /// Output order matches `trees`.
    pub fn predict_batch_ms(&self, trees: &[&PlanTree]) -> Vec<f64> {
        let feats = featurize_trees_sharded(&self.featurizer, trees, self.config.featurize_threads);
        let refs: Vec<&PlanFeatures> = feats.iter().collect();
        self.predict_features_batch_ms(&refs)
    }

    /// Batch-entry prediction over already-featurized plans — the serving
    /// scheduler's path, where features come from a cache rather than fresh
    /// featurization. Chunks by `config.batch_plans`; output order matches
    /// `feats`.
    pub fn predict_features_batch_ms(&self, feats: &[&PlanFeatures]) -> Vec<f64> {
        self.predict_features_batch_ms_timed(feats).0
    }

    /// [`predict_features_batch_ms`] with the attention/MLP wall-time split
    /// accumulated across chunks — the serve scheduler's stage-telemetry
    /// entry point.
    ///
    /// [`predict_features_batch_ms`]: DaceEstimator::predict_features_batch_ms
    pub fn predict_features_batch_ms_timed(
        &self,
        feats: &[&PlanFeatures],
    ) -> (Vec<f64>, ForwardTimings) {
        let mut ws = Workspace::new();
        let mut roots = Vec::new();
        let mut out = Vec::new();
        let timings = self.predict_features_batch_ms_timed_ws(feats, &mut ws, &mut roots, &mut out);
        (out, timings)
    }

    /// [`predict_features_batch_ms_timed`] over caller-owned scratch — the
    /// serve worker's steady-state entry point. The workspace and the
    /// `roots` staging vector are reused across calls (no allocation once
    /// they reach the high-water batch size); millisecond predictions are
    /// appended to `out` (cleared first), aligned with `feats`.
    ///
    /// Chunks run on the compact layout ([`DaceModel::predict_roots`]): no
    /// padding rows exist, so mixed plan sizes cost nothing and chunking
    /// needs no size sorting — plain input-order chunks keep the output
    /// aligned for free.
    ///
    /// [`predict_features_batch_ms_timed`]: DaceEstimator::predict_features_batch_ms_timed
    pub fn predict_features_batch_ms_timed_ws(
        &self,
        feats: &[&PlanFeatures],
        ws: &mut Workspace,
        roots: &mut Vec<f32>,
        out: &mut Vec<f64>,
    ) -> ForwardTimings {
        let chunk = self.config.batch_plans.max(1);
        out.clear();
        let mut timings = ForwardTimings::default();
        for group in feats.chunks(chunk) {
            let t = self.model.predict_roots_timed_ws(group, ws, roots);
            timings.accumulate(t);
            out.extend(roots.iter().map(|&r| Featurizer::to_ms(r)));
        }
        timings
    }

    /// One block-diagonal inference pass over an already-packed batch:
    /// per-plan root latency (ms). The lowest-level batch entry point.
    pub fn predict_packed_ms(&self, packed: &PackedBatch) -> Vec<f64> {
        self.model
            .predict_batch(packed)
            .into_iter()
            .map(Featurizer::to_ms)
            .collect()
    }

    /// Extract the current LoRA adapter (the complete fine-tuned state) for
    /// hand-off to a serving registry.
    pub fn extract_adapter(&self) -> LoraAdapter {
        self.model.extract_adapter()
    }

    /// A copy of this estimator with `adapter` installed — base weights,
    /// featurizer and config shared unchanged. All-or-nothing on shape
    /// mismatch.
    pub fn with_adapter(&self, adapter: &LoraAdapter) -> Result<DaceEstimator, AdapterError> {
        let mut est = self.clone();
        est.model.apply_adapter(adapter)?;
        Ok(est)
    }

    /// An inference-only copy: identical predictions, but every parameter's
    /// optimizer state is dropped ([`DaceModel::detach`]), cutting the
    /// snapshot to a quarter of the training-time memory. This is what the
    /// serving registry publishes. Fine-tuning such a copy transparently
    /// reallocates the state.
    pub fn serving_clone(&self) -> DaceEstimator {
        let mut est = self.clone();
        est.model.detach();
        est
    }

    /// LoRA fine-tuning (the across-more adaptation, Sec. IV-D): freezes
    /// every base weight and trains only the MLP adapters `ΔW = B·A` on the
    /// new data. Runs the same shared batched loop as [`Trainer::fit`]
    /// (distinct shuffle stream), honoring the config's early-stopping
    /// settings. An empty dataset returns [`TrainError::EmptyDataset`] with
    /// the estimator untouched.
    pub fn fine_tune_lora(
        &mut self,
        data: &Dataset,
        epochs: usize,
        lr: f32,
    ) -> Result<(), TrainError> {
        self.fine_tune_lora_with_sink(data, epochs, lr, None)
    }

    /// [`fine_tune_lora`] with per-epoch telemetry: records go to `sink`
    /// under phase `"lora"`, and the config's verbosity gates stderr
    /// progress, exactly as in pre-training.
    ///
    /// [`fine_tune_lora`]: DaceEstimator::fine_tune_lora
    pub fn fine_tune_lora_with_sink(
        &mut self,
        data: &Dataset,
        epochs: usize,
        lr: f32,
        sink: Option<&dyn RunSink>,
    ) -> Result<(), TrainError> {
        if data.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        self.model.set_mode(LoraMode::Finetune);
        let feats = featurize_sharded(&self.featurizer, &data.plans, self.config.featurize_threads);
        run_epochs(
            &mut self.model,
            &self.adjuster,
            &feats,
            epochs,
            lr,
            self.config.batch_plans,
            self.config.seed ^ 0xF17E,
            self.config.validation_fraction,
            self.config.patience,
            RunTelemetry {
                phase: "lora",
                sink,
                verbosity: self.config.verbosity,
            },
        );
        Ok(())
    }

    /// The incremental fine-tune entry point for online adaptation: LoRA
    /// fine-tune a *copy* of this estimator on `data` and return it,
    /// leaving `self` untouched. This is what a background retrain thread
    /// calls against the currently-serving snapshot — the candidate it
    /// returns goes through shadow evaluation before any registry
    /// promotion, so the serving model must never be mutated in place.
    pub fn fine_tuned_clone(
        &self,
        data: &Dataset,
        epochs: usize,
        lr: f32,
    ) -> Result<DaceEstimator, TrainError> {
        let mut candidate = self.clone();
        candidate.fine_tune_lora(data, epochs, lr)?;
        Ok(candidate)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("estimator serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<DaceEstimator, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_plan::{LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};
    use rand::Rng;

    /// Synthetic learnable dataset: latency = f(node type mix, est cost)
    /// with a per-operator multiplier the model must discover.
    fn synthetic_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plans = (0..n)
            .map(|_| {
                let mut b = TreeBuilder::new();
                let scan_cost = rng.gen_range(10.0..10_000.0f64);
                let scan_rows = scan_cost * rng.gen_range(5.0..15.0);
                let use_hash = rng.gen_bool(0.5);
                let scan = {
                    let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                    node.est_cost = scan_cost;
                    node.est_rows = scan_rows;
                    node.actual_ms = scan_cost * 0.004;
                    node.actual_rows = scan_rows;
                    b.leaf(node)
                };
                let scan2 = {
                    let mut node = PlanNode::new(NodeType::IndexScan, OpPayload::Other);
                    node.est_cost = scan_cost * 0.3;
                    node.est_rows = scan_rows * 0.1;
                    node.actual_ms = scan_cost * 0.01; // index 10× slower/unit than est
                    node.actual_rows = scan_rows * 0.1;
                    b.leaf(node)
                };
                let join_ty = if use_hash {
                    NodeType::HashJoin
                } else {
                    NodeType::NestedLoop
                };
                // Hash joins are 2× cheaper per cost unit than nested loops:
                // the operator-dependent EDQO the model must learn.
                let mult = if use_hash { 0.002 } else { 0.02 };
                let root = {
                    let mut node = PlanNode::new(join_ty, OpPayload::Other);
                    node.est_cost = scan_cost * 2.0;
                    node.est_rows = scan_rows;
                    node.actual_ms = scan_cost * 2.0 * mult + scan_cost * 0.014;
                    node.actual_rows = scan_rows;
                    b.internal(node, vec![scan, scan2])
                };
                LabeledPlan {
                    tree: b.finish(root),
                    db_id: 0,
                    machine: MachineId::M1,
                }
            })
            .collect();
        Dataset::from_plans(plans)
    }

    fn median_qerror(est: &DaceEstimator, ds: &Dataset) -> f64 {
        let mut qs: Vec<f64> = ds
            .plans
            .iter()
            .map(|p| {
                let pred = est.predict_ms(&p.tree).max(1e-6);
                let actual = p.latency_ms().max(1e-6);
                (pred / actual).max(actual / pred)
            })
            .collect();
        qs.sort_by(f64::total_cmp);
        qs[qs.len() / 2]
    }

    #[test]
    fn learns_operator_dependent_cost_correction() {
        let train = synthetic_dataset(400, 1);
        let test = synthetic_dataset(100, 2);
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            ..Default::default()
        });
        let est = trainer.fit(&train).unwrap();
        let q = median_qerror(&est, &test);
        assert!(
            q < 1.5,
            "median qerror {q} too high — model failed to learn"
        );
    }

    #[test]
    fn subplan_predictions_cover_every_node() {
        let train = synthetic_dataset(50, 3);
        let est = Trainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        let preds = est.predict_subplans_ms(&train.plans[0].tree);
        assert_eq!(preds.len(), train.plans[0].tree.len());
        assert!(preds.iter().all(|&p| p > 0.0 && p.is_finite()));
    }

    #[test]
    fn lora_fine_tune_adapts_to_shifted_latencies() {
        let train = synthetic_dataset(300, 4);
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            ..Default::default()
        });
        let mut est = trainer.fit(&train).unwrap();

        // "Machine 2": every latency is 3× slower.
        let mut shifted = synthetic_dataset(300, 5);
        for p in &mut shifted.plans {
            for id in p.tree.ids().collect::<Vec<_>>() {
                p.tree.node_mut(id).actual_ms *= 3.0;
            }
        }
        let before = median_qerror(&est, &shifted);
        est.fine_tune_lora(&shifted, 40, 2e-3).unwrap();
        let after = median_qerror(&est, &shifted);
        assert!(
            after < before,
            "fine-tuning did not help: {before} → {after}"
        );
        assert!(after < 1.8, "fine-tuned qerror {after} too high");
        // Base weights stayed frozen during fine-tuning, so the original
        // distribution is still predicted sanely through W (ΔW absorbed the
        // shift): check that fine-tuned predictions moved ~3×.
        let p0 = &train.plans[0].tree;
        let pred = est.predict_ms(p0);
        assert!(pred.is_finite() && pred > 0.0);
    }

    #[test]
    fn estimator_roundtrips_through_json() {
        let train = synthetic_dataset(40, 6);
        let est = Trainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        let json = est.to_json();
        let restored = DaceEstimator::from_json(&json).unwrap();
        let t = &train.plans[0].tree;
        assert!((est.predict_ms(t) - restored.predict_ms(t)).abs() < 1e-9);
        assert_eq!(est.encode(t), restored.encode(t));
    }

    #[test]
    fn training_is_deterministic() {
        let train = synthetic_dataset(60, 7);
        let cfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = Trainer::new(cfg).fit(&train).unwrap();
        let b = Trainer::new(cfg).fit(&train).unwrap();
        let t = &train.plans[0].tree;
        assert_eq!(a.predict_ms(t), b.predict_ms(t));
    }

    #[test]
    fn batched_fit_matches_per_plan_reference() {
        // Two optimizer steps keep floating-point drift between the batched
        // and per-plan loops far below the assertion tolerance; the loops
        // see identical shuffles, batches and initial weights.
        let train = synthetic_dataset(60, 9);
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let batched = Trainer::new(cfg).fit(&train).unwrap();
        let reference = Trainer::new(cfg).fit_per_plan_reference(&train).unwrap();
        for p in &train.plans {
            let a = batched.predict_ms(&p.tree).ln();
            let b = reference.predict_ms(&p.tree).ln();
            assert!(
                (a - b).abs() < 1e-3,
                "batched {a} vs per-plan {b} log-ms diverged"
            );
        }
    }

    /// The two pillars of epoch-persistent packing, proven bit-exactly:
    /// training on batches packed once and visited in a permuted order is
    /// identical to re-packing the same plan chunks from scratch every
    /// step, and the workspace-compact forward/backward is identical to the
    /// padded reference chain.
    #[test]
    fn persistent_packing_matches_per_epoch_repacking() {
        let train = synthetic_dataset(60, 31);
        let featurizer = Featurizer::fit(&train, FeatureConfig::default());
        let feats: Vec<PlanFeatures> = train
            .plans
            .iter()
            .map(|p| featurizer.encode(&p.tree))
            .collect();
        let adjuster = LossAdjuster::new(0.5);

        let mut a = DaceModel::new(42);
        a.set_mode(LoraMode::Pretrain);
        let mut b = a.clone();
        let mut opt_a = Adam::new(1e-3);
        let mut opt_b = Adam::new(1e-3);

        // Fixed plan order, chunked once: 60 plans / 16 → 4 batches.
        let order: Vec<usize> = (0..feats.len()).collect();
        let chunks: Vec<Vec<usize>> = order.chunks(16).map(|c| c.to_vec()).collect();
        let packed: Vec<PackedBatch> = chunks
            .iter()
            .map(|c| {
                let refs: Vec<&PlanFeatures> = c.iter().map(|&i| &feats[i]).collect();
                PackedBatch::pack(&refs).unwrap()
            })
            .collect();
        // Three epochs of arbitrary batch permutations.
        let perms = [vec![2usize, 0, 3, 1], vec![1, 3, 0, 2], vec![3, 2, 1, 0]];

        let mut d_buf = Tensor2::default();
        for perm in &perms {
            for &bi in perm {
                // Workspace path over the pre-packed batch.
                a.forward_batch_compact(&packed[bi]);
                let _ = packed_grad_compact(&adjuster, a.batch_preds(), &packed[bi], &mut d_buf);
                a.backward_compact(&d_buf);
                opt_a.step(&mut a.params_mut());
                // Reference path re-packing the same chunk from scratch.
                let refs: Vec<&PlanFeatures> = chunks[bi].iter().map(|&i| &feats[i]).collect();
                let fresh = PackedBatch::pack(&refs).unwrap();
                let preds = b.forward_batch_reference(&fresh);
                let (_, d) = packed_grad(&adjuster, &preds, &fresh);
                b.backward(&d);
                opt_b.step(&mut b.params_mut());
            }
        }
        for (pa, pb) in a.params_mut().iter().zip(b.params_mut().iter()) {
            assert_eq!(
                pa.value.as_slice(),
                pb.value.as_slice(),
                "persistent-packed workspace training diverged from repacking"
            );
        }
    }

    #[test]
    fn predict_batch_matches_single_plan_predictions() {
        let train = synthetic_dataset(80, 10);
        let est = Trainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        let trees: Vec<&PlanTree> = train.plans.iter().map(|p| &p.tree).collect();
        let batch = est.predict_batch_ms(&trees);
        assert_eq!(batch.len(), trees.len());
        for (tree, &b) in trees.iter().zip(&batch) {
            let single = est.predict_ms(tree);
            // Same weights, same math up to padded-kernel summation order.
            assert!(
                ((b.ln() - single.ln()).abs()) < 1e-4,
                "batched {b} vs single {single}"
            );
        }
    }

    #[test]
    fn lora_fine_tune_with_zero_lr_is_identity() {
        // Regression: the shared loop must not mutate weights through any
        // side channel (Adam state, packing, mode switches) when lr = 0.
        let train = synthetic_dataset(50, 11);
        let mut est = Trainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        let before: Vec<f64> = train
            .plans
            .iter()
            .map(|p| est.predict_ms(&p.tree))
            .collect();
        est.fine_tune_lora(&train, 3, 0.0).unwrap();
        let after: Vec<f64> = train
            .plans
            .iter()
            .map(|p| est.predict_ms(&p.tree))
            .collect();
        assert_eq!(before, after, "lr=0 fine-tune changed predictions");
    }

    #[test]
    fn early_stopping_halts_and_restores_best_weights() {
        let train = synthetic_dataset(120, 12);
        let with_es = Trainer::new(TrainConfig {
            epochs: 40,
            validation_fraction: 0.2,
            patience: 2,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        // Early stopping must leave a usable model behind.
        let q = median_qerror(&with_es, &train);
        assert!(q.is_finite() && q >= 1.0);
        // And with it disabled the same config still trains the fixed
        // number of epochs and yields identical results run-to-run.
        let a = Trainer::new(TrainConfig {
            epochs: 3,
            validation_fraction: 0.2,
            patience: 2,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        let b = Trainer::new(TrainConfig {
            epochs: 3,
            validation_fraction: 0.2,
            patience: 2,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        assert_eq!(
            a.predict_ms(&train.plans[0].tree),
            b.predict_ms(&train.plans[0].tree),
            "early stopping broke determinism"
        );
    }

    #[test]
    fn sharded_featurization_matches_sequential() {
        let train = synthetic_dataset(100, 13);
        let f = Featurizer::fit(&train, FeatureConfig::default());
        let seq = featurize_sharded(&f, &train.plans, 1);
        let par = featurize_sharded(&f, &train.plans, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.targets, b.targets);
            assert_eq!(a.mask, b.mask);
        }
    }

    #[test]
    fn adapter_extraction_roundtrips_fine_tuned_state() {
        let train = synthetic_dataset(120, 20);
        let trainer = Trainer::new(TrainConfig {
            epochs: 6,
            ..Default::default()
        });
        let base = trainer.fit(&train).unwrap();

        let mut shifted = synthetic_dataset(120, 21);
        for p in &mut shifted.plans {
            for id in p.tree.ids().collect::<Vec<_>>() {
                p.tree.node_mut(id).actual_ms *= 2.0;
            }
        }
        let mut tuned = base.clone();
        tuned.fine_tune_lora(&shifted, 5, 2e-3).unwrap();

        // base + extracted adapter ≡ the fine-tuned estimator, bit-exactly.
        let adapter = tuned.extract_adapter();
        let restored = base.with_adapter(&adapter).unwrap();
        for p in shifted.plans.iter().take(10) {
            assert_eq!(restored.predict_ms(&p.tree), tuned.predict_ms(&p.tree));
        }
        // And the JSON hand-off preserves it exactly too.
        let via_json = LoraAdapter::from_json(&adapter.to_json()).unwrap();
        assert_eq!(via_json, adapter);
        // A wrong-shape adapter is rejected atomically: predictions after a
        // failed install match the untouched base.
        let bad = LoraAdapter {
            layers: adapter.layers[..2].to_vec(),
        };
        assert!(base.with_adapter(&bad).is_err());
    }

    #[test]
    fn serving_clone_predicts_identically_and_stays_tunable() {
        let train = synthetic_dataset(60, 22);
        let est = Trainer::new(TrainConfig {
            epochs: 3,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        let mut served = est.serving_clone();
        for p in train.plans.iter().take(8) {
            assert_eq!(served.predict_ms(&p.tree), est.predict_ms(&p.tree));
        }
        let trees: Vec<&PlanTree> = train.plans.iter().map(|p| &p.tree).collect();
        assert_eq!(
            served.predict_batch_ms(&trees),
            est.predict_batch_ms(&trees)
        );
        // Detached state must transparently reallocate when training resumes.
        served.fine_tune_lora(&train, 1, 1e-3).unwrap();
        assert!(served.predict_ms(&train.plans[0].tree).is_finite());
    }

    #[test]
    fn predict_features_batch_matches_tree_batch() {
        let train = synthetic_dataset(70, 23);
        let est = Trainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        let trees: Vec<&PlanTree> = train.plans.iter().map(|p| &p.tree).collect();
        let feats = featurize_trees_sharded(&est.featurizer, &trees, 4);
        let refs: Vec<&PlanFeatures> = feats.iter().collect();
        assert_eq!(
            est.predict_features_batch_ms(&refs),
            est.predict_batch_ms(&trees)
        );
    }

    #[test]
    fn fingerprints_separate_structure_and_survive_identical_plans() {
        let train = synthetic_dataset(40, 24);
        let f = Featurizer::fit(&train, FeatureConfig::default());
        let a = f.fingerprint(&train.plans[0].tree);
        assert_eq!(
            a,
            f.fingerprint(&train.plans[0].tree.clone()),
            "fingerprint must be deterministic"
        );
        // Different cost profiles ⇒ different fingerprints.
        assert_ne!(a, f.fingerprint(&train.plans[1].tree));
        // A different featurizer (refitted scalers) keys differently, so a
        // base swap can never serve stale cached features.
        let f2 = Featurizer::fit(&synthetic_dataset(40, 25), FeatureConfig::default());
        assert_ne!(a, f2.fingerprint(&train.plans[0].tree));
    }

    #[test]
    fn telemetry_sink_sees_every_epoch_without_perturbing_training() {
        use dace_obs::MemorySink;

        let train = synthetic_dataset(80, 30);
        let cfg = TrainConfig {
            epochs: 4,
            validation_fraction: 0.25,
            patience: 10,
            ..Default::default()
        };
        let silent = Trainer::new(cfg).fit(&train).unwrap();
        let sink = Arc::new(MemorySink::new());
        let observed = Trainer::with_sink(cfg, Arc::clone(&sink) as Arc<dyn RunSink>)
            .fit(&train)
            .unwrap();
        // Telemetry must be a pure observer: bit-identical training.
        assert_eq!(
            silent.predict_ms(&train.plans[0].tree),
            observed.predict_ms(&train.plans[0].tree),
            "attaching a sink changed training"
        );

        let records = sink.records();
        assert_eq!(records.len(), 4, "one record per epoch");
        for (e, r) in records.iter().enumerate() {
            assert_eq!(r.phase, "pretrain");
            assert_eq!(r.epoch, e);
            assert_eq!(r.epochs_planned, 4);
            assert!(r.train_loss.is_finite() && r.train_loss > 0.0);
            assert!(r.grad_norm.is_finite() && r.grad_norm > 0.0);
            assert!(r.epoch_ms >= 0.0);
            let p50 = r.val_qerr_p50.expect("validation split active");
            let p99 = r.val_qerr_p99.expect("validation split active");
            assert!(p50 >= 1.0 && p99 >= p50, "q-error quantiles out of order");
            assert!(r.val_loss.is_some());
            assert!(
                matches!(r.early_stop.as_str(), "improved" | "stop" | "continue")
                    || r.early_stop.starts_with("patience")
            );
        }
        // Loss should broadly improve over the run.
        assert!(
            records.last().unwrap().train_loss < records[0].train_loss,
            "training loss did not decrease"
        );

        // Fine-tuning reports under its own phase.
        let mut est = observed;
        let ft_sink = MemorySink::new();
        est.fine_tune_lora_with_sink(&train, 2, 1e-3, Some(&ft_sink))
            .unwrap();
        let ft = ft_sink.records();
        assert_eq!(ft.len(), 2);
        assert!(ft.iter().all(|r| r.phase == "lora"));
    }

    #[test]
    fn encoder_embeddings_distinguish_plans() {
        let train = synthetic_dataset(100, 8);
        let est = Trainer::new(TrainConfig {
            epochs: 10,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        let e1 = est.encode(&train.plans[0].tree);
        let e2 = est.encode(&train.plans[1].tree);
        assert_eq!(e1.len(), crate::model::ENCODING_DIM);
        assert_ne!(e1, e2, "embeddings should differ across plans");
    }
}
