//! Training, LoRA fine-tuning and the estimator facade.

use dace_nn::{Adam, LoraMode};
use dace_plan::{Dataset, PlanTree};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::featurize::{FeatureConfig, Featurizer, PlanFeatures};
use crate::loss::LossAdjuster;
use crate::model::DaceModel;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Plans per optimizer step (gradient accumulation batch).
    pub batch_plans: usize,
    /// Loss-adjuster α (0 = root only, 1 = uniform, 0.5 = paper's value).
    pub alpha: f32,
    /// Initialization / shuffling seed.
    pub seed: u64,
    /// Featurization variant flags (ablations).
    pub features: FeatureConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            lr: 1e-3,
            batch_plans: 64,
            alpha: 0.5,
            seed: 0xDACE,
            features: FeatureConfig::default(),
        }
    }
}

/// Fits a [`DaceEstimator`] on a labeled dataset.
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    /// Hyper-parameters.
    pub config: TrainConfig,
}

impl Trainer {
    /// Trainer with a config.
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer { config }
    }

    /// Pre-train DACE on `train` (plans from many databases).
    pub fn fit(&self, train: &Dataset) -> DaceEstimator {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        let cfg = self.config;
        let featurizer = Featurizer::fit(train, cfg.features);
        let mut model = DaceModel::new(cfg.seed);
        model.set_mode(LoraMode::Pretrain);
        let adjuster = LossAdjuster::new(cfg.alpha);

        // Featurize once; features are static during training.
        let feats: Vec<PlanFeatures> = train
            .plans
            .iter()
            .map(|p| featurizer.encode(&p.tree))
            .collect();

        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..feats.len()).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5417);
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(cfg.batch_plans.max(1)) {
                for &i in batch {
                    let f = &feats[i];
                    let preds = model.forward(f);
                    let pred_slice: Vec<f32> =
                        (0..preds.rows()).map(|r| preds.get(r, 0)).collect();
                    let (_, grad) = adjuster.loss_and_grad(&pred_slice, &f.targets, &f.heights);
                    let mut d_pred = dace_nn::Tensor2::zeros(preds.rows(), 1);
                    let inv_batch = 1.0 / batch.len() as f32;
                    for (r, g) in grad.iter().enumerate() {
                        d_pred.set(r, 0, g * inv_batch);
                    }
                    model.backward(&d_pred);
                }
                opt.step(&mut model.params_mut());
            }
        }
        DaceEstimator {
            model,
            featurizer,
            adjuster,
            config: cfg,
        }
    }
}

/// A trained DACE estimator: model + featurizer + loss adjuster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaceEstimator {
    /// The network.
    pub model: DaceModel,
    /// The fitted featurizer (part of the pre-trained artifact).
    pub featurizer: Featurizer,
    /// The loss adjuster used in (fine-)training.
    pub adjuster: LossAdjuster,
    /// The training configuration.
    pub config: TrainConfig,
}

impl DaceEstimator {
    /// Predict a plan's latency in milliseconds (root node only — inference
    /// has no sub-plan overhead, Sec. V-E).
    pub fn predict_ms(&self, tree: &PlanTree) -> f64 {
        let feats = self.featurizer.encode(tree);
        Featurizer::to_ms(self.model.predict_root(&feats))
    }

    /// Per-sub-plan latency predictions (ms), DFS order — the parallel
    /// sub-plan prediction of Eq. 6.
    pub fn predict_subplans_ms(&self, tree: &PlanTree) -> Vec<f64> {
        let feats = self.featurizer.encode(tree);
        let preds = self.model.predict(&feats);
        (0..preds.rows())
            .map(|r| Featurizer::to_ms(preds.get(r, 0)))
            .collect()
    }

    /// The pre-trained-encoder interface: the plan's `h₂` embedding (Eq. 9),
    /// for knowledge integration into within-database models.
    pub fn encode(&self, tree: &PlanTree) -> Vec<f32> {
        let feats = self.featurizer.encode(tree);
        self.model.encode(&feats)
    }

    /// LoRA fine-tuning (the across-more adaptation, Sec. IV-D): freezes
    /// every base weight and trains only the MLP adapters `ΔW = B·A` on the
    /// new data.
    pub fn fine_tune_lora(&mut self, data: &Dataset, epochs: usize, lr: f32) {
        assert!(!data.is_empty(), "cannot fine-tune on an empty dataset");
        self.model.set_mode(LoraMode::Finetune);
        let feats: Vec<PlanFeatures> = data
            .plans
            .iter()
            .map(|p| self.featurizer.encode(&p.tree))
            .collect();
        let mut opt = Adam::new(lr);
        let mut order: Vec<usize> = (0..feats.len()).collect();
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0xF17E);
        let batch_plans = self.config.batch_plans.max(1);
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(batch_plans) {
                for &i in batch {
                    let f = &feats[i];
                    let preds = self.model.forward(f);
                    let pred_slice: Vec<f32> =
                        (0..preds.rows()).map(|r| preds.get(r, 0)).collect();
                    let (_, grad) =
                        self.adjuster.loss_and_grad(&pred_slice, &f.targets, &f.heights);
                    let mut d_pred = dace_nn::Tensor2::zeros(preds.rows(), 1);
                    let inv_batch = 1.0 / batch.len() as f32;
                    for (r, g) in grad.iter().enumerate() {
                        d_pred.set(r, 0, g * inv_batch);
                    }
                    self.model.backward(&d_pred);
                }
                opt.step(&mut self.model.params_mut());
            }
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("estimator serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<DaceEstimator, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_plan::{LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, TreeBuilder};
    use rand::Rng;

    /// Synthetic learnable dataset: latency = f(node type mix, est cost)
    /// with a per-operator multiplier the model must discover.
    fn synthetic_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let plans = (0..n)
            .map(|_| {
                let mut b = TreeBuilder::new();
                let scan_cost = rng.gen_range(10.0..10_000.0f64);
                let scan_rows = scan_cost * rng.gen_range(5.0..15.0);
                let use_hash = rng.gen_bool(0.5);
                let scan = {
                    let mut node = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                    node.est_cost = scan_cost;
                    node.est_rows = scan_rows;
                    node.actual_ms = scan_cost * 0.004;
                    node.actual_rows = scan_rows;
                    b.leaf(node)
                };
                let scan2 = {
                    let mut node = PlanNode::new(NodeType::IndexScan, OpPayload::Other);
                    node.est_cost = scan_cost * 0.3;
                    node.est_rows = scan_rows * 0.1;
                    node.actual_ms = scan_cost * 0.01; // index 10× slower/unit than est
                    node.actual_rows = scan_rows * 0.1;
                    b.leaf(node)
                };
                let join_ty = if use_hash {
                    NodeType::HashJoin
                } else {
                    NodeType::NestedLoop
                };
                // Hash joins are 2× cheaper per cost unit than nested loops:
                // the operator-dependent EDQO the model must learn.
                let mult = if use_hash { 0.002 } else { 0.02 };
                let root = {
                    let mut node = PlanNode::new(join_ty, OpPayload::Other);
                    node.est_cost = scan_cost * 2.0;
                    node.est_rows = scan_rows;
                    node.actual_ms = scan_cost * 2.0 * mult + scan_cost * 0.014;
                    node.actual_rows = scan_rows;
                    b.internal(node, vec![scan, scan2])
                };
                LabeledPlan {
                    tree: b.finish(root),
                    db_id: 0,
                    machine: MachineId::M1,
                }
            })
            .collect();
        Dataset::from_plans(plans)
    }

    fn median_qerror(est: &DaceEstimator, ds: &Dataset) -> f64 {
        let mut qs: Vec<f64> = ds
            .plans
            .iter()
            .map(|p| {
                let pred = est.predict_ms(&p.tree).max(1e-6);
                let actual = p.latency_ms().max(1e-6);
                (pred / actual).max(actual / pred)
            })
            .collect();
        qs.sort_by(f64::total_cmp);
        qs[qs.len() / 2]
    }

    #[test]
    fn learns_operator_dependent_cost_correction() {
        let train = synthetic_dataset(400, 1);
        let test = synthetic_dataset(100, 2);
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            ..Default::default()
        });
        let est = trainer.fit(&train);
        let q = median_qerror(&est, &test);
        assert!(q < 1.5, "median qerror {q} too high — model failed to learn");
    }

    #[test]
    fn subplan_predictions_cover_every_node() {
        let train = synthetic_dataset(50, 3);
        let est = Trainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .fit(&train);
        let preds = est.predict_subplans_ms(&train.plans[0].tree);
        assert_eq!(preds.len(), train.plans[0].tree.len());
        assert!(preds.iter().all(|&p| p > 0.0 && p.is_finite()));
    }

    #[test]
    fn lora_fine_tune_adapts_to_shifted_latencies() {
        let train = synthetic_dataset(300, 4);
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            ..Default::default()
        });
        let mut est = trainer.fit(&train);

        // "Machine 2": every latency is 3× slower.
        let mut shifted = synthetic_dataset(300, 5);
        for p in &mut shifted.plans {
            for id in p.tree.ids().collect::<Vec<_>>() {
                p.tree.node_mut(id).actual_ms *= 3.0;
            }
        }
        let before = median_qerror(&est, &shifted);
        est.fine_tune_lora(&shifted, 40, 2e-3);
        let after = median_qerror(&est, &shifted);
        assert!(
            after < before,
            "fine-tuning did not help: {before} → {after}"
        );
        assert!(after < 1.8, "fine-tuned qerror {after} too high");
        // Base weights stayed frozen during fine-tuning, so the original
        // distribution is still predicted sanely through W (ΔW absorbed the
        // shift): check that fine-tuned predictions moved ~3×.
        let p0 = &train.plans[0].tree;
        let pred = est.predict_ms(p0);
        assert!(pred.is_finite() && pred > 0.0);
    }

    #[test]
    fn estimator_roundtrips_through_json() {
        let train = synthetic_dataset(40, 6);
        let est = Trainer::new(TrainConfig {
            epochs: 2,
            ..Default::default()
        })
        .fit(&train);
        let json = est.to_json();
        let restored = DaceEstimator::from_json(&json).unwrap();
        let t = &train.plans[0].tree;
        assert!((est.predict_ms(t) - restored.predict_ms(t)).abs() < 1e-9);
        assert_eq!(est.encode(t), restored.encode(t));
    }

    #[test]
    fn training_is_deterministic() {
        let train = synthetic_dataset(60, 7);
        let cfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };
        let a = Trainer::new(cfg).fit(&train);
        let b = Trainer::new(cfg).fit(&train);
        let t = &train.plans[0].tree;
        assert_eq!(a.predict_ms(t), b.predict_ms(t));
    }

    #[test]
    fn encoder_embeddings_distinguish_plans() {
        let train = synthetic_dataset(100, 8);
        let est = Trainer::new(TrainConfig {
            epochs: 10,
            ..Default::default()
        })
        .fit(&train);
        let e1 = est.encode(&train.plans[0].tree);
        let e2 = est.encode(&train.plans[1].tree);
        assert_eq!(e1.len(), crate::model::ENCODING_DIM);
        assert_ne!(e1, e2, "embeddings should differ across plans");
    }
}
