//! Quantization accuracy proptests: the int8 fast tier must stay within a
//! fixed multiplicative bound of the full-precision path over *arbitrary*
//! plan shapes — not just the training distribution — and the quantized
//! attention kernel must keep the f32 path's fully-masked-row guarantee
//! (an all-`−∞` score row softmaxes to zeros, never NaN).

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dace_core::{
    DaceEstimator, PlanFeatures, QuantWorkspace, QuantizedEstimator, TrainConfig, Trainer,
};
use dace_nn::{QuantScratch, QuantizedAttention, Tensor2};
use dace_plan::{
    Dataset, LabeledPlan, MachineId, NodeType, OpPayload, PlanNode, PlanTree, TreeBuilder,
};

/// The fast tier's accuracy contract, in q-error against full precision.
/// Predictions live in exp(log-ms) space, so int8 rounding in the network
/// shows up multiplicatively; the serving tests hold 1.25 in-distribution,
/// and this bound must survive adversarial plan shapes too.
const TIER_QERROR_BOUND: f64 = 1.5;

const NODE_TYPES: [NodeType; 8] = [
    NodeType::SeqScan,
    NodeType::IndexScan,
    NodeType::BitmapHeapScan,
    NodeType::NestedLoop,
    NodeType::HashJoin,
    NodeType::MergeJoin,
    NodeType::Sort,
    NodeType::HashAggregate,
];

fn training_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let plans = (0..n)
        .map(|i| {
            let mut b = TreeBuilder::new();
            let kids: Vec<_> = (0..rng.gen_range(1..=3))
                .map(|_| {
                    let mut n = PlanNode::new(NodeType::SeqScan, OpPayload::Other);
                    n.est_cost = rng.gen_range(10.0..1e4);
                    n.est_rows = rng.gen_range(1.0..1e5);
                    n.actual_ms = rng.gen_range(0.1..50.0);
                    b.leaf(n)
                })
                .collect();
            let mut root = PlanNode::new(NodeType::HashJoin, OpPayload::Other);
            root.est_cost = rng.gen_range(100.0..1e5);
            root.est_rows = rng.gen_range(1.0..1e6);
            root.actual_ms = rng.gen_range(1.0..200.0);
            let id = b.internal(root, kids);
            LabeledPlan {
                tree: b.finish(id),
                db_id: (i % 4) as u16,
                machine: MachineId::M1,
            }
        })
        .collect();
    Dataset::from_plans(plans)
}

/// One trained estimator (and its int8 twin) shared across every property
/// case — training per case would swamp the suite.
fn tiers() -> &'static (DaceEstimator, QuantizedEstimator) {
    static TIERS: OnceLock<(DaceEstimator, QuantizedEstimator)> = OnceLock::new();
    TIERS.get_or_init(|| {
        let est = Trainer::new(TrainConfig {
            epochs: 3,
            seed: 17,
            ..Default::default()
        })
        .fit(&training_dataset(60, 17))
        .expect("training");
        let quant = QuantizedEstimator::from_estimator(&est);
        (est, quant)
    })
}

/// A random plan tree grown bottom-up: `shape` drives both structure and
/// the cost/cardinality annotations, so cases cover deep chains, bushy
/// joins, single leaves, and degenerate zero-cost nodes.
fn random_tree(shape: (u64, usize, usize)) -> PlanTree {
    let (seed, nodes, max_kids) = shape;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TreeBuilder::new();
    let mut roots: Vec<_> = (0..nodes)
        .map(|_| {
            let mut n = PlanNode::new(
                NODE_TYPES[rng.gen_range(0..NODE_TYPES.len())],
                OpPayload::Other,
            );
            n.est_cost = if rng.gen_bool(0.1) {
                0.0
            } else {
                10f64.powf(rng.gen_range(-1.0..7.0))
            };
            n.est_rows = 10f64.powf(rng.gen_range(0.0..8.0));
            b.leaf(n)
        })
        .collect();
    while roots.len() > 1 {
        // Combine at least two roots per step, or the forest never shrinks.
        let take = rng.gen_range(2..=max_kids.max(2).min(roots.len()).max(2));
        let take = take.min(roots.len());
        let kids: Vec<_> = roots.drain(..take).collect();
        let mut n = PlanNode::new(
            NODE_TYPES[rng.gen_range(0..NODE_TYPES.len())],
            OpPayload::Other,
        );
        n.est_cost = 10f64.powf(rng.gen_range(0.0..7.0));
        n.est_rows = 10f64.powf(rng.gen_range(0.0..8.0));
        roots.insert(0, b.internal(n, kids));
    }
    let root = roots.pop().expect("at least one node");
    b.finish(root)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Across arbitrary plan shapes, the quantized tier's prediction is
    /// finite, positive, and within [`TIER_QERROR_BOUND`] of full precision.
    #[test]
    fn quantized_tier_stays_within_qerror_bound(
        seed in 0u64..10_000,
        nodes in 1usize..24,
        max_kids in 1usize..5,
    ) {
        let (est, quant) = tiers();
        let tree = random_tree((seed, nodes, max_kids));
        let feats = est.featurizer.encode(&tree);
        let refs: Vec<&PlanFeatures> = vec![&feats];
        let full = est.predict_features_batch_ms(&refs)[0];
        let mut ws = QuantWorkspace::default();
        let (mut roots, mut out) = (Vec::new(), Vec::new());
        quant.predict_features_batch_ms_timed_ws(&refs, &mut ws, &mut roots, &mut out);
        let fast = out[0];
        prop_assert!(fast.is_finite() && fast > 0.0, "quantized pred degenerate: {fast}");
        let q = (fast / full).max(full / fast);
        prop_assert!(
            q < TIER_QERROR_BOUND,
            "tier divergence {q} over bound: quantized {fast} vs full {full} ({nodes} nodes)"
        );
    }

    /// A fully-masked attention row (all scores `−∞`) must produce finite
    /// output in the int8 kernel, matching the f32 softmax's zero-row
    /// guarantee — no NaN may ever reach a prediction.
    #[test]
    fn fully_masked_rows_stay_finite_in_quantized_attention(
        rows in 2usize..8,
        seed in 0u64..1000,
    ) {
        let (est, _) = tiers();
        let qattn = QuantizedAttention::from_attention(&est.model.attention);
        let x = Tensor2::uniform(rows, dace_core::FEATURE_DIM, 1.0, seed);
        // Row 1 attends to nothing: every key masked out.
        let mut mask = vec![false; rows * rows];
        for i in 0..rows {
            for j in 0..rows {
                mask[i * rows + j] = i != 1 && j <= i;
            }
        }
        let mut qs = QuantScratch::default();
        let mut out = Tensor2::default();
        qattn.forward_masks_into(&x, [(rows, mask.as_slice())], &mut qs, &mut out);
        prop_assert_eq!(out.rows(), rows);
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()), "NaN leaked");
        prop_assert!(out.row(1).iter().all(|&v| v == 0.0), "masked row not zeroed");
    }
}
