//! Cardinality estimation from table statistics.
//!
//! Implements the textbook System-R/PostgreSQL estimators: per-predicate
//! selectivity from MCVs + equi-depth histograms, independence across
//! predicates, and the `1/max(ndv, ndv)` equi-join rule. The deliberate use
//! of these assumptions against data with correlations and Zipf skew is what
//! produces the realistic estimation error whose downstream cost error
//! ("EDQO") DACE learns to correct.

use dace_catalog::{ColumnStats, Database};
use dace_plan::CmpOp;
use dace_query::{JoinEdge, Predicate, Query};

/// Cardinality estimator bound to one database's statistics.
#[derive(Debug, Clone, Copy)]
pub struct CardEstimator<'a> {
    db: &'a Database,
}

/// Selectivity floor — PostgreSQL never lets an estimate reach zero rows.
const MIN_SEL: f64 = 1e-7;

impl<'a> CardEstimator<'a> {
    /// Estimator over `db`'s statistics.
    pub fn new(db: &'a Database) -> Self {
        CardEstimator { db }
    }

    /// Selectivity of a single predicate.
    pub fn predicate_selectivity(&self, pred: &Predicate) -> f64 {
        let stats = self.db.column_stats(pred.column);
        predicate_selectivity(stats, pred).clamp(MIN_SEL, 1.0)
    }

    /// Combined selectivity of `preds` under the independence assumption.
    pub fn conjunction_selectivity(&self, preds: &[&Predicate]) -> f64 {
        preds
            .iter()
            .map(|p| self.predicate_selectivity(p))
            .product::<f64>()
            .clamp(MIN_SEL, 1.0)
    }

    /// Estimated output rows of an equi-join between two sub-plans of
    /// `left_rows` and `right_rows` rows: `|L| * |R| / max(ndv_l, ndv_r)`.
    ///
    /// The key NDVs are taken from base-table statistics, capped at the
    /// sub-plan's current row count (filters cannot increase distinctness).
    pub fn join_rows(
        &self,
        edge: &JoinEdge,
        left_rows: f64,
        right_rows: f64,
        left_has_child: bool,
    ) -> f64 {
        let child_stats = self.db.column_stats(edge.child_column_id());
        let parent_stats = self.db.column_stats(edge.parent_column_id());
        let (child_side_rows, parent_side_rows) = if left_has_child {
            (left_rows, right_rows)
        } else {
            (right_rows, left_rows)
        };
        let ndv_child = child_stats
            .n_distinct
            .max(1.0)
            .min(child_side_rows.max(1.0));
        let ndv_parent = parent_stats
            .n_distinct
            .max(1.0)
            .min(parent_side_rows.max(1.0));
        let null_frac = child_stats.null_frac;
        ((left_rows * right_rows * (1.0 - null_frac)) / ndv_child.max(ndv_parent)).max(1.0)
    }

    /// Estimated number of groups when grouping `rows` by `column`.
    pub fn group_count(&self, column: dace_catalog::ColumnId, rows: f64) -> f64 {
        let ndv = self.db.column_stats(column).n_distinct.max(1.0);
        // PostgreSQL-style damping: groups can't exceed input rows.
        ndv.min(rows.max(1.0))
    }

    /// Estimated selectivity of all predicates a query pushes onto `table`.
    pub fn scan_selectivity(&self, query: &Query, table: dace_catalog::TableId) -> f64 {
        self.conjunction_selectivity(&query.predicates_on(table))
    }
}

/// Selectivity of `pred` against column statistics.
fn predicate_selectivity(stats: &ColumnStats, pred: &Predicate) -> f64 {
    if stats.n_distinct < 1.0 {
        return MIN_SEL;
    }
    let non_null = 1.0 - stats.null_frac;
    match pred.op {
        CmpOp::Eq => eq_selectivity(stats, pred.values[0]) * non_null.min(1.0),
        CmpOp::In => {
            pred.values
                .iter()
                .map(|&v| eq_selectivity(stats, v))
                .sum::<f64>()
                .min(1.0)
                * non_null
        }
        CmpOp::Lt => range_below(stats, pred.values[0]) * non_null,
        CmpOp::Le => {
            (range_below(stats, pred.values[0]) + eq_selectivity(stats, pred.values[0])).min(1.0)
                * non_null
        }
        CmpOp::Gt => {
            (1.0 - range_below(stats, pred.values[0]) - eq_selectivity(stats, pred.values[0]))
                .max(0.0)
                * non_null
        }
        CmpOp::Ge => (1.0 - range_below(stats, pred.values[0])).max(0.0) * non_null,
        CmpOp::Between | CmpOp::LikePrefix => {
            let lo = pred.values[0];
            let hi = pred.values[1];
            (range_below(stats, hi) - range_below(stats, lo) + eq_selectivity(stats, hi))
                .clamp(0.0, 1.0)
                * non_null
        }
    }
}

/// Equality selectivity: MCV hit, else uniform share of the non-MCV mass.
fn eq_selectivity(stats: &ColumnStats, v: i64) -> f64 {
    if let Some(&(_, freq)) = stats.mcvs.iter().find(|&&(mv, _)| mv == v) {
        return freq;
    }
    let rest_frac = (1.0 - stats.mcv_frac() - stats.null_frac).max(0.0);
    let rest_ndv = (stats.n_distinct - stats.mcvs.len() as f64).max(1.0);
    rest_frac / rest_ndv
}

/// Fraction of non-null values strictly below `v`: histogram share of the
/// non-MCV mass plus the MCVs below `v`.
fn range_below(stats: &ColumnStats, v: i64) -> f64 {
    let hist_frac = stats.histogram.fraction_below(v);
    let rest_frac = (1.0 - stats.mcv_frac() - stats.null_frac).max(0.0);
    let mcv_below: f64 = stats
        .mcvs
        .iter()
        .filter(|&&(mv, _)| mv < v)
        .map(|&(_, f)| f)
        .sum();
    (hist_frac * rest_frac + mcv_below).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_catalog::{generate_database, suite_specs, ColumnId, TableId};
    use dace_plan::CmpOp;

    fn db() -> Database {
        generate_database(&suite_specs()[0], 0.02)
    }

    /// Actual selectivity of a predicate by brute force.
    fn actual_sel(db: &Database, pred: &Predicate) -> f64 {
        let data = db.column_data(pred.column);
        let matched = data
            .iter()
            .filter(|&&v| {
                if v == dace_catalog::NULL_CODE {
                    return false;
                }
                match pred.op {
                    CmpOp::Eq => v == pred.values[0],
                    CmpOp::Lt => v < pred.values[0],
                    CmpOp::Gt => v > pred.values[0],
                    CmpOp::Le => v <= pred.values[0],
                    CmpOp::Ge => v >= pred.values[0],
                    CmpOp::Between | CmpOp::LikePrefix => {
                        v >= pred.values[0] && v <= pred.values[1]
                    }
                    CmpOp::In => pred.values.contains(&v),
                }
            })
            .count();
        matched as f64 / data.len() as f64
    }

    #[test]
    fn range_estimates_track_actuals_roughly() {
        let db = db();
        let est = CardEstimator::new(&db);
        // Serial PK column: uniform, estimates should be quite accurate.
        let col = ColumnId::new(TableId(0), 0);
        let rows = db.table_stats(TableId(0)).row_count as i64;
        for frac in [0.1, 0.5, 0.9] {
            let v = (rows as f64 * frac) as i64;
            let pred = Predicate {
                column: col,
                op: CmpOp::Lt,
                values: vec![v],
            };
            let e = est.predicate_selectivity(&pred);
            let a = actual_sel(&db, &pred);
            assert!(
                (e - a).abs() < 0.1,
                "frac {frac}: est {e:.3} vs actual {a:.3}"
            );
        }
    }

    #[test]
    fn selectivities_are_bounded() {
        let db = db();
        let est = CardEstimator::new(&db);
        for t in db.schema.table_ids() {
            for (ci, _) in db.schema.table(t).columns.iter().enumerate() {
                let col = ColumnId::new(t, ci as u32);
                let stats = db.column_stats(col);
                for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
                    let pred = Predicate {
                        column: col,
                        op,
                        values: vec![stats.value_at_rank(0.3)],
                    };
                    let s = est.predicate_selectivity(&pred);
                    assert!((MIN_SEL..=1.0).contains(&s), "{s} out of range");
                }
            }
        }
    }

    #[test]
    fn join_rows_respects_fk_semantics() {
        let db = db();
        let est = CardEstimator::new(&db);
        let fk = db.schema.fks[0];
        let edge = JoinEdge {
            child: fk.child,
            child_column: fk.child_column,
            parent: fk.parent,
        };
        let child_rows = db.table_stats(fk.child).row_count as f64;
        let parent_rows = db.table_stats(fk.parent).row_count as f64;
        let out = est.join_rows(&edge, child_rows, parent_rows, true);
        // FK join to the full parent keeps roughly all child rows.
        assert!(
            out > child_rows * 0.3 && out < child_rows * 3.0,
            "FK join estimate {out} vs child rows {child_rows}"
        );
    }

    #[test]
    fn conjunction_multiplies() {
        let db = db();
        let est = CardEstimator::new(&db);
        let col = ColumnId::new(TableId(0), 0);
        let rows = db.table_stats(TableId(0)).row_count as i64;
        let p1 = Predicate {
            column: col,
            op: CmpOp::Lt,
            values: vec![rows / 2],
        };
        let p2 = Predicate {
            column: col,
            op: CmpOp::Ge,
            values: vec![rows / 4],
        };
        let both = est.conjunction_selectivity(&[&p1, &p2]);
        let s1 = est.predicate_selectivity(&p1);
        let s2 = est.predicate_selectivity(&p2);
        assert!((both - s1 * s2).abs() < 1e-12);
    }

    #[test]
    fn group_count_capped_by_rows() {
        let db = db();
        let est = CardEstimator::new(&db);
        let col = ColumnId::new(TableId(0), 0);
        assert_eq!(est.group_count(col, 10.0), 10.0);
    }
}
