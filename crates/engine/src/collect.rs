//! End-to-end label collection: query → plan → execute → latency → dataset.

use dace_catalog::Database;
use dace_plan::{Dataset, LabeledPlan, MachineId, PlanTree};
use dace_query::Query;

use crate::cost::CostModel;
use crate::exec::execute;
use crate::latency::MachineProfile;
use crate::planner::{plan, PhysPlan, PlanError};

/// Plan a query without executing it (estimates only).
pub fn plan_query(db: &Database, query: &Query) -> Result<PhysPlan, PlanError> {
    plan(db, query, &CostModel::default())
}

/// Plan, execute and time one query on `machine`, producing a labeled plan.
///
/// `seed` drives the latency noise; the collection loop uses the query index
/// so datasets are fully reproducible.
pub fn label_query(
    db: &Database,
    query: &Query,
    machine: MachineId,
    seed: u64,
) -> Result<LabeledPlan, PlanError> {
    let mut phys = plan_query(db, query)?;
    execute(db, &mut phys);
    MachineProfile::for_machine(machine).apply(db, &mut phys, seed);
    Ok(LabeledPlan {
        tree: phys.to_plan_tree(),
        db_id: db.db_id(),
        machine,
    })
}

/// Collect labeled plans for a whole workload, parallelized across threads.
///
/// This is the `EXPLAIN ANALYZE` harvesting loop of the paper's Sec. IV-A.
pub fn collect_dataset(db: &Database, queries: &[Query], machine: MachineId) -> Dataset {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(queries.len().max(1));
    if threads <= 1 || queries.len() < 32 {
        let plans = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                label_query(db, q, machine, i as u64).expect("generated workload queries must plan")
            })
            .collect();
        return Dataset::from_plans(plans);
    }
    let chunk = queries.len().div_ceil(threads);
    let mut results: Vec<Vec<LabeledPlan>> = Vec::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .enumerate()
            .map(|(ci, qs)| {
                scope.spawn(move |_| {
                    qs.iter()
                        .enumerate()
                        .map(|(i, q)| {
                            label_query(db, q, machine, (ci * chunk + i) as u64)
                                .expect("generated workload queries must plan")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("collection thread panicked"));
        }
    })
    .expect("crossbeam scope failed");
    Dataset::from_plans(results.into_iter().flatten().collect())
}

/// Convenience: EXPLAIN ANALYZE rendering of one labeled query.
pub fn explain_analyze(db: &Database, query: &Query, machine: MachineId) -> (PlanTree, String) {
    let labeled = label_query(db, query, machine, 0).expect("explained query must plan");
    let text = dace_plan::explain_tree(&labeled.tree);
    (labeled.tree, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_catalog::{generate_database, suite_specs};
    use dace_query::ComplexWorkloadGen;

    #[test]
    fn collection_is_parallel_deterministic() {
        let db = generate_database(&suite_specs()[2], 0.02);
        let queries = ComplexWorkloadGen::default().generate(&db, 64);
        let a = collect_dataset(&db, &queries, MachineId::M1);
        let b = collect_dataset(&db, &queries, MachineId::M1);
        assert_eq!(a.len(), queries.len());
        for (x, y) in a.plans.iter().zip(&b.plans) {
            assert_eq!(x.tree, y.tree);
            assert_eq!(x.db_id, db.db_id());
        }
    }

    #[test]
    fn labels_are_populated() {
        let db = generate_database(&suite_specs()[2], 0.02);
        let queries = ComplexWorkloadGen::default().generate(&db, 10);
        let ds = collect_dataset(&db, &queries, MachineId::M2);
        for p in &ds.plans {
            assert!(p.latency_ms() > 0.0);
            assert_eq!(p.machine, MachineId::M2);
            for id in p.tree.ids() {
                let n = p.tree.node(id);
                assert!(n.est_cost > 0.0);
                assert!(n.est_rows >= 1.0);
                assert!(n.actual_ms >= 0.0);
            }
        }
    }

    #[test]
    fn explain_analyze_renders() {
        let db = generate_database(&suite_specs()[2], 0.02);
        let q = ComplexWorkloadGen::default()
            .generate(&db, 1)
            .pop()
            .unwrap();
        let (tree, text) = explain_analyze(&db, &q, MachineId::M1);
        assert!(text.contains("cost="));
        assert!(text.contains("actual time="));
        assert!(text.lines().count() >= tree.len());
    }
}
