//! PostgreSQL-style cost model: abstract cost units per operator.
//!
//! Constants default to PostgreSQL's stock settings. Costs are *total*
//! (cumulative over the sub-plan) like `EXPLAIN`'s second cost number; the
//! planner minimizes them and DACE later learns to correct their systematic
//! mismatch with wall-clock time.

use serde::{Deserialize, Serialize};

/// Page size used to convert row widths into page counts.
pub const PAGE_BYTES: f64 = 8192.0;

/// Cost-model constants (PostgreSQL names and defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of a sequentially fetched page.
    pub seq_page_cost: f64,
    /// Cost of a randomly fetched page.
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of one operator/function evaluation.
    pub cpu_operator_cost: f64,
    /// Per-tuple cost of transferring rows from parallel workers.
    pub parallel_tuple_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            parallel_tuple_cost: 0.1,
        }
    }
}

impl CostModel {
    /// Heap pages of a table with `rows` rows of `width` bytes.
    pub fn pages(&self, rows: f64, width: f64) -> f64 {
        (rows * width / PAGE_BYTES).ceil().max(1.0)
    }

    /// Sequential scan: read all pages, process all tuples, evaluate
    /// `n_preds` quals per tuple.
    pub fn seq_scan(&self, rows: f64, width: f64, n_preds: usize) -> f64 {
        self.pages(rows, width) * self.seq_page_cost
            + rows * (self.cpu_tuple_cost + n_preds as f64 * self.cpu_operator_cost)
    }

    /// B-tree index scan fetching `out_rows` of `rows` total: random heap
    /// page per matched tuple (uncorrelated assumption) plus index CPU.
    pub fn index_scan(&self, rows: f64, out_rows: f64) -> f64 {
        let descent = (rows.max(2.0)).log2() * self.cpu_operator_cost * 2.0;
        descent
            + out_rows * (self.random_page_cost + self.cpu_index_tuple_cost + self.cpu_tuple_cost)
    }

    /// Index-only scan: like [`CostModel::index_scan`] without heap fetches.
    pub fn index_only_scan(&self, rows: f64, out_rows: f64) -> f64 {
        let descent = (rows.max(2.0)).log2() * self.cpu_operator_cost * 2.0;
        descent
            + out_rows * (self.cpu_index_tuple_cost + self.cpu_tuple_cost)
            + self.pages(out_rows, 8.0) * self.seq_page_cost
    }

    /// Bitmap index scan producing a TID bitmap over `out_rows` matches.
    pub fn bitmap_index_scan(&self, rows: f64, out_rows: f64) -> f64 {
        let descent = (rows.max(2.0)).log2() * self.cpu_operator_cost * 2.0;
        descent + out_rows * self.cpu_index_tuple_cost
    }

    /// Bitmap heap scan: fetch the (partially sequential) pages holding
    /// `out_rows` matches out of a `pages`-page table.
    pub fn bitmap_heap_scan(&self, pages: f64, rows: f64, out_rows: f64) -> f64 {
        // Fraction of pages touched grows sub-linearly with matches.
        let touched = (pages * (1.0 - (-out_rows / pages.max(1.0)).exp())).max(1.0);
        let page_cost = (self.seq_page_cost + self.random_page_cost) / 2.0;
        touched * page_cost + out_rows * self.cpu_tuple_cost + rows * 0.1 * self.cpu_operator_cost
    }

    /// Hash-table build over `rows` input tuples.
    pub fn hash_build(&self, rows: f64, width: f64) -> f64 {
        rows * (self.cpu_operator_cost * 1.5 + self.cpu_tuple_cost) + self.pages(rows, width) * 0.05
    }

    /// Hash-join probe phase: `probe_rows` probes emitting `out_rows`.
    pub fn hash_probe(&self, probe_rows: f64, out_rows: f64) -> f64 {
        probe_rows * self.cpu_operator_cost * 1.5 + out_rows * self.cpu_tuple_cost
    }

    /// Nested-loop join: `outer_rows` rescans of an inner of cost
    /// `inner_rescan`, emitting `out_rows`.
    pub fn nested_loop(&self, outer_rows: f64, inner_rescan: f64, out_rows: f64) -> f64 {
        outer_rows * inner_rescan + out_rows * self.cpu_tuple_cost
    }

    /// Sort of `rows` tuples (comparison sort CPU term).
    pub fn sort(&self, rows: f64, width: f64) -> f64 {
        let r = rows.max(2.0);
        r * r.log2() * self.cpu_operator_cost * 2.0 + self.pages(rows, width) * 0.1
    }

    /// Merge-join pass over two sorted inputs.
    pub fn merge_pass(&self, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
        (left_rows + right_rows) * self.cpu_operator_cost + out_rows * self.cpu_tuple_cost
    }

    /// Hash aggregation of `rows` into `groups`.
    pub fn hash_agg(&self, rows: f64, groups: f64) -> f64 {
        rows * self.cpu_operator_cost * 2.0 + groups * self.cpu_tuple_cost
    }

    /// Sorted (group) aggregation of `rows` into `groups`; input must
    /// already be sorted.
    pub fn group_agg(&self, rows: f64, groups: f64) -> f64 {
        rows * self.cpu_operator_cost + groups * self.cpu_tuple_cost
    }

    /// Materialize `rows` tuples.
    pub fn materialize(&self, rows: f64, width: f64) -> f64 {
        rows * self.cpu_operator_cost * 0.5 + self.pages(rows, width) * 0.05
    }

    /// Rescan cost of a materialized inner (cheap: memory pass).
    pub fn materialize_rescan(&self, rows: f64) -> f64 {
        rows * self.cpu_operator_cost * 0.25
    }

    /// Gather `rows` from parallel workers; the child ran at `child_cost`
    /// split across `workers`.
    pub fn gather(&self, child_cost: f64, rows: f64, workers: f64) -> f64 {
        child_cost / workers + rows * self.parallel_tuple_cost + 1000.0 * self.cpu_operator_cost
    }

    /// LIMIT node: pays for the fraction of the child it consumes.
    pub fn limit(&self, child_cost: f64, child_rows: f64, n: f64) -> f64 {
        let frac = (n / child_rows.max(1.0)).min(1.0);
        child_cost * frac + n.min(child_rows) * self.cpu_tuple_cost * 0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_scales_linearly() {
        let cm = CostModel::default();
        let small = cm.seq_scan(1_000.0, 64.0, 1);
        let large = cm.seq_scan(10_000.0, 64.0, 1);
        assert!(large > 9.0 * small && large < 11.0 * small);
    }

    #[test]
    fn index_scan_beats_seq_scan_for_selective_predicates() {
        let cm = CostModel::default();
        let rows = 100_000.0;
        let seq = cm.seq_scan(rows, 64.0, 1);
        let idx_selective = cm.index_scan(rows, 10.0);
        let idx_broad = cm.index_scan(rows, rows);
        assert!(idx_selective < seq);
        assert!(idx_broad > seq, "full index scan should lose to seq scan");
    }

    #[test]
    fn hash_join_beats_nested_loop_on_large_inputs() {
        let cm = CostModel::default();
        let inner_scan = cm.seq_scan(50_000.0, 64.0, 0);
        let hj = cm.hash_build(50_000.0, 64.0) + cm.hash_probe(50_000.0, 50_000.0);
        let nl = cm.nested_loop(50_000.0, inner_scan, 50_000.0);
        assert!(hj < nl / 100.0);
    }

    #[test]
    fn sort_is_superlinear() {
        let cm = CostModel::default();
        let s1 = cm.sort(1_000.0, 16.0);
        let s10 = cm.sort(10_000.0, 16.0);
        assert!(s10 > 10.0 * s1);
    }

    #[test]
    fn limit_caps_cost() {
        let cm = CostModel::default();
        let full = 1_000.0;
        let limited = cm.limit(full, 10_000.0, 100.0);
        assert!(limited < full * 0.02);
        // Limit larger than the input costs the whole child.
        assert!(cm.limit(full, 50.0, 100.0) >= full);
    }

    #[test]
    fn pages_round_up() {
        let cm = CostModel::default();
        assert_eq!(cm.pages(1.0, 8.0), 1.0);
        assert_eq!(cm.pages(1025.0, 8.0), 2.0);
    }
}
