//! Columnar plan execution: computes the *actual* cardinality of every plan
//! node by really evaluating predicates and joins over the generated data.
//!
//! Physical operator choice does not change results, so all joins execute as
//! hash joins internally; the physical node types still determine the
//! latency synthesis in [`crate::latency`]. Inner-side nodes of index nested
//! loops report total rows fetched across all loops (PostgreSQL's
//! `rows × nloops`).

use std::collections::HashMap;

use dace_catalog::{ColumnId, Database, TableId, NULL_CODE};
use dace_obs::span;
use dace_plan::CmpOp;
use dace_query::{JoinEdge, Predicate};

use crate::planner::{ExecOp, PhysPlan};

/// Execute `plan` against `db`, filling `actual_rows` on every node.
pub fn execute(db: &Database, plan: &mut PhysPlan) {
    let _ = run(db, plan);
}

/// An intermediate result: for each member table, the base-table row id of
/// every output row. `rowids[i][r]` is the row of `tables[i]` contributing
/// to output row `r`.
#[derive(Debug, Clone)]
struct Intermediate {
    tables: Vec<TableId>,
    rowids: Vec<Vec<u32>>,
}

impl Intermediate {
    fn rows(&self) -> usize {
        self.rowids.first().map_or(0, |c| c.len())
    }

    fn table_pos(&self, t: TableId) -> Option<usize> {
        self.tables.iter().position(|&x| x == t)
    }
}

fn run(db: &Database, plan: &mut PhysPlan) -> Intermediate {
    let result = match plan.exec.clone() {
        ExecOp::Scan { table, predicates } => {
            // Bitmap pairs nest a Scan under a Scan; execute the index child
            // for its own count, then compute this node's result directly.
            for c in &mut plan.children {
                let _ = run(db, c);
            }
            let _span = span!("exec_scan");
            scan(db, table, &predicates)
        }
        ExecOp::Join { edge } => {
            debug_assert_eq!(plan.children.len(), 2);
            let mut it = plan.children.iter_mut();
            let left = it.next().unwrap();
            let right = it.next().unwrap();
            let l = run(db, left);
            let r = run(db, right);
            let _span = span!("exec_join");
            let out = hash_join(db, l, r, edge);
            // Inner index scans of a nested loop report total fetched rows
            // across all probes.
            if plan.node_type == dace_plan::NodeType::NestedLoop
                && right.node_type == dace_plan::NodeType::IndexScan
            {
                right.actual_rows = out.rows() as f64;
            }
            out
        }
        ExecOp::PassThrough => run(db, &mut plan.children[0]),
        ExecOp::Aggregate { group_by } => {
            let child = run(db, &mut plan.children[0]);
            let _span = span!("exec_aggregate");
            aggregate(db, child, group_by)
        }
        ExecOp::Limit { n } => {
            let mut child = run(db, &mut plan.children[0]);
            let keep = (n as usize).min(child.rows());
            for col in &mut child.rowids {
                col.truncate(keep);
            }
            child
        }
    };
    plan.actual_rows = result.rows() as f64;
    result
}

/// Evaluate all predicates over a base table.
fn scan(db: &Database, table: TableId, predicates: &[Predicate]) -> Intermediate {
    let n = db.table_data(table).rows();
    let mut selected: Vec<u32> = Vec::with_capacity(n / 4);
    if predicates.is_empty() {
        selected.extend(0..n as u32);
    } else {
        let cols: Vec<&[i64]> = predicates
            .iter()
            .map(|p| db.column_data(p.column))
            .collect();
        'rows: for r in 0..n {
            for (p, col) in predicates.iter().zip(&cols) {
                if !eval_predicate(p, col[r]) {
                    continue 'rows;
                }
            }
            selected.push(r as u32);
        }
    }
    Intermediate {
        tables: vec![table],
        rowids: vec![selected],
    }
}

/// Evaluate one predicate against a value (NULL never matches).
pub(crate) fn eval_predicate(p: &Predicate, v: i64) -> bool {
    if v == NULL_CODE {
        return false;
    }
    match p.op {
        CmpOp::Eq => v == p.values[0],
        CmpOp::Lt => v < p.values[0],
        CmpOp::Gt => v > p.values[0],
        CmpOp::Le => v <= p.values[0],
        CmpOp::Ge => v >= p.values[0],
        CmpOp::Between | CmpOp::LikePrefix => v >= p.values[0] && v <= p.values[1],
        CmpOp::In => p.values.contains(&v),
    }
}

/// Hash join two intermediates along an FK edge. The child side's key is the
/// FK column value; the parent side's key is the parent row id (serial PK).
fn hash_join(db: &Database, l: Intermediate, r: Intermediate, edge: JoinEdge) -> Intermediate {
    let fk_col = ColumnId::new(edge.child, edge.child_column);
    let fk_data = db.column_data(fk_col);

    let (child_side, parent_side) = if l.table_pos(edge.child).is_some() {
        (l, r)
    } else {
        (r, l)
    };
    let child_pos = child_side
        .table_pos(edge.child)
        .expect("child table not in either side");
    let parent_pos = parent_side
        .table_pos(edge.parent)
        .expect("parent table not in the other side");

    let out_tables: Vec<TableId> = child_side
        .tables
        .iter()
        .chain(parent_side.tables.iter())
        .copied()
        .collect();
    let mut out_rowids: Vec<Vec<u32>> = vec![Vec::new(); out_tables.len()];
    let child_width = child_side.tables.len();

    if parent_side.tables.len() == 1 {
        // Fast path: the parent side is the base parent table (filtered);
        // FK value == parent row id, so probing is a bitmap lookup.
        let parent_rows = db.table_data(edge.parent).rows();
        let mut selected = vec![false; parent_rows];
        for &rid in &parent_side.rowids[0] {
            selected[rid as usize] = true;
        }
        for r in 0..child_side.rows() {
            let child_rid = child_side.rowids[child_pos][r];
            let key = fk_data[child_rid as usize];
            if key == NULL_CODE || key < 0 || key as usize >= parent_rows {
                continue;
            }
            if selected[key as usize] {
                for (i, col) in child_side.rowids.iter().enumerate() {
                    out_rowids[i].push(col[r]);
                }
                out_rowids[child_width].push(key as u32);
            }
        }
    } else {
        // General path: hash the parent side on its parent-table row id.
        let mut table: HashMap<u32, Vec<u32>> = HashMap::new();
        for r in 0..parent_side.rows() {
            let key = parent_side.rowids[parent_pos][r];
            table.entry(key).or_default().push(r as u32);
        }
        for r in 0..child_side.rows() {
            let child_rid = child_side.rowids[child_pos][r];
            let key = fk_data[child_rid as usize];
            if key == NULL_CODE || key < 0 {
                continue;
            }
            if let Some(matches) = table.get(&(key as u32)) {
                for &pr in matches {
                    for (i, col) in child_side.rowids.iter().enumerate() {
                        out_rowids[i].push(col[r]);
                    }
                    for (j, col) in parent_side.rowids.iter().enumerate() {
                        out_rowids[child_width + j].push(col[pr as usize]);
                    }
                }
            }
        }
    }
    Intermediate {
        tables: out_tables,
        rowids: out_rowids,
    }
}

/// Grouped or plain aggregation: the result cardinality is the number of
/// distinct group keys (or exactly 1 without GROUP BY). The output
/// intermediate is a placeholder of that many rows.
fn aggregate(db: &Database, input: Intermediate, group_by: Option<ColumnId>) -> Intermediate {
    let groups = match group_by {
        None => 1,
        Some(col) => {
            let pos = input
                .table_pos(col.table())
                .expect("group column's table not in input");
            let data = db.column_data(col);
            let mut distinct: std::collections::HashSet<i64> = std::collections::HashSet::new();
            for &rid in &input.rowids[pos] {
                distinct.insert(data[rid as usize]);
            }
            distinct.len().max(usize::from(input.rows() > 0))
        }
    };
    Intermediate {
        tables: vec![TableId(u32::MAX)],
        rowids: vec![vec![0; groups]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::planner::plan;
    use dace_catalog::{generate_database, suite_specs};
    use dace_query::{Aggregate, ComplexWorkloadGen, Query};

    fn db() -> Database {
        generate_database(&suite_specs()[0], 0.02)
    }

    /// Brute-force count of a 2-table FK join with predicates.
    fn brute_force_join(db: &Database, q: &Query) -> usize {
        assert_eq!(q.joins.len(), 1);
        let e = q.joins[0];
        let fk = db.column_data(ColumnId::new(e.child, e.child_column));
        let child_preds = q.predicates_on(e.child);
        let parent_preds = q.predicates_on(e.parent);
        let parent_rows = db.table_data(e.parent).rows();
        let parent_ok: Vec<bool> = (0..parent_rows)
            .map(|r| {
                parent_preds
                    .iter()
                    .all(|p| eval_predicate(p, db.column_data(p.column)[r]))
            })
            .collect();
        let child_rows = db.table_data(e.child).rows();
        (0..child_rows)
            .filter(|&r| {
                child_preds
                    .iter()
                    .all(|p| eval_predicate(p, db.column_data(p.column)[r]))
            })
            .filter(|&r| {
                let v = fk[r];
                v != NULL_CODE && v >= 0 && (v as usize) < parent_rows && parent_ok[v as usize]
            })
            .count()
    }

    #[test]
    fn join_counts_match_brute_force() {
        let db = db();
        let gen = ComplexWorkloadGen {
            max_joins: 1,
            max_predicates: 2,
            agg_prob: 0.0,
            seed: 99,
        };
        let queries: Vec<Query> = gen
            .generate(&db, 60)
            .into_iter()
            .filter(|q| q.joins.len() == 1 && q.limit.is_none())
            .collect();
        assert!(!queries.is_empty());
        for q in &queries {
            let mut p = plan(&db, q, &CostModel::default()).unwrap();
            execute(&db, &mut p);
            let expected = brute_force_join(&db, q);
            assert_eq!(
                p.actual_rows as usize, expected,
                "join result mismatch for {q:?}"
            );
        }
    }

    #[test]
    fn scan_counts_match_filters() {
        let db = db();
        let gen = ComplexWorkloadGen {
            max_joins: 0,
            max_predicates: 3,
            agg_prob: 0.0,
            seed: 7,
        };
        for q in gen.generate(&db, 40) {
            if q.limit.is_some() {
                continue;
            }
            let mut p = plan(&db, &q, &CostModel::default()).unwrap();
            execute(&db, &mut p);
            let t = q.tables[0];
            let expected = (0..db.table_data(t).rows())
                .filter(|&r| {
                    q.predicates
                        .iter()
                        .all(|pr| eval_predicate(pr, db.column_data(pr.column)[r]))
                })
                .count();
            assert_eq!(p.actual_rows as usize, expected);
        }
    }

    #[test]
    fn limit_truncates() {
        let db = db();
        let mut q = Query::scan(0, TableId(0));
        q.limit = Some(5);
        let mut p = plan(&db, &q, &CostModel::default()).unwrap();
        execute(&db, &mut p);
        assert_eq!(p.actual_rows as u64, 5);
    }

    #[test]
    fn plain_aggregate_returns_one_row() {
        let db = db();
        let mut q = Query::scan(0, TableId(0));
        q.aggregates = vec![Aggregate::CountStar];
        let mut p = plan(&db, &q, &CostModel::default()).unwrap();
        execute(&db, &mut p);
        assert_eq!(p.actual_rows as u64, 1);
    }

    #[test]
    fn grouped_aggregate_counts_groups() {
        let db = db();
        let t = TableId(0);
        // Group by a low-cardinality column: find one with small ndv.
        let tdef = db.schema.table(t);
        let col = (1..tdef.columns.len() as u32)
            .map(|c| ColumnId::new(t, c))
            .min_by(|&a, &b| {
                db.column_stats(a)
                    .n_distinct
                    .total_cmp(&db.column_stats(b).n_distinct)
            })
            .unwrap();
        let mut q = Query::scan(0, t);
        q.group_by = Some(col);
        q.aggregates = vec![Aggregate::CountStar];
        let mut p = plan(&db, &q, &CostModel::default()).unwrap();
        execute(&db, &mut p);
        let mut distinct: std::collections::HashSet<i64> =
            db.column_data(col).iter().copied().collect();
        distinct.remove(&NULL_CODE);
        // NULL groups count as one group in SQL; our aggregate counts the
        // NULL code as a distinct value too, which matches.
        let expected = db
            .column_data(col)
            .iter()
            .copied()
            .collect::<std::collections::HashSet<i64>>()
            .len();
        assert_eq!(p.actual_rows as usize, expected);
    }

    #[test]
    fn every_node_gets_actuals() {
        let db = db();
        for q in ComplexWorkloadGen::default().generate(&db, 50) {
            let mut p = plan(&db, &q, &CostModel::default()).unwrap();
            execute(&db, &mut p);
            assert_actuals_filled(&p);
        }
    }

    fn assert_actuals_filled(p: &PhysPlan) {
        // actual_rows of zero is legitimate (empty results) but the field
        // must be finite and non-negative everywhere.
        assert!(p.actual_rows >= 0.0 && p.actual_rows.is_finite());
        for c in &p.children {
            assert_actuals_filled(c);
        }
    }
}
