//! Machine-profile latency synthesis — the substitution for executing plans
//! on the paper's physical machines M1 and M2 (see DESIGN.md §1).
//!
//! A [`MachineProfile`] converts the *actual* per-node cardinalities the
//! executor measured into per-node wall-clock milliseconds. Crucially, its
//! per-operator time constants are **not** proportional to the optimizer's
//! abstract cost constants: random I/O is relatively more expensive than the
//! optimizer believes, hashing relatively cheaper, sorts and hashes pay a
//! memory-spill penalty past a profile-specific working-set size, and every
//! node carries startup overhead plus multiplicative log-normal noise. This
//! reproduces the structure of the "error distribution of the query
//! optimizer's estimated cost" (EDQO) that DACE learns: systematic,
//! operator- and machine-dependent, and corrupted by the optimizer's
//! cardinality estimation error.

use dace_catalog::Database;
use dace_plan::{MachineId, NodeType, OpPayload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cost::PAGE_BYTES;
use crate::planner::PhysPlan;

/// Per-operator time constants of one machine (nanoseconds per unit).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Which machine this profile models.
    pub id: MachineId,
    /// Sequential page read.
    pub seq_page_ns: f64,
    /// Random page read.
    pub rand_page_ns: f64,
    /// Per-tuple CPU (emit/copy).
    pub tuple_ns: f64,
    /// Per-predicate/operator evaluation.
    pub op_ns: f64,
    /// Per-tuple hash insert/probe.
    pub hash_ns: f64,
    /// Per-comparison sort work.
    pub sort_ns: f64,
    /// Per-tuple aggregation work.
    pub agg_ns: f64,
    /// B-tree index entry access.
    pub index_ns: f64,
    /// Rows a hash/sort can hold before spilling.
    pub mem_rows: f64,
    /// Multiplier applied to hash/sort work past `mem_rows`.
    pub spill_factor: f64,
    /// Rows that fit the cache-friendly working set; larger inputs pay the
    /// logarithmic memory-hierarchy penalty below.
    pub cache_rows: f64,
    /// Per-ln-multiple cache penalty: work on `n` rows is multiplied by
    /// `1 + cache_penalty · ln(n / cache_rows)` once `n > cache_rows`.
    pub cache_penalty: f64,
    /// Fixed per-node startup overhead.
    pub node_startup_ns: f64,
    /// Fixed per-query overhead (parse/plan/executor startup).
    pub query_startup_ns: f64,
    /// Sigma of the multiplicative log-normal noise per node.
    pub noise_sigma: f64,
    /// Probability a node hits a system hiccup (compaction, page-cache miss
    /// storm, scheduler preemption) — the heavy tail of real latencies.
    pub tail_prob: f64,
    /// Scale of the exponential tail multiplier when a hiccup hits.
    pub tail_scale: f64,
    /// Simulated parallel workers under a Gather node.
    pub gather_workers: f64,
}

impl MachineProfile {
    /// Machine M1 (the paper's Xeon E5-2650 v4 box): slower cores, larger
    /// effective memory, balanced I/O.
    pub fn m1() -> Self {
        MachineProfile {
            id: MachineId::M1,
            seq_page_ns: 2_500.0,
            rand_page_ns: 30_000.0,
            tuple_ns: 350.0,
            op_ns: 18.0,
            hash_ns: 28.0,
            sort_ns: 45.0,
            agg_ns: 140.0,
            index_ns: 900.0,
            mem_rows: 8_192.0,
            spill_factor: 3.0,
            cache_rows: 2_000.0,
            cache_penalty: 0.35,
            node_startup_ns: 9_000.0,
            query_startup_ns: 160_000.0,
            noise_sigma: 0.10,
            tail_prob: 0.03,
            tail_scale: 1.5,
            gather_workers: 2.0,
        }
    }

    /// Machine M2 (the paper's Core i5-8500 desktop): faster cores, slower
    /// storage, smaller memory — a *different* EDQO than M1, which is what
    /// makes the across-more scenario non-trivial.
    pub fn m2() -> Self {
        MachineProfile {
            id: MachineId::M2,
            seq_page_ns: 8_000.0,
            rand_page_ns: 18_000.0,
            tuple_ns: 800.0,
            op_ns: 50.0,
            hash_ns: 90.0,
            sort_ns: 100.0,
            agg_ns: 250.0,
            index_ns: 1_500.0,
            mem_rows: 2_048.0,
            spill_factor: 5.0,
            cache_rows: 800.0,
            cache_penalty: 0.5,
            node_startup_ns: 6_000.0,
            query_startup_ns: 110_000.0,
            noise_sigma: 0.12,
            tail_prob: 0.04,
            tail_scale: 1.8,
            gather_workers: 3.0,
        }
    }

    /// Profile for a [`MachineId`].
    pub fn for_machine(id: MachineId) -> Self {
        match id {
            MachineId::M1 => MachineProfile::m1(),
            MachineId::M2 => MachineProfile::m2(),
        }
    }

    /// Fill `actual_ms` (cumulative) on every node of an executed plan.
    ///
    /// `seed` individualizes the noise per plan; label collection derives it
    /// from the query index so datasets are reproducible.
    pub fn apply(&self, db: &Database, plan: &mut PhysPlan, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xAB5E_11E5);
        let total = self.annotate(db, plan, &mut rng);
        // Query-level startup lands on the root.
        plan.actual_ms = total + self.query_startup_ns / 1e6;
    }

    /// Recursively compute cumulative ms; returns the sub-plan total.
    fn annotate(&self, db: &Database, node: &mut PhysPlan, rng: &mut SmallRng) -> f64 {
        let mut children_ms = 0.0;
        for c in &mut node.children {
            children_ms += self.annotate(db, c, rng);
        }
        let own_ns = self.own_time_ns(db, node);
        let mut noise = (self.noise_sigma * standard_normal(rng)).exp();
        // Occasional system hiccup: exponential-tailed slowdown. This is the
        // irreducible heavy tail every estimator shares (the paper's Max
        // column never reaches 1 even for DACE).
        if rng.gen_bool(self.tail_prob) {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            noise *= 1.0 + self.tail_scale * (-u.ln());
        }
        let mut total_ms = children_ms + (own_ns * noise + self.node_startup_ns) / 1e6;

        match node.node_type {
            // A Gather ran its subtree across workers.
            NodeType::Gather => {
                total_ms = children_ms / self.gather_workers
                    + (own_ns * noise + self.node_startup_ns) / 1e6;
            }
            // A Limit stopped its child early: it only pays for the
            // fraction of the child's output it consumed.
            NodeType::Limit => {
                let child_rows = node.children[0].actual_rows.max(1.0);
                let frac = (node.actual_rows / child_rows).clamp(0.0, 1.0).max(0.01);
                total_ms = children_ms * frac + self.node_startup_ns / 1e6;
            }
            _ => {}
        }
        node.actual_ms = total_ms;
        total_ms
    }

    /// Memory-hierarchy factor: work on `n` rows slows down logarithmically
    /// once the working set leaves the cache-friendly regime.
    #[inline]
    fn mem_factor(&self, n: f64) -> f64 {
        if n > self.cache_rows {
            1.0 + self.cache_penalty * (n / self.cache_rows).ln()
        } else {
            1.0
        }
    }

    /// Spill factor: hash tables / sort runs exceeding the in-memory budget.
    #[inline]
    fn spill(&self, n: f64) -> f64 {
        if n > self.mem_rows {
            self.spill_factor
        } else {
            1.0
        }
    }

    /// Exclusive (own) time of one node in nanoseconds.
    ///
    /// The per-unit constants are deliberately *not* proportional to the
    /// optimizer's cost constants (they range from ~7 to ~200 µs per cost
    /// unit across operators), and the cache/spill factors are nonlinear in
    /// the actual row counts — this is the operator-dependent EDQO a single
    /// calibrated linear model cannot fit but a plan-aware model can.
    fn own_time_ns(&self, db: &Database, node: &PhysPlan) -> f64 {
        let out = node.actual_rows;
        let in_rows: f64 = node.children.iter().map(|c| c.actual_rows).sum();
        match node.node_type {
            NodeType::SeqScan => {
                let (rows, pages, n_preds) = scan_shape(db, node);
                pages * self.seq_page_ns * self.mem_factor(rows)
                    + rows * (self.tuple_ns * 0.25 + n_preds * self.op_ns)
            }
            NodeType::IndexScan => {
                // Covers both predicate-driven index scans (out rows fetched
                // once) and nested-loop inners (executor stored total rows
                // across loops). Random heap fetches dominate.
                out * (self.rand_page_ns * 0.4 + self.index_ns) * self.mem_factor(out)
                    + self.index_ns * 40.0
            }
            NodeType::IndexOnlyScan => out * self.index_ns + self.index_ns * 40.0,
            NodeType::BitmapIndexScan => out * self.index_ns * 0.5,
            NodeType::BitmapHeapScan => {
                let (_, pages, n_preds) = scan_shape(db, node);
                let touched = pages * (1.0 - (-out / pages.max(1.0)).exp());
                touched * (self.seq_page_ns + self.rand_page_ns) * 0.5
                    + out * (self.tuple_ns + n_preds * self.op_ns)
            }
            NodeType::Hash => {
                in_rows * self.hash_ns * self.spill(in_rows) * self.mem_factor(in_rows)
            }
            NodeType::HashJoin => {
                // Probe side is child 0; the Hash child covered the build.
                // Probes stall on the build table once it exceeds cache.
                let probe = node.children[0].actual_rows;
                let build = node.children[1].actual_rows.max(1.0);
                probe * self.hash_ns * 2.0 * self.mem_factor(build) + out * self.tuple_ns
            }
            NodeType::NestedLoop => {
                let outer = node.children[0].actual_rows;
                outer * self.op_ns * 4.0 + out * self.tuple_ns
            }
            NodeType::MergeJoin => in_rows * self.op_ns * 2.0 + out * self.tuple_ns,
            NodeType::Sort => {
                let n = in_rows.max(2.0);
                n * n.log2() * self.sort_ns * self.spill(n) * self.mem_factor(n)
            }
            NodeType::Materialize => in_rows * self.tuple_ns * 0.5,
            NodeType::HashAggregate => {
                in_rows * self.agg_ns * self.spill(in_rows) * self.mem_factor(in_rows)
                    + out * self.tuple_ns
            }
            NodeType::GroupAggregate => in_rows * self.agg_ns * 0.6 + out * self.tuple_ns,
            NodeType::Gather => out * self.tuple_ns * 1.2 + 50_000.0,
            NodeType::Limit => 0.0,
            NodeType::Result => out * self.tuple_ns,
        }
    }
}

/// (base rows, pages, predicate count) of a scan node.
fn scan_shape(db: &Database, node: &PhysPlan) -> (f64, f64, f64) {
    match &node.payload {
        OpPayload::Scan(info) => {
            let stats = db.table_stats(dace_catalog::TableId(info.table_id));
            let rows = stats.row_count as f64;
            let pages = (rows * node.width as f64 / PAGE_BYTES).ceil().max(1.0);
            (rows, pages, info.predicates.len() as f64)
        }
        _ => (node.actual_rows, 1.0, 0.0),
    }
}

fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::exec::execute;
    use crate::planner::plan;
    use dace_catalog::{generate_database, suite_specs, Database};
    use dace_query::ComplexWorkloadGen;

    fn labeled_plans(machine: MachineId, seed: u64) -> (Database, Vec<PhysPlan>) {
        let db = generate_database(&suite_specs()[0], 0.02);
        let profile = MachineProfile::for_machine(machine);
        let plans = ComplexWorkloadGen::default()
            .generate(&db, 40)
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut p = plan(&db, q, &CostModel::default()).unwrap();
                execute(&db, &mut p);
                profile.apply(&db, &mut p, seed + i as u64);
                p
            })
            .collect();
        (db, plans)
    }

    fn check_cumulative(p: &PhysPlan) {
        for c in &p.children {
            if p.node_type != NodeType::Limit && p.node_type != NodeType::Gather {
                assert!(
                    p.actual_ms >= c.actual_ms,
                    "{:?} {} < child {:?} {}",
                    p.node_type,
                    p.actual_ms,
                    c.node_type,
                    c.actual_ms
                );
            }
            check_cumulative(c);
        }
    }

    #[test]
    fn latencies_are_positive_and_cumulative() {
        let (_, plans) = labeled_plans(MachineId::M1, 0);
        for p in &plans {
            assert!(p.actual_ms > 0.0, "zero latency plan");
            check_cumulative(p);
        }
    }

    #[test]
    fn latency_is_deterministic_in_seed() {
        let (_, a) = labeled_plans(MachineId::M1, 42);
        let (_, b) = labeled_plans(MachineId::M1, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.actual_ms, y.actual_ms);
        }
    }

    #[test]
    fn machines_have_different_edqo() {
        let (_, m1) = labeled_plans(MachineId::M1, 0);
        let (_, m2) = labeled_plans(MachineId::M2, 0);
        // Same plans, different machines: the cost→time ratio distribution
        // must differ (otherwise across-more would be trivial).
        let ratio = |p: &PhysPlan| p.actual_ms / p.est_cost.max(1e-9);
        let mean1: f64 = m1.iter().map(&ratio).sum::<f64>() / m1.len() as f64;
        let mean2: f64 = m2.iter().map(ratio).sum::<f64>() / m2.len() as f64;
        assert!(
            (mean1 / mean2 - 1.0).abs() > 0.05,
            "machines indistinguishable: {mean1} vs {mean2}"
        );
    }

    #[test]
    fn cost_time_correlation_is_positive_but_imperfect() {
        let (_, plans) = labeled_plans(MachineId::M1, 0);
        let xs: Vec<f64> = plans.iter().map(|p| p.est_cost.ln()).collect();
        let ys: Vec<f64> = plans.iter().map(|p| p.actual_ms.ln()).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        let corr = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
        assert!(
            corr > 0.4,
            "optimizer cost should correlate with latency (corr={corr})"
        );
        assert!(
            corr < 0.999,
            "cost→latency must not be deterministic (corr={corr})"
        );
    }
}
