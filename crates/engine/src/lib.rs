#![warn(missing_docs)]
//! The DBMS substrate: optimizer, executor and latency simulation.
//!
//! This crate stands in for PostgreSQL 14.5 in the paper's data-collection
//! pipeline (Sec. IV-A). For a [`dace_query::Query`] it:
//!
//! 1. estimates cardinalities from table statistics ([`card`]) with the
//!    classic independence/uniformity assumptions — and therefore with
//!    realistic, structured *estimation error*;
//! 2. enumerates join orders and physical operators with a PostgreSQL-style
//!    cost model ([`cost`], [`planner`]) to produce a physical plan
//!    annotated with estimated rows and cost per node;
//! 3. actually executes the plan over the columnar data ([`exec`]) to obtain
//!    the *actual* cardinality of every node;
//! 4. synthesizes per-node wall-clock latency from the actual cardinalities
//!    under a machine profile ([`latency`]) — the substitution for running
//!    on the paper's physical machines M1/M2 (see DESIGN.md §1).
//!
//! The end-to-end entry point is [`collect::collect_dataset`], which yields
//! the [`dace_plan::LabeledPlan`]s every estimator trains and evaluates on.

pub mod card;
pub mod collect;
pub mod cost;
pub mod exec;
pub mod latency;
pub mod planner;
pub mod search;

pub use card::CardEstimator;
pub use collect::{collect_dataset, explain_analyze, label_query, plan_query};
pub use cost::CostModel;
pub use exec::execute;
pub use latency::MachineProfile;
pub use planner::{
    plan, plan_with_strategy, JoinStrategy, PhysPlan, PlanError, DP_AUTO_MAX, MAX_RELATIONS,
};
pub use search::{
    AnalyticScorer, CrossMachineRouter, ExplorationScorer, HybridScorer, LearnedScorer, PlanScorer,
    RoutingDecision, ScoreMemo, SearchReport, SearchSession,
};
