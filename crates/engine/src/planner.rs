//! Cost-based physical planning: scan selection, dynamic-programming join
//! enumeration and plan-tree construction.

use dace_catalog::{ColumnId, Database, TableId};
use dace_plan::{
    JoinInfo, NodeType, OpPayload, PlanNode, PlanTree, PredicateInfo, ScanInfo, TreeBuilder,
};
use dace_query::{JoinEdge, Predicate, Query};

use crate::card::CardEstimator;
use crate::cost::CostModel;

/// Join-enumeration cap: masks are `u32` bitsets and the DP table is
/// `2^k` entries, so wider queries must be rejected up front.
pub const MAX_RELATIONS: usize = 20;

/// Relation count up to which [`JoinStrategy::Auto`] uses exhaustive dynamic
/// programming; wider queries fall back to the greedy heuristic.
pub const DP_AUTO_MAX: usize = 9;

/// Typed planning failure — hostile or out-of-contract queries are errors,
/// not panics, mirroring `TrainError::EmptyDataset`: automated callers
/// (serving admission, search drivers, retrain loops) must be able to
/// reject a bad query without killing their thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The query references no tables at all.
    EmptyTableList,
    /// The query joins more relations than the enumerator supports.
    TooManyRelations {
        /// Relations the query references.
        count: usize,
        /// The enumeration cap ([`MAX_RELATIONS`]).
        cap: usize,
    },
    /// The join graph does not connect all referenced tables, so no
    /// cross-product-free plan covers the query.
    DisconnectedJoinGraph,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptyTableList => f.write_str("query references no tables"),
            PlanError::TooManyRelations { count, cap } => {
                write!(
                    f,
                    "query joins {count} relations; enumeration capped at {cap}"
                )
            }
            PlanError::DisconnectedJoinGraph => {
                f.write_str("join graph does not connect all referenced tables")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Which join-enumeration algorithm [`plan_with_strategy`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Exhaustive DP for up to [`DP_AUTO_MAX`] relations, greedy beyond.
    #[default]
    Auto,
    /// Force dynamic programming (up to [`MAX_RELATIONS`] relations).
    Dp,
    /// Force the greedy smallest-output heuristic at any width.
    Greedy,
}

/// Validate the planning contract shared by every enumeration entry point.
pub(crate) fn validate_query(query: &Query) -> Result<(), PlanError> {
    if query.tables.is_empty() {
        return Err(PlanError::EmptyTableList);
    }
    if query.tables.len() > MAX_RELATIONS {
        return Err(PlanError::TooManyRelations {
            count: query.tables.len(),
            cap: MAX_RELATIONS,
        });
    }
    Ok(())
}

/// What the executor must do at a physical node.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOp {
    /// Evaluate `predicates` over `table`, yielding selected row ids.
    Scan {
        /// Scanned table.
        table: TableId,
        /// Predicates applied at this node.
        predicates: Vec<Predicate>,
    },
    /// Equi-join of the two children along `edge`.
    Join {
        /// The FK edge joined along.
        edge: JoinEdge,
    },
    /// Pass-through nodes (Hash, Sort, Materialize, Gather).
    PassThrough,
    /// Aggregation, optionally grouped.
    Aggregate {
        /// GROUP BY column.
        group_by: Option<ColumnId>,
    },
    /// LIMIT to `n` rows.
    Limit {
        /// Row limit.
        n: u64,
    },
}

/// A physical plan node with estimates, execution instructions and children.
///
/// This is the planner's and executor's working representation;
/// [`PhysPlan::to_plan_tree`] converts it into the serializable
/// [`dace_plan::PlanTree`] the models consume.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysPlan {
    /// Operator type.
    pub node_type: NodeType,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated *cumulative* cost (sub-plan total, abstract units).
    pub est_cost: f64,
    /// Output tuple width in bytes.
    pub width: u32,
    /// Payload for the plan tree.
    pub payload: OpPayload,
    /// Execution instruction.
    pub exec: ExecOp,
    /// Actual output rows, filled by the executor.
    pub actual_rows: f64,
    /// Actual cumulative elapsed ms, filled by the latency model.
    pub actual_ms: f64,
    /// Children (outer/probe side first for joins).
    pub children: Vec<PhysPlan>,
}

impl PhysPlan {
    fn new(
        node_type: NodeType,
        est_rows: f64,
        est_cost: f64,
        width: u32,
        payload: OpPayload,
        exec: ExecOp,
        children: Vec<PhysPlan>,
    ) -> PhysPlan {
        PhysPlan {
            node_type,
            est_rows: est_rows.max(1.0),
            est_cost,
            width,
            payload,
            exec,
            actual_rows: 0.0,
            actual_ms: 0.0,
            children,
        }
    }

    /// Number of nodes in this sub-plan.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(PhysPlan::len).sum::<usize>()
    }

    /// True iff the plan has no nodes (never; present for API symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Convert into a [`PlanTree`] (estimates and any filled-in actuals).
    pub fn to_plan_tree(&self) -> PlanTree {
        let mut builder = TreeBuilder::new();
        let root = self.build_into(&mut builder);
        builder.finish(root)
    }

    fn build_into(&self, builder: &mut TreeBuilder) -> dace_plan::NodeId {
        let children: Vec<dace_plan::NodeId> = self
            .children
            .iter()
            .map(|c| c.build_into(builder))
            .collect();
        let mut node = PlanNode::new(self.node_type, self.payload.clone());
        node.est_rows = self.est_rows;
        node.est_cost = self.est_cost;
        node.width = self.width;
        node.actual_rows = self.actual_rows;
        node.actual_ms = self.actual_ms;
        builder.internal(node, children)
    }
}

/// Plan `query` against `db` under `cost_model`.
///
/// Scans are chosen among sequential / index / bitmap / index-only (plus a
/// parallel Gather alternative for large sequential scans); join orders are
/// enumerated with dynamic programming over connected subsets (System R
/// style, bushy plans allowed) choosing among hash join, nested loop
/// (with inner index lookup or materialization) and sort-merge join;
/// aggregation picks hash vs. sorted grouping by cost.
pub fn plan(db: &Database, query: &Query, cost_model: &CostModel) -> Result<PhysPlan, PlanError> {
    plan_with_strategy(db, query, cost_model, JoinStrategy::Auto)
}

/// [`plan`] with an explicit join-enumeration strategy. `Auto` reproduces
/// [`plan`]'s behavior; `Dp`/`Greedy` force one enumerator regardless of
/// query width (the plan-quality guard tests compare the two directly).
pub fn plan_with_strategy(
    db: &Database,
    query: &Query,
    cost_model: &CostModel,
    strategy: JoinStrategy,
) -> Result<PhysPlan, PlanError> {
    validate_query(query)?;
    let est = CardEstimator::new(db);

    // Best access path per base relation.
    let base: Vec<PhysPlan> = query
        .tables
        .iter()
        .map(|&t| best_scan(db, query, t, cost_model, &est))
        .collect();

    // Join enumeration.
    let k = query.tables.len();
    let use_dp = match strategy {
        JoinStrategy::Auto => k <= DP_AUTO_MAX,
        JoinStrategy::Dp => true,
        JoinStrategy::Greedy => false,
    };
    let joined = if k == 1 {
        base.into_iter().next().unwrap()
    } else if use_dp {
        dp_join(db, query, base, cost_model, &est)?
    } else {
        greedy_join(db, query, base, cost_model, &est)?
    };

    // Aggregation.
    let with_agg = if query.aggregates.is_empty() {
        joined
    } else {
        add_aggregate(db, query, joined, cost_model, &est)
    };

    // LIMIT.
    Ok(finish_limit(query, with_agg, cost_model))
}

/// Wrap the plan in its LIMIT node, if the query has one. The LIMIT wrap is
/// deterministic (no physical alternatives), so the learned search driver
/// shares it verbatim.
pub(crate) fn finish_limit(query: &Query, with_agg: PhysPlan, cost_model: &CostModel) -> PhysPlan {
    match query.limit {
        Some(n) => {
            let child_rows = with_agg.est_rows;
            let child_cost = with_agg.est_cost;
            let out = (n as f64).min(child_rows);
            let cost = cost_model.limit(child_cost, child_rows, n as f64);
            PhysPlan::new(
                NodeType::Limit,
                out,
                cost,
                with_agg.width,
                OpPayload::Other,
                ExecOp::Limit { n },
                vec![with_agg],
            )
        }
        None => with_agg,
    }
}

/// First-wins argmin over candidates by analytic cost: replicates the
/// historical `if cand.est_cost < best.est_cost { best = cand }` chains
/// exactly (ties keep the earlier candidate), so splitting generation from
/// selection changes no plan the analytic planner picks.
pub(crate) fn pick_min_cost(cands: Vec<PhysPlan>) -> PhysPlan {
    cands
        .into_iter()
        .reduce(|best, c| if c.est_cost < best.est_cost { c } else { best })
        .expect("candidate generators always emit at least one plan")
}

/// Threshold row count above which a parallel Gather plan is considered.
const GATHER_MIN_ROWS: f64 = 15_000.0;
/// Simulated parallel workers.
const GATHER_WORKERS: f64 = 2.0;

/// Pick the cheapest access path for `table`.
fn best_scan(
    db: &Database,
    query: &Query,
    table: TableId,
    cm: &CostModel,
    est: &CardEstimator<'_>,
) -> PhysPlan {
    pick_min_cost(scan_candidates(db, query, table, cm, est))
}

/// Enumerate every viable access path for `table`, cheapest-analytic-first
/// semantics left to the caller. Generation order matches the historical
/// replace-if-strictly-cheaper chain (seq → gather → index → index-only →
/// bitmap), so [`pick_min_cost`] over this list reproduces [`best_scan`]
/// exactly; the learned search driver instead scores the whole list.
pub(crate) fn scan_candidates(
    db: &Database,
    query: &Query,
    table: TableId,
    cm: &CostModel,
    est: &CardEstimator<'_>,
) -> Vec<PhysPlan> {
    let stats = db.table_stats(table);
    let rows = stats.row_count as f64;
    let n_cols = db.schema.table(table).columns.len();
    let width = (n_cols * 8) as u32;
    let preds: Vec<Predicate> = query.predicates_on(table).into_iter().cloned().collect();
    let sel = est.scan_selectivity(query, table);
    let out_rows = (rows * sel).max(1.0);
    let payload = scan_payload(db, table, &preds, est);
    let exec = ExecOp::Scan {
        table,
        predicates: preds.clone(),
    };

    // Sequential scan (always available).
    let seq_cost = cm.seq_scan(rows, width as f64, preds.len());
    let mut cands = vec![PhysPlan::new(
        NodeType::SeqScan,
        out_rows,
        seq_cost,
        width,
        payload.clone(),
        exec.clone(),
        vec![],
    )];

    // Parallel alternative for big sequential scans.
    if rows > GATHER_MIN_ROWS {
        let gather_cost = cm.gather(seq_cost, out_rows, GATHER_WORKERS);
        let child = PhysPlan::new(
            NodeType::SeqScan,
            out_rows,
            seq_cost / GATHER_WORKERS,
            width,
            payload.clone(),
            exec.clone(),
            vec![],
        );
        cands.push(PhysPlan::new(
            NodeType::Gather,
            out_rows,
            gather_cost,
            width,
            OpPayload::Other,
            ExecOp::PassThrough,
            vec![child],
        ));
    }

    // Index paths need an indexed predicate column; drive the index with the
    // most selective indexed predicate.
    let indexed: Option<(&Predicate, f64)> = preds
        .iter()
        .filter(|p| db.schema.column(p.column).indexed)
        .map(|p| (p, est.predicate_selectivity(p)))
        .min_by(|a, b| a.1.total_cmp(&b.1));
    if let Some((index_pred, index_sel)) = indexed {
        let fetched = (rows * index_sel).max(1.0);

        // Plain index scan.
        let idx_cost = cm.index_scan(rows, fetched);
        cands.push(PhysPlan::new(
            NodeType::IndexScan,
            out_rows,
            idx_cost,
            width,
            payload.clone(),
            exec.clone(),
            vec![],
        ));

        // Index-only scan when the predicate is on the primary key.
        if index_pred.column.column() == 0 {
            let io_cost = cm.index_only_scan(rows, fetched);
            cands.push(PhysPlan::new(
                NodeType::IndexOnlyScan,
                out_rows,
                io_cost,
                width,
                payload.clone(),
                exec.clone(),
                vec![],
            ));
        }

        // Bitmap scan pair.
        let pages = cm.pages(rows, width as f64);
        let bis_cost = cm.bitmap_index_scan(rows, fetched);
        let bhs_cost = bis_cost + cm.bitmap_heap_scan(pages, rows, fetched);
        let index_child = PhysPlan::new(
            NodeType::BitmapIndexScan,
            fetched,
            bis_cost,
            8,
            OpPayload::Other,
            ExecOp::Scan {
                table,
                predicates: vec![index_pred.clone()],
            },
            vec![],
        );
        cands.push(PhysPlan::new(
            NodeType::BitmapHeapScan,
            out_rows,
            bhs_cost,
            width,
            payload,
            exec,
            vec![index_child],
        ));
    }
    cands
}

fn scan_payload(
    db: &Database,
    table: TableId,
    preds: &[Predicate],
    est: &CardEstimator<'_>,
) -> OpPayload {
    let infos = preds
        .iter()
        .map(|p| {
            let stats = db.column_stats(p.column);
            let (lo, hi) = match p.values.as_slice() {
                [v] => (stats.rank_of(*v), 0.0),
                [lo, hi, ..] => (stats.rank_of(*lo), stats.rank_of(*hi)),
                [] => (0.5, 0.0),
            };
            PredicateInfo {
                column_id: p.column.0,
                op: p.op,
                literal_rank: lo,
                literal_rank_hi: hi,
                est_selectivity: est.predicate_selectivity(p),
            }
        })
        .collect();
    OpPayload::Scan(ScanInfo {
        table_id: table.0,
        table_name: db.schema.table(table).name.clone(),
        predicates: infos,
    })
}

/// Dynamic programming over connected table subsets (DPsub).
fn dp_join(
    db: &Database,
    query: &Query,
    base: Vec<PhysPlan>,
    cm: &CostModel,
    est: &CardEstimator<'_>,
) -> Result<PhysPlan, PlanError> {
    let k = query.tables.len();
    let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
    let mut dp: Vec<Option<PhysPlan>> = vec![None; (full as usize) + 1];
    for (i, b) in base.into_iter().enumerate() {
        dp[1 << i] = Some(b);
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 || dp[mask as usize].is_some() {
            continue;
        }
        let mut best: Option<PhysPlan> = None;
        // Enumerate proper submasks.
        let mut left = (mask - 1) & mask;
        while left > 0 {
            let right = mask ^ left;
            // Avoid symmetric duplicates: join operators already consider
            // both build/probe assignments, so only visit left < right once.
            if left < right {
                left = (left - 1) & mask;
                continue;
            }
            if let (Some(l), Some(r)) = (&dp[left as usize], &dp[right as usize]) {
                if let Some(edge) = connecting_edge(query, left, right) {
                    let candidate = best_join(db, query, l, r, edge, cm, est);
                    if best
                        .as_ref()
                        .is_none_or(|b| candidate.est_cost < b.est_cost)
                    {
                        best = Some(candidate);
                    }
                }
            }
            left = (left - 1) & mask;
        }
        dp[mask as usize] = best;
    }
    dp[full as usize]
        .take()
        .ok_or(PlanError::DisconnectedJoinGraph)
}

/// Greedy fallback for very wide queries: repeatedly join the pair with the
/// smallest estimated output.
fn greedy_join(
    db: &Database,
    query: &Query,
    base: Vec<PhysPlan>,
    cm: &CostModel,
    est: &CardEstimator<'_>,
) -> Result<PhysPlan, PlanError> {
    // Each fragment tracks its table mask.
    let mut frags: Vec<(u32, PhysPlan)> = base
        .into_iter()
        .enumerate()
        .map(|(i, b)| (1u32 << i, b))
        .collect();
    while frags.len() > 1 {
        let mut best: Option<(usize, usize, PhysPlan)> = None;
        for i in 0..frags.len() {
            for j in 0..frags.len() {
                if i == j {
                    continue;
                }
                if let Some(edge) = connecting_edge(query, frags[i].0, frags[j].0) {
                    let cand = best_join(db, query, &frags[i].1, &frags[j].1, edge, cm, est);
                    if best.as_ref().is_none_or(|b| cand.est_cost < b.2.est_cost) {
                        best = Some((i, j, cand));
                    }
                }
            }
        }
        let (i, j, joined) = best.ok_or(PlanError::DisconnectedJoinGraph)?;
        let mask = frags[i].0 | frags[j].0;
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        frags.swap_remove(hi);
        frags.swap_remove(lo);
        frags.push((mask, joined));
    }
    Ok(frags.pop().unwrap().1)
}

/// The join edge connecting table subsets `left` and `right`, if any.
/// Query join graphs are trees (the generators add one new table per edge),
/// so at most one edge connects any two disjoint fragments.
pub(crate) fn connecting_edge(query: &Query, left: u32, right: u32) -> Option<JoinEdge> {
    let idx = |t: TableId| query.tables.iter().position(|&x| x == t).unwrap() as u32;
    query.joins.iter().copied().find(|e| {
        let c = 1u32 << idx(e.child);
        let p = 1u32 << idx(e.parent);
        (left & c != 0 && right & p != 0) || (left & p != 0 && right & c != 0)
    })
}

/// Cheapest physical join of `l` and `r` along `edge`.
fn best_join(
    db: &Database,
    query: &Query,
    l: &PhysPlan,
    r: &PhysPlan,
    edge: JoinEdge,
    cm: &CostModel,
    est: &CardEstimator<'_>,
) -> PhysPlan {
    pick_min_cost(join_candidates(db, query, l, r, edge, cm, est))
}

/// Enumerate every physical join of `l` and `r` along `edge`, in the
/// historical consideration order (hash → NL-index both orientations →
/// NL-materialize → sort-merge). [`pick_min_cost`] over this list is
/// [`best_join`]; the learned driver batches the list for model scoring.
pub(crate) fn join_candidates(
    db: &Database,
    _query: &Query,
    l: &PhysPlan,
    r: &PhysPlan,
    edge: JoinEdge,
    cm: &CostModel,
    est: &CardEstimator<'_>,
) -> Vec<PhysPlan> {
    let left_has_child = plan_tables(l).contains(&edge.child);
    let out_rows = est.join_rows(&edge, l.est_rows, r.est_rows, left_has_child);
    let width = l.width + r.width;
    let payload = join_payload(db, edge);
    let exec = ExecOp::Join { edge };

    // Hash join: build on the smaller side, probe from the larger.
    let (probe, build) = if l.est_rows >= r.est_rows {
        (l, r)
    } else {
        (r, l)
    };
    let hash_cost = build.est_cost
        + probe.est_cost
        + cm.hash_build(build.est_rows, build.width as f64)
        + cm.hash_probe(probe.est_rows, out_rows);
    let hash_node = PhysPlan::new(
        NodeType::Hash,
        build.est_rows,
        build.est_cost + cm.hash_build(build.est_rows, build.width as f64),
        build.width,
        OpPayload::Other,
        ExecOp::PassThrough,
        vec![build.clone()],
    );
    let mut cands = vec![PhysPlan::new(
        NodeType::HashJoin,
        out_rows,
        hash_cost,
        width,
        payload.clone(),
        exec.clone(),
        vec![probe.clone(), hash_node],
    )];

    // Nested loop with an index lookup on the inner side: available when the
    // inner fragment is the single parent table (PK lookup per outer row).
    for (outer, inner) in [(l, r), (r, l)] {
        let inner_tables = plan_tables(inner);
        if inner_tables.len() == 1 && inner_tables[0] == edge.parent && is_scan(inner) {
            let parent_rows = db.table_stats(edge.parent).row_count as f64;
            let per_probe = out_rows / outer.est_rows.max(1.0);
            let rescan = cm.index_scan(parent_rows, per_probe.max(1.0));
            let nl_cost = outer.est_cost + cm.nested_loop(outer.est_rows, rescan, out_rows);
            let mut inner_idx = inner.clone();
            inner_idx.node_type = NodeType::IndexScan;
            inner_idx.est_cost = outer.est_rows.max(1.0) * rescan;
            inner_idx.est_rows = per_probe.max(1.0);
            cands.push(PhysPlan::new(
                NodeType::NestedLoop,
                out_rows,
                nl_cost,
                width,
                payload.clone(),
                exec.clone(),
                vec![outer.clone(), inner_idx],
            ));
        }
    }

    // Nested loop over a materialized inner (wins only for tiny inputs).
    {
        let (outer, inner) = if l.est_rows <= r.est_rows {
            (l, r)
        } else {
            (r, l)
        };
        let mat_cost = inner.est_cost + cm.materialize(inner.est_rows, inner.width as f64);
        let rescan = cm.materialize_rescan(inner.est_rows);
        let nl_cost = outer.est_cost
            + mat_cost
            + cm.nested_loop((outer.est_rows - 1.0).max(0.0), rescan, out_rows);
        let mat = PhysPlan::new(
            NodeType::Materialize,
            inner.est_rows,
            mat_cost,
            inner.width,
            OpPayload::Other,
            ExecOp::PassThrough,
            vec![inner.clone()],
        );
        cands.push(PhysPlan::new(
            NodeType::NestedLoop,
            out_rows,
            nl_cost,
            width,
            payload.clone(),
            exec.clone(),
            vec![outer.clone(), mat],
        ));
    }

    // Sort-merge join.
    {
        let sort_l = cm.sort(l.est_rows, l.width as f64);
        let sort_r = cm.sort(r.est_rows, r.width as f64);
        let merge_cost = l.est_cost
            + sort_l
            + r.est_cost
            + sort_r
            + cm.merge_pass(l.est_rows, r.est_rows, out_rows);
        let mk_sort = |side: &PhysPlan, sort_cost: f64| {
            PhysPlan::new(
                NodeType::Sort,
                side.est_rows,
                side.est_cost + sort_cost,
                side.width,
                OpPayload::Other,
                ExecOp::PassThrough,
                vec![side.clone()],
            )
        };
        cands.push(PhysPlan::new(
            NodeType::MergeJoin,
            out_rows,
            merge_cost,
            width,
            payload,
            exec,
            vec![mk_sort(l, sort_l), mk_sort(r, sort_r)],
        ));
    }
    cands
}

fn join_payload(db: &Database, edge: JoinEdge) -> OpPayload {
    let child_t = db.schema.table(edge.child);
    let parent_t = db.schema.table(edge.parent);
    OpPayload::Join(JoinInfo {
        left_column: edge.child_column_id().0,
        right_column: edge.parent_column_id().0,
        condition: format!(
            "{}.{} = {}.{}",
            child_t.name,
            child_t.columns[edge.child_column as usize].name,
            parent_t.name,
            parent_t.columns[0].name
        ),
    })
}

/// Base tables covered by a sub-plan.
pub(crate) fn plan_tables(p: &PhysPlan) -> Vec<TableId> {
    let mut tables = Vec::new();
    collect_tables(p, &mut tables);
    tables.sort();
    tables.dedup();
    tables
}

fn collect_tables(p: &PhysPlan, out: &mut Vec<TableId>) {
    if let ExecOp::Scan { table, .. } = p.exec {
        out.push(table);
    }
    for c in &p.children {
        collect_tables(c, out);
    }
}

/// A leaf access path (possibly wrapped in Gather / bitmap pair).
fn is_scan(p: &PhysPlan) -> bool {
    matches!(
        p.node_type,
        NodeType::SeqScan
            | NodeType::IndexScan
            | NodeType::IndexOnlyScan
            | NodeType::BitmapHeapScan
    )
}

/// Add the aggregation operator: hash aggregation vs. sort + group
/// aggregation by cost; plain aggregation maps to GroupAggregate sans sort.
fn add_aggregate(
    db: &Database,
    query: &Query,
    child: PhysPlan,
    cm: &CostModel,
    est: &CardEstimator<'_>,
) -> PhysPlan {
    pick_min_cost(aggregate_candidates(db, query, &child, cm, est))
}

/// Enumerate aggregation roots over `child`: hash aggregate first, then
/// sort + group aggregate (the historical `hash_cost <= sorted_cost` tie
/// preference for hash equals first-wins argmin over this order). Grouping-
/// free queries have exactly one candidate.
pub(crate) fn aggregate_candidates(
    db: &Database,
    query: &Query,
    child: &PhysPlan,
    cm: &CostModel,
    est: &CardEstimator<'_>,
) -> Vec<PhysPlan> {
    let in_rows = child.est_rows;
    let groups = match query.group_by {
        Some(col) => est.group_count(col, in_rows),
        None => 1.0,
    };
    let width = (query.aggregates.len() as u32 + 1) * 8;
    let exec = ExecOp::Aggregate {
        group_by: query.group_by,
    };
    let _ = db;
    if query.group_by.is_none() {
        // Plain aggregate: single pass.
        let cost = child.est_cost + cm.group_agg(in_rows, 1.0);
        return vec![PhysPlan::new(
            NodeType::GroupAggregate,
            1.0,
            cost,
            width,
            OpPayload::Other,
            exec,
            vec![child.clone()],
        )];
    }
    let hash_cost = child.est_cost + cm.hash_agg(in_rows, groups);
    let sorted_cost =
        child.est_cost + cm.sort(in_rows, child.width as f64) + cm.group_agg(in_rows, groups);
    let sort = PhysPlan::new(
        NodeType::Sort,
        in_rows,
        child.est_cost + cm.sort(in_rows, child.width as f64),
        child.width,
        OpPayload::Other,
        ExecOp::PassThrough,
        vec![child.clone()],
    );
    vec![
        PhysPlan::new(
            NodeType::HashAggregate,
            groups,
            hash_cost,
            width,
            OpPayload::Other,
            exec.clone(),
            vec![child.clone()],
        ),
        PhysPlan::new(
            NodeType::GroupAggregate,
            groups,
            sorted_cost,
            width,
            OpPayload::Other,
            exec,
            vec![sort],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_catalog::{generate_database, suite_specs};
    use dace_query::ComplexWorkloadGen;

    fn db() -> Database {
        generate_database(&suite_specs()[0], 0.02)
    }

    #[test]
    fn single_table_plan_is_a_scan() {
        let db = db();
        let q = Query::scan(0, TableId(0));
        let p = plan(&db, &q, &CostModel::default()).unwrap();
        assert!(is_scan(&p) || p.node_type == NodeType::Gather);
        assert!(p.est_rows >= 1.0);
        assert!(p.est_cost > 0.0);
    }

    #[test]
    fn join_plans_cover_all_tables_and_costs_are_monotone() {
        let db = db();
        let queries = ComplexWorkloadGen::default().generate(&db, 100);
        for q in &queries {
            let p = plan(&db, q, &CostModel::default()).unwrap();
            let covered = plan_tables(&p);
            let mut expect = q.tables.clone();
            expect.sort();
            assert_eq!(covered, expect, "plan must cover all query tables");
            // Cumulative cost is monotone up the tree.
            check_cost_monotone(&p);
        }
    }

    fn check_cost_monotone(p: &PhysPlan) {
        for c in &p.children {
            // Limit nodes legitimately cost less than their children;
            // everything else accumulates.
            if p.node_type != NodeType::Limit && p.node_type != NodeType::Gather {
                assert!(
                    p.est_cost >= c.est_cost * 0.999,
                    "{:?} cost {} < child {:?} cost {}",
                    p.node_type,
                    p.est_cost,
                    c.node_type,
                    c.est_cost
                );
            }
            check_cost_monotone(c);
        }
    }

    #[test]
    fn aggregated_queries_get_aggregate_roots() {
        let db = db();
        let queries = ComplexWorkloadGen::default().generate(&db, 150);
        let mut saw_agg = false;
        for q in &queries {
            if q.aggregates.is_empty() {
                continue;
            }
            let p = plan(&db, q, &CostModel::default()).unwrap();
            let root_ty = match q.limit {
                Some(_) => p.children[0].node_type,
                None => p.node_type,
            };
            assert!(
                matches!(root_ty, NodeType::HashAggregate | NodeType::GroupAggregate),
                "aggregate query got {root_ty:?} root"
            );
            saw_agg = true;
        }
        assert!(saw_agg);
    }

    #[test]
    fn plan_tree_conversion_preserves_structure() {
        let db = db();
        let q = ComplexWorkloadGen::default()
            .generate(&db, 20)
            .pop()
            .unwrap();
        let p = plan(&db, &q, &CostModel::default()).unwrap();
        let tree = p.to_plan_tree();
        assert_eq!(tree.len(), p.len());
        assert_eq!(tree.node(tree.root()).node_type, p.node_type);
        assert!((tree.est_cost() - p.est_cost).abs() < 1e-9);
    }

    #[test]
    fn selective_pk_predicate_prefers_index_path() {
        let db = db();
        let mut q = Query::scan(0, TableId(0));
        q.predicates = vec![dace_query::Predicate {
            column: ColumnId::new(TableId(0), 0),
            op: dace_plan::CmpOp::Eq,
            values: vec![5],
        }];
        let p = plan(&db, &q, &CostModel::default()).unwrap();
        assert!(
            matches!(
                p.node_type,
                NodeType::IndexScan | NodeType::IndexOnlyScan | NodeType::BitmapHeapScan
            ),
            "selective PK lookup chose {:?}",
            p.node_type
        );
    }

    #[test]
    fn plans_use_diverse_operators() {
        let db = db();
        let queries = ComplexWorkloadGen::default().generate(&db, 300);
        let mut seen = std::collections::HashSet::new();
        for q in &queries {
            let p = plan(&db, q, &CostModel::default()).unwrap();
            collect_types(&p, &mut seen);
        }
        // The corpus should exercise a healthy operator variety.
        assert!(
            seen.len() >= 8,
            "only {} operator types in 300 plans: {seen:?}",
            seen.len()
        );
        assert!(seen.contains(&NodeType::HashJoin) || seen.contains(&NodeType::NestedLoop));
    }

    fn collect_types(p: &PhysPlan, out: &mut std::collections::HashSet<NodeType>) {
        out.insert(p.node_type);
        for c in &p.children {
            collect_types(c, out);
        }
    }
}
