//! The plan-search driver: the analytic planner's enumeration with the
//! argmin handed to a [`PlanScorer`].
//!
//! Candidates are collected *per decision level* — every table's access
//! paths at once, every DP level's join candidates at once — and scored in
//! one batch per level. A 9-relation query's DP enumerates hundreds of
//! candidate sub-plans; batching them turns the optimizer into exactly the
//! block-diagonal traffic shape the serving kernels are optimized for,
//! instead of thousands of single-plan forwards.
//!
//! The enumeration order (masks ascending, partitions in submask-descending
//! order, candidate generation order inside each group) is kept identical to
//! [`crate::planner`], so driving the search with [`AnalyticScorer`] is
//! bit-for-bit the analytic planner — the equivalence test that pins the
//! two implementations together.
//!
//! [`AnalyticScorer`]: crate::search::AnalyticScorer

use std::ops::Range;

use dace_catalog::Database;
use dace_obs::span;
use dace_query::Query;

use crate::card::CardEstimator;
use crate::cost::CostModel;
use crate::planner::{
    aggregate_candidates, connecting_edge, finish_limit, join_candidates, scan_candidates,
    validate_query, JoinStrategy, PhysPlan, PlanError, DP_AUTO_MAX,
};
use crate::search::scorer::PlanScorer;

/// One scoring group covering the whole candidate batch.
#[allow(clippy::single_range_in_vec_init)]
fn whole_batch(n: usize) -> [Range<usize>; 1] {
    [0..n]
}

/// Counters from one driven search (per-query; sum across a workload for
/// the experiment report).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SearchReport {
    /// Candidate sub-plans submitted to the scorer.
    pub candidates_scored: usize,
    /// Scoring batches issued (one per decision level with candidates).
    pub score_batches: usize,
    /// Decisions made (scan choices + join subsets + aggregate root).
    pub decision_groups: usize,
    /// DP levels (or greedy rounds) enumerated.
    pub join_levels: usize,
}

/// A plan-search context over one database and cost model.
///
/// The cost model still annotates every candidate with `est_cost` —
/// that stays the model's *input feature* (DACE corrects estimated cost
/// into latency); the scorer only replaces the *argmin*.
#[derive(Debug, Clone, Copy)]
pub struct SearchSession<'a> {
    db: &'a Database,
    cm: &'a CostModel,
}

impl<'a> SearchSession<'a> {
    /// A session planning against `db` under `cm`.
    pub fn new(db: &'a Database, cm: &'a CostModel) -> SearchSession<'a> {
        SearchSession { db, cm }
    }

    /// Plan `query` with `scorer` choosing among candidates, using the
    /// default [`JoinStrategy::Auto`] width policy.
    pub fn plan(
        &self,
        query: &Query,
        scorer: &mut dyn PlanScorer,
    ) -> Result<(PhysPlan, SearchReport), PlanError> {
        self.plan_with_strategy(query, scorer, JoinStrategy::Auto)
    }

    /// [`SearchSession::plan`] with an explicit join-enumeration strategy.
    pub fn plan_with_strategy(
        &self,
        query: &Query,
        scorer: &mut dyn PlanScorer,
        strategy: JoinStrategy,
    ) -> Result<(PhysPlan, SearchReport), PlanError> {
        validate_query(query)?;
        // Give this planning session its own causal trace unless the caller
        // already runs under one (e.g. a serve worker planning inside a
        // request's scope) — every search span below inherits it.
        let _trace = (dace_obs::current_trace() == 0)
            .then(|| dace_obs::trace_scope(dace_obs::next_trace_id()));
        let est = CardEstimator::new(self.db);
        let mut report = SearchReport::default();

        // Level 0: every table's access paths, one batch, one group per
        // table.
        let base = {
            let _span = span!("search_scan");
            let mut cands: Vec<PhysPlan> = Vec::new();
            let mut groups: Vec<Range<usize>> = Vec::new();
            for &t in &query.tables {
                let start = cands.len();
                cands.extend(scan_candidates(self.db, query, t, self.cm, &est));
                groups.push(start..cands.len());
            }
            let picked = self.pick(scorer, &cands, &groups, &mut report);
            picked
                .into_iter()
                .map(|i| cands[i].clone())
                .collect::<Vec<_>>()
        };

        // Join enumeration.
        let k = query.tables.len();
        let use_dp = match strategy {
            JoinStrategy::Auto => k <= DP_AUTO_MAX,
            JoinStrategy::Dp => true,
            JoinStrategy::Greedy => false,
        };
        let joined = if k == 1 {
            base.into_iter().next().unwrap()
        } else if use_dp {
            self.dp_join(query, base, &est, scorer, &mut report)?
        } else {
            self.greedy_join(query, base, &est, scorer, &mut report)?
        };

        // Aggregation.
        let with_agg = if query.aggregates.is_empty() {
            joined
        } else {
            let _span = span!("search_aggregate");
            let cands = aggregate_candidates(self.db, query, &joined, self.cm, &est);
            let groups = whole_batch(cands.len());
            let picked = self.pick(scorer, &cands, &groups, &mut report);
            cands[picked[0]].clone()
        };

        Ok((finish_limit(query, with_agg, self.cm), report))
    }

    /// Score one batch and return the first-wins argmin index per group.
    fn pick(
        &self,
        scorer: &mut dyn PlanScorer,
        cands: &[PhysPlan],
        groups: &[Range<usize>],
        report: &mut SearchReport,
    ) -> Vec<usize> {
        let _span = span!("search_score");
        let scores = scorer.score(cands, groups);
        debug_assert_eq!(scores.len(), cands.len());
        report.candidates_scored += cands.len();
        report.score_batches += 1;
        report.decision_groups += groups.len();
        groups
            .iter()
            .map(|g| {
                let mut best = g.start;
                for i in g.clone() {
                    if scores[i] < scores[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// DPsub join enumeration, level-batched: all candidate joins of all
    /// same-popcount subsets are scored in one batch, then the chosen
    /// sub-plan per subset feeds the next level.
    fn dp_join(
        &self,
        query: &Query,
        base: Vec<PhysPlan>,
        est: &CardEstimator<'_>,
        scorer: &mut dyn PlanScorer,
        report: &mut SearchReport,
    ) -> Result<PhysPlan, PlanError> {
        let _span = span!("search_dp_join");
        let k = query.tables.len();
        let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
        let mut dp: Vec<Option<PhysPlan>> = vec![None; (full as usize) + 1];
        for (i, b) in base.into_iter().enumerate() {
            dp[1 << i] = Some(b);
        }
        for size in 2..=(k as u32) {
            report.join_levels += 1;
            let mut cands: Vec<PhysPlan> = Vec::new();
            let mut groups: Vec<Range<usize>> = Vec::new();
            let mut masks: Vec<u32> = Vec::new();
            for mask in 1..=full {
                if mask.count_ones() != size {
                    continue;
                }
                let start = cands.len();
                // Proper submasks, descending — the analytic planner's
                // enumeration order.
                let mut left = (mask - 1) & mask;
                while left > 0 {
                    let right = mask ^ left;
                    // Join operators already consider both build/probe
                    // assignments; visit each split once.
                    if left < right {
                        left = (left - 1) & mask;
                        continue;
                    }
                    if let (Some(l), Some(r)) = (&dp[left as usize], &dp[right as usize]) {
                        if let Some(edge) = connecting_edge(query, left, right) {
                            cands.extend(join_candidates(self.db, query, l, r, edge, self.cm, est));
                        }
                    }
                    left = (left - 1) & mask;
                }
                if cands.len() > start {
                    groups.push(start..cands.len());
                    masks.push(mask);
                }
            }
            if cands.is_empty() {
                continue;
            }
            let picked = self.pick(scorer, &cands, &groups, report);
            for (m, i) in masks.into_iter().zip(picked) {
                dp[m as usize] = Some(cands[i].clone());
            }
        }
        dp[full as usize]
            .take()
            .ok_or(PlanError::DisconnectedJoinGraph)
    }

    /// Greedy join for wide queries: each round batches every joinable
    /// fragment pair's candidates as one decision group and merges the
    /// winner.
    fn greedy_join(
        &self,
        query: &Query,
        base: Vec<PhysPlan>,
        est: &CardEstimator<'_>,
        scorer: &mut dyn PlanScorer,
        report: &mut SearchReport,
    ) -> Result<PhysPlan, PlanError> {
        let _span = span!("search_greedy_join");
        let mut frags: Vec<(u32, PhysPlan)> = base
            .into_iter()
            .enumerate()
            .map(|(i, b)| (1u32 << i, b))
            .collect();
        while frags.len() > 1 {
            report.join_levels += 1;
            let mut cands: Vec<PhysPlan> = Vec::new();
            let mut pair_of: Vec<(usize, usize)> = Vec::new();
            for i in 0..frags.len() {
                for j in 0..frags.len() {
                    if i == j {
                        continue;
                    }
                    if let Some(edge) = connecting_edge(query, frags[i].0, frags[j].0) {
                        let start = cands.len();
                        cands.extend(join_candidates(
                            self.db,
                            query,
                            &frags[i].1,
                            &frags[j].1,
                            edge,
                            self.cm,
                            est,
                        ));
                        pair_of.extend(std::iter::repeat_n((i, j), cands.len() - start));
                    }
                }
            }
            if cands.is_empty() {
                return Err(PlanError::DisconnectedJoinGraph);
            }
            let groups = whole_batch(cands.len());
            let picked = self.pick(scorer, &cands, &groups, report);
            let best = picked[0];
            let (i, j) = pair_of[best];
            let joined = cands[best].clone();
            let mask = frags[i].0 | frags[j].0;
            let (hi, lo) = if i > j { (i, j) } else { (j, i) };
            frags.swap_remove(hi);
            frags.swap_remove(lo);
            frags.push((mask, joined));
        }
        Ok(frags.pop().unwrap().1)
    }
}
