//! The sub-plan score memo: fingerprint → predicted latency.
//!
//! Join enumeration revisits the same sub-trees constantly — a DP level's
//! candidates share children with every later level that builds on them, and
//! consecutive queries over the same schema produce recurring shapes. The
//! memo keys on the structural fingerprint the serve feature cache already
//! uses ([`Featurizer::fingerprint`]: FNV-1a over node types, child counts
//! and log-quantized estimates, salted with the scaler parameters), so a
//! memoized score can never outlive the model's featurization. Quantization
//! means near-identical estimates (within ~1.6%) share a cell — the same
//! by-design approximation the serve cache makes.
//!
//! Storage is the serve crate's [`ShardedLruCache`] — bounded, O(1), with
//! lock-free hit/miss counters that become the experiment's memo hit-rate.
//!
//! [`Featurizer::fingerprint`]: dace_core::Featurizer::fingerprint

use dace_serve::ShardedLruCache;

/// Bounded memo of sub-plan scores keyed by structural fingerprint.
#[derive(Debug)]
pub struct ScoreMemo {
    cache: ShardedLruCache<f64>,
    capacity: usize,
}

impl ScoreMemo {
    /// Memo holding up to `capacity` scores. `capacity = 0` disables
    /// memoization entirely (every candidate is scored fresh) — the
    /// bit-identity tests diff enabled vs disabled runs.
    pub fn new(capacity: usize) -> ScoreMemo {
        ScoreMemo {
            cache: ShardedLruCache::new(capacity),
            capacity,
        }
    }

    /// Whether memoization is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up a fingerprint's memoized score, counting the hit/miss.
    pub fn get(&self, fingerprint: u64) -> Option<f64> {
        self.cache.get(fingerprint)
    }

    /// Memoize a freshly computed score.
    pub fn insert(&self, fingerprint: u64, score_ms: f64) {
        self.cache.insert(fingerprint, score_ms);
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Lookups that required a fresh model score.
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Fraction of lookups served from the memo (0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            return 0.0;
        }
        self.hits() as f64 / total as f64
    }

    /// Scores currently memoized.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the memo holds no scores.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_round_trips_and_counts() {
        let memo = ScoreMemo::new(64);
        assert!(memo.enabled());
        assert_eq!(memo.get(42), None);
        memo.insert(42, 1.5);
        assert_eq!(memo.get(42), Some(1.5));
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        assert!((memo.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables() {
        let memo = ScoreMemo::new(0);
        assert!(!memo.enabled());
        memo.insert(7, 1.0);
        assert_eq!(memo.get(7), None);
        assert!(memo.is_empty());
    }
}
