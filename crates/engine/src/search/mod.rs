//! Learned-cost plan search: DACE inside the optimizer.
//!
//! The analytic planner ([`crate::planner`]) picks every scan, join and
//! aggregate by `est_cost` argmin. This module runs the *same enumeration*
//! but delegates the argmin to a pluggable [`PlanScorer`], so the choice can
//! come from batched DACE inference instead of the analytic cost model:
//!
//! * [`SearchSession`] — the driver. It collects candidate sub-plans per
//!   decision level (all scans, then each DP level's join candidates, then
//!   aggregation) and scores each level in **one** batch, the traffic shape
//!   the block-diagonal serving kernels are built for.
//! * [`PlanScorer`] — the scoring strategy: [`AnalyticScorer`] (reproduces
//!   the analytic planner bit-for-bit), [`LearnedScorer`] (batched DACE
//!   predictions, lower predicted ms wins) and [`HybridScorer`] (learned
//!   for expensive decision groups, analytic below a cost threshold).
//! * [`ScoreMemo`] — a sharded LRU over sub-plan fingerprints
//!   ([`dace_core::Featurizer::fingerprint`], the same FNV-1a key the serve
//!   feature cache uses) so shared sub-trees are featurized and scored
//!   exactly once across the enumeration.
//! * [`CrossMachineRouter`] — scores the finished plan under M1- and
//!   M2-tuned adapters resolved from the serve [`ModelRegistry`] and
//!   reports the cheaper machine.
//!
//! [`ModelRegistry`]: dace_serve::ModelRegistry

mod driver;
mod memo;
mod route;
mod scorer;

pub use driver::{SearchReport, SearchSession};
pub use memo::ScoreMemo;
pub use route::{CrossMachineRouter, RoutingDecision};
pub use scorer::{AnalyticScorer, ExplorationScorer, HybridScorer, LearnedScorer, PlanScorer};
