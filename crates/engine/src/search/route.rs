//! Cross-machine routing: which machine should run the chosen plan?
//!
//! The paper fine-tunes DACE per machine with LoRA adapters (M1/M2 differ in
//! hardware, so the same plan has different latency on each). Given a
//! registry holding machine-tuned adapters, routing is one batched forward:
//! score the finished plan under each machine's model and run it where the
//! predicted latency is lower. This is the learned-cost cross-engine
//! decision of "A Learned Cost Model-based Cross-engine Optimizer"
//! (PAPERS.md), applied to machine selection.

use dace_plan::MachineId;
use dace_serve::{ModelRegistry, RegistryError};

use crate::planner::PhysPlan;

/// The outcome of routing one plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingDecision {
    /// The machine with the lower predicted latency (ties go to M1).
    pub machine: MachineId,
    /// Predicted latency under the M1-tuned model (ms).
    pub m1_pred_ms: f64,
    /// Predicted latency under the M2-tuned model (ms).
    pub m2_pred_ms: f64,
    /// Registry version of the M1 model that scored the plan.
    pub m1_version: u64,
    /// Registry version of the M2 model that scored the plan.
    pub m2_version: u64,
}

/// Routes finished plans to the machine whose tuned model predicts the
/// lower latency.
///
/// Adapter names are resolved per call through the registry's lock-free
/// read path, so adapter hot-swaps (a retrain loop republishing a machine's
/// adapter) take effect on the next routed query without rebuilding the
/// router.
#[derive(Debug)]
pub struct CrossMachineRouter<'a> {
    registry: &'a ModelRegistry,
    m1_adapter: Option<String>,
    m2_adapter: Option<String>,
}

impl<'a> CrossMachineRouter<'a> {
    /// Router resolving `m1_adapter` / `m2_adapter` from `registry`
    /// (`None` means the base model serves that machine).
    pub fn new(
        registry: &'a ModelRegistry,
        m1_adapter: Option<String>,
        m2_adapter: Option<String>,
    ) -> CrossMachineRouter<'a> {
        CrossMachineRouter {
            registry,
            m1_adapter,
            m2_adapter,
        }
    }

    /// Score `plan` under both machine models and pick the cheaper machine.
    pub fn route(&self, plan: &PhysPlan) -> Result<RoutingDecision, RegistryError> {
        let tree = plan.to_plan_tree();
        let m1 = self.registry.resolve(self.m1_adapter.as_deref())?;
        let m2 = self.registry.resolve(self.m2_adapter.as_deref())?;
        let m1_pred_ms = m1.estimator.predict_ms(&tree);
        let m2_pred_ms = m2.estimator.predict_ms(&tree);
        let machine = if m1_pred_ms <= m2_pred_ms {
            MachineId::M1
        } else {
            MachineId::M2
        };
        Ok(RoutingDecision {
            machine,
            m1_pred_ms,
            m2_pred_ms,
            m1_version: m1.version,
            m2_version: m2.version,
        })
    }
}
