//! Plan scoring strategies: how the search driver ranks candidate sub-plans.
//!
//! The driver hands a scorer one flat batch of candidates plus the decision
//! groups partitioning it (one group = one choice: an access path for one
//! table, the join for one DP subset, the aggregate root). Scores only ever
//! compete **within** a group, which is what lets [`HybridScorer`] mix
//! units — predicted milliseconds for groups it scores with the model,
//! abstract cost for groups it leaves to the analytic model — without ever
//! comparing one against the other.

use std::collections::HashMap;
use std::ops::Range;

use dace_core::{DaceEstimator, ScoreSession};
use dace_plan::PlanTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::planner::PhysPlan;
use crate::search::memo::ScoreMemo;

/// A strategy for ranking candidate sub-plans; lower score wins.
pub trait PlanScorer {
    /// Strategy name for reports and metrics labels.
    fn name(&self) -> &'static str;

    /// Score every candidate. `groups` partitions `cands` into decision
    /// groups; returned scores must be comparable within a group (lower is
    /// better) but carry no meaning across groups.
    fn score(&mut self, cands: &[PhysPlan], groups: &[Range<usize>]) -> Vec<f64>;
}

/// The analytic cost model as a scorer: score = `est_cost`. Driving the
/// search with this reproduces [`crate::planner::plan_with_strategy`]
/// bit-for-bit (the equivalence test in `search_props.rs` holds the two
/// implementations together).
#[derive(Debug, Default, Clone, Copy)]
pub struct AnalyticScorer;

impl PlanScorer for AnalyticScorer {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn score(&mut self, cands: &[PhysPlan], _groups: &[Range<usize>]) -> Vec<f64> {
        cands.iter().map(|c| c.est_cost).collect()
    }
}

/// Analytic cost perturbed by multiplicative log-normal noise — the
/// exploration policy for training-data collection.
///
/// A model trained only on analytic-picked plans has never seen a label for
/// the candidates the analytic argmin rejected, so a learned search can
/// wander into sub-plans whose latency the model confidently underestimates
/// (the classic off-policy gap of learned optimizers). Planning the training
/// workload under this scorer yields executable, near-optimal-but-diverse
/// plans — each decision flips away from the analytic choice whenever the
/// noise outweighs the cost gap — and their executed labels teach the model
/// what the rejected region actually costs.
#[derive(Debug, Clone)]
pub struct ExplorationScorer {
    rng: SmallRng,
    sigma: f64,
}

impl ExplorationScorer {
    /// Scorer multiplying every candidate's cost by `exp(sigma · N(0,1))`,
    /// deterministic in `seed`.
    pub fn new(seed: u64, sigma: f64) -> ExplorationScorer {
        ExplorationScorer {
            rng: SmallRng::seed_from_u64(seed ^ 0xE890_17AE),
            sigma,
        }
    }
}

impl PlanScorer for ExplorationScorer {
    fn name(&self) -> &'static str {
        "exploration"
    }

    fn score(&mut self, cands: &[PhysPlan], _groups: &[Range<usize>]) -> Vec<f64> {
        cands
            .iter()
            .map(|c| {
                let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = self.rng.gen();
                let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                c.est_cost * (self.sigma * normal).exp()
            })
            .collect()
    }
}

/// Batched DACE inference as a scorer: score = predicted sub-plan latency in
/// milliseconds. DACE predicts every sub-plan of a tree in parallel during
/// training, so candidate sub-trees are exactly in-distribution.
///
/// Each batch is deduplicated against the [`ScoreMemo`] (cross-batch
/// sharing) and within itself (batch-local duplicates), so a shared sub-tree
/// is featurized and scored once per memo lifetime.
#[derive(Debug)]
pub struct LearnedScorer<'a> {
    session: ScoreSession<'a>,
    memo: ScoreMemo,
    dedup_hits: u64,
}

impl<'a> LearnedScorer<'a> {
    /// Scorer over `est` with a score memo of `memo_capacity` entries
    /// (0 disables memoization and batch-local dedup, scoring every
    /// candidate fresh).
    pub fn new(est: &'a DaceEstimator, memo_capacity: usize) -> LearnedScorer<'a> {
        LearnedScorer {
            session: ScoreSession::new(est),
            memo: ScoreMemo::new(memo_capacity),
            dedup_hits: 0,
        }
    }

    /// The score memo (hit-rate reporting).
    pub fn memo(&self) -> &ScoreMemo {
        &self.memo
    }

    /// The underlying scoring session (throughput reporting).
    pub fn session(&self) -> &ScoreSession<'a> {
        &self.session
    }

    /// Batch-local duplicates resolved without a lookup or a model call
    /// (same fingerprint appearing twice in one batch).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Score a set of candidate sub-plans (by reference so [`HybridScorer`]
    /// can route a sub-batch here without cloning plans).
    pub(crate) fn score_refs(&mut self, cands: &[&PhysPlan]) -> Vec<f64> {
        let trees: Vec<PlanTree> = cands.iter().map(|c| c.to_plan_tree()).collect();
        if !self.memo.enabled() {
            // Memo disabled: one batch over everything, no dedup. This is
            // the baseline the bit-identity test compares against.
            let refs: Vec<&PlanTree> = trees.iter().collect();
            return self.session.score_trees_ms(&refs).to_vec();
        }
        let fps: Vec<u64> = trees.iter().map(|t| self.session.fingerprint(t)).collect();
        let mut scores = vec![0.0f64; cands.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        for i in 0..cands.len() {
            match self.memo.get(fps[i]) {
                Some(s) => scores[i] = s,
                None => miss_idx.push(i),
            }
        }
        if miss_idx.is_empty() {
            return scores;
        }
        // Batch-local dedup: score each distinct fingerprint once.
        let mut slot_of: HashMap<u64, usize> = HashMap::with_capacity(miss_idx.len());
        let mut unique: Vec<usize> = Vec::with_capacity(miss_idx.len());
        for &i in &miss_idx {
            if let std::collections::hash_map::Entry::Vacant(slot) = slot_of.entry(fps[i]) {
                slot.insert(unique.len());
                unique.push(i);
            } else {
                self.dedup_hits += 1;
            }
        }
        let tree_refs: Vec<&PlanTree> = unique.iter().map(|&i| &trees[i]).collect();
        let fresh = self.session.score_trees_ms(&tree_refs).to_vec();
        for (slot, &i) in unique.iter().enumerate() {
            self.memo.insert(fps[i], fresh[slot]);
        }
        for &i in &miss_idx {
            scores[i] = fresh[slot_of[&fps[i]]];
        }
        scores
    }
}

impl PlanScorer for LearnedScorer<'_> {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn score(&mut self, cands: &[PhysPlan], _groups: &[Range<usize>]) -> Vec<f64> {
        let refs: Vec<&PhysPlan> = cands.iter().collect();
        self.score_refs(&refs)
    }
}

/// Learned scoring for expensive decisions, analytic for cheap ones.
///
/// A decision group goes to the model when its *cheapest analytic
/// candidate* is at least `threshold` cost units — where the analytic model
/// already says the decision is expensive enough for operator-dependent
/// latency effects (the EDQO the model learns) to matter. Cheap groups keep
/// the analytic choice and skip featurization entirely. Group-at-a-time
/// partitioning keeps every within-group comparison in one unit.
#[derive(Debug)]
pub struct HybridScorer<'a> {
    learned: LearnedScorer<'a>,
    threshold: f64,
    learned_groups: u64,
    analytic_groups: u64,
}

impl<'a> HybridScorer<'a> {
    /// Hybrid scorer sending groups with min analytic cost ≥ `threshold`
    /// to `est`.
    pub fn new(est: &'a DaceEstimator, memo_capacity: usize, threshold: f64) -> HybridScorer<'a> {
        HybridScorer {
            learned: LearnedScorer::new(est, memo_capacity),
            threshold,
            learned_groups: 0,
            analytic_groups: 0,
        }
    }

    /// The inner learned scorer (memo/session reporting).
    pub fn learned(&self) -> &LearnedScorer<'a> {
        &self.learned
    }

    /// Decision groups scored by the model.
    pub fn learned_groups(&self) -> u64 {
        self.learned_groups
    }

    /// Decision groups left to the analytic model.
    pub fn analytic_groups(&self) -> u64 {
        self.analytic_groups
    }
}

impl PlanScorer for HybridScorer<'_> {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn score(&mut self, cands: &[PhysPlan], groups: &[Range<usize>]) -> Vec<f64> {
        let mut scores: Vec<f64> = cands.iter().map(|c| c.est_cost).collect();
        let mut routed: Vec<usize> = Vec::new();
        for g in groups {
            let min_cost = cands[g.clone()]
                .iter()
                .map(|c| c.est_cost)
                .fold(f64::INFINITY, f64::min);
            if min_cost >= self.threshold {
                self.learned_groups += 1;
                routed.extend(g.clone());
            } else {
                self.analytic_groups += 1;
            }
        }
        if !routed.is_empty() {
            let refs: Vec<&PhysPlan> = routed.iter().map(|&i| &cands[i]).collect();
            let learned_scores = self.learned.score_refs(&refs);
            for (k, &i) in routed.iter().enumerate() {
                scores[i] = learned_scores[k];
            }
        }
        scores
    }
}
