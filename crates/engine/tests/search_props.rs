//! Plan-search guarantees: the driven search must reproduce the analytic
//! planner exactly under the analytic scorer, DP must dominate greedy under
//! the analytic model, typed plan errors must replace panics, and the score
//! memo must be invisible to search results while counting shared sub-trees
//! correctly.

use std::sync::OnceLock;

use dace_catalog::{generate_database, suite_specs, Database, TableId};
use dace_core::{DaceEstimator, TrainConfig, Trainer};
use dace_engine::{
    collect_dataset, plan, plan_with_strategy, AnalyticScorer, CostModel, CrossMachineRouter,
    HybridScorer, JoinStrategy, LearnedScorer, PlanError, SearchSession, MAX_RELATIONS,
};
use dace_plan::MachineId;
use dace_query::{ComplexWorkloadGen, Query};
use dace_serve::ModelRegistry;
use proptest::prelude::*;

fn test_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| generate_database(&suite_specs()[2], 0.05))
}

/// A small DACE trained on this database's own workload — enough signal for
/// the learned scorer to produce meaningful (and deterministic) scores.
fn test_estimator() -> &'static DaceEstimator {
    static EST: OnceLock<DaceEstimator> = OnceLock::new();
    EST.get_or_init(|| {
        let db = test_db();
        let queries = ComplexWorkloadGen::default().generate(db, 80);
        let data = collect_dataset(db, &queries, MachineId::M1);
        Trainer::new(TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        })
        .fit(&data)
        .expect("training the test estimator")
    })
}

#[test]
fn analytic_search_is_bit_identical_to_planner() {
    let db = test_db();
    let cm = CostModel::default();
    let session = SearchSession::new(db, &cm);
    let queries = ComplexWorkloadGen::default().generate(db, 120);
    for strategy in [JoinStrategy::Auto, JoinStrategy::Dp, JoinStrategy::Greedy] {
        for q in &queries {
            let direct = plan_with_strategy(db, q, &cm, strategy).unwrap();
            let (searched, report) = session
                .plan_with_strategy(q, &mut AnalyticScorer, strategy)
                .unwrap();
            assert_eq!(
                searched, direct,
                "analytic-scored search diverged from the planner ({strategy:?})"
            );
            assert!(report.candidates_scored >= 1);
            assert!(report.decision_groups >= q.tables.len());
        }
    }
}

#[test]
fn empty_table_list_is_a_typed_error() {
    let db = test_db();
    let q = Query {
        db_id: db.db_id(),
        tables: vec![],
        joins: vec![],
        predicates: vec![],
        group_by: None,
        aggregates: vec![],
        limit: None,
    };
    assert_eq!(
        plan(db, &q, &CostModel::default()).unwrap_err(),
        PlanError::EmptyTableList
    );
    let cm = CostModel::default();
    let err = SearchSession::new(db, &cm)
        .plan(&q, &mut AnalyticScorer)
        .unwrap_err();
    assert_eq!(err, PlanError::EmptyTableList);
    assert_eq!(err.to_string(), "query references no tables");
}

#[test]
fn too_many_relations_is_a_typed_error() {
    let db = test_db();
    let q = Query {
        db_id: db.db_id(),
        tables: vec![TableId(0); MAX_RELATIONS + 1],
        joins: vec![],
        predicates: vec![],
        group_by: None,
        aggregates: vec![],
        limit: None,
    };
    match plan(db, &q, &CostModel::default()) {
        Err(PlanError::TooManyRelations { count, cap }) => {
            assert_eq!(count, MAX_RELATIONS + 1);
            assert_eq!(cap, MAX_RELATIONS);
        }
        other => panic!("expected TooManyRelations, got {other:?}"),
    }
}

#[test]
fn disconnected_join_graph_is_a_typed_error() {
    let db = test_db();
    // Two tables, no join edge between them.
    let q = Query {
        db_id: db.db_id(),
        tables: vec![TableId(0), TableId(1)],
        joins: vec![],
        predicates: vec![],
        group_by: None,
        aggregates: vec![],
        limit: None,
    };
    assert_eq!(
        plan(db, &q, &CostModel::default()).unwrap_err(),
        PlanError::DisconnectedJoinGraph
    );
    assert_eq!(
        plan_with_strategy(db, &q, &CostModel::default(), JoinStrategy::Greedy).unwrap_err(),
        PlanError::DisconnectedJoinGraph
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DP dominance: on queries the DP enumerator handles (≤ 9 relations),
    /// exhaustive enumeration never produces a costlier plan than the
    /// greedy heuristic — the plan-cost guard for the DP path the learned
    /// scorer reuses. (Aggregates/limits are kept: both sit deterministically
    /// on top of the join result, so dominance carries through.)
    #[test]
    fn greedy_never_beats_dp_under_analytic_model(seed in 0u64..400) {
        let db = test_db();
        let cm = CostModel::default();
        let gen = ComplexWorkloadGen { max_joins: 8, seed, ..ComplexWorkloadGen::default() };
        for q in gen.generate(db, 4) {
            if q.tables.len() < 2 {
                continue;
            }
            let dp = plan_with_strategy(db, &q, &cm, JoinStrategy::Dp).unwrap();
            let greedy = plan_with_strategy(db, &q, &cm, JoinStrategy::Greedy).unwrap();
            prop_assert!(
                dp.est_cost <= greedy.est_cost * (1.0 + 1e-9),
                "DP plan cost {} exceeds greedy cost {} on {} tables",
                dp.est_cost, greedy.est_cost, q.tables.len()
            );
        }
    }
}

#[test]
fn memo_enabled_search_is_bit_identical_to_memo_disabled() {
    let db = test_db();
    let cm = CostModel::default();
    let est = test_estimator();
    let session = SearchSession::new(db, &cm);
    let queries = ComplexWorkloadGen::default().generate(db, 40);

    let mut with_memo = LearnedScorer::new(est, 1 << 16);
    let mut without_memo = LearnedScorer::new(est, 0);
    for q in &queries {
        let (a, ra) = session.plan(q, &mut with_memo).unwrap();
        let (b, rb) = session.plan(q, &mut without_memo).unwrap();
        assert_eq!(a, b, "memoized search chose a different plan");
        assert_eq!(
            ra, rb,
            "memoized search enumerated a different candidate stream"
        );
    }
    assert!(
        with_memo.memo().hits() > 0,
        "a 40-query workload must share sub-trees"
    );
    assert_eq!(without_memo.memo().hits(), 0);
    // The memo saved exactly the shared scorings: the disabled run pushed
    // every candidate through the model, the enabled run only the distinct
    // fingerprints.
    assert!(with_memo.session().plans_scored() < without_memo.session().plans_scored());
}

#[test]
fn memo_hit_counts_match_shared_subtrees() {
    let db = test_db();
    let cm = CostModel::default();
    let est = test_estimator();
    let session = SearchSession::new(db, &cm);
    let q = ComplexWorkloadGen {
        max_joins: 5,
        ..ComplexWorkloadGen::default()
    }
    .generate(db, 30)
    .into_iter()
    .max_by_key(|q| q.tables.len())
    .unwrap();

    let mut scorer = LearnedScorer::new(est, 1 << 16);
    let (first_plan, first_report) = session.plan(&q, &mut scorer).unwrap();

    // Accounting identity for the first pass: every candidate either hit
    // the memo, missed it, and every miss is either a batch-local duplicate
    // or a fresh fingerprint now stored in the memo.
    let (hits1, misses1, dedup1) = (
        scorer.memo().hits(),
        scorer.memo().misses(),
        scorer.dedup_hits(),
    );
    assert_eq!(
        hits1 + misses1,
        first_report.candidates_scored as u64,
        "every candidate is looked up exactly once"
    );
    assert_eq!(
        scorer.memo().len() as u64,
        misses1 - dedup1,
        "memo stores exactly the distinct fingerprints"
    );
    assert_eq!(
        scorer.session().plans_scored(),
        misses1 - dedup1,
        "the model scores exactly the distinct sub-trees"
    );

    // Second pass over the same query: every sub-tree is shared with the
    // first pass, so every lookup must hit and the model stays cold.
    let scored_before = scorer.session().plans_scored();
    let (second_plan, second_report) = session.plan(&q, &mut scorer).unwrap();
    assert_eq!(second_plan, first_plan);
    assert_eq!(
        scorer.memo().hits() - hits1,
        second_report.candidates_scored as u64,
        "re-planning the same query must be 100% memo hits"
    );
    assert_eq!(scorer.memo().misses(), misses1);
    assert_eq!(scorer.session().plans_scored(), scored_before);
}

#[test]
fn hybrid_scorer_partitions_groups_and_plans_every_query() {
    let db = test_db();
    let cm = CostModel::default();
    let est = test_estimator();
    let session = SearchSession::new(db, &cm);
    let queries = ComplexWorkloadGen::default().generate(db, 30);
    // Median root cost at this scale is ~26 units; 15 splits scan-level
    // decisions (cheap) from join-level ones (expensive).
    let mut hybrid = HybridScorer::new(est, 1 << 14, 15.0);
    for q in &queries {
        let (p, _) = session.plan(q, &mut hybrid).unwrap();
        assert!(p.est_cost > 0.0);
    }
    assert!(
        hybrid.learned_groups() > 0,
        "the threshold must route some decisions to the model"
    );
    assert!(
        hybrid.analytic_groups() > 0,
        "the threshold must leave some decisions analytic"
    );
}

#[test]
fn router_picks_the_machine_with_the_lower_prediction() {
    let db = test_db();
    let cm = CostModel::default();
    let est = test_estimator();

    // M2-tuned adapter: fine-tune the base on M2-labeled plans.
    let queries = ComplexWorkloadGen {
        seed: 0xBEEF,
        ..ComplexWorkloadGen::default()
    }
    .generate(db, 60);
    let m2_data = collect_dataset(db, &queries, MachineId::M2);
    let m2_est = est.fine_tuned_clone(&m2_data, 2, 1e-3).expect("fine-tune");

    let registry = ModelRegistry::new(est.clone());
    registry
        .install_estimator("m2", m2_est)
        .expect("install m2 adapter");
    let router = CrossMachineRouter::new(&registry, None, Some("m2".to_string()));

    let session = SearchSession::new(db, &cm);
    let mut scorer = LearnedScorer::new(est, 1 << 14);
    let mut m1_picks = 0usize;
    let mut m2_picks = 0usize;
    for q in ComplexWorkloadGen::default().generate(db, 20) {
        let (p, _) = session.plan(&q, &mut scorer).unwrap();
        let d = router.route(&p).expect("routing");
        match d.machine {
            MachineId::M1 => {
                assert!(d.m1_pred_ms <= d.m2_pred_ms);
                m1_picks += 1;
            }
            MachineId::M2 => {
                assert!(d.m2_pred_ms < d.m1_pred_ms);
                m2_picks += 1;
            }
        }
        assert!(d.m1_pred_ms > 0.0 && d.m2_pred_ms > 0.0);
    }
    assert_eq!(m1_picks + m2_picks, 20);
}
