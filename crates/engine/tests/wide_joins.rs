//! Wide-query planning: the greedy fallback beyond the DP relation limit,
//! and executor correctness on long FK chains.

use dace_catalog::{generate_database, suite_specs, SchemaShape};
use dace_engine::{execute, plan_query};
use dace_plan::NodeType;
use dace_query::{JoinEdge, Query};

/// Build the widest connected query the schema supports by walking every
/// FK edge once (a spanning tree of the FK graph).
fn spanning_query(db: &dace_catalog::Database) -> Query {
    let mut tables = vec![dace_catalog::TableId(0)];
    let mut joins = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for e in &db.schema.fks {
            let has_child = tables.contains(&e.child);
            let has_parent = tables.contains(&e.parent);
            if has_child != has_parent {
                tables.push(if has_child { e.parent } else { e.child });
                joins.push(JoinEdge {
                    child: e.child,
                    child_column: e.child_column,
                    parent: e.parent,
                });
                changed = true;
            }
        }
    }
    Query {
        db_id: db.db_id(),
        tables,
        joins,
        predicates: vec![],
        group_by: None,
        aggregates: vec![],
        limit: None,
    }
}

#[test]
fn greedy_planner_handles_many_relations() {
    // geneea_like has 17 tables (Mixed shape) — beyond the DP limit of 9.
    let spec = suite_specs()
        .into_iter()
        .find(|s| s.shape == SchemaShape::Mixed && s.n_tables > 12)
        .expect("suite has a wide mixed schema");
    let db = generate_database(&spec, 0.01);
    let q = spanning_query(&db);
    assert!(q.tables.len() > 9, "query too narrow: {}", q.tables.len());
    assert!(q.is_connected());
    let mut plan = plan_query(&db, &q).unwrap();
    // Every table appears as exactly one scan.
    let mut scan_count = 0;
    count_scans(&plan, &mut scan_count);
    assert_eq!(scan_count, q.tables.len());
    // Executes without panicking and produces a finite count.
    execute(&db, &mut plan);
    assert!(plan.actual_rows.is_finite());
}

fn count_scans(p: &dace_engine::PhysPlan, count: &mut usize) {
    // Bitmap pairs nest a scan under a scan; count only leaf access paths
    // (no children that are themselves scan-typed).
    let is_access = matches!(
        p.node_type,
        NodeType::SeqScan
            | NodeType::IndexScan
            | NodeType::IndexOnlyScan
            | NodeType::BitmapHeapScan
    );
    if is_access {
        *count += 1;
        return; // don't double-count a BitmapIndexScan child
    }
    for c in &p.children {
        count_scans(c, count);
    }
}

#[test]
fn chain_joins_execute_exactly() {
    // A 3-table chain: grandchild → child → parent with no predicates.
    // The FK executor must keep exactly the non-null chain rows.
    let spec = suite_specs()
        .into_iter()
        .find(|s| s.shape == SchemaShape::Chain)
        .unwrap();
    let db = generate_database(&spec, 0.02);
    // Find two chained edges: child→mid and mid→parent.
    let (e1, e2) = {
        let mut found = None;
        for a in &db.schema.fks {
            for b in &db.schema.fks {
                if a.parent == b.child {
                    found = Some((*a, *b));
                }
            }
        }
        found.expect("chain schema has chained edges")
    };
    let q = Query {
        db_id: db.db_id(),
        tables: vec![e1.child, e1.parent, e2.parent],
        joins: vec![
            JoinEdge {
                child: e1.child,
                child_column: e1.child_column,
                parent: e1.parent,
            },
            JoinEdge {
                child: e2.child,
                child_column: e2.child_column,
                parent: e2.parent,
            },
        ],
        predicates: vec![],
        group_by: None,
        aggregates: vec![],
        limit: None,
    };
    let mut plan = plan_query(&db, &q).unwrap();
    execute(&db, &mut plan);

    // Brute force: count rows of e1.child whose FK is non-null and whose
    // referenced mid-row's FK is non-null (PKs are dense, so every non-null
    // FK matches).
    let fk1 = db.column_data(dace_catalog::ColumnId::new(e1.child, e1.child_column));
    let fk2 = db.column_data(dace_catalog::ColumnId::new(e2.child, e2.child_column));
    let expected = fk1
        .iter()
        .filter(|&&v| v != dace_catalog::NULL_CODE && fk2[v as usize] != dace_catalog::NULL_CODE)
        .count();
    assert_eq!(plan.actual_rows as usize, expected);
}
