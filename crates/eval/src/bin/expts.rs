//! Experiment harness CLI.
//!
//! ```text
//! expts <experiment...|all> [--scale S] [--out DIR]
//! ```
//!
//! `--scale` multiplies query counts and training epochs (default 1.0 =
//! the repository's reference reproduction size; the paper's full size is
//! ~25× larger). Reports print to stdout and are written to `DIR`
//! (default `results/`).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use dace_eval::experiments::{run_experiment, Ctx, EXPERIMENTS};
use dace_eval::EvalConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut out_dir = PathBuf::from("results");
    let mut dace_epochs: Option<usize> = None;
    let mut baseline_epochs: Option<usize> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(args.get(i).unwrap_or_else(|| die("--out needs a path")));
            }
            "--dace-epochs" => {
                i += 1;
                dace_epochs = args.get(i).and_then(|s| s.parse().ok());
            }
            "--baseline-epochs" => {
                i += 1;
                baseline_epochs = args.get(i).and_then(|s| s.parse().ok());
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        usage();
        std::process::exit(2);
    }
    if targets.iter().any(|t| t == "all") {
        targets = EXPERIMENTS
            .iter()
            .map(|(id, _, _)| id.to_string())
            .collect();
    }

    let mut cfg = EvalConfig::scaled(scale);
    if let Some(e) = dace_epochs {
        cfg.dace_epochs = e;
    }
    if let Some(e) = baseline_epochs {
        cfg.baseline_epochs = e;
    }
    eprintln!("# config: {cfg:?}");
    let ctx = Ctx::new(cfg);
    fs::create_dir_all(&out_dir).expect("cannot create output directory");

    for target in &targets {
        let start = Instant::now();
        match run_experiment(target, &ctx) {
            Some(report) => {
                let secs = start.elapsed().as_secs_f64();
                println!("\n==================== {target} ({secs:.1}s) ====================\n");
                println!("{report}");
                let path = out_dir.join(format!("{target}.md"));
                fs::write(&path, &report).expect("cannot write report");
                eprintln!("# wrote {}", path.display());
            }
            None => {
                eprintln!("unknown experiment '{target}'");
                usage();
                std::process::exit(2);
            }
        }
    }
}

fn usage() {
    eprintln!(
        "usage: expts <experiment...|all> [--scale S] [--out DIR] [--dace-epochs N] [--baseline-epochs N]\n\nexperiments:"
    );
    for (id, desc, _) in EXPERIMENTS {
        eprintln!("  {id:<8} {desc}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
