//! Drive the learned-cost plan search end to end and report plan-quality
//! lift, memo behavior, scoring throughput and routing quality.
//!
//! ```text
//! plansearch [--scale S] [--dbs N] [--epochs E] [--json] [--smoke]
//! ```
//!
//! Default: the full measurement over every suite database at `--scale`
//! (training corpora collected inline, like `expts plansearch` but without
//! the shared harness context).
//!
//! `--smoke` shrinks everything to a 3-database run at scale 0.05 and gates
//! on the subsystem's contract (CI's plan-search gate); any violation exits
//! non-zero:
//!
//! - the sub-plan memo must actually share work (hit rate > 0),
//! - DACE-picked plans must not regress total executed latency by more
//!   than 5% against the analytic picks,
//! - the cross-machine router must route every query and beat or match the
//!   worse of the two fixed-machine policies.

use dace_eval::experiments::plansearch::{measure, render, smoke, PlanSearchOptions};
use dace_eval::EvalConfig;
use dace_plan::MachineId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut dbs: Option<usize> = None;
    let mut epochs: Option<usize> = None;
    let mut json = false;
    let mut smoke_run = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        match flag.as_str() {
            "--scale" => scale = parse(args.get(i), "--scale"),
            "--dbs" => dbs = Some(parse(args.get(i), "--dbs")),
            "--epochs" => epochs = Some(parse(args.get(i), "--epochs")),
            "--json" => {
                json = true;
                continue;
            }
            "--smoke" => {
                smoke_run = true;
                continue;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: plansearch [--scale S] [--dbs N] [--epochs E] [--json] [--smoke]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let report = if smoke_run {
        let cfg = EvalConfig::scaled(0.05);
        let db_ids: &[u16] = &[0, 2, 7];
        eprintln!(
            "plansearch smoke: {} databases, {} training queries/db, {} eval queries/db…",
            db_ids.len(),
            cfg.queries_per_db,
            (cfg.queries_per_db / 2).max(8)
        );
        smoke(&cfg, db_ids, epochs.unwrap_or(8))
    } else {
        let cfg = EvalConfig::scaled(scale);
        let mut opts = PlanSearchOptions::full(&cfg);
        if let Some(n) = dbs {
            opts.db_ids.truncate(n.max(1));
        }
        if let Some(e) = epochs {
            opts.epochs = e;
        }
        eprintln!(
            "plansearch: {} databases, {} training queries/db, {} eval queries/db, {} epochs…",
            opts.db_ids.len(),
            cfg.queries_per_db,
            opts.eval_queries_per_db,
            opts.epochs
        );
        let mut train_m1 = dace_plan::Dataset::new();
        let mut train_m2 = dace_plan::Dataset::new();
        for &db_id in &opts.db_ids {
            train_m1.extend(dace_eval::data::collect_db(&cfg, db_id, MachineId::M1));
            train_m2.extend(dace_eval::data::collect_db(&cfg, db_id, MachineId::M2));
        }
        measure(&cfg, &opts, &train_m1, &train_m2)
    };

    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
    } else {
        println!("{}", render(&report));
    }

    if smoke_run {
        let mut failed = false;
        if report.scoring.memo_hit_rate <= 0.0 {
            eprintln!("FAIL: sub-plan memo never hit across the smoke workload");
            failed = true;
        }
        if report.learned_total_ms > report.analytic_total_ms * 1.05 {
            eprintln!(
                "FAIL: DACE-picked total latency {:.1} ms exceeds analytic {:.1} ms × 1.05",
                report.learned_total_ms, report.analytic_total_ms
            );
            failed = true;
        }
        if report.routing.routed_queries != report.queries {
            eprintln!(
                "FAIL: routed {} of {} queries",
                report.routing.routed_queries, report.queries
            );
            failed = true;
        }
        let worse_fixed = report.routing.always_m1_ms.max(report.routing.always_m2_ms);
        if report.routing.routed_ms > worse_fixed {
            eprintln!(
                "FAIL: routed total {:.1} ms worse than the worse fixed machine {:.1} ms",
                report.routing.routed_ms, worse_fixed
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        if !json {
            println!("plansearch smoke OK");
        }
    }
}

fn parse<T: std::str::FromStr>(val: Option<&String>, flag: &str) -> T {
    val.and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
