//! Load a pre-trained DACE artifact and predict latencies for fresh queries
//! on any suite database — including sub-plan predictions, which a query
//! optimizer would use to compare alternatives.
//!
//! ```text
//! predict --model FILE [--db DB_ID] [--queries N]
//! ```

use dace_core::DaceEstimator;
use dace_engine::{collect_dataset, plan_query};
use dace_eval::{qerror, EvalConfig};
use dace_plan::MachineId;
use dace_query::{render_sql, ComplexWorkloadGen};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut model_path = None;
    let mut db_id: u16 = 0;
    let mut n_queries = 5usize;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        match flag.as_str() {
            "--model" => model_path = args.get(i).cloned(),
            "--db" => db_id = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(0),
            "--queries" => n_queries = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(5),
            "--help" | "-h" => {
                eprintln!("usage: predict --model FILE [--db DB_ID] [--queries N]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let model_path = model_path.unwrap_or_else(|| {
        eprintln!("error: --model is required (produce one with the `pretrain` binary)");
        std::process::exit(2);
    });
    let json = std::fs::read_to_string(&model_path).expect("cannot read model artifact");
    let est = DaceEstimator::from_json(&json).expect("invalid model artifact");

    let cfg = EvalConfig::default();
    let db = dace_eval::data::suite_db(&cfg, db_id);
    eprintln!(
        "database {} ('{}'), model {} params",
        db_id,
        db.spec.name,
        est.model.base_param_count()
    );
    let queries = ComplexWorkloadGen {
        seed: 0x9_1E57,
        ..Default::default()
    }
    .generate(&db, n_queries);
    let labeled = collect_dataset(&db, &queries, MachineId::M1);

    let mut total_q = 0.0;
    for (q, plan) in queries.iter().zip(&labeled.plans) {
        println!("== {}", render_sql(q, &db.schema));
        let pred = est.predict_ms(&plan.tree);
        let actual = plan.latency_ms();
        let qe = qerror(pred, actual);
        total_q += qe;
        println!("   predicted {pred:.3} ms | actual {actual:.3} ms | qerror {qe:.2}");
        // Sub-plan predictions, DFS order (what plan comparison would use).
        let subs = est.predict_subplans_ms(&plan.tree);
        let phys = plan_query(&db, q).expect("query must plan");
        println!(
            "   sub-plans: {} nodes, predicted root-to-leaf profile: {:?}",
            phys.len(),
            subs.iter()
                .map(|&s| (s * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
    println!(
        "\nmean qerror over {} queries: {:.2}",
        queries.len(),
        total_q / queries.len() as f64
    );
}
