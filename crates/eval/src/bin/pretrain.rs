//! Pre-train a DACE estimator on the synthetic suite and save it as a JSON
//! artifact — the "ship a pre-trained model" deployment story.
//!
//! ```text
//! pretrain [--dbs N] [--queries Q] [--epochs E] [--exclude DB_ID] [--out FILE]
//!          [--manifest PATH] [--verbose]
//! ```
//!
//! `--manifest` writes one JSON line per epoch (loss, gradient norm,
//! validation Q-error quantiles, early-stop decision); `--verbose` prints
//! the same per-epoch summary to stderr.

use std::sync::Arc;

use dace_core::{TrainConfig, Trainer};
use dace_eval::{collect_suite_m1, EvalConfig};
use dace_obs::{JsonlSink, RunSink, Verbosity};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n_dbs = 19usize;
    let mut queries = 400usize;
    let mut epochs = 30usize;
    let mut exclude: Option<u16> = Some(0);
    let mut out = String::from("dace_pretrained.json");
    let mut manifest: Option<String> = None;
    let mut verbosity = Verbosity::Quiet;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        let val = args.get(i).cloned();
        match flag.as_str() {
            "--dbs" => n_dbs = parse(&val, "--dbs"),
            "--queries" => queries = parse(&val, "--queries"),
            "--epochs" => epochs = parse(&val, "--epochs"),
            "--exclude" => exclude = Some(parse(&val, "--exclude")),
            "--no-exclude" => {
                exclude = None;
                continue;
            }
            "--out" => out = val.unwrap_or_else(|| die("--out needs a path")),
            "--manifest" => manifest = Some(val.unwrap_or_else(|| die("--manifest needs a path"))),
            "--verbose" => {
                verbosity = Verbosity::Epochs;
                continue;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: pretrain [--dbs N] [--queries Q] [--epochs E] [--exclude DB_ID | --no-exclude] [--out FILE] [--manifest PATH] [--verbose]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let cfg = EvalConfig {
        queries_per_db: queries,
        ..EvalConfig::default()
    };
    eprintln!("collecting workload 1 across the suite ({queries} queries/db)…");
    let mut suite = collect_suite_m1(&cfg);
    if let Some(d) = exclude {
        suite = suite.exclude_db(d);
        eprintln!("excluded database {d} (held out for evaluation)");
    }
    // Keep the first n_dbs databases' plans.
    let keep: Vec<u16> = {
        let mut ids: Vec<u16> = suite.plans.iter().map(|p| p.db_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().take(n_dbs).collect()
    };
    suite.plans.retain(|p| keep.contains(&p.db_id));

    eprintln!(
        "training DACE on {} plans from {} databases for {epochs} epochs…",
        suite.len(),
        keep.len()
    );
    // Long pre-training runs hold out 10% of the plans and stop early once
    // validation loss plateaus, restoring the best weights.
    let train_cfg = TrainConfig {
        epochs,
        validation_fraction: 0.1,
        patience: 5,
        verbosity,
        ..Default::default()
    };
    let trainer = match &manifest {
        Some(path) => {
            let sink = JsonlSink::create(std::path::Path::new(path))
                .unwrap_or_else(|e| die(&format!("cannot create manifest {path}: {e}")));
            Trainer::with_sink(train_cfg, Arc::new(sink) as Arc<dyn RunSink>)
        }
        None => Trainer::new(train_cfg),
    };
    let est = trainer
        .fit(&suite)
        .unwrap_or_else(|e| die(&format!("training failed: {e}")));
    if let Some(path) = &manifest {
        eprintln!("wrote per-epoch run manifest to {path}");
    }
    std::fs::write(&out, est.to_json()).expect("cannot write model artifact");
    eprintln!(
        "wrote {out}: {} base params ({:.3} MB) + {} LoRA params",
        est.model.base_param_count(),
        est.model.size_mb(),
        est.model.lora_param_count()
    );
}

fn parse<T: std::str::FromStr>(val: &Option<String>, flag: &str) -> T {
    val.as_ref()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
