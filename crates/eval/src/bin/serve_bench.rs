//! Drive the `dace-serve` scheduler with synthetic workloads and report
//! throughput, tail latency and cache behavior.
//!
//! ```text
//! serve_bench [--clients N] [--requests R] [--queries Q] [--epochs E]
//!             [--seconds S] [--json] [--smoke] [--chaos] [--adaptive]
//!             [--introspect] [--tenants] [--manifest PATH] [--trace PATH]
//!             [--prom PATH] [--events PATH] [--no-stage-timing]
//! ```
//!
//! Three phases:
//!
//! 1. **Closed loop, unbatched** — N clients, `max_batch = 1`: the
//!    one-forward-per-request baseline.
//! 2. **Closed loop, micro-batched** — same clients, `max_batch = 32` /
//!    200 µs window; prints the speedup over phase 1 (the headline number).
//! 3. **Open loop, overload** — submissions at ~4× the measured batched
//!    throughput against a short queue and a 20 ms deadline, demonstrating
//!    graceful degradation (shedding + expiry instead of collapse).
//!
//! `--smoke` shrinks everything and runs only the micro-batched closed loop,
//! asserting zero shed and a non-empty snapshot (CI's serve gate); any
//! violation exits non-zero.
//!
//! `--chaos` replaces the phases with an availability measurement under a
//! seeded fault plan (1% worker kills, 1% batch panics, plus a background
//! checkpoint reloader whose files are corrupted at 0.5%): closed-loop
//! clients with no deadlines hammer a server built with a circuit-broken
//! `pg_linear`-style fallback, and the run fails unless ≥99% of requests
//! are answered (degraded answers count, shed/dropped do not), every
//! degraded answer is flagged and counted, and the worker pool never dies.
//!
//! `--adaptive` replaces the phases with an end-to-end run of the
//! observe→retrain→swap loop: clean traffic freezes a drift baseline, a
//! sustained 6× latency shift trips the detector, the background retrain
//! fine-tunes a candidate on the drifted feedback, shadow eval promotes it
//! through a crash-safe checkpoint round-trip, and post-swap accuracy is
//! measured against the pre-drift baseline. A second sub-run sabotages the
//! candidate (seeded `CandidateSabotage` fault at 100%) and must reject it
//! without publishing a version. The run fails unless drift tripped, a
//! retrain promoted, post-swap q-error p90 ≤ pre-drift p90 × 1.2, no
//! probation rollback fired on the clean run, and the sabotaged candidate
//! was rejected.
//!
//! `--tenants` replaces the phases with the multi-tenant isolation gate,
//! four sub-phases: a Zipf-skewed closed loop over up to 1000 equal-weight
//! tenants gating the per-tenant p99 fairness spread (max/min ≤ 3× among
//! well-sampled tenants); a cache-bleed pass where every (tenant, plan)
//! pair must miss on first sight (any first-pass hit is cross-tenant
//! bleed); a noisy-tenant storm (one tenant flooding at 10× its quota,
//! burst timing driven by the seeded `TenantStorm` fault site) gating
//! ≥99% availability for the well-behaved tenants and at least one quota
//! rejection; and an adapter-paging pass over valid, missing, torn and
//! injected-corrupt (`AdapterLoadCorrupt` at 100%) checkpoints gating
//! zero unanswered cold-tenant requests — every cold answer is served
//! zero-shot and degraded-flagged, never shed. `--md PATH` writes the
//! markdown record.
//!
//! `--introspect` replaces the phases with the health-plane gate (it wins
//! over `--chaos`/`--adaptive`; the adaptive loop runs inside it): paired
//! closed loops measure the throughput cost of an enabled introspection
//! endpoint (best of three each; the gate demands ≥ 0.97× of the disabled
//! baseline), a mini observe→retrain→swap run against a server with a
//! durable journal, tight SLO windows and a live HTTP endpoint checks the
//! journal's causal story (the `SwapPromoted` record must carry the same
//! trace id as the `DriftTripped` record that caused it, and that id must
//! appear in the flight recorder via `/trace`), and a fault-injected
//! breaker-open window must flip `/health` to "degraded" and auto-dump a
//! diagnostic bundle. `--events PATH` writes the `/events` response body
//! (the journal tail as JSON) for downstream jq assertions.
//!
//! Telemetry flags: `--manifest` writes a per-epoch JSONL run manifest for
//! the base-model pretrain and the adapter fine-tune, `--prom` dumps the
//! serve metrics registry as Prometheus text after the (last) closed loop,
//! `--trace` enables span tracing and writes a Chrome trace-event JSON of
//! the flight recorder (drained only after the servers shut down, so no
//! worker can still be appending spans), and `--no-stage-timing` disables
//! the per-prediction stage breakdown (overhead measurement).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dace_core::{quantile, TrainConfig, Trainer};
use dace_eval::data::suite_db;
use dace_eval::EvalConfig;
use dace_obs::{JsonlSink, RunSink};
use dace_plan::{Dataset, MachineId, PlanTree};
use dace_query::ComplexWorkloadGen;
use dace_serve::{
    http_get, q_error, silence_injected_panics, AdaptiveConfig, AdaptiveController,
    CostLinearFallback, DaceServer, DriftConfig, FaultConfig, FaultInjector, FaultSite,
    HealthConfig, LifecycleEvent, MetricsSnapshot, ModelRegistry, PagerConfig, ServeConfig,
    ServeError, SloConfig,
};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct PhaseReport {
    requests_per_sec: f64,
    p50_us: u64,
    p99_us: u64,
    cache_hit_rate: f64,
    mean_batch_size: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    clients: usize,
    requests_per_client: usize,
    unbatched: PhaseReport,
    batched: PhaseReport,
    speedup: f64,
    open_loop_ok: u64,
    open_loop_shed: u64,
    open_loop_expired: u64,
}

/// One point on the `--shards` scaling curve.
#[derive(Debug, Serialize)]
struct ShardPoint {
    shards: usize,
    requests_per_sec: f64,
    per_shard_completed: Vec<u64>,
    per_shard_stolen: Vec<u64>,
    parity_ratio: f64,
}

/// What `--shards` measures: the scaling curve over shard counts, the
/// saturated parity pass (uniform load, slow forwards: work-stealing must
/// level the FNV routing skew to max/min ≤ 1.25 per-shard completions —
/// gated on any machine, single-core included), the forced-imbalance steal
/// sub-phase (hot plan: thieves must drain the hot shard without losing or
/// duplicating a request), and the quantized fast tier's per-plan cost and
/// accuracy against full precision. The ≥3× 1→4 scaling gate applies only
/// when the machine has at least as many cores as shards.
#[derive(Debug, Serialize)]
struct ShardingReport {
    cores: usize,
    curve: Vec<ShardPoint>,
    scaling_1_to_max: f64,
    scaling_gated: bool,
    parity_ratio: f64,
    parity_per_shard_completed: Vec<u64>,
    parity_steals: u64,
    steal_requests: u64,
    steal_answered: u64,
    steal_lost: u64,
    steal_count: u64,
    full_us_per_plan: f64,
    quantized_us_per_plan: f64,
    quantized_speedup: f64,
    quantized_max_qerror: f64,
    full_attention_us: u64,
    full_mlp_us: u64,
    quantized_attention_us: u64,
    quantized_mlp_us: u64,
    full_weight_bytes: usize,
    quantized_weight_bytes: usize,
}

/// What `--chaos` measures: availability and degradation accounting under
/// a seeded fault plan. `availability` counts degraded answers as answered
/// (that is the point of the fallback); shed and dropped requests do not
/// count.
#[derive(Debug, Serialize)]
struct ChaosReport {
    requests: u64,
    completed: u64,
    degraded: u64,
    availability: f64,
    degraded_rate: f64,
    requests_per_sec: f64,
    worker_panics: u64,
    worker_restarts: u64,
    pool_exhausted: u64,
    batch_panics: u64,
    breaker_opened: u64,
    breaker_closed: u64,
    checkpoint_saves: u64,
    checkpoint_reloads: u64,
    checkpoint_rejects: u64,
}

/// What `--adaptive` measures: one full pass of the observe→retrain→swap
/// loop plus a sabotaged sub-run. Q-error quantiles are reported for the
/// stale model on clean traffic (`pre_`), the stale model under the latency
/// shift (`drift_`), and the promoted model on the shifted traffic
/// (`post_`); `recovery_ratio` is `post_q_p90 / pre_q_p90` and the gate
/// demands it ≤ 1.2.
#[derive(Debug, Serialize)]
struct AdaptiveReport {
    samples: u64,
    drift_trips: u64,
    retrains_started: u64,
    retrains_succeeded: u64,
    retrains_rolled_back: u64,
    promotions: u64,
    rollbacks: u64,
    versions_before: u64,
    versions_after: u64,
    pre_q_p50: f64,
    pre_q_p90: f64,
    drift_q_p50: f64,
    drift_q_p90: f64,
    post_q_p50: f64,
    post_q_p90: f64,
    recovery_ratio: f64,
    sabotage_retrains: u64,
    sabotage_rejections: u64,
    sabotage_promotions: u64,
}

/// Fairness sub-phase of `--tenants`: a Zipf-skewed closed loop over
/// equal-weight tenants. `p99_spread` is max/min of per-tenant p99 e2e
/// latency across tenants that collected at least `sample_floor`
/// responses (thin tails are reported but not gated); the gate is ≤ 3×.
#[derive(Debug, Serialize)]
struct TenantFairnessReport {
    tenants: usize,
    clients: usize,
    total_requests: u64,
    answered: u64,
    sample_floor: usize,
    gated_tenants: usize,
    min_p99_us: f64,
    max_p99_us: f64,
    p99_spread: f64,
}

/// Cache-bleed sub-phase: every (tenant, plan) pair is submitted once —
/// each must miss (distinct salted fingerprints), so `cross_tenant_hits`
/// (first-pass cache hits) must be exactly 0. The second pass re-submits
/// the same pairs and must hit, proving the entries are real and usable,
/// just never shared.
#[derive(Debug, Serialize)]
struct TenantBleedReport {
    tenants: usize,
    plans_per_tenant: usize,
    first_pass_misses: u64,
    cross_tenant_hits: u64,
    second_pass_hits: u64,
    cache_entries: usize,
}

/// Noisy-tenant sub-phase: one tenant floods at 10× its token-bucket
/// quota (burst timing rolled on the seeded `TenantStorm` fault site)
/// while well-behaved tenants keep a steady closed loop. Gates:
/// `well_behaved_availability` ≥ 0.99, `quota_rejected` ≥ 1, and the
/// well-behaved tenants are never shed.
#[derive(Debug, Serialize)]
struct TenantNoisyReport {
    noisy_quota_rps: u32,
    noisy_attempted: u64,
    noisy_admitted: u64,
    quota_rejected: u64,
    noisy_shed: u64,
    storm_bursts: u64,
    well_behaved_tenants: usize,
    well_behaved_attempted: u64,
    well_behaved_ok: u64,
    well_behaved_shed: u64,
    well_behaved_availability: f64,
}

/// Adapter-paging sub-phase: cold tenants behind valid, missing, torn and
/// injected-corrupt checkpoints. Every request must be answered
/// (`unanswered == 0`): cold ones zero-shot and degraded-flagged, warm
/// ones from the paged-in adapter at full fidelity; the hot set stays
/// within its bound via LRU eviction.
#[derive(Debug, Serialize)]
struct TenantPagingReport {
    valid_tenants: usize,
    hot_set: usize,
    requests: u64,
    unanswered: u64,
    cold_answers: u64,
    cold_all_degraded: bool,
    warm_full_fidelity: bool,
    adapter_loads: u64,
    adapter_load_failures: u64,
    adapter_evictions: u64,
    resident_len: usize,
    injected_corrupt_failures: u64,
}

/// What `--tenants` measures: the four isolation sub-phases.
#[derive(Debug, Serialize)]
struct TenantsReport {
    smoke: bool,
    fairness: TenantFairnessReport,
    bleed: TenantBleedReport,
    noisy: TenantNoisyReport,
    paging: TenantPagingReport,
}

/// What `--introspect` measures: the health plane end to end. Throughput
/// is the paired closed-loop gate (enabled endpoint + durable journal vs
/// plain server, best of three each; `throughput_ratio` must stay ≥ 0.97);
/// the journal/trace fields reconstruct the adaptive run's causal story;
/// the breaker fields prove `/health` flips to "degraded" under an
/// injected breaker-open window and that a diagnostic bundle auto-dumped.
#[derive(Debug, Serialize)]
struct IntrospectReport {
    throughput_off_rps: f64,
    throughput_on_rps: f64,
    throughput_ratio: f64,
    journal_len: u64,
    server_started: u64,
    drift_trips: u64,
    swaps_promoted: u64,
    probation_passed: u64,
    alerts: u64,
    alert_fast_burn: f64,
    alert_slow_burn: f64,
    alert_threshold: f64,
    drift_trace: String,
    trace_match: bool,
    trace_in_recorder: bool,
    breaker_opened_journaled: bool,
    health_degraded_seen: bool,
    health_ok_seen: bool,
    bundles_dumped: u64,
    endpoints_ok: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut clients = 32usize;
    let mut requests = 64usize;
    let mut queries = 120usize;
    let mut joins = 8usize;
    let mut epochs = 6usize;
    let mut workers = ServeConfig::default().workers;
    let mut open_secs = 2.0f64;
    let mut smoke = false;
    let mut chaos = false;
    let mut adaptive = false;
    let mut introspect = false;
    let mut tenants_phase = false;
    let mut chaos_seed = 0xC4A05u64;
    let mut shards: Option<usize> = None;
    let mut md: Option<String> = None;
    let mut json = false;
    let mut manifest: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut prom: Option<String> = None;
    let mut events: Option<String> = None;
    let mut stage_timing = true;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        match flag.as_str() {
            "--clients" => clients = parse(args.get(i), "--clients"),
            "--requests" => requests = parse(args.get(i), "--requests"),
            "--queries" => queries = parse(args.get(i), "--queries"),
            "--joins" => joins = parse(args.get(i), "--joins"),
            "--epochs" => epochs = parse(args.get(i), "--epochs"),
            "--workers" => workers = parse(args.get(i), "--workers"),
            "--seconds" => open_secs = parse(args.get(i), "--seconds"),
            "--manifest" => manifest = Some(parse(args.get(i), "--manifest")),
            "--trace" => trace = Some(parse(args.get(i), "--trace")),
            "--prom" => prom = Some(parse(args.get(i), "--prom")),
            "--no-stage-timing" => {
                stage_timing = false;
                continue;
            }
            "--smoke" => {
                smoke = true;
                continue;
            }
            "--chaos" => {
                chaos = true;
                continue;
            }
            "--adaptive" => {
                adaptive = true;
                continue;
            }
            "--introspect" => {
                introspect = true;
                continue;
            }
            "--tenants" => {
                tenants_phase = true;
                continue;
            }
            "--events" => events = Some(parse(args.get(i), "--events")),
            "--shards" => shards = Some(parse(args.get(i), "--shards")),
            "--md" => md = Some(parse(args.get(i), "--md")),
            "--chaos-seed" => chaos_seed = parse(args.get(i), "--chaos-seed"),
            "--json" => {
                json = true;
                continue;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve_bench [--clients N] [--requests R] [--queries Q] \
                     [--epochs E] [--seconds S] [--json] [--smoke] [--chaos] \
                     [--adaptive] [--introspect] [--tenants] [--shards N] [--md PATH] \
                     [--chaos-seed S] [--manifest PATH] \
                     [--trace PATH] [--prom PATH] [--events PATH] [--no-stage-timing]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if smoke {
        clients = clients.min(8);
        requests = requests.min(20);
        queries = queries.min(32);
        epochs = epochs.min(3);
    }

    if trace.is_some() {
        dace_obs::set_tracing(true);
    }
    let sink: Option<Arc<dyn RunSink>> = manifest.as_ref().map(|p| {
        let s = JsonlSink::create(std::path::Path::new(p))
            .unwrap_or_else(|e| die(&format!("cannot create manifest {p}: {e}")));
        Arc::new(s) as Arc<dyn RunSink>
    });

    eprintln!("collecting {queries} plans (database 0, ≤{joins} joins, M1)…");
    let cfg = EvalConfig::scaled(0.05);
    let db = suite_db(&cfg, 0);
    let gen = ComplexWorkloadGen {
        max_joins: joins,
        ..ComplexWorkloadGen::default()
    };
    let data = dace_engine::collect_dataset(&db, &gen.generate(&db, queries), MachineId::M1);
    let pool: Vec<PlanTree> = data.plans.iter().map(|p| p.tree.clone()).collect();
    let sizes: Vec<usize> = pool.iter().map(PlanTree::len).collect();
    eprintln!(
        "pool: {} plans, {}–{} nodes (mean {:.1})",
        pool.len(),
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap(),
        sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
    );

    eprintln!("training base estimator ({epochs} epochs)…");
    let train_cfg = TrainConfig {
        epochs,
        ..Default::default()
    };
    let est = match &sink {
        Some(s) => Trainer::with_sink(train_cfg, Arc::clone(s)),
        None => Trainer::new(train_cfg),
    }
    .fit(&data)
    .expect("bench dataset is non-empty");

    // A per-database LoRA adapter for mixed traffic: fine-tuned against a
    // uniformly slower copy of the same plans (an across-machine shift).
    eprintln!("fine-tuning a tenant adapter…");
    let mut shifted = data.clone();
    for p in &mut shifted.plans {
        for id in p.tree.ids().collect::<Vec<_>>() {
            p.tree.node_mut(id).actual_ms *= 8.0;
        }
    }
    let mut tuned = est.clone();
    tuned
        .fine_tune_lora_with_sink(&shifted, epochs.min(4), 2e-3, sink.as_deref())
        .expect("shifted dataset is non-empty");
    let adapter = tuned.extract_adapter();

    // Offline calibration: the raw model cost per plan, single-plan path vs
    // packed batches of 32, with the serve layer out of the picture. The
    // gap between these two is the ceiling any scheduler can deliver.
    {
        let feats: Vec<_> = pool.iter().map(|t| est.featurizer.encode(t)).collect();
        let refs: Vec<&dace_core::PlanFeatures> = feats.iter().collect();
        let t = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            for f in &refs {
                std::hint::black_box(est.predict_features_batch_ms(std::slice::from_ref(f)));
            }
        }
        let single_us = t.elapsed().as_micros() as f64 / (reps * refs.len()) as f64;
        let t = Instant::now();
        for _ in 0..reps {
            for chunk in refs.chunks(32) {
                std::hint::black_box(est.predict_features_batch_ms(chunk));
            }
        }
        let packed_us = t.elapsed().as_micros() as f64 / (reps * refs.len()) as f64;
        eprintln!(
            "offline forward: {single_us:.1} µs/plan single, {packed_us:.1} µs/plan packed×32 \
             ({:.2}× ceiling)",
            single_us / packed_us
        );
    }

    let registry = Arc::new(ModelRegistry::new(est));
    registry
        .install_adapter("tenant", &adapter)
        .expect("adapter install failed");

    let batched_cfg = ServeConfig {
        workers,
        stage_timing,
        ..ServeConfig::default()
    };
    let unbatched_cfg = ServeConfig {
        max_batch: 1,
        workers,
        stage_timing,
        ..ServeConfig::default()
    };

    if let Some(max_shards) = shards {
        run_sharding(
            registry,
            &pool,
            clients,
            requests,
            max_shards,
            chaos_seed,
            json,
            md.as_deref(),
        );
        return;
    }

    if tenants_phase {
        run_tenants(registry, &pool, smoke, chaos_seed, json, md.as_deref());
        return;
    }

    if introspect {
        run_introspect(
            registry,
            &data,
            &pool,
            workers,
            chaos_seed,
            json,
            events.as_deref(),
        );
        return;
    }

    if chaos {
        let fallback = CostLinearFallback::fit(&data);
        run_chaos(
            registry, fallback, &pool, clients, requests, workers, chaos_seed, json,
        );
        return;
    }

    if adaptive {
        run_adaptive(registry, &data, workers, smoke, chaos_seed, json);
        return;
    }

    if smoke {
        let server = DaceServer::new(Arc::clone(&registry), batched_cfg);
        let (secs, ok) = closed_loop(&server, &pool, clients, requests);
        let snap = server.metrics_snapshot();
        if let Some(path) = &prom {
            write_prom(path, &server);
        }
        // Shut down before draining the recorder: workers may otherwise
        // still be appending spans after the snapshot, and the drained
        // trace would race them and come up short (or empty).
        server.shutdown();
        let trace_events = trace.as_ref().map(|path| write_trace(path));
        println!(
            "smoke: {ok} requests in {secs:.2}s ({:.0} req/s)",
            ok as f64 / secs
        );
        println!("{snap}");
        let expected = (clients * requests) as u64;
        let mut failed = false;
        if snap.shed != 0 {
            eprintln!("FAIL: {} requests shed in smoke run", snap.shed);
            failed = true;
        }
        if snap.is_empty() || snap.completed != expected {
            eprintln!(
                "FAIL: snapshot incomplete ({} completed, expected {expected})",
                snap.completed
            );
            failed = true;
        }
        if ok != expected {
            eprintln!("FAIL: {ok} successful responses, expected {expected}");
            failed = true;
        }
        if trace_events == Some(0) {
            eprintln!("FAIL: --trace produced an empty trace in the smoke run");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("smoke OK");
        return;
    }

    eprintln!("closed loop, unbatched: {clients} clients × {requests} requests…");
    let server = DaceServer::new(Arc::clone(&registry), unbatched_cfg);
    let (secs1, ok1) = closed_loop(&server, &pool, clients, requests);
    let snap1 = server.metrics_snapshot();
    let unbatched = phase_report(ok1, secs1, &snap1);
    drop(server);

    eprintln!(
        "closed loop, micro-batched (max_batch {})…",
        batched_cfg.max_batch
    );
    let server = DaceServer::new(Arc::clone(&registry), batched_cfg);
    let (secs2, ok2) = closed_loop(&server, &pool, clients, requests);
    let snap2 = server.metrics_snapshot();
    let batched = phase_report(ok2, secs2, &snap2);
    if let Some(path) = &prom {
        write_prom(path, &server);
    }
    drop(server);

    let rate = (batched.requests_per_sec * 4.0).max(500.0);
    eprintln!("open loop, overload: {rate:.0} req/s for {open_secs:.1}s, 20 ms deadline…");
    let server = DaceServer::new(
        Arc::clone(&registry),
        ServeConfig {
            queue_depth: 64,
            ..batched_cfg
        },
    );
    let (ol_ok, ol_expired) = open_loop(&server, &pool, rate, Duration::from_secs_f64(open_secs));
    let ol_snap = server.metrics_snapshot();
    drop(server);

    let report = BenchReport {
        clients,
        requests_per_client: requests,
        speedup: batched.requests_per_sec / unbatched.requests_per_sec,
        unbatched,
        batched,
        open_loop_ok: ol_ok,
        open_loop_shed: ol_snap.shed,
        open_loop_expired: ol_expired,
    };

    if let Some(path) = &trace {
        write_trace(path);
    }
    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("report serializes")
        );
        return;
    }
    println!("== closed loop, unbatched (max_batch 1) ==");
    println!(
        "  {:.0} req/s, e2e p50 {} µs, p99 {} µs",
        report.unbatched.requests_per_sec, report.unbatched.p50_us, report.unbatched.p99_us
    );
    println!("{snap1}");
    println!("== closed loop, micro-batched ==");
    println!(
        "  {:.0} req/s, e2e p50 {} µs, p99 {} µs, mean batch {:.1}, cache hit {:.1}%",
        report.batched.requests_per_sec,
        report.batched.p50_us,
        report.batched.p99_us,
        report.batched.mean_batch_size,
        100.0 * report.batched.cache_hit_rate
    );
    println!("{snap2}");
    println!("== speedup: {:.2}× ==", report.speedup);
    println!("== open loop @ {rate:.0} req/s (queue 64, 20 ms deadline) ==");
    println!(
        "  {} answered, {} shed at admission, {} expired in queue",
        report.open_loop_ok, report.open_loop_shed, report.open_loop_expired
    );
    println!("{ol_snap}");
    if report.speedup < 2.0 {
        eprintln!(
            "WARNING: micro-batching speedup {:.2}× below the 2× target",
            report.speedup
        );
    }
}

/// The `--shards` phase: the sharded scheduler's scaling curve, the steal
/// sub-phase, and the quantized-tier cost/accuracy measurement. Gates:
/// per-shard completion parity ≤ 1.25 at the top shard count (holds on any
/// machine — work-stealing levels routing skew even time-sliced on one
/// core), at least one steal with zero lost/duplicated requests in the
/// forced-imbalance sub-phase, the quantized tier within the proptested
/// q-error bound of full precision, and — only when the machine has at
/// least `max_shards` cores — ≥ 3× throughput from 1 shard to the top.
#[allow(clippy::too_many_arguments)]
fn run_sharding(
    registry: Arc<ModelRegistry>,
    pool: &[PlanTree],
    clients: usize,
    requests: usize,
    max_shards: usize,
    seed: u64,
    json: bool,
    md: Option<&str>,
) {
    let max_shards = max_shards.max(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize];
    while *counts.last().unwrap() < max_shards {
        counts.push((counts.last().unwrap() * 2).min(max_shards));
    }

    let mut curve = Vec::with_capacity(counts.len());
    for &n in &counts {
        eprintln!("sharding: closed loop at {n} shard(s), {clients} clients × {requests}…");
        let server = DaceServer::new(
            Arc::clone(&registry),
            ServeConfig {
                shards: n,
                workers: n,
                pin_cores: cores >= n,
                ..ServeConfig::default()
            },
        );
        let (secs, ok) = closed_loop(&server, pool, clients, requests);
        let snaps = server.shard_snapshot();
        server.shutdown();
        let completed: Vec<u64> = snaps.iter().map(|s| s.completed).collect();
        let stolen: Vec<u64> = snaps.iter().map(|s| s.stolen).collect();
        let (max_c, min_c) = (
            completed.iter().copied().max().unwrap_or(0),
            completed.iter().copied().min().unwrap_or(0),
        );
        let parity = if min_c == 0 {
            f64::INFINITY
        } else {
            max_c as f64 / min_c as f64
        };
        eprintln!(
            "  {:.0} req/s, per-shard completed {completed:?}, stolen {stolen:?}, parity {parity:.3}",
            ok as f64 / secs
        );
        curve.push(ShardPoint {
            shards: n,
            requests_per_sec: ok as f64 / secs,
            per_shard_completed: completed,
            per_shard_stolen: stolen,
            parity_ratio: parity,
        });
    }
    let scaling = curve.last().unwrap().requests_per_sec / curve[0].requests_per_sec;
    let scaling_gated = cores >= max_shards && max_shards >= 4;

    // Parity pass: uniform load over the whole pool with 200 µs forwards
    // and an aggressive steal policy. The FNV route alone leaves a
    // multinomial skew across shards; backlogs make lighter shards finish
    // early and steal from heavier ones, so completion counts must level
    // to max/min ≤ 1.25 — the mechanism works even time-sliced on one core
    // because stage delays sleep rather than spin.
    eprintln!("sharding: parity pass (uniform load, 200 µs forwards, {max_shards} shards)…");
    let server = DaceServer::new(
        Arc::clone(&registry),
        ServeConfig {
            shards: max_shards,
            workers: max_shards,
            steal_threshold: 1,
            steal_max: 2,
            max_batch: 1,
            queue_depth: 8192,
            faults: FaultConfig {
                seed,
                stage_delay_ppm: 1_000_000,
                stage_delay: Duration::from_micros(200),
                ..FaultConfig::disabled()
            },
            ..ServeConfig::default()
        },
    );
    let parity_n = 240usize;
    let handles: Vec<_> = (0..parity_n)
        .filter_map(|r| server.submit(&pool[r % pool.len()], None, None).ok())
        .collect();
    for h in handles {
        h.wait().expect("parity pass answers everything");
    }
    let snaps = server.shard_snapshot();
    server.shutdown();
    let parity_per_shard_completed: Vec<u64> = snaps.iter().map(|s| s.completed).collect();
    let parity_steals: u64 = snaps.iter().map(|s| s.stolen).sum();
    let (max_c, min_c) = (
        parity_per_shard_completed
            .iter()
            .copied()
            .max()
            .unwrap_or(0),
        parity_per_shard_completed
            .iter()
            .copied()
            .min()
            .unwrap_or(0),
    );
    let parity_ratio = if min_c == 0 {
        f64::INFINITY
    } else {
        max_c as f64 / min_c as f64
    };
    eprintln!(
        "  per-shard completed {parity_per_shard_completed:?}, {parity_steals} steals, parity {parity_ratio:.3}"
    );

    // Forced imbalance: every request is the same plan (one shard by
    // affinity) and every forward sleeps 1 ms, so the hot shard cannot keep
    // up alone — peers must steal, and nothing may be lost or duplicated.
    eprintln!("sharding: steal sub-phase (hot plan, 1 ms forwards, {max_shards} shards)…");
    let steal_n = (clients * requests).min(256) as u64;
    let server = DaceServer::new(
        Arc::clone(&registry),
        ServeConfig {
            shards: max_shards,
            workers: max_shards,
            steal_threshold: 1,
            steal_max: 4,
            max_batch: 1,
            queue_depth: 8192,
            faults: FaultConfig {
                seed,
                stage_delay_ppm: 1_000_000,
                stage_delay: Duration::from_millis(1),
                ..FaultConfig::disabled()
            },
            ..ServeConfig::default()
        },
    );
    let hot = &pool[0];
    let handles: Vec<_> = (0..steal_n)
        .filter_map(|_| server.submit(hot, None, None).ok())
        .collect();
    let submitted = handles.len() as u64;
    let answered = handles.into_iter().filter_map(|h| h.wait().ok()).count() as u64;
    let snaps = server.shard_snapshot();
    server.shutdown();
    let steal_count: u64 = snaps.iter().map(|s| s.stolen).sum();
    let completed_total: u64 = snaps.iter().map(|s| s.completed).sum();
    let steal_lost = submitted - answered + completed_total.abs_diff(submitted);
    eprintln!(
        "  {answered}/{submitted} answered, {steal_count} stolen, per-shard {:?}",
        snaps.iter().map(|s| s.completed).collect::<Vec<_>>()
    );

    // Tier measurement: the same features through the f32 path and the int8
    // twin, offline (no scheduler noise), plus the worst-case divergence.
    eprintln!(
        "sharding: quantized-tier cost/accuracy over {} plans…",
        pool.len()
    );
    let base = registry.base();
    let est = &base.estimator;
    let quant = &base.quantized;
    let feats: Vec<_> = pool.iter().map(|t| est.featurizer.encode(t)).collect();
    let refs: Vec<&dace_core::PlanFeatures> = feats.iter().collect();
    let reps = 5;
    let mut ws = dace_core::Workspace::default();
    let (mut roots, mut full_ms) = (Vec::new(), Vec::new());
    let mut full_t = dace_core::ForwardTimings::default();
    let t = Instant::now();
    for _ in 0..reps {
        for chunk in refs.chunks(32) {
            let ft =
                est.predict_features_batch_ms_timed_ws(chunk, &mut ws, &mut roots, &mut full_ms);
            full_t.accumulate(ft);
            std::hint::black_box(&full_ms);
        }
    }
    let full_us = t.elapsed().as_micros() as f64 / (reps * refs.len()) as f64;
    let mut qws = dace_core::QuantWorkspace::default();
    let mut quant_ms = Vec::new();
    let mut quant_t = dace_core::ForwardTimings::default();
    let t = Instant::now();
    for _ in 0..reps {
        for chunk in refs.chunks(32) {
            let ft = quant.predict_features_batch_ms_timed_ws(
                chunk,
                &mut qws,
                &mut roots,
                &mut quant_ms,
            );
            quant_t.accumulate(ft);
            std::hint::black_box(&quant_ms);
        }
    }
    let quant_us = t.elapsed().as_micros() as f64 / (reps * refs.len()) as f64;
    eprintln!(
        "  breakdown (total µs over {reps}×{} plans): full attn {} mlp {}, quant attn {} mlp {}",
        refs.len(),
        full_t.attention_us,
        full_t.mlp_us,
        quant_t.attention_us,
        quant_t.mlp_us
    );
    let full_all = est.predict_features_batch_ms(&refs);
    quant.predict_features_batch_ms_timed_ws(&refs, &mut qws, &mut roots, &mut quant_ms);
    let max_qerr = full_all
        .iter()
        .zip(&quant_ms)
        .map(|(f, q)| (f / q).max(q / f))
        .fold(0.0f64, f64::max);
    eprintln!(
        "  full {full_us:.1} µs/plan vs quantized {quant_us:.1} µs/plan \
         ({:.2}×), max q-error {max_qerr:.4}",
        full_us / quant_us
    );

    let report = ShardingReport {
        cores,
        scaling_1_to_max: scaling,
        scaling_gated,
        parity_ratio,
        parity_per_shard_completed,
        parity_steals,
        steal_requests: submitted,
        steal_answered: answered,
        steal_lost,
        steal_count,
        full_us_per_plan: full_us,
        quantized_us_per_plan: quant_us,
        quantized_speedup: full_us / quant_us,
        quantized_max_qerror: max_qerr,
        full_attention_us: full_t.attention_us,
        full_mlp_us: full_t.mlp_us,
        quantized_attention_us: quant_t.attention_us,
        quantized_mlp_us: quant_t.mlp_us,
        full_weight_bytes: est.model.base_param_count() * 4,
        quantized_weight_bytes: quant.model.bytes(),
        curve,
    };

    if let Some(path) = md {
        write_sharding_md(path, &report);
    }
    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("sharding report serializes")
        );
    } else {
        println!("== sharding: scaling curve ==");
        for p in &report.curve {
            println!(
                "  {} shard(s): {:.0} req/s, parity {:.3}, stolen {:?}",
                p.shards, p.requests_per_sec, p.parity_ratio, p.per_shard_stolen
            );
        }
        println!(
            "  1→{max_shards}: {scaling:.2}× on {cores} core(s) (scaling gate {})",
            if scaling_gated {
                "armed"
            } else {
                "informational"
            }
        );
        println!(
            "== parity: per-shard {:?}, {} steals, ratio {:.3} ==",
            report.parity_per_shard_completed, report.parity_steals, report.parity_ratio
        );
        println!(
            "== steal: {}/{} answered, {} stolen, {} lost ==",
            report.steal_answered, report.steal_requests, report.steal_count, report.steal_lost
        );
        println!(
            "== tiers: full {:.1} µs/plan, quantized {:.1} µs/plan ({:.2}×), max q-error {:.4} ==",
            report.full_us_per_plan,
            report.quantized_us_per_plan,
            report.quantized_speedup,
            report.quantized_max_qerror
        );
    }

    let mut failed = false;
    if !parity_ratio.is_finite() || parity_ratio > 1.25 {
        eprintln!("FAIL: per-shard parity {parity_ratio:.3} over the 1.25 gate");
        failed = true;
    }
    if report.steal_lost != 0 || report.steal_answered != report.steal_requests {
        eprintln!(
            "FAIL: steal sub-phase lost requests ({} lost, {}/{} answered)",
            report.steal_lost, report.steal_answered, report.steal_requests
        );
        failed = true;
    }
    if report.steal_count == 0 {
        eprintln!("FAIL: forced imbalance produced zero steals");
        failed = true;
    }
    if !(report.quantized_max_qerror.is_finite() && report.quantized_max_qerror < 1.5) {
        eprintln!(
            "FAIL: quantized tier diverges {:.4} from full precision (gate < 1.5)",
            report.quantized_max_qerror
        );
        failed = true;
    }
    if scaling_gated && scaling < 3.0 {
        eprintln!("FAIL: 1→{max_shards} shard scaling {scaling:.2}× below 3× on {cores} cores");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if !json {
        println!("sharding OK");
    }
}

/// Render the `--shards` report as the markdown scaling record.
fn write_sharding_md(path: &str, r: &ShardingReport) {
    let mut out = String::new();
    out.push_str("# Sharded serving: scaling, stealing, and the quantized tier\n\n");
    out.push_str(&format!(
        "Measured by `serve_bench --shards {}` on {} core(s).\n\n",
        r.curve.last().map_or(1, |p| p.shards),
        r.cores
    ));
    out.push_str("## Scaling curve (closed loop)\n\n");
    out.push_str("| shards | req/s | per-shard completed | per-shard stolen | parity |\n");
    out.push_str("|---:|---:|---|---|---:|\n");
    for p in &r.curve {
        out.push_str(&format!(
            "| {} | {:.0} | {:?} | {:?} | {:.3} |\n",
            p.shards, p.requests_per_sec, p.per_shard_completed, p.per_shard_stolen, p.parity_ratio
        ));
    }
    out.push_str(&format!(
        "\n1→{} shards: **{:.2}×** ({}).\n\n",
        r.curve.last().map_or(1, |p| p.shards),
        r.scaling_1_to_max,
        if r.scaling_gated {
            "gated ≥ 3×"
        } else {
            "informational — fewer cores than shards, so shards time-slice one core"
        }
    ));
    out.push_str("## Saturated parity (uniform load, stealing active)\n\n");
    out.push_str(&format!(
        "Per-shard completions {:?} with {} steals — max/min **{:.3}** (gate ≤ 1.25 on any \
         machine: stealing levels the FNV routing skew).\n\n",
        r.parity_per_shard_completed, r.parity_steals, r.parity_ratio
    ));
    out.push_str("## Forced-imbalance stealing\n\n");
    out.push_str(&format!(
        "Hot plan pinned to one shard by affinity, 1 ms forwards: {}/{} answered, \
         **{} steals**, **{} lost/duplicated**.\n\n",
        r.steal_answered, r.steal_requests, r.steal_count, r.steal_lost
    ));
    out.push_str("## Quantized fast tier\n\n");
    out.push_str(&format!(
        "| tier | µs/plan | attention µs (total) | MLP µs (total) | weight bytes |\n\
         |---|---:|---:|---:|---:|\n\
         | full (f32) | {:.1} | {} | {} | {} |\n\
         | quantized (int8) | {:.1} | {} | {} | {} |\n\n\
         End-to-end speedup **{:.2}×** (attention scores and softmax stay f32 in both tiers, so \
         wins concentrate in the LoRA-folded MLP: **{:.2}×**), weights **{:.1}×** smaller, \
         max q-error vs full precision **{:.4}** (gate < 1.5).\n",
        r.full_us_per_plan,
        r.full_attention_us,
        r.full_mlp_us,
        r.full_weight_bytes,
        r.quantized_us_per_plan,
        r.quantized_attention_us,
        r.quantized_mlp_us,
        r.quantized_weight_bytes,
        r.quantized_speedup,
        r.full_mlp_us as f64 / r.quantized_mlp_us.max(1) as f64,
        r.full_weight_bytes as f64 / r.quantized_weight_bytes.max(1) as f64,
        r.quantized_max_qerror
    ));
    std::fs::write(path, out).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    eprintln!("wrote sharding report to {path}");
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// The `--tenants` phase: the multi-tenant isolation gate. Four
/// sub-phases — Zipf fairness, cache bleed, noisy-tenant storm, adapter
/// paging — each described on its report struct. Exits non-zero unless
/// every gate holds.
fn run_tenants(
    registry: Arc<ModelRegistry>,
    pool: &[PlanTree],
    smoke: bool,
    seed: u64,
    json: bool,
    md: Option<&str>,
) {
    // -- Fairness: Zipf-skewed closed loop over equal-weight tenants. ----
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let tenant_count = if smoke { 64 } else { 1000 };
    // Client threads scale with the machine: oversubscribing a small box
    // measures the OS scheduler's time-slicing tail, not the WFQ drain.
    let clients = if smoke { 8 } else { (cores * 4).clamp(4, 16) };
    let per_client = if smoke { 300 } else { 24_000 / clients };
    // Enough samples that p99 sits strictly inside the distribution: one
    // stray scheduling hiccup per tenant cannot decide the spread gate.
    let sample_floor = if smoke { 24 } else { 100 };
    eprintln!(
        "tenants: fairness — {clients} clients × {per_client}, Zipf over {tenant_count} tenants…"
    );
    let names: Vec<String> = (0..tenant_count).map(|i| format!("z{i:04}")).collect();
    // Zipf(s=1) cumulative mass over tenant ranks.
    let mut cum: Vec<f64> = Vec::with_capacity(tenant_count);
    let mut acc = 0.0;
    for r in 0..tenant_count {
        acc += 1.0 / (r + 1) as f64;
        cum.push(acc);
    }
    let total_mass = acc;
    let shards = if smoke { 2 } else { 4 };
    let server = DaceServer::new(
        Arc::clone(&registry),
        ServeConfig {
            shards,
            workers: shards,
            max_batch: 8,
            min_fill: 1,
            max_wait: Duration::from_micros(100),
            // Uniform 1 ms forwards: service cost dominates scheduling
            // jitter, so per-tenant latency differences are the
            // scheduler's doing, not the model's.
            faults: FaultConfig {
                seed,
                stage_delay_ppm: 1_000_000,
                stage_delay: Duration::from_millis(1),
                ..FaultConfig::disabled()
            },
            ..ServeConfig::default()
        },
    );
    let mut samples: Vec<(u32, f64)> = Vec::with_capacity(clients * per_client);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (server, names, cum) = (&server, &names, &cum);
                s.spawn(move || {
                    let mut rng = seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1));
                    let mut local = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let u = xorshift(&mut rng) as f64 / u64::MAX as f64 * total_mass;
                        let t = cum.partition_point(|&m| m < u).min(names.len() - 1);
                        let plan = &pool[(xorshift(&mut rng) % pool.len() as u64) as usize];
                        let t0 = Instant::now();
                        if server.predict_for(&names[t], plan).is_ok() {
                            local.push((t as u32, t0.elapsed().as_secs_f64() * 1e6));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            samples.extend(h.join().expect("fairness client"));
        }
    });
    server.shutdown();
    let answered = samples.len() as u64;
    let mut per_tenant: Vec<Vec<f64>> = vec![Vec::new(); tenant_count];
    for (t, us) in samples {
        per_tenant[t as usize].push(us);
    }
    let mut p99s: Vec<f64> = per_tenant
        .iter_mut()
        .filter(|v| v.len() >= sample_floor)
        .filter_map(|v| quantile(v, 0.99))
        .collect();
    p99s.sort_by(f64::total_cmp);
    let (min_p99, max_p99) = (
        p99s.first().copied().unwrap_or(0.0),
        p99s.last().copied().unwrap_or(0.0),
    );
    let p99_spread = if min_p99 > 0.0 {
        max_p99 / min_p99
    } else {
        f64::INFINITY
    };
    let fairness = TenantFairnessReport {
        tenants: tenant_count,
        clients,
        total_requests: (clients * per_client) as u64,
        answered,
        sample_floor,
        gated_tenants: p99s.len(),
        min_p99_us: min_p99,
        max_p99_us: max_p99,
        p99_spread,
    };
    eprintln!(
        "  {answered} answered, {} tenants ≥ {sample_floor} samples, p99 {:.0}–{:.0} µs \
         (spread {p99_spread:.2}×)",
        fairness.gated_tenants, min_p99, max_p99
    );

    // -- Bleed: every (tenant, plan) pair must miss on first sight. ------
    let bleed_tenants = if smoke { 8 } else { 32 };
    let plans_per_tenant = if smoke { 4 } else { 8 };
    eprintln!(
        "tenants: cache bleed — {bleed_tenants} tenants × {plans_per_tenant} plans, two passes…"
    );
    let server = DaceServer::new(
        Arc::clone(&registry),
        ServeConfig {
            shards: 1,
            workers: 1,
            cache_capacity: 4096,
            ..ServeConfig::default()
        },
    );
    let pair_plan = |t: usize, k: usize| &pool[(t * plans_per_tenant + k) % pool.len()];
    for t in 0..bleed_tenants {
        for k in 0..plans_per_tenant {
            server
                .predict_for(&format!("b{t:02}"), pair_plan(t, k))
                .expect("bleed pass answered");
        }
    }
    let first = server.metrics_snapshot();
    for t in 0..bleed_tenants {
        for k in 0..plans_per_tenant {
            server
                .predict_for(&format!("b{t:02}"), pair_plan(t, k))
                .expect("bleed second pass answered");
        }
    }
    let second = server.metrics_snapshot();
    let bleed = TenantBleedReport {
        tenants: bleed_tenants,
        plans_per_tenant,
        first_pass_misses: first.cache_misses,
        cross_tenant_hits: first.cache_hits,
        second_pass_hits: second.cache_hits - first.cache_hits,
        cache_entries: server.cache_len(),
    };
    server.shutdown();
    eprintln!(
        "  first pass: {} misses, {} hits; second pass: {} hits over {} entries",
        bleed.first_pass_misses,
        bleed.cross_tenant_hits,
        bleed.second_pass_hits,
        bleed.cache_entries
    );

    // -- Noisy tenant: 10× quota flood vs steady well-behaved loops. -----
    let noisy_rps = 200u32;
    let wb_count = 4usize;
    let storm_secs = if smoke { 0.6 } else { 1.5 };
    eprintln!(
        "tenants: noisy storm — 1 tenant at 10× its {noisy_rps} rps quota vs {wb_count} \
         well-behaved, {storm_secs:.1}s…"
    );
    let server = DaceServer::new(
        Arc::clone(&registry),
        ServeConfig {
            shards: 2,
            workers: 2,
            queue_depth: 64,
            max_batch: 8,
            min_fill: 1,
            max_wait: Duration::from_micros(100),
            faults: FaultConfig {
                seed,
                stage_delay_ppm: 1_000_000,
                stage_delay: Duration::from_micros(200),
                ..FaultConfig::disabled()
            },
            ..ServeConfig::default()
        },
    );
    server
        .set_tenant_quota("storm", noisy_rps, noisy_rps / 10)
        .expect("quota set");
    let storm_injector = FaultInjector::new(FaultConfig {
        seed,
        tenant_storm_ppm: 250_000,
        ..FaultConfig::disabled()
    });
    let deadline = Instant::now() + Duration::from_secs_f64(storm_secs);
    let mut noisy_attempted = 0u64;
    let mut noisy_admitted = 0u64;
    let mut quota_rejected = 0u64;
    let mut noisy_shed = 0u64;
    let mut storm_bursts = 0u64;
    let mut wb_attempted = 0u64;
    let mut wb_ok = 0u64;
    std::thread::scope(|s| {
        let wb_handles: Vec<_> = (0..wb_count)
            .map(|w| {
                let server = &server;
                s.spawn(move || {
                    let name = format!("wb{w}");
                    let (mut attempted, mut ok) = (0u64, 0u64);
                    let mut i = 0usize;
                    while Instant::now() < deadline {
                        attempted += 1;
                        if server
                            .predict_for(&name, &pool[(w * 11 + i) % pool.len()])
                            .is_ok()
                        {
                            ok += 1;
                        }
                        i += 1;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    (attempted, ok)
                })
            })
            .collect();
        // The storm: paced at 10× the quota, with extra bursts rolled on
        // the seeded TenantStorm fault site.
        let storm = s.spawn(|| {
            let interval = Duration::from_secs_f64(1.0 / (10.0 * f64::from(noisy_rps)));
            let (mut attempted, mut admitted, mut rejected, mut shed, mut bursts) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            let mut handles = Vec::new();
            while Instant::now() < deadline {
                let wave = if storm_injector.should_fire(FaultSite::TenantStorm) {
                    bursts += 1;
                    10
                } else {
                    1
                };
                for _ in 0..wave {
                    attempted += 1;
                    match server.submit_for(Some("storm"), &pool[0], None, None) {
                        Ok(h) => {
                            admitted += 1;
                            handles.push(h);
                        }
                        Err(ServeError::QuotaExceeded) => rejected += 1,
                        Err(ServeError::Overloaded) => shed += 1,
                        Err(_) => {}
                    }
                }
                std::thread::sleep(interval);
            }
            for h in handles {
                let _ = h.wait();
            }
            (attempted, admitted, rejected, shed, bursts)
        });
        for h in wb_handles {
            let (a, o) = h.join().expect("well-behaved client");
            wb_attempted += a;
            wb_ok += o;
        }
        let (a, ad, r, sh, b) = storm.join().expect("storm client");
        (
            noisy_attempted,
            noisy_admitted,
            quota_rejected,
            noisy_shed,
            storm_bursts,
        ) = (a, ad, r, sh, b);
    });
    let wb_shed: u64 = server
        .tenant_snapshot()
        .iter()
        .filter(|t| t.tenant.starts_with("wb"))
        .map(|t| t.shed)
        .sum();
    server.shutdown();
    let noisy = TenantNoisyReport {
        noisy_quota_rps: noisy_rps,
        noisy_attempted,
        noisy_admitted,
        quota_rejected,
        noisy_shed,
        storm_bursts,
        well_behaved_tenants: wb_count,
        well_behaved_attempted: wb_attempted,
        well_behaved_ok: wb_ok,
        well_behaved_shed: wb_shed,
        well_behaved_availability: if wb_attempted == 0 {
            0.0
        } else {
            wb_ok as f64 / wb_attempted as f64
        },
    };
    eprintln!(
        "  storm: {}/{} admitted, {} quota-rejected, {} shed, {} bursts; \
         well-behaved: {}/{} ok ({:.2}% available, {} shed)",
        noisy.noisy_admitted,
        noisy.noisy_attempted,
        noisy.quota_rejected,
        noisy.noisy_shed,
        noisy.storm_bursts,
        noisy.well_behaved_ok,
        noisy.well_behaved_attempted,
        100.0 * noisy.well_behaved_availability,
        noisy.well_behaved_shed
    );

    // -- Adapter paging: cold starts answered, never shed. ---------------
    let valid = if smoke { 3 } else { 6 };
    let hot_set = if smoke { 2 } else { 3 };
    eprintln!(
        "tenants: adapter paging — {valid} valid checkpoints (hot set {hot_set}), \
         1 missing, 1 torn, 1 injected-corrupt…"
    );
    let dir = std::env::temp_dir().join(format!("dace-bench-paging-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| die(&format!("mkdir {dir:?}: {e}")));
    let base_est = registry.base().estimator.clone();
    for t in 0..valid {
        dace_core::save_checkpoint(&dir.join(format!("p{t}.ckpt")), &base_est)
            .unwrap_or_else(|e| die(&format!("checkpoint write: {e}")));
    }
    std::fs::write(dir.join("torn.ckpt"), b"definitely not a checkpoint")
        .unwrap_or_else(|e| die(&format!("torn write: {e}")));
    let server = DaceServer::with_tenancy(
        Arc::clone(&registry),
        ServeConfig {
            shards: 1,
            workers: 1,
            ..ServeConfig::default()
        },
        None,
        HealthConfig::default(),
        Some(PagerConfig {
            hot_set,
            retry_cooldown: Duration::from_millis(50),
            ..PagerConfig::new(&dir)
        }),
    );
    let pager = Arc::clone(server.pager().expect("pager configured"));
    let mut requests = 0u64;
    let mut unanswered = 0u64;
    let mut cold_answers = 0u64;
    let mut cold_all_degraded = true;
    let mut warm_full_fidelity = true;
    let cold_names: Vec<String> = (0..valid)
        .map(|t| format!("p{t}"))
        .chain(["ghost".to_string(), "torn".to_string()])
        .collect();
    for name in &cold_names {
        requests += 1;
        match server.predict_for(name, &pool[0]) {
            Ok(pred) => {
                cold_answers += 1;
                cold_all_degraded &= pred.degraded;
            }
            Err(_) => unanswered += 1,
        }
    }
    for t in 0..valid {
        let name = format!("p{t}");
        let wait = Instant::now() + Duration::from_secs(10);
        while !pager.is_resident(&name) && Instant::now() < wait {
            std::thread::sleep(Duration::from_millis(5));
        }
        requests += 1;
        match server.predict_for(&name, &pool[1 % pool.len()]) {
            Ok(pred) => warm_full_fidelity &= !pred.degraded,
            Err(_) => unanswered += 1,
        }
    }
    for name in ["ghost", "torn"] {
        for k in 0..3usize {
            requests += 1;
            match server.predict_for(name, &pool[k % pool.len()]) {
                Ok(pred) => {
                    cold_answers += 1;
                    cold_all_degraded &= pred.degraded;
                }
                Err(_) => unanswered += 1,
            }
        }
    }
    let snap = server.metrics_snapshot();
    let resident_len = pager.resident_len();
    server.shutdown();

    // Injected corruption: the AdapterLoadCorrupt site at 100% — every
    // load fails, the tenant quarantines, and traffic keeps flowing
    // zero-shot.
    let corrupt_server = DaceServer::with_tenancy(
        Arc::clone(&registry),
        ServeConfig {
            shards: 1,
            workers: 1,
            faults: FaultConfig {
                seed,
                adapter_load_corrupt_ppm: 1_000_000,
                ..FaultConfig::disabled()
            },
            ..ServeConfig::default()
        },
        None,
        HealthConfig::default(),
        Some(PagerConfig {
            hot_set,
            retry_cooldown: Duration::from_millis(50),
            ..PagerConfig::new(&dir)
        }),
    );
    let corrupt_pager = Arc::clone(corrupt_server.pager().expect("pager configured"));
    requests += 1;
    match corrupt_server.predict_for("p0", &pool[0]) {
        Ok(pred) => {
            cold_answers += 1;
            cold_all_degraded &= pred.degraded;
        }
        Err(_) => unanswered += 1,
    }
    let wait = Instant::now() + Duration::from_secs(10);
    while !corrupt_pager.is_failed("p0") && Instant::now() < wait {
        std::thread::sleep(Duration::from_millis(5));
    }
    let injected_corrupt_failures = corrupt_server.metrics_snapshot().adapter_load_failures;
    corrupt_server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    let paging = TenantPagingReport {
        valid_tenants: valid,
        hot_set,
        requests,
        unanswered,
        cold_answers,
        cold_all_degraded,
        warm_full_fidelity,
        adapter_loads: snap.adapter_loads,
        adapter_load_failures: snap.adapter_load_failures,
        adapter_evictions: snap.adapter_evictions,
        resident_len,
        injected_corrupt_failures,
    };
    eprintln!(
        "  {} requests, {} unanswered, {} cold answers (all degraded: {}), \
         {} loads / {} failures / {} evictions, {} resident, {} injected-corrupt failures",
        paging.requests,
        paging.unanswered,
        paging.cold_answers,
        paging.cold_all_degraded,
        paging.adapter_loads,
        paging.adapter_load_failures,
        paging.adapter_evictions,
        paging.resident_len,
        paging.injected_corrupt_failures
    );

    let report = TenantsReport {
        smoke,
        fairness,
        bleed,
        noisy,
        paging,
    };
    if let Some(path) = md {
        write_tenants_md(path, &report);
    }
    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("tenants report serializes")
        );
    } else {
        println!(
            "== fairness: {} tenants, p99 spread {:.2}× over {} gated ==",
            report.fairness.tenants, report.fairness.p99_spread, report.fairness.gated_tenants
        );
        println!(
            "== bleed: {} first-pass hits (must be 0), {} entries ==",
            report.bleed.cross_tenant_hits, report.bleed.cache_entries
        );
        println!(
            "== noisy: {:.2}% well-behaved availability, {} quota rejections ==",
            100.0 * report.noisy.well_behaved_availability,
            report.noisy.quota_rejected
        );
        println!(
            "== paging: {}/{} answered, {} cold (degraded: {}) ==",
            report.paging.requests - report.paging.unanswered,
            report.paging.requests,
            report.paging.cold_answers,
            report.paging.cold_all_degraded
        );
    }

    let mut failed = false;
    if report.fairness.gated_tenants < 2 {
        eprintln!(
            "FAIL: only {} tenants crossed the {sample_floor}-sample floor",
            report.fairness.gated_tenants
        );
        failed = true;
    }
    if !report.fairness.p99_spread.is_finite() || report.fairness.p99_spread > 3.0 {
        eprintln!(
            "FAIL: per-tenant p99 spread {:.2}× over the 3× fairness gate",
            report.fairness.p99_spread
        );
        failed = true;
    }
    if report.bleed.cross_tenant_hits != 0 {
        eprintln!(
            "FAIL: {} cross-tenant cache hits (tenant partitioning leaked)",
            report.bleed.cross_tenant_hits
        );
        failed = true;
    }
    let pairs = (report.bleed.tenants * report.bleed.plans_per_tenant) as u64;
    if report.bleed.first_pass_misses != pairs || report.bleed.second_pass_hits != pairs {
        eprintln!(
            "FAIL: bleed accounting off ({} misses / {} second-pass hits, expected {pairs})",
            report.bleed.first_pass_misses, report.bleed.second_pass_hits
        );
        failed = true;
    }
    if report.noisy.well_behaved_availability < 0.99 {
        eprintln!(
            "FAIL: well-behaved availability {:.4} under the noisy tenant (gate ≥ 0.99)",
            report.noisy.well_behaved_availability
        );
        failed = true;
    }
    if report.noisy.quota_rejected == 0 {
        eprintln!("FAIL: a 10× flood never tripped the quota");
        failed = true;
    }
    if report.noisy.well_behaved_shed != 0 {
        eprintln!(
            "FAIL: {} well-behaved requests shed by someone else's flood",
            report.noisy.well_behaved_shed
        );
        failed = true;
    }
    if report.noisy.storm_bursts == 0 {
        eprintln!("FAIL: the TenantStorm fault site never fired");
        failed = true;
    }
    if report.paging.unanswered != 0 {
        eprintln!(
            "FAIL: {} cold-tenant requests went unanswered (the contract is degraded, never shed)",
            report.paging.unanswered
        );
        failed = true;
    }
    if !report.paging.cold_all_degraded {
        eprintln!("FAIL: a cold answer was not degraded-flagged");
        failed = true;
    }
    if !report.paging.warm_full_fidelity {
        eprintln!("FAIL: a resident adapter still answered degraded");
        failed = true;
    }
    if report.paging.adapter_loads < valid as u64 {
        eprintln!(
            "FAIL: only {} adapter loads for {valid} valid checkpoints",
            report.paging.adapter_loads
        );
        failed = true;
    }
    if report.paging.adapter_load_failures < 2 {
        eprintln!(
            "FAIL: missing/torn checkpoints produced {} load failures (expected ≥ 2)",
            report.paging.adapter_load_failures
        );
        failed = true;
    }
    if report.paging.adapter_evictions == 0 || report.paging.resident_len > hot_set {
        eprintln!(
            "FAIL: hot set unbounded ({} resident over {hot_set}, {} evictions)",
            report.paging.resident_len, report.paging.adapter_evictions
        );
        failed = true;
    }
    if report.paging.injected_corrupt_failures == 0 {
        eprintln!("FAIL: the AdapterLoadCorrupt fault site never failed a load");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if !json {
        println!("tenants OK");
    }
}

/// Render the `--tenants` report as the markdown isolation record.
fn write_tenants_md(path: &str, r: &TenantsReport) {
    let mut out = String::new();
    out.push_str("# Multi-tenant isolation: fairness, quotas, breakers, and adapter paging\n\n");
    out.push_str(&format!(
        "Measured by `serve_bench --tenants{}`.\n\n",
        if r.smoke { " --smoke" } else { "" }
    ));
    out.push_str("## Weighted-fair queueing (Zipf closed loop)\n\n");
    out.push_str(&format!(
        "{} clients over **{} equal-weight tenants** with Zipf-skewed popularity: \
         {}/{} answered; among the {} tenants with ≥ {} samples, per-tenant p99 spans \
         {:.0}–{:.0} µs — spread **{:.2}×** (gate ≤ 3×).\n\n",
        r.fairness.clients,
        r.fairness.tenants,
        r.fairness.answered,
        r.fairness.total_requests,
        r.fairness.gated_tenants,
        r.fairness.sample_floor,
        r.fairness.min_p99_us,
        r.fairness.max_p99_us,
        r.fairness.p99_spread
    ));
    out.push_str("## Featurization-cache partitioning\n\n");
    out.push_str(&format!(
        "{} tenants × {} plans, every (tenant, plan) pair submitted twice: first pass \
         {} misses and **{} cross-tenant hits** (gate: exactly 0 — fingerprints are salted \
         per tenant), second pass {} hits over {} distinct entries.\n\n",
        r.bleed.tenants,
        r.bleed.plans_per_tenant,
        r.bleed.first_pass_misses,
        r.bleed.cross_tenant_hits,
        r.bleed.second_pass_hits,
        r.bleed.cache_entries
    ));
    out.push_str("## Noisy-tenant storm\n\n");
    out.push_str(&format!(
        "One tenant flooding at 10× its {} rps quota ({} attempts, {} admitted, \
         **{} quota-rejected**, {} shed at its own lane, {} `TenantStorm` bursts) while {} \
         well-behaved tenants kept a steady loop: **{:.2}% availability** (gate ≥ 99%), \
         {} of their requests shed (gate: 0).\n\n",
        r.noisy.noisy_quota_rps,
        r.noisy.noisy_attempted,
        r.noisy.noisy_admitted,
        r.noisy.quota_rejected,
        r.noisy.noisy_shed,
        r.noisy.storm_bursts,
        r.noisy.well_behaved_tenants,
        100.0 * r.noisy.well_behaved_availability,
        r.noisy.well_behaved_shed
    ));
    out.push_str("## Adapter paging\n\n");
    out.push_str(&format!(
        "{} valid checkpoints behind a hot set of {}, plus one missing, one torn and one \
         injected-corrupt: {}/{} answered ({} cold-start answers, all degraded-flagged: {}), \
         warm requests at full fidelity: {}. Pager: {} loads, {} failures, {} evictions, \
         {} resident at exit, {} injected-corrupt failures.\n",
        r.paging.valid_tenants,
        r.paging.hot_set,
        r.paging.requests - r.paging.unanswered,
        r.paging.requests,
        r.paging.cold_answers,
        r.paging.cold_all_degraded,
        r.paging.warm_full_fidelity,
        r.paging.adapter_loads,
        r.paging.adapter_load_failures,
        r.paging.adapter_evictions,
        r.paging.resident_len,
        r.paging.injected_corrupt_failures
    ));
    std::fs::write(path, out).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    eprintln!("wrote tenants report to {path}");
}

/// The `--chaos` phase: closed-loop clients (no deadlines) against a
/// fault-injected server with a fitted cost-linear fallback, while a
/// background reloader round-trips the base model through disk checkpoints
/// that are corrupted at the configured rate. Exits non-zero unless the
/// availability/flagging/pool-health contract holds.
#[allow(clippy::too_many_arguments)]
fn run_chaos(
    registry: Arc<ModelRegistry>,
    fallback: CostLinearFallback,
    pool: &[PlanTree],
    clients: usize,
    requests: usize,
    workers: usize,
    seed: u64,
    json: bool,
) {
    silence_injected_panics();
    let config = ServeConfig {
        workers,
        default_deadline: None,
        faults: FaultConfig {
            seed,
            worker_kill_ppm: 10_000,       // 1% of drains kill their worker
            batch_panic_ppm: 10_000,       // 1% of forwards panic mid-batch
            checkpoint_corrupt_ppm: 5_000, // 0.5% of checkpoint writes torn
            ..FaultConfig::disabled()
        },
        ..ServeConfig::default()
    };
    eprintln!(
        "chaos: {clients} clients × {requests} requests, seed {seed:#x} \
         (1% worker kills, 1% batch panics, 0.5% checkpoint corruption)…"
    );
    let server = DaceServer::with_fallback(Arc::clone(&registry), config, Box::new(fallback));
    let injector = server.fault_injector();

    let ckpt_dir = std::env::temp_dir().join(format!("dace-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).unwrap_or_else(|e| die(&format!("chaos ckpt dir: {e}")));
    let ckpt_path = ckpt_dir.join("base.ckpt");

    let stop = std::sync::atomic::AtomicBool::new(false);
    let saves = AtomicU64::new(0);
    let reloads = AtomicU64::new(0);
    let rejects = AtomicU64::new(0);

    // One checkpoint cycle: persist the live base model, maybe corrupt the
    // file (the injector's deterministic 0.5%), reload through the typed
    // path. A rejected reload must leave the registry on its last good
    // version — the traffic running concurrently proves it does.
    let cycle = |force_corrupt: bool| {
        let base = registry.base();
        if dace_core::save_checkpoint(&ckpt_path, &base.estimator).is_err() {
            return;
        }
        saves.fetch_add(1, Ordering::Relaxed);
        if force_corrupt || injector.should_fire(FaultSite::CheckpointCorrupt) {
            if let Ok(mut bytes) = std::fs::read(&ckpt_path) {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x04;
                let _ = std::fs::write(&ckpt_path, &bytes);
            }
        }
        match registry.swap_base_from_checkpoint(&ckpt_path) {
            Ok(_) => reloads.fetch_add(1, Ordering::Relaxed),
            Err(_) => rejects.fetch_add(1, Ordering::Relaxed),
        };
    };

    let (secs, ok, degraded_seen) = std::thread::scope(|s| {
        s.spawn(|| {
            // Stay well inside the registry's version-slot capacity (1024
            // swaps per cell) however long the traffic runs.
            while !stop.load(Ordering::Acquire) && saves.load(Ordering::Relaxed) < 900 {
                cycle(false);
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let r = chaos_closed_loop(&server, pool, clients, requests);
        stop.store(true, Ordering::Release);
        r
    });
    // Prove the rejection path regardless of how the 0.5% dice fell.
    let rejects_before = rejects.load(Ordering::Relaxed);
    cycle(true);
    let forced_reject_ok = rejects.load(Ordering::Relaxed) == rejects_before + 1;
    std::fs::remove_dir_all(&ckpt_dir).ok();

    let snap = server.metrics_snapshot();
    server.shutdown();
    let total = (clients * requests) as u64;
    let report = ChaosReport {
        requests: total,
        completed: snap.completed,
        degraded: snap.degraded,
        availability: snap.availability(),
        degraded_rate: snap.degraded_rate(),
        requests_per_sec: ok as f64 / secs,
        worker_panics: snap.worker_panics,
        worker_restarts: snap.worker_restarts,
        pool_exhausted: snap.pool_exhausted,
        batch_panics: snap.batch_panics,
        breaker_opened: snap.breaker_opened,
        breaker_closed: snap.breaker_closed,
        checkpoint_saves: saves.load(Ordering::Relaxed),
        checkpoint_reloads: reloads.load(Ordering::Relaxed),
        checkpoint_rejects: rejects.load(Ordering::Relaxed),
    };

    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("chaos report serializes")
        );
    } else {
        println!("== chaos: availability under faults ==");
        println!(
            "  {}/{} answered ({:.2}% availability) in {secs:.2}s ({:.0} req/s)",
            report.completed,
            report.requests,
            100.0 * report.availability,
            report.requests_per_sec
        );
        println!(
            "  degraded: {} ({:.2}%), batch panics {}, worker panics {}, restarts {}",
            report.degraded,
            100.0 * report.degraded_rate,
            report.batch_panics,
            report.worker_panics,
            report.worker_restarts
        );
        println!(
            "  breaker opened {} / closed {}; checkpoints: {} saved, {} reloaded, {} rejected",
            report.breaker_opened,
            report.breaker_closed,
            report.checkpoint_saves,
            report.checkpoint_reloads,
            report.checkpoint_rejects
        );
        println!("{snap}");
    }

    let mut failed = false;
    if ok != total {
        eprintln!("FAIL: {ok} of {total} closed-loop requests answered");
        failed = true;
    }
    if report.availability < 0.99 {
        eprintln!(
            "FAIL: availability {:.4} below the 0.99 floor",
            report.availability
        );
        failed = true;
    }
    if report.pool_exhausted != 0 {
        eprintln!(
            "FAIL: worker pool died {} time(s) under chaos",
            report.pool_exhausted
        );
        failed = true;
    }
    if degraded_seen != report.degraded {
        eprintln!(
            "FAIL: clients saw {degraded_seen} degraded flags but the counter says {}",
            report.degraded
        );
        failed = true;
    }
    if !forced_reject_ok {
        eprintln!("FAIL: a deliberately corrupted checkpoint was not rejected");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if !json {
        println!("chaos OK");
    }
}

/// The `--adaptive` phase: drive the full observe→retrain→swap loop
/// against live traffic and gate on the outcome.
///
/// Three traffic segments against one server: clean (freezes the drift
/// baseline and measures the stale model's native accuracy), drifted at 6×
/// (until the detector trips and the background retrain promotes a
/// candidate through a crash-safe checkpoint round-trip), and post-swap
/// drifted (probation plus the recovery measurement). A separate sub-run
/// with a fresh copy of the stale model fires `CandidateSabotage` at 100%
/// and must reject the garbage candidate without publishing a version.
fn run_adaptive(
    registry: Arc<ModelRegistry>,
    data: &Dataset,
    workers: usize,
    smoke: bool,
    seed: u64,
    json: bool,
) {
    let drift_factor = 6.0;
    let window = if smoke { 64usize } else { 128 };
    let probation = if smoke { 48usize } else { 96 };
    let ckpt_dir = std::env::temp_dir().join(format!("dace-adaptive-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).unwrap_or_else(|e| die(&format!("adaptive ckpt dir: {e}")));
    let acfg = AdaptiveConfig {
        drift: DriftConfig {
            min_samples: window,
            window,
            quantile: 0.9,
            ratio: 1.5,
            check_every: 16,
            // One controlled trip per run: the cooldown outlasts the
            // traffic, and the post-promotion rebaseline re-arms cleanly.
            cooldown: 100 * window,
        },
        retrain_epochs: 40,
        retrain_lr: 2e-3,
        holdback_fraction: 0.25,
        min_retrain_samples: window / 2,
        // Retrain only on the newest window: the drain also returns the
        // pre-drift samples, whose labels contradict the shifted regime.
        retrain_window: window,
        shadow_quantile: 0.9,
        promote_margin: 1.0,
        probation_samples: probation,
        probation_margin: 3.0,
        checkpoint_dir: Some(ckpt_dir.clone()),
        buffer_capacity: 8192,
        db_id: 0,
    };
    eprintln!(
        "adaptive: window {window}, 6× drift, retrain {} epochs, probation {probation}…",
        acfg.retrain_epochs
    );

    // The sabotage sub-run wants the same stale starting point, captured
    // before the clean run promotes anything.
    let stale = registry.base().estimator.clone();
    let versions_before = registry.versions_published();

    let config = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    let server = DaceServer::new(Arc::clone(&registry), config);
    let ctrl = AdaptiveController::new(
        Arc::clone(&registry),
        server.metrics_registry(),
        acfg.clone(),
    );

    // Segment 1: clean traffic. The detector freezes its baseline from the
    // first `window` q-errors; the rest measure the stale model's accuracy.
    let n_pre = window + window / 2;
    let mut pre_qs = Vec::with_capacity(n_pre);
    for i in 0..n_pre {
        let plan = &data.plans[i % data.plans.len()];
        let pred = server
            .predict(&plan.tree)
            .unwrap_or_else(|e| die(&format!("adaptive clean request: {e:?}")));
        let observed = plan.latency_ms();
        pre_qs.push(q_error(pred.ms, observed));
        ctrl.observe(&plan.tree, &pred, observed);
    }

    // Segment 2: sustained 6× shift until the detector trips (bounded so a
    // broken detector fails the gate instead of hanging the bench).
    let cap = 20 * window;
    let mut drift_qs = Vec::new();
    let mut fed = 0usize;
    while ctrl.metrics().drift_trips.get() == 0 && fed < cap {
        let plan = &data.plans[fed % data.plans.len()];
        let pred = server
            .predict(&plan.tree)
            .unwrap_or_else(|e| die(&format!("adaptive drift request: {e:?}")));
        let observed = plan.latency_ms() * drift_factor;
        drift_qs.push(q_error(pred.ms, observed));
        ctrl.observe(&plan.tree, &pred, observed);
        fed += 1;
    }
    ctrl.join(); // retrain → shadow eval → checkpointed promotion

    // Segment 3: the shift persists; traffic now lands on the promoted
    // version, runs out its probation, and measures recovery.
    let n_post = probation + window;
    let mut post_qs = Vec::with_capacity(n_post);
    for i in 0..n_post {
        let plan = &data.plans[i % data.plans.len()];
        let pred = server
            .predict(&plan.tree)
            .unwrap_or_else(|e| die(&format!("adaptive post request: {e:?}")));
        let observed = plan.latency_ms() * drift_factor;
        post_qs.push(q_error(pred.ms, observed));
        ctrl.observe(&plan.tree, &pred, observed);
    }
    let m = ctrl.metrics();
    let (samples, drift_trips) = (m.samples.get(), m.drift_trips.get());
    let (started, succeeded) = (m.retrains_started.get(), m.retrains_succeeded.get());
    let (retrain_rb, promotions, rollbacks) = (
        m.retrains_rolled_back.get(),
        m.promotions.get(),
        m.rollbacks.get(),
    );
    let versions_after = registry.versions_published();
    server.shutdown();

    // Sabotage sub-run: fresh registry from the stale base, every retrain's
    // candidate corrupted before shadow eval. Rejection is the contract.
    eprintln!("adaptive: sabotage sub-run (CandidateSabotage at 100%)…");
    let sab_registry = Arc::new(ModelRegistry::new(stale));
    let sab_versions_before = sab_registry.versions_published();
    let sab_server = DaceServer::new(Arc::clone(&sab_registry), config);
    let injector = Arc::new(FaultInjector::new(FaultConfig {
        seed,
        sabotage_ppm: 1_000_000,
        ..FaultConfig::disabled()
    }));
    let sab_ctrl = AdaptiveController::with_faults(
        Arc::clone(&sab_registry),
        sab_server.metrics_registry(),
        AdaptiveConfig {
            checkpoint_dir: None,
            ..acfg
        },
        injector,
    );
    for i in 0..n_pre {
        let plan = &data.plans[i % data.plans.len()];
        let pred = sab_server
            .predict(&plan.tree)
            .unwrap_or_else(|e| die(&format!("sabotage clean request: {e:?}")));
        sab_ctrl.observe(&plan.tree, &pred, plan.latency_ms());
    }
    let mut sab_fed = 0usize;
    while sab_ctrl.metrics().drift_trips.get() == 0 && sab_fed < cap {
        let plan = &data.plans[sab_fed % data.plans.len()];
        let pred = sab_server
            .predict(&plan.tree)
            .unwrap_or_else(|e| die(&format!("sabotage drift request: {e:?}")));
        sab_ctrl.observe(&plan.tree, &pred, plan.latency_ms() * drift_factor);
        sab_fed += 1;
    }
    sab_ctrl.join();
    let sm = sab_ctrl.metrics();
    let (sab_retrains, sab_rejections, sab_promotions) = (
        sm.retrains_started.get(),
        sm.retrains_rolled_back.get(),
        sm.promotions.get(),
    );
    let sab_versions_ok = sab_registry.versions_published() == sab_versions_before;
    sab_server.shutdown();
    std::fs::remove_dir_all(&ckpt_dir).ok();

    let q = |qs: &[f64], p: f64| quantile(&mut qs.to_vec(), p).unwrap_or(f64::NAN);
    let report = AdaptiveReport {
        samples,
        drift_trips,
        retrains_started: started,
        retrains_succeeded: succeeded,
        retrains_rolled_back: retrain_rb,
        promotions,
        rollbacks,
        versions_before,
        versions_after,
        pre_q_p50: q(&pre_qs, 0.5),
        pre_q_p90: q(&pre_qs, 0.9),
        drift_q_p50: q(&drift_qs, 0.5),
        drift_q_p90: q(&drift_qs, 0.9),
        post_q_p50: q(&post_qs, 0.5),
        post_q_p90: q(&post_qs, 0.9),
        recovery_ratio: q(&post_qs, 0.9) / q(&pre_qs, 0.9),
        sabotage_retrains: sab_retrains,
        sabotage_rejections: sab_rejections,
        sabotage_promotions: sab_promotions,
    };

    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("adaptive report serializes")
        );
    } else {
        println!("== adaptive: observe→retrain→swap under a 6× shift ==");
        println!(
            "  {} samples, {} drift trip(s), retrains {} started / {} promoted / {} rejected",
            report.samples,
            report.drift_trips,
            report.retrains_started,
            report.promotions,
            report.retrains_rolled_back
        );
        println!(
            "  q-error p50/p90: pre {:.2}/{:.2} → under drift {:.2}/{:.2} → post-swap {:.2}/{:.2}",
            report.pre_q_p50,
            report.pre_q_p90,
            report.drift_q_p50,
            report.drift_q_p90,
            report.post_q_p50,
            report.post_q_p90
        );
        println!(
            "  recovery {:.2}× of pre-drift p90 (gate ≤ 1.2×), versions {} → {}, \
             probation rollbacks {}",
            report.recovery_ratio, report.versions_before, report.versions_after, report.rollbacks
        );
        println!(
            "  sabotage: {} retrain(s), {} rejected, {} promoted",
            report.sabotage_retrains, report.sabotage_rejections, report.sabotage_promotions
        );
    }

    let mut failed = false;
    if report.drift_trips < 1 {
        eprintln!("FAIL: drift never tripped under a sustained 6× shift");
        failed = true;
    }
    if report.promotions < 1 || report.retrains_succeeded < 1 {
        eprintln!("FAIL: no retrain was promoted on the clean run");
        failed = true;
    }
    if report.versions_after <= report.versions_before {
        eprintln!("FAIL: promotion did not publish a new version");
        failed = true;
    }
    if report.rollbacks != 0 {
        eprintln!(
            "FAIL: {} probation rollback(s) on a clean run",
            report.rollbacks
        );
        failed = true;
    }
    // NaN-safe: a non-finite quantile must fail the gate, not skip it.
    let recovered = report.post_q_p90 <= report.pre_q_p90 * 1.2;
    if !recovered {
        eprintln!(
            "FAIL: post-swap q-error p90 {:.3} exceeds pre-drift {:.3} × 1.2",
            report.post_q_p90, report.pre_q_p90
        );
        failed = true;
    }
    if report.sabotage_rejections < 1 || report.sabotage_promotions != 0 || !sab_versions_ok {
        eprintln!("FAIL: a sabotaged candidate was not rejected");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if !json {
        println!("adaptive OK");
    }
}

/// The `--introspect` phase: exercise and gate the estimator health plane.
///
/// Three steps against live servers: (1) paired closed loops measure what
/// an enabled introspection endpoint (bound HTTP listener + durable
/// journal) costs in throughput — best of three runs each way, gate at
/// ≥ 0.97× of the disabled baseline; (2) a mini observe→retrain→swap run
/// with span tracing on, tight SLO windows and a journal on disk, after
/// which the in-process HTTP client reads all five endpoints and the
/// journal must reconstruct the causal story — `SwapPromoted` carrying the
/// same trace id as the `DriftTripped` that caused it, that id present in
/// the flight recorder via `/trace`, and a burn-rate `Alert` with both
/// windows above threshold; (3) a fault-injected server (100% batch panics
/// behind a fitted fallback) must journal `BreakerOpened`, flip `/health`
/// to "degraded" while the breaker is open, and auto-dump a diagnostic
/// bundle. Any violated gate exits non-zero.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_introspect(
    registry: Arc<ModelRegistry>,
    data: &Dataset,
    pool: &[PlanTree],
    workers: usize,
    seed: u64,
    json: bool,
    events_out: Option<&str>,
) {
    let loopback = || {
        "127.0.0.1:0"
            .parse::<std::net::SocketAddr>()
            .expect("loopback literal parses")
    };
    let tmp = std::env::temp_dir().join(format!("dace-introspect-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap_or_else(|e| die(&format!("introspect tmp dir: {e}")));

    // Step 1: the overhead gate. Identical closed loops, introspection off
    // vs on, interleaved five times; a discarded warmup run plus
    // best-of-five on each side damps scheduler noise (best-of converges to
    // the machine's true capacity under either config, which is what the
    // overhead gate is about). Client threads are kept low so the
    // measurement doesn't drown in oversubscription on small CI boxes.
    let (bc, br) = (2usize, 1_500usize);
    eprintln!("introspect: paired closed loops ({bc} clients × {br} requests, off vs on ×5)…");
    {
        let server = DaceServer::new(
            Arc::clone(&registry),
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
        );
        closed_loop(&server, pool, bc, br); // warmup: caches, allocator, pages
        server.shutdown();
    }
    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    for _ in 0..5 {
        let server = DaceServer::new(
            Arc::clone(&registry),
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
        );
        let (secs, ok) = closed_loop(&server, pool, bc, br);
        best_off = best_off.max(ok as f64 / secs);
        server.shutdown();

        let server = DaceServer::with_health(
            Arc::clone(&registry),
            ServeConfig {
                workers,
                introspect_addr: Some(loopback()),
                ..ServeConfig::default()
            },
            None,
            HealthConfig {
                journal_path: Some(tmp.join("bench-journal.jsonl")),
                ..HealthConfig::default()
            },
        );
        if server.introspect_addr().is_none() {
            die("introspection endpoint failed to bind for the overhead pair");
        }
        let (secs, ok) = closed_loop(&server, pool, bc, br);
        best_on = best_on.max(ok as f64 / secs);
        server.shutdown();
    }
    let throughput_ratio = best_on / best_off;
    eprintln!(
        "introspect: {best_off:.0} req/s off vs {best_on:.0} req/s on ({:.3}×)",
        throughput_ratio
    );

    // Step 2: the mini adaptive run, traced and journaled. Window geometry
    // mirrors the `--adaptive` smoke; the SLO windows are shrunk so the
    // drift segment (q ≈ 6 against a target of 4) must burn through both.
    dace_obs::set_tracing(true);
    let window = 64usize;
    let probation = 48usize;
    let ckpt_dir = tmp.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir)
        .unwrap_or_else(|e| die(&format!("introspect ckpt dir: {e}")));
    let acfg = AdaptiveConfig {
        drift: DriftConfig {
            min_samples: window,
            window,
            quantile: 0.9,
            ratio: 1.5,
            check_every: 16,
            cooldown: 100 * window,
        },
        retrain_epochs: 40,
        retrain_lr: 2e-3,
        holdback_fraction: 0.25,
        min_retrain_samples: window / 2,
        retrain_window: window,
        shadow_quantile: 0.9,
        promote_margin: 1.0,
        probation_samples: probation,
        probation_margin: 3.0,
        checkpoint_dir: Some(ckpt_dir),
        buffer_capacity: 8192,
        db_id: 0,
    };
    let server = DaceServer::with_health(
        Arc::clone(&registry),
        ServeConfig {
            workers,
            introspect_addr: Some(loopback()),
            ..ServeConfig::default()
        },
        None,
        HealthConfig {
            journal_path: Some(tmp.join("journal.jsonl")),
            bundle_dir: Some(tmp.join("bundles")),
            slo: SloConfig {
                fast_window: 32,
                slow_window: 96,
                ..SloConfig::default()
            },
        },
    );
    let addr = server
        .introspect_addr()
        .unwrap_or_else(|| die("introspection endpoint failed to bind"));
    eprintln!("introspect: endpoint at http://{addr}, driving observe→retrain→swap…");
    // The healthy side of the ok→degraded flip: a fresh server with a
    // closed(-less) breaker and empty SLO windows must report "ok". (After
    // the run the q-error alert may legitimately still be latched — smoke
    // trains a deliberately weak model — so "ok" is asserted here.)
    let (h0, health_fresh) =
        http_get(addr, "/health").unwrap_or_else(|e| die(&format!("GET /health (fresh): {e}")));
    let health_ok_seen = h0 == 200 && health_fresh.contains("\"status\":\"ok\"");
    let ctrl = AdaptiveController::new(Arc::clone(&registry), server.metrics_registry(), acfg);
    ctrl.set_health(Arc::clone(server.health()), server.metrics_registry());

    let drift_factor = 6.0;
    let n_pre = window + window / 2;
    for i in 0..n_pre {
        let plan = &data.plans[i % data.plans.len()];
        let pred = server
            .predict(&plan.tree)
            .unwrap_or_else(|e| die(&format!("introspect clean request: {e:?}")));
        ctrl.observe(&plan.tree, &pred, plan.latency_ms());
    }
    let cap = 20 * window;
    let mut fed = 0usize;
    while ctrl.metrics().drift_trips.get() == 0 && fed < cap {
        let plan = &data.plans[fed % data.plans.len()];
        let pred = server
            .predict(&plan.tree)
            .unwrap_or_else(|e| die(&format!("introspect drift request: {e:?}")));
        ctrl.observe(&plan.tree, &pred, plan.latency_ms() * drift_factor);
        fed += 1;
    }
    ctrl.join(); // retrain → shadow eval → checkpointed promotion
    for i in 0..(probation + window) {
        let plan = &data.plans[i % data.plans.len()];
        let pred = server
            .predict(&plan.tree)
            .unwrap_or_else(|e| die(&format!("introspect post request: {e:?}")));
        ctrl.observe(&plan.tree, &pred, plan.latency_ms() * drift_factor);
    }
    let drift_trips = ctrl.metrics().drift_trips.get();

    // All five endpoints through the in-process client (no curl in CI).
    let get =
        |path: &str| http_get(addr, path).unwrap_or_else(|e| die(&format!("GET {path}: {e}")));
    let (hc, _health_again) = get("/health");
    let (mc, metrics_body) = get("/metrics");
    let (ec, events_body) = get("/events?n=4096");
    let (vc, version_body) = get("/version");
    let (tc, trace_body) = get("/trace");
    let endpoints_ok = [hc, mc, ec, vc, tc].iter().all(|&c| c == 200)
        && metrics_body.contains("# HELP serve_submitted_total")
        && metrics_body.contains("obs_recorder_dropped")
        && metrics_body.contains("adaptive_feedback_ring_dropped")
        && metrics_body.contains("dace_qerr{")
        && version_body.contains("versions_published")
        && events_body.starts_with('[');
    if let Some(path) = events_out {
        std::fs::write(path, &events_body)
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!(
            "wrote {} bytes of journal events to {path}",
            events_body.len()
        );
    }

    // Reconstruct the causal story from the typed journal.
    let journal_len = server.health().journal().len();
    let mut server_started = 0u64;
    let mut probation_passed = 0u64;
    let mut alerts = 0u64;
    let (mut alert_fast, mut alert_slow, mut alert_threshold) = (0.0f64, 0.0f64, 0.0f64);
    let mut drift_trace = 0u64;
    let mut swap_traces: Vec<u64> = Vec::new();
    for r in server.health().journal().records() {
        match &r.event {
            LifecycleEvent::ServerStarted { .. } => server_started += 1,
            LifecycleEvent::DriftTripped { .. } => drift_trace = r.trace,
            LifecycleEvent::SwapPromoted { .. } => swap_traces.push(r.trace),
            LifecycleEvent::ProbationPassed { .. } => probation_passed += 1,
            LifecycleEvent::Alert {
                fast_burn,
                slow_burn,
                threshold,
                ..
            } => {
                alerts += 1;
                alert_fast = *fast_burn;
                alert_slow = *slow_burn;
                alert_threshold = *threshold;
            }
            _ => {}
        }
    }
    let trace_match = drift_trace != 0
        && !swap_traces.is_empty()
        && swap_traces.iter().all(|t| *t == drift_trace);
    // `/trace` carries trace ids as 16-digit hex in `args.trace`.
    let trace_in_recorder = drift_trace != 0 && trace_body.contains(&format!("{drift_trace:016x}"));
    server.shutdown();

    // Step 3: an injected breaker-open window. Every forward panics, the
    // fitted fallback keeps answering (degraded), the breaker opens, and
    // `/health` must say so while a bundle lands on disk.
    eprintln!("introspect: breaker-open window (100% batch panics behind the fallback)…");
    silence_injected_panics();
    let fallback = CostLinearFallback::fit(data);
    let bsrv = DaceServer::with_health(
        Arc::clone(&registry),
        ServeConfig {
            workers: 2,
            default_deadline: None,
            introspect_addr: Some(loopback()),
            faults: FaultConfig {
                seed,
                batch_panic_ppm: 1_000_000,
                ..FaultConfig::disabled()
            },
            ..ServeConfig::default()
        },
        Some(Box::new(fallback)),
        HealthConfig {
            bundle_dir: Some(tmp.join("bundles-breaker")),
            ..HealthConfig::default()
        },
    );
    let baddr = bsrv
        .introspect_addr()
        .unwrap_or_else(|| die("breaker introspection endpoint failed to bind"));
    for i in 0..96 {
        let _ = bsrv.predict(&pool[i % pool.len()]);
    }
    let (bhc, bhb) =
        http_get(baddr, "/health").unwrap_or_else(|e| die(&format!("GET /health (breaker): {e}")));
    let health_degraded_seen = bhc == 200 && bhb.contains("\"status\":\"degraded\"");
    let breaker_opened_journaled = bsrv
        .health()
        .journal()
        .records()
        .iter()
        .any(|r| matches!(r.event, LifecycleEvent::BreakerOpened { .. }));
    let bundles_dumped = bsrv.health().bundles_dumped();
    bsrv.shutdown();
    dace_obs::set_tracing(false);
    std::fs::remove_dir_all(&tmp).ok();

    let report = IntrospectReport {
        throughput_off_rps: best_off,
        throughput_on_rps: best_on,
        throughput_ratio,
        journal_len,
        server_started,
        drift_trips,
        swaps_promoted: swap_traces.len() as u64,
        probation_passed,
        alerts,
        alert_fast_burn: alert_fast,
        alert_slow_burn: alert_slow,
        alert_threshold,
        drift_trace: format!("{drift_trace:016x}"),
        trace_match,
        trace_in_recorder,
        breaker_opened_journaled,
        health_degraded_seen,
        health_ok_seen,
        bundles_dumped,
        endpoints_ok,
    };

    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("introspect report serializes")
        );
    } else {
        println!("== introspect: the estimator health plane ==");
        println!(
            "  throughput {:.0} req/s off → {:.0} req/s on ({:.3}× of baseline, gate ≥ 0.97)",
            report.throughput_off_rps, report.throughput_on_rps, report.throughput_ratio
        );
        println!(
            "  journal: {} events; {} started, {} drift trip(s), {} swap(s), {} probation pass(es)",
            report.journal_len,
            report.server_started,
            report.drift_trips,
            report.swaps_promoted,
            report.probation_passed
        );
        println!(
            "  lineage: trace {} on every swap: {}, present in flight recorder: {}",
            report.drift_trace, report.trace_match, report.trace_in_recorder
        );
        println!(
            "  slo: {} alert(s), fast burn {:.1} / slow burn {:.1} over threshold {:.1}",
            report.alerts, report.alert_fast_burn, report.alert_slow_burn, report.alert_threshold
        );
        println!(
            "  breaker window: journaled {}, /health degraded {}, bundles dumped {}",
            report.breaker_opened_journaled, report.health_degraded_seen, report.bundles_dumped
        );
    }

    let mut failed = false;
    if !endpoints_ok {
        eprintln!(
            "FAIL: endpoint round-trip incomplete \
             (codes {hc}/{mc}/{ec}/{vc}/{tc} for /health /metrics /events /version /trace)"
        );
        failed = true;
    }
    if report.server_started < 1 {
        eprintln!("FAIL: journal has no ServerStarted head marker");
        failed = true;
    }
    if report.drift_trips < 1 || report.swaps_promoted < 1 || report.probation_passed < 1 {
        eprintln!("FAIL: adaptive loop incomplete in the journal (trip → swap → probation)");
        failed = true;
    }
    if !report.trace_match || !report.trace_in_recorder {
        eprintln!(
            "FAIL: causal lineage broken (drift trace {}, match {}, in recorder {})",
            report.drift_trace, report.trace_match, report.trace_in_recorder
        );
        failed = true;
    }
    if report.alerts < 1
        || !(report.alert_fast_burn > report.alert_threshold
            && report.alert_slow_burn > report.alert_threshold)
    {
        eprintln!("FAIL: no burn-rate alert with both windows above threshold");
        failed = true;
    }
    if !report.health_ok_seen {
        eprintln!("FAIL: /health did not report ok on a fresh healthy server");
        failed = true;
    }
    if !report.health_degraded_seen || !report.breaker_opened_journaled {
        eprintln!("FAIL: breaker-open window not reflected in /health + journal");
        failed = true;
    }
    if report.bundles_dumped < 1 {
        eprintln!("FAIL: breaker open did not auto-dump a diagnostic bundle");
        failed = true;
    }
    if report.throughput_ratio < 0.97 {
        eprintln!(
            "FAIL: introspection-enabled throughput {:.3}× of baseline (gate ≥ 0.97)",
            report.throughput_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    if !json {
        println!("introspect OK");
    }
}

/// Closed-loop chaos traffic: like [`closed_loop`] but with no deadlines
/// and per-response degradation accounting. Returns (elapsed seconds,
/// answered, degraded-flagged).
fn chaos_closed_loop(
    server: &DaceServer,
    pool: &[PlanTree],
    clients: usize,
    requests: usize,
) -> (f64, u64, u64) {
    let ok = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let (ok, degraded) = (&ok, &degraded);
            s.spawn(move || {
                for r in 0..requests {
                    let tree = &pool[(c * 7 + r) % pool.len()];
                    let adapter = ((c + r) % 4 == 0).then_some("tenant");
                    if let Ok(pred) = server.predict_with(tree, adapter, None) {
                        ok.fetch_add(1, Ordering::Relaxed);
                        if pred.degraded {
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    (
        t0.elapsed().as_secs_f64(),
        ok.load(Ordering::Relaxed),
        degraded.load(Ordering::Relaxed),
    )
}

/// Dump the server's metrics registry as Prometheus text.
fn write_prom(path: &str, server: &DaceServer) {
    std::fs::write(path, server.metrics_registry().prometheus_text())
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    eprintln!("wrote Prometheus metrics to {path}");
}

/// Dump the global flight recorder as Chrome trace-event JSON; returns the
/// event count. Tracing is switched off first so the destructive drain
/// cannot race spans still being recorded — call after the servers of
/// interest have shut down.
fn write_trace(path: &str) -> usize {
    dace_obs::set_tracing(false);
    let events = dace_obs::FlightRecorder::global().snapshot_records();
    std::fs::write(path, dace_obs::chrome_trace(&events))
        .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
    eprintln!("wrote {} trace events to {path}", events.len());
    events.len()
}

/// N clients each issue `requests` blocking predictions over the pool;
/// every fourth request goes through the tenant adapter. Returns
/// (elapsed seconds, successful responses).
fn closed_loop(
    server: &DaceServer,
    pool: &[PlanTree],
    clients: usize,
    requests: usize,
) -> (f64, u64) {
    let ok = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let ok = &ok;
            s.spawn(move || {
                for r in 0..requests {
                    let tree = &pool[(c * 7 + r) % pool.len()];
                    let adapter = ((c + r) % 4 == 0).then_some("tenant");
                    if server.predict_with(tree, adapter, None).is_ok() {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    (t0.elapsed().as_secs_f64(), ok.load(Ordering::Relaxed))
}

/// Submit at a fixed arrival rate without waiting, then drain every handle.
/// Returns (answered, deadline-expired).
fn open_loop(server: &DaceServer, pool: &[PlanTree], rate: f64, duration: Duration) -> (u64, u64) {
    let interval = Duration::from_secs_f64(1.0 / rate);
    let deadline = Some(Duration::from_millis(20));
    let mut handles = Vec::new();
    let t0 = Instant::now();
    let mut next = t0;
    let mut i = 0usize;
    while t0.elapsed() < duration {
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        }
        next += interval;
        if let Ok(h) = server.submit(&pool[i % pool.len()], None, deadline) {
            handles.push(h);
        }
        i += 1;
    }
    let (mut ok, mut expired) = (0u64, 0u64);
    for h in handles {
        match h.wait() {
            Ok(_) => ok += 1,
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(_) => {}
        }
    }
    (ok, expired)
}

fn phase_report(ok: u64, secs: f64, snap: &MetricsSnapshot) -> PhaseReport {
    PhaseReport {
        requests_per_sec: ok as f64 / secs,
        p50_us: snap.e2e_us.p50,
        p99_us: snap.e2e_us.p99,
        cache_hit_rate: snap.cache_hit_rate(),
        mean_batch_size: snap.batch_size.mean,
    }
}

fn parse<T: std::str::FromStr>(val: Option<&String>, flag: &str) -> T {
    val.and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
