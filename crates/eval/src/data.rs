//! Suite-wide data collection shared by all experiments.

use dace_catalog::{generate_database, suite_specs, Database};
use dace_engine::collect_dataset;
use dace_plan::{Dataset, MachineId};
use dace_query::{ComplexWorkloadGen, MscnSet, MscnWorkloadGen};

/// Scaling configuration for an experiment run. `EvalConfig::scaled(s)`
/// multiplies query counts and epochs by `s`, so `--scale 1.0` is the
/// default reproduction size and smaller values give smoke runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Row-count scale of the generated databases.
    pub db_scale: f64,
    /// Complex-workload queries collected per database (workloads 1/2).
    pub queries_per_db: usize,
    /// Workload-3 training queries (the paper's 100k, scaled).
    pub wl3_train: usize,
    /// Workload-3 synthetic test size (paper: 5000).
    pub wl3_synthetic: usize,
    /// Workload-3 scale test size (paper: 500).
    pub wl3_scale: usize,
    /// Workload-3 JOB-light test size (paper: 70).
    pub wl3_job_light: usize,
    /// Training epochs for DACE.
    pub dace_epochs: usize,
    /// Training epochs for the baselines.
    pub baseline_epochs: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            db_scale: 0.3,
            queries_per_db: 400,
            wl3_train: 4_000,
            wl3_synthetic: 800,
            wl3_scale: 300,
            wl3_job_light: 70,
            dace_epochs: 30,
            baseline_epochs: 20,
        }
    }
}

impl EvalConfig {
    /// Scale query counts and epochs by `s` (≥ 0.05), keeping the database
    /// size fixed so cardinalities stay comparable across scales.
    pub fn scaled(s: f64) -> EvalConfig {
        let base = EvalConfig::default();
        let s = s.max(0.05);
        let q = |n: usize| ((n as f64 * s) as usize).max(8);
        EvalConfig {
            db_scale: base.db_scale,
            queries_per_db: q(base.queries_per_db),
            wl3_train: q(base.wl3_train),
            wl3_synthetic: q(base.wl3_synthetic),
            wl3_scale: q(base.wl3_scale),
            wl3_job_light: base.wl3_job_light.min(q(base.wl3_job_light * 2)),
            dace_epochs: ((base.dace_epochs as f64 * s.max(0.4)) as usize).max(4),
            baseline_epochs: ((base.baseline_epochs as f64 * s.max(0.4)) as usize).max(4),
        }
    }
}

/// Generate database `db_id` of the suite at the configured scale.
pub fn suite_db(cfg: &EvalConfig, db_id: u16) -> Database {
    generate_database(&suite_specs()[db_id as usize], cfg.db_scale)
}

/// Collect the complex workload (workload 1) for one database on a machine.
pub fn collect_db(cfg: &EvalConfig, db_id: u16, machine: MachineId) -> Dataset {
    let db = suite_db(cfg, db_id);
    let queries = ComplexWorkloadGen::default().generate(&db, cfg.queries_per_db);
    collect_dataset(&db, &queries, machine)
}

/// Collect workload 1 across all 20 databases on M1 (the paper's Sec. V-A
/// setup). Databases are generated, executed and dropped one at a time to
/// bound memory.
pub fn collect_suite_m1(cfg: &EvalConfig) -> Dataset {
    collect_suite(cfg, MachineId::M1)
}

/// Collect the complex workload across all 20 databases on `machine`.
pub fn collect_suite(cfg: &EvalConfig, machine: MachineId) -> Dataset {
    let mut all = Dataset::new();
    for spec in suite_specs() {
        all.extend(collect_db(cfg, spec.db_id, machine));
    }
    all
}

/// The MSCN benchmark on the IMDB-like database (workload 3).
#[derive(Debug, Clone)]
pub struct Workload3 {
    /// Training set (the paper's 100k queries, scaled).
    pub train: Dataset,
    /// Synthetic test set.
    pub synthetic: Dataset,
    /// Scale test set.
    pub scale: Dataset,
    /// JOB-light test set.
    pub job_light: Dataset,
}

impl Workload3 {
    /// The three test sets with display names.
    pub fn test_sets(&self) -> [(&'static str, &Dataset); 3] {
        [
            ("Synthetic", &self.synthetic),
            ("Scale", &self.scale),
            ("JOB-light", &self.job_light),
        ]
    }
}

/// Collect workload 3 on M1 (IMDB-like database, id 0).
pub fn workload3(cfg: &EvalConfig) -> Workload3 {
    let db = suite_db(cfg, dace_catalog::suite::IMDB_LIKE_DB);
    let gen = MscnWorkloadGen::default();
    let train_q = gen.gen_train(&db, cfg.wl3_train);
    let synthetic_q = gen.gen_test(&db, MscnSet::Synthetic, cfg.wl3_synthetic);
    let scale_q = gen.gen_test(&db, MscnSet::Scale, cfg.wl3_scale);
    let job_q = gen.gen_test(&db, MscnSet::JobLight, cfg.wl3_job_light);
    Workload3 {
        train: collect_dataset(&db, &train_q, MachineId::M1),
        synthetic: collect_dataset(&db, &synthetic_q, MachineId::M1),
        scale: collect_dataset(&db, &scale_q, MachineId::M1),
        job_light: collect_dataset(&db, &job_q, MachineId::M1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_shrinks_counts() {
        let full = EvalConfig::scaled(1.0);
        let small = EvalConfig::scaled(0.1);
        assert!(small.queries_per_db < full.queries_per_db);
        assert!(small.wl3_train < full.wl3_train);
        assert!(small.dace_epochs >= 4);
        assert_eq!(small.db_scale, full.db_scale);
    }

    #[test]
    fn collect_db_produces_labeled_plans() {
        let cfg = EvalConfig {
            queries_per_db: 30,
            ..EvalConfig::scaled(0.05)
        };
        let ds = collect_db(&cfg, 2, MachineId::M1);
        assert_eq!(ds.len(), 30);
        assert!(ds.plans.iter().all(|p| p.db_id == 2));
        assert!(ds.plans.iter().all(|p| p.latency_ms() > 0.0));
    }

    #[test]
    fn workload3_sets_have_configured_sizes() {
        let cfg = EvalConfig {
            wl3_train: 40,
            wl3_synthetic: 20,
            wl3_scale: 10,
            wl3_job_light: 12,
            ..EvalConfig::scaled(0.05)
        };
        let w3 = workload3(&cfg);
        assert_eq!(w3.train.len(), 40);
        assert_eq!(w3.synthetic.len(), 20);
        assert_eq!(w3.scale.len(), 10);
        assert_eq!(w3.job_light.len(), 12);
        assert!(w3.train.plans.iter().all(|p| p.db_id == 0));
    }
}
