//! Fig. 10: ablation of DACE's two structural components — tree-structured
//! attention (TA) and the loss adjuster (LA) / sub-plan learning (SP).

use std::fmt::Write as _;

use dace_catalog::suite::IMDB_LIKE_DB;
use dace_core::FeatureConfig;

use crate::models::{eval_dace, train_dace};

use super::Ctx;

pub(super) fn run(ctx: &Ctx) -> String {
    let wl3 = ctx.wl3();
    let train = ctx.suite_m1().exclude_db(IMDB_LIKE_DB);
    let epochs = ctx.cfg.dace_epochs;

    let variants: [(&str, f32, FeatureConfig); 4] = [
        ("DACE (α=0.5)", 0.5, FeatureConfig::default()),
        (
            "DACE w/o TA",
            0.5,
            FeatureConfig {
                disable_tree_attention: true,
                ..Default::default()
            },
        ),
        ("DACE w/o SP (α=0)", 0.0, FeatureConfig::default()),
        ("DACE w/o LA (α=1)", 1.0, FeatureConfig::default()),
    ];

    let mut out =
        String::from("Fig. 10 — ablation on workload 3 (trained on 19 DBs, median qerror).\n\n");
    let _ = writeln!(
        out,
        "| Variant            | Synthetic | Scale | JOB-light |"
    );
    let _ = writeln!(
        out,
        "|--------------------|-----------|-------|-----------|"
    );
    for (name, alpha, feats) in variants {
        let est = train_dace(&train, epochs, alpha, feats);
        let _ = writeln!(
            out,
            "| {:<18} | {:>9.2} | {:>5.2} | {:>9.2} |",
            name,
            eval_dace(&est, &wl3.synthetic).median,
            eval_dace(&est, &wl3.scale).median,
            eval_dace(&est, &wl3.job_light).median,
        );
    }
    out.push_str(
        "\nExpected shape: full DACE lowest everywhere; removing tree attention costs\n\
         ~15–20% median qerror; w/o LA (uniform sub-plan weights) is the worst variant.\n",
    );
    out
}
