//! Fig. 11: complex plans — qerror by node count for DACE vs DACE w/o LA.
//! With the loss adjuster, DACE's error stays flat as plans grow.

use std::fmt::Write as _;

use dace_catalog::suite::IMDB_LIKE_DB;
use dace_core::FeatureConfig;

use crate::models::{eval_dace, train_dace};

use super::{node_count_buckets, Ctx};

pub(super) fn run(ctx: &Ctx) -> String {
    let suite = ctx.suite_m1();
    let train = suite.exclude_db(IMDB_LIKE_DB);
    let test = suite.filter_db(IMDB_LIKE_DB);
    let epochs = ctx.cfg.dace_epochs;

    let dace = train_dace(&train, epochs, 0.5, FeatureConfig::default());
    let no_la = train_dace(&train, epochs, 1.0, FeatureConfig::default());

    let mut out = String::from(
        "Fig. 11 — mean qerror by plan node count on the held-out IMDB-like workload.\n\n",
    );
    let _ = writeln!(out, "| Nodes | Plans | DACE  | DACE w/o LA |");
    let _ = writeln!(out, "|-------|-------|-------|-------------|");
    for (label, bucket) in node_count_buckets(&test) {
        let d = eval_dace(&dace, &bucket);
        let n = eval_dace(&no_la, &bucket);
        let _ = writeln!(
            out,
            "| {label:>5} | {:>5} | {:>5.2} | {:>11.2} |",
            d.count, d.mean, n.mean
        );
    }
    out.push_str(
        "\nExpected shape: w/o LA the error grows with node count; full DACE is nearly\n\
         flat across plan sizes.\n",
    );
    out
}
