//! Fig. 12: DACE vs DACE-A (true cardinalities as features) by number of
//! training databases — how much better would DACE be with perfect
//! cardinality knowledge?

use std::fmt::Write as _;

use dace_core::FeatureConfig;
use dace_plan::Dataset;

use crate::models::{eval_dace, train_dace};

use super::fig8::{first_k_dbs, DB_COUNTS};
use super::Ctx;

pub(super) fn run(ctx: &Ctx) -> String {
    let suite = ctx.suite_m1();
    let wl3 = ctx.wl3();
    let epochs = ctx.cfg.dace_epochs;

    let mut out = String::from(
        "Fig. 12 — DACE vs DACE-A (actual cardinality features) by #training DBs.\n\n\
         Cells: median qerror on Synthetic / Scale / JOB-light.\n\n",
    );
    let _ = writeln!(out, "| #DBs | DACE               | DACE-A             |");
    let _ = writeln!(out, "|------|--------------------|--------------------|");
    for &k in &DB_COUNTS {
        let train = first_k_dbs(suite, k);
        let dace = train_dace(&train, epochs, 0.5, FeatureConfig::default());
        let dace_a = train_dace(
            &train,
            epochs,
            0.5,
            FeatureConfig {
                use_actual_cardinality: true,
                ..Default::default()
            },
        );
        let fmt3 = |f: &dyn Fn(&Dataset) -> f64| {
            format!(
                "{:.2} / {:.2} / {:.2}",
                f(&wl3.synthetic),
                f(&wl3.scale),
                f(&wl3.job_light)
            )
        };
        let d = fmt3(&|ds| eval_dace(&dace, ds).median);
        let a = fmt3(&|ds| eval_dace(&dace_a, ds).median);
        let _ = writeln!(out, "| {k:>4} | {d:<18} | {a:<18} |");
    }
    out.push_str(
        "\nExpected shape: DACE-A is better at small database counts (its \"general\n\
         knowledge\" is exact); DACE converges toward DACE-A by ~19 databases.\n\
         Note: DACE-A tests also featurize with actual cardinalities — unobtainable in\n\
         practice, which is the paper's point.\n",
    );
    out
}
