//! Fig. 4: Zero-Shot's mean qerror grows with the number of plan nodes —
//! the motivation for sub-plan learning.

use std::fmt::Write as _;

use dace_baselines::{CostEstimator, ZeroShot};
use dace_catalog::suite::IMDB_LIKE_DB;

use crate::metrics::QErrorStats;
use crate::models::eval_model;

use super::{node_count_buckets, Ctx};

pub(super) fn run(ctx: &Ctx) -> String {
    let suite = ctx.suite_m1();
    let train = suite.exclude_db(IMDB_LIKE_DB);
    let test = suite.filter_db(IMDB_LIKE_DB);

    let mut zs = ZeroShot::new(4);
    zs.epochs = ctx.cfg.baseline_epochs;
    zs.fit(&train);

    let mut out = String::from(
        "Fig. 4 — Zero-Shot qerror by plan node count (trained on 19 DBs, tested on IMDB-like)\n\n",
    );
    let _ = writeln!(out, "| Nodes | Plans | Mean qerror | Median |");
    let _ = writeln!(out, "|-------|-------|-------------|--------|");
    for (label, bucket) in node_count_buckets(&test) {
        let stats: QErrorStats = eval_model(&zs, &bucket);
        let _ = writeln!(
            out,
            "| {label:>5} | {:>5} | {:>11.2} | {:>6.2} |",
            stats.count, stats.mean, stats.median
        );
    }
    out.push_str("\nExpected shape: mean qerror increases with node count.\n");
    out
}
