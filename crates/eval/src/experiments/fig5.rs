//! Fig. 5: leave-one-out across-database accuracy on all 20 databases —
//! DACE vs Zero-Shot on workload 1 (M1), and DACE-LoRA on workload 2 (M2).

use std::fmt::Write as _;

use dace_baselines::{CostEstimator, ZeroShot};
use dace_catalog::suite_specs;
use dace_core::FeatureConfig;

use crate::models::{eval_dace, eval_model, train_dace};

use super::Ctx;

pub(super) fn run(ctx: &Ctx) -> String {
    let wl1 = ctx.suite_m1();
    let wl2 = ctx.suite_m2();

    let mut out = String::from(
        "Fig. 5 — Leave-one-out median qerror per database.\n\
         DACE & Zero-Shot: trained on the other 19 DBs (workload 1, M1).\n\
         DACE-LoRA: the workload-1 model LoRA-fine-tuned on the other 19 DBs of workload 2 (M2), tested on the held-out DB on M2.\n\n",
    );
    let _ = writeln!(
        out,
        "| Database             | Zero-Shot | DACE  | DACE-LoRA (wl2) |"
    );
    let _ = writeln!(
        out,
        "|----------------------|-----------|-------|-----------------|"
    );

    let mut dace_wins = 0usize;
    let mut dace_max: f64 = 0.0;
    let mut lora_max: f64 = 0.0;
    for spec in suite_specs() {
        let held = spec.db_id;
        let train1 = wl1.exclude_db(held);
        let test1 = wl1.filter_db(held);

        let mut zs = ZeroShot::new(held as u64 + 100);
        zs.epochs = ctx.cfg.baseline_epochs;
        zs.fit(&train1);
        let zs_stats = eval_model(&zs, &test1);

        let mut dace = train_dace(&train1, ctx.cfg.dace_epochs, 0.5, FeatureConfig::default());
        let dace_stats = eval_dace(&dace, &test1);

        // Across-more: fine-tune on workload 2 (M2 labels) of the same 19
        // training databases, test on the held-out database's M2 labels.
        let train2 = wl2.exclude_db(held);
        let test2 = wl2.filter_db(held);
        dace.fine_tune_lora(&train2, (ctx.cfg.dace_epochs / 2).max(2), 2e-3)
            .expect("workload 2 train split is non-empty");
        let lora_stats = eval_dace(&dace, &test2);

        if dace_stats.median <= zs_stats.median {
            dace_wins += 1;
        }
        dace_max = dace_max.max(dace_stats.median);
        lora_max = lora_max.max(lora_stats.median);
        let _ = writeln!(
            out,
            "| {:<20} | {:>9.2} | {:>5.2} | {:>15.2} |",
            spec.name, zs_stats.median, dace_stats.median, lora_stats.median
        );
    }
    let _ = writeln!(
        out,
        "\nDACE median ≤ Zero-Shot on {dace_wins}/20 databases; worst DACE median {dace_max:.2}; worst DACE-LoRA median {lora_max:.2}."
    );
    out.push_str("Expected shape: DACE beats Zero-Shot on most databases (paper: 16/20, all medians < 1.48); DACE-LoRA lowest overall (paper: < 1.27).\n");
    out
}
