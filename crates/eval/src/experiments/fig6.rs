//! Fig. 6: knowledge integration — MSCN and QueryFormer with and without
//! the pre-trained DACE encoder, on JOB-light.

use std::fmt::Write as _;

use dace_baselines::{CostEstimator, Mscn, QueryFormer};
use dace_catalog::suite::IMDB_LIKE_DB;
use dace_core::FeatureConfig;

use crate::metrics::QErrorStats;
use crate::models::{eval_model, train_dace};

use super::Ctx;

pub(super) fn run(ctx: &Ctx) -> String {
    let wl3 = ctx.wl3();
    let adm_train = ctx.suite_m1().exclude_db(IMDB_LIKE_DB);
    let epochs = ctx.cfg.baseline_epochs;

    // The pre-trained encoder (never saw the IMDB-like database).
    let dace = train_dace(
        &adm_train,
        ctx.cfg.dace_epochs,
        0.5,
        FeatureConfig::default(),
    );

    let mut mscn = Mscn::new(11);
    mscn.epochs = epochs;
    mscn.fit(&wl3.train);
    let mut dace_mscn = Mscn::with_encoder(11, dace.clone());
    dace_mscn.epochs = epochs;
    dace_mscn.fit(&wl3.train);

    let mut qf = QueryFormer::new(12);
    qf.epochs = epochs;
    qf.fit(&wl3.train);
    let mut dace_qf = QueryFormer::with_encoder(12, dace);
    dace_qf.epochs = epochs;
    dace_qf.fit(&wl3.train);

    let mut out = String::from(
        "Fig. 6 — JOB-light qerror with and without the DACE pre-trained encoder.\n\n",
    );
    let _ = writeln!(out, "{}", QErrorStats::table_header());
    let models: [&dyn CostEstimator; 4] = [&mscn, &dace_mscn, &qf, &dace_qf];
    for m in models {
        let _ = writeln!(out, "{}", eval_model(m, &wl3.job_light).table_row(m.name()));
    }
    out.push_str(
        "\nExpected shape: the DACE-augmented variants dominate, with the max qerror\n\
         reduced by large factors (paper: 11× for MSCN, 7× for QueryFormer).\n",
    );
    out
}
