//! Fig. 7: robustness under data drift — the TPCH-like database regenerated
//! at growing scale factors. ADMs never saw the TPCH-like database; WDMs
//! trained on it at scale 1× only.

use std::fmt::Write as _;

use dace_baselines::{CostEstimator, Mscn, PgLinear, QueryFormer, ZeroShot};
use dace_catalog::suite::TPCH_LIKE_DB;
use dace_catalog::{generate_database, suite_specs};
use dace_core::FeatureConfig;
use dace_engine::collect_dataset;
use dace_plan::MachineId;
use dace_query::ComplexWorkloadGen;

use crate::models::{eval_dace, eval_model, train_dace};

use super::Ctx;

/// Scale multipliers standing in for the paper's 1 GB → 100 GB sweep.
const DRIFT_SCALES: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

pub(super) fn run(ctx: &Ctx) -> String {
    let cfg = &ctx.cfg;
    let spec = &suite_specs()[TPCH_LIKE_DB as usize];

    // ADMs: trained on the other 19 databases (workload 1).
    let adm_train = ctx.suite_m1().exclude_db(TPCH_LIKE_DB);
    let dace = train_dace(&adm_train, cfg.dace_epochs, 0.5, FeatureConfig::default());
    let mut zs = ZeroShot::new(31);
    zs.epochs = cfg.baseline_epochs;
    zs.fit(&adm_train);

    // WDMs: trained on TPCH-like at base scale.
    let base_db = generate_database(spec, cfg.db_scale);
    let train_q = ComplexWorkloadGen::default().generate(&base_db, cfg.queries_per_db * 2);
    let wdm_train = collect_dataset(&base_db, &train_q, MachineId::M1);
    let mut pg = PgLinear::new();
    pg.fit(&wdm_train);
    let mut mscn = Mscn::new(32);
    mscn.epochs = cfg.baseline_epochs;
    mscn.fit(&wdm_train);
    let mut qf = QueryFormer::new(33);
    qf.epochs = cfg.baseline_epochs;
    qf.fit(&wdm_train);

    let mut out = String::from(
        "Fig. 7 — data drift: TPCH-like regenerated at growing scale, no retraining.\n\
         WDMs trained at 1×; ADMs trained without the TPCH-like database.\n\n\
         Median qerror (p95 in parentheses):\n\n",
    );
    let _ = writeln!(
        out,
        "| Scale | PostgreSQL | MSCN | QueryFormer | Zero-Shot | DACE |"
    );
    let _ = writeln!(
        out,
        "|-------|------------|------|-------------|-----------|------|"
    );
    for &s in &DRIFT_SCALES {
        let db = generate_database(spec, cfg.db_scale * s);
        let gen = ComplexWorkloadGen {
            seed: 0xD21F7 + s as u64,
            ..Default::default()
        };
        let queries = gen.generate(&db, (cfg.queries_per_db / 2).max(30));
        let test = collect_dataset(&db, &queries, MachineId::M1);
        let cell = |st: crate::metrics::QErrorStats| format!("{:.2} ({:.1})", st.median, st.p95);
        let _ = writeln!(
            out,
            "| {:>4}x | {:>10} | {:>4} | {:>11} | {:>9} | {:>4} |",
            s,
            cell(eval_model(&pg, &test)),
            cell(eval_model(&mscn, &test)),
            cell(eval_model(&qf, &test)),
            cell(eval_model(&zs, &test)),
            cell(eval_dace(&dace, &test)),
        );
    }
    out.push_str(
        "\nExpected shape: WDM error balloons with scale (falling behind PostgreSQL at the\n\
         largest drift); DACE degrades least and stays best throughout (paper: ≤5%\n\
         median / ≤29% p95 degradation for DACE vs 41%/66% for Zero-Shot).\n",
    );
    out
}
