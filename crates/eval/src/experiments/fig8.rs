//! Fig. 8: accuracy as a function of the number of training databases —
//! DACE plateaus with 3–5 databases, Zero-Shot needs 10–15.

use std::fmt::Write as _;

use dace_baselines::{CostEstimator, ZeroShot};
use dace_catalog::suite::IMDB_LIKE_DB;
use dace_core::FeatureConfig;
use dace_plan::Dataset;

use crate::models::{eval_dace, eval_model, train_dace};

use super::Ctx;

/// Training-database counts swept (the paper's 1, 3, 5, 10, 15, 19).
pub(crate) const DB_COUNTS: [usize; 6] = [1, 3, 5, 10, 15, 19];

/// The workload-1 plans of the first `k` non-IMDB databases.
pub(crate) fn first_k_dbs(suite: &Dataset, k: usize) -> Dataset {
    let ids: Vec<u16> = (0..20u16).filter(|&d| d != IMDB_LIKE_DB).take(k).collect();
    Dataset::from_plans(
        suite
            .plans
            .iter()
            .filter(|p| ids.contains(&p.db_id))
            .cloned()
            .collect(),
    )
}

pub(super) fn run(ctx: &Ctx) -> String {
    let suite = ctx.suite_m1();
    let wl3 = ctx.wl3();

    let mut out = String::from(
        "Fig. 8 — median qerror by number of training databases (tested on workload 3).\n\n\
         Cells: Synthetic / Scale / JOB-light.\n\n",
    );
    let _ = writeln!(out, "| #DBs | Zero-Shot          | DACE               |");
    let _ = writeln!(out, "|------|--------------------|--------------------|");
    for &k in &DB_COUNTS {
        let train = first_k_dbs(suite, k);
        let mut zs = ZeroShot::new(41 + k as u64);
        zs.epochs = ctx.cfg.baseline_epochs;
        zs.fit(&train);
        let dace = train_dace(&train, ctx.cfg.dace_epochs, 0.5, FeatureConfig::default());

        let fmt3 = |f: &dyn Fn(&Dataset) -> f64| {
            format!(
                "{:.2} / {:.2} / {:.2}",
                f(&wl3.synthetic),
                f(&wl3.scale),
                f(&wl3.job_light)
            )
        };
        let zs_cells = fmt3(&|d| eval_model(&zs, d).median);
        let dace_cells = fmt3(&|d| eval_dace(&dace, d).median);
        let _ = writeln!(out, "| {k:>4} | {zs_cells:<18} | {dace_cells:<18} |");
    }
    out.push_str(
        "\nExpected shape: DACE reaches near-final accuracy with 3–5 training databases;\n\
         Zero-Shot keeps improving until 10–15.\n",
    );
    out
}
