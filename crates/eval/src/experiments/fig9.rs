//! Fig. 9: cold start — MSCN vs DACE-MSCN by number of training queries.
//! The DACE encoder lets MSCN beat the DBMS baseline from 100 queries on.

use std::fmt::Write as _;

use dace_baselines::{CostEstimator, Mscn, PgLinear};
use dace_catalog::suite::IMDB_LIKE_DB;
use dace_core::FeatureConfig;
use dace_plan::Dataset;

use crate::models::{eval_model, train_dace};

use super::Ctx;

pub(super) fn run(ctx: &Ctx) -> String {
    let wl3 = ctx.wl3();
    let adm_train = ctx.suite_m1().exclude_db(IMDB_LIKE_DB);
    let dace = train_dace(
        &adm_train,
        ctx.cfg.dace_epochs,
        0.5,
        FeatureConfig::default(),
    );

    // PostgreSQL reference line (fit on the full training set — the DBMS is
    // assumed calibrated).
    let mut pg = PgLinear::new();
    pg.fit(&wl3.train);
    let pg_stats = eval_model(&pg, &wl3.job_light);

    // Query-count sweep (the paper's 100 → 100,000, truncated to the
    // collected training set).
    let sweep: Vec<usize> = [100usize, 300, 1_000, 3_000, 10_000, 100_000]
        .iter()
        .copied()
        .filter(|&n| n <= wl3.train.len())
        .collect();
    let sweep = if sweep.is_empty() {
        vec![wl3.train.len()]
    } else {
        sweep
    };

    let mut out =
        String::from("Fig. 9 — JOB-light qerror by number of training queries (median, p95).\n\n");
    let _ = writeln!(
        out,
        "PostgreSQL reference: median {:.2}, p95 {:.2}\n",
        pg_stats.median, pg_stats.p95
    );
    let _ = writeln!(out, "| #Queries | MSCN          | DACE-MSCN     |");
    let _ = writeln!(out, "|----------|---------------|---------------|");
    for &n in &sweep {
        let train = Dataset::from_plans(wl3.train.plans[..n].to_vec());
        let mut mscn = Mscn::new(51);
        mscn.epochs = ctx.cfg.baseline_epochs;
        mscn.fit(&train);
        let m = eval_model(&mscn, &wl3.job_light);
        let mut dm = Mscn::with_encoder(51, dace.clone());
        dm.epochs = ctx.cfg.baseline_epochs;
        dm.fit(&train);
        let d = eval_model(&dm, &wl3.job_light);
        let _ = writeln!(
            out,
            "| {n:>8} | {:>5.2} / {:>5.1} | {:>5.2} / {:>5.1} |",
            m.median, m.p95, d.median, d.p95
        );
    }
    out.push_str(
        "\nExpected shape: plain MSCN needs thousands of queries to reach the PostgreSQL\n\
         reference; DACE-MSCN beats it already at the smallest budget and dominates MSCN\n\
         at every point (the cold-start fix).\n",
    );
    out
}
