//! One runner per table/figure of the paper's evaluation. See DESIGN.md §4
//! for the experiment index and the expected result shapes.

use std::cell::OnceCell;

use dace_plan::{Dataset, MachineId};

use crate::data::{collect_suite, workload3, EvalConfig, Workload3};

mod fig10;
mod fig11;
mod fig12;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
pub mod plansearch;
mod table1;
mod table2;

/// Shared, lazily-collected datasets for one harness invocation, so running
/// `all` collects each expensive corpus exactly once.
pub struct Ctx {
    /// Scaling configuration.
    pub cfg: EvalConfig,
    suite_m1: OnceCell<Dataset>,
    suite_m2: OnceCell<Dataset>,
    wl3: OnceCell<Workload3>,
}

impl Ctx {
    /// Fresh context.
    pub fn new(cfg: EvalConfig) -> Ctx {
        Ctx {
            cfg,
            suite_m1: OnceCell::new(),
            suite_m2: OnceCell::new(),
            wl3: OnceCell::new(),
        }
    }

    /// Workload 1: the complex workload over all 20 databases on M1.
    pub fn suite_m1(&self) -> &Dataset {
        self.suite_m1
            .get_or_init(|| collect_suite(&self.cfg, MachineId::M1))
    }

    /// Workload 2: the same query statements executed on M2.
    pub fn suite_m2(&self) -> &Dataset {
        self.suite_m2
            .get_or_init(|| collect_suite(&self.cfg, MachineId::M2))
    }

    /// Workload 3: the MSCN benchmark on the IMDB-like database.
    pub fn wl3(&self) -> &Workload3 {
        self.wl3.get_or_init(|| workload3(&self.cfg))
    }
}

/// All experiments in paper order: `(id, description, runner)`.
pub type Runner = fn(&Ctx) -> String;

/// Registry of every reproducible table and figure.
pub const EXPERIMENTS: &[(&str, &str, Runner)] = &[
    (
        "fig4",
        "Zero-Shot qerror grows with plan node count (motivation)",
        fig4::run,
    ),
    (
        "fig5",
        "Per-database median qerror: DACE vs Zero-Shot vs DACE-LoRA",
        fig5::run,
    ),
    (
        "table1",
        "Workload-3 qerror percentiles for all models",
        table1::run,
    ),
    (
        "fig6",
        "MSCN/QueryFormer with and without the DACE encoder (JOB-light)",
        fig6::run,
    ),
    (
        "table2",
        "Model size, training and inference efficiency",
        table2::run,
    ),
    ("fig7", "Data drift on the TPCH-like database", fig7::run),
    (
        "fig8",
        "Accuracy by number of training databases (DACE vs Zero-Shot)",
        fig8::run,
    ),
    (
        "fig9",
        "MSCN vs DACE-MSCN by number of training queries",
        fig9::run,
    ),
    (
        "fig10",
        "Ablation: tree attention and loss-adjuster variants",
        fig10::run,
    ),
    (
        "fig11",
        "qerror by plan node count: DACE vs DACE w/o LA",
        fig11::run,
    ),
    (
        "fig12",
        "DACE vs DACE-A (actual cardinalities) by training databases",
        fig12::run,
    ),
    (
        "plansearch",
        "Learned-cost plan search: executed latency of DACE-picked vs analytic plans",
        plansearch::run,
    ),
];

/// Run one experiment by id.
pub fn run_experiment(id: &str, ctx: &Ctx) -> Option<String> {
    EXPERIMENTS
        .iter()
        .find(|(name, _, _)| *name == id)
        .map(|(_, _, runner)| runner(ctx))
}

/// Bucket plans by node count; returns `(label, plans)` per bucket.
pub(crate) fn node_count_buckets(ds: &Dataset) -> Vec<(String, Dataset)> {
    let edges: [(usize, usize); 5] = [(1, 4), (5, 8), (9, 12), (13, 16), (17, usize::MAX)];
    edges
        .iter()
        .map(|&(lo, hi)| {
            let label = if hi == usize::MAX {
                format!("{lo}+")
            } else {
                format!("{lo}-{hi}")
            };
            let plans: Vec<_> = ds
                .plans
                .iter()
                .filter(|p| {
                    let n = p.tree.len();
                    n >= lo && n <= hi
                })
                .cloned()
                .collect();
            (label, Dataset::from_plans(plans))
        })
        .filter(|(_, d)| !d.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _, _)| *id).collect();
        for expected in [
            "fig4",
            "fig5",
            "table1",
            "fig6",
            "table2",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "plansearch",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn unknown_experiment_is_none() {
        let ctx = Ctx::new(EvalConfig::scaled(0.05));
        assert!(run_experiment("fig99", &ctx).is_none());
    }
}
