//! End-to-end plan-quality lift from putting DACE inside the optimizer.
//!
//! For every database of the suite, a fresh evaluation workload (a seed the
//! training collection never saw) is planned three ways — the analytic cost
//! model's argmin, [`LearnedScorer`] (batched DACE inference at every
//! decision level), and [`HybridScorer`] (model only where the analytic
//! model already says the decision is expensive) — and every distinct pick
//! is *executed* under the M1 machine profile with the same per-query seed,
//! so the comparison is total executed latency, not predicted latency.
//!
//! Alongside plan quality the run reports the plumbing the search subsystem
//! exists for: sub-plan memo hit-rate (shared sub-trees scored once),
//! batched-scoring throughput (sub-plans per second through the model), and
//! cross-machine routing quality (the [`CrossMachineRouter`]'s machine pick
//! vs always-M1 / always-M2 / a latency oracle).

use std::fmt::Write as _;

use dace_catalog::suite_specs;
use dace_core::{TrainConfig, Trainer};
use dace_engine::{
    execute, plan, CostModel, CrossMachineRouter, ExplorationScorer, HybridScorer, LearnedScorer,
    MachineProfile, PhysPlan, SearchSession,
};
use dace_plan::{Dataset, LabeledPlan, MachineId};
use dace_query::ComplexWorkloadGen;
use dace_serve::ModelRegistry;
use serde::Serialize;

use crate::data::{collect_db, suite_db, EvalConfig};

use super::Ctx;

/// Workload-generator seed for the evaluation queries — deliberately not the
/// training collection's default seed, so picked plans are judged on queries
/// the model never saw labeled.
pub const EVAL_SEED: u64 = 0x5EED_CAFE;

/// Knobs for one plan-search measurement.
#[derive(Debug, Clone)]
pub struct PlanSearchOptions {
    /// Suite databases to plan against.
    pub db_ids: Vec<u16>,
    /// Evaluation queries generated per database.
    pub eval_queries_per_db: usize,
    /// Sub-plan score memo capacity (entries).
    pub memo_capacity: usize,
    /// Base-model training epochs.
    pub epochs: usize,
    /// LoRA fine-tuning epochs for the M2-tuned model.
    pub tune_epochs: usize,
    /// Log-normal sigma of the exploration policy labeling the training
    /// workload a second time under perturbed analytic cost (0 disables).
    ///
    /// Without exploration the corpus only contains analytic-picked plans,
    /// and the learned search wanders into candidates whose latency the
    /// model has never seen a label for — the off-policy gap that makes
    /// DACE-picked plans *worse* than analytic picks at scale.
    pub explore_sigma: f64,
}

impl PlanSearchOptions {
    /// The full reproduction: every suite database, a quarter of the
    /// training workload size as fresh evaluation queries.
    pub fn full(cfg: &EvalConfig) -> PlanSearchOptions {
        PlanSearchOptions {
            db_ids: suite_specs().iter().map(|s| s.db_id).collect(),
            eval_queries_per_db: (cfg.queries_per_db / 4).max(8),
            memo_capacity: 1 << 18,
            epochs: cfg.dace_epochs,
            tune_epochs: (cfg.dace_epochs / 3).max(4),
            explore_sigma: 0.6,
        }
    }
}

/// Label the training workload of `db_id` a second time under the
/// exploration policy: plan with log-normally perturbed analytic cost,
/// execute the pick, and synthesize its latency with the same per-query
/// seeds label collection uses.
fn exploration_corpus(cfg: &EvalConfig, db_id: u16, machine: MachineId, sigma: f64) -> Dataset {
    let db = suite_db(cfg, db_id);
    let queries = ComplexWorkloadGen::default().generate(&db, cfg.queries_per_db);
    let cm = CostModel::default();
    let session = SearchSession::new(&db, &cm);
    let mut scorer = ExplorationScorer::new(0xE1_0000 ^ u64::from(db_id), sigma);
    let profile = MachineProfile::for_machine(machine);
    let plans = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let (mut p, _) = session
                .plan(q, &mut scorer)
                .expect("training workload queries must plan");
            execute(&db, &mut p);
            profile.apply(&db, &mut p, i as u64);
            LabeledPlan {
                tree: p.to_plan_tree(),
                db_id,
                machine,
            }
        })
        .collect();
    Dataset::from_plans(plans)
}

/// Per-database executed-latency totals.
#[derive(Debug, Serialize)]
pub struct DbOutcome {
    /// Suite database id.
    pub db_id: u16,
    /// Evaluation queries planned and executed.
    pub queries: usize,
    /// Total executed latency of analytic-picked plans (ms, M1).
    pub analytic_ms: f64,
    /// Total executed latency of DACE-picked plans (ms, M1).
    pub learned_ms: f64,
    /// Total executed latency of hybrid-picked plans (ms, M1).
    pub hybrid_ms: f64,
    /// Queries where the learned pick differs from the analytic pick.
    pub learned_changed: usize,
    /// Queries where the hybrid pick differs from the analytic pick.
    pub hybrid_changed: usize,
    /// Hybrid routing threshold derived from this database's analytic cost
    /// distribution (cost units).
    pub hybrid_threshold: f64,
}

/// Memo and batched-scoring counters accumulated over the whole run.
#[derive(Debug, Serialize)]
pub struct ScoringStats {
    /// Memo lookups served without a model call.
    pub memo_hits: u64,
    /// Memo lookups that needed a fresh score.
    pub memo_misses: u64,
    /// Fraction of lookups served from the memo.
    pub memo_hit_rate: f64,
    /// Batch-local duplicates resolved without a lookup or model call.
    pub dedup_hits: u64,
    /// Distinct sub-plans pushed through the model.
    pub plans_scored: u64,
    /// Forward batches issued (one per decision level with candidates).
    pub score_batches: u64,
    /// Sub-plan scores per second of scoring wall time.
    pub scores_per_sec: f64,
    /// Wall time inside the scoring path (µs).
    pub scoring_wall_us: u64,
    /// Time inside the tree-masked attention layer (µs).
    pub attention_us: u64,
    /// Time inside the prediction MLP (µs).
    pub mlp_us: u64,
}

/// Cross-machine routing outcome over the learned-picked plans.
#[derive(Debug, Serialize)]
pub struct RoutingStats {
    /// Plans run through the router (one per evaluation query).
    pub routed_queries: usize,
    /// Decisions that kept the default machine (M1).
    pub routed_to_m1: usize,
    /// Decisions that moved the query to M2.
    pub routed_to_m2: usize,
    /// Decisions matching the a-posteriori cheaper machine.
    pub routed_correct: usize,
    /// Total executed latency when each query runs where routed (ms).
    pub routed_ms: f64,
    /// Total executed latency running everything on M1 (ms).
    pub always_m1_ms: f64,
    /// Total executed latency running everything on M2 (ms).
    pub always_m2_ms: f64,
    /// Total executed latency of an oracle picking the cheaper machine (ms).
    pub oracle_ms: f64,
}

/// One full plan-search measurement.
#[derive(Debug, Serialize)]
pub struct PlanSearchReport {
    /// Databases measured.
    pub dbs: usize,
    /// Total evaluation queries across all databases.
    pub queries: usize,
    /// Labeled plans in the M1 training corpus.
    pub train_plans: usize,
    /// Base-model training epochs.
    pub epochs: usize,
    /// Per-database outcomes.
    pub per_db: Vec<DbOutcome>,
    /// Suite-total executed latency of analytic-picked plans (ms).
    pub analytic_total_ms: f64,
    /// Suite-total executed latency of DACE-picked plans (ms).
    pub learned_total_ms: f64,
    /// Suite-total executed latency of hybrid-picked plans (ms).
    pub hybrid_total_ms: f64,
    /// `learned_total_ms / analytic_total_ms` (< 1 means DACE picks win).
    pub learned_ratio: f64,
    /// `hybrid_total_ms / analytic_total_ms`.
    pub hybrid_ratio: f64,
    /// Queries where the learned pick differs from the analytic pick.
    pub learned_changed: usize,
    /// Queries where the hybrid pick differs from the analytic pick.
    pub hybrid_changed: usize,
    /// Decision groups the hybrid scorer sent to the model.
    pub hybrid_learned_groups: u64,
    /// Decision groups the hybrid scorer left analytic.
    pub hybrid_analytic_groups: u64,
    /// Memo and throughput counters (learned scorer).
    pub scoring: ScoringStats,
    /// Cross-machine routing outcome.
    pub routing: RoutingStats,
}

/// Execute a picked plan and synthesize its latency under `profile`.
///
/// `execute` fills actual cardinalities once; the profile converts them to
/// wall-clock ms. The same per-query seed is used for every strategy's pick
/// of the same query, so latency noise never favors one scorer.
fn executed_ms(
    db: &dace_catalog::Database,
    picked: &PhysPlan,
    profiles: &[&MachineProfile],
    seed: u64,
) -> Vec<f64> {
    let mut p = picked.clone();
    execute(db, &mut p);
    profiles
        .iter()
        .map(|profile| {
            profile.apply(db, &mut p, seed);
            p.actual_ms
        })
        .collect()
}

/// Median of a slice (not necessarily sorted).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    if v.is_empty() {
        return 0.0;
    }
    v[v.len() / 2]
}

/// Run the measurement: train on `train_m1`/`train_m2`, then plan, execute
/// and route the evaluation workload of every database in `opts.db_ids`.
pub fn measure(
    cfg: &EvalConfig,
    opts: &PlanSearchOptions,
    train_m1: &Dataset,
    train_m2: &Dataset,
) -> PlanSearchReport {
    let (mut corpus_m1, mut corpus_m2) = (train_m1.clone(), train_m2.clone());
    if opts.explore_sigma > 0.0 {
        for &db_id in &opts.db_ids {
            corpus_m1.extend(exploration_corpus(
                cfg,
                db_id,
                MachineId::M1,
                opts.explore_sigma,
            ));
            corpus_m2.extend(exploration_corpus(
                cfg,
                db_id,
                MachineId::M2,
                opts.explore_sigma,
            ));
        }
    }
    let base = Trainer::new(TrainConfig {
        epochs: opts.epochs,
        ..TrainConfig::default()
    })
    .fit(&corpus_m1)
    .expect("plan-search training corpus is non-empty");
    let m2_est = base
        .fine_tuned_clone(&corpus_m2, opts.tune_epochs, 2e-3)
        .expect("plan-search M2 corpus is non-empty");
    let registry = ModelRegistry::new(base.clone());
    registry
        .install_estimator("m2", m2_est)
        .expect("m2 model installs");
    let router = CrossMachineRouter::new(&registry, None, Some("m2".to_string()));

    let cm = CostModel::default();
    let m1 = MachineProfile::m1();
    let m2 = MachineProfile::m2();
    let mut learned = LearnedScorer::new(&base, opts.memo_capacity);

    let mut per_db = Vec::with_capacity(opts.db_ids.len());
    let mut routing = RoutingStats {
        routed_queries: 0,
        routed_to_m1: 0,
        routed_to_m2: 0,
        routed_correct: 0,
        routed_ms: 0.0,
        always_m1_ms: 0.0,
        always_m2_ms: 0.0,
        oracle_ms: 0.0,
    };
    let mut score_batches = 0u64;
    let (mut hybrid_learned_groups, mut hybrid_analytic_groups) = (0u64, 0u64);

    for &db_id in &opts.db_ids {
        let db = suite_db(cfg, db_id);
        let gen = ComplexWorkloadGen {
            seed: EVAL_SEED ^ u64::from(db_id),
            ..ComplexWorkloadGen::default()
        };
        let queries = gen.generate(&db, opts.eval_queries_per_db);
        let session = SearchSession::new(&db, &cm);

        // Analytic pre-pass: the baseline picks, and the cost distribution
        // the hybrid threshold is derived from (half the median root cost —
        // scan-level decisions stay analytic, join-level ones go learned).
        let analytic_picks: Vec<PhysPlan> = queries
            .iter()
            .map(|q| plan(&db, q, &cm).expect("generated eval queries must plan"))
            .collect();
        let roots: Vec<f64> = analytic_picks.iter().map(|p| p.est_cost).collect();
        let hybrid_threshold = 0.5 * median(&roots);
        let mut hybrid = HybridScorer::new(&base, opts.memo_capacity, hybrid_threshold);

        let mut outcome = DbOutcome {
            db_id,
            queries: queries.len(),
            analytic_ms: 0.0,
            learned_ms: 0.0,
            hybrid_ms: 0.0,
            learned_changed: 0,
            hybrid_changed: 0,
            hybrid_threshold,
        };
        for (i, q) in queries.iter().enumerate() {
            let seed = (u64::from(db_id) << 32) | i as u64;
            let a = &analytic_picks[i];
            let (l, l_report) = session.plan(q, &mut learned).expect("eval query plans");
            let (h, _) = session.plan(q, &mut hybrid).expect("eval query plans");
            score_batches += l_report.score_batches as u64;

            // Execute each *distinct* pick once; identical plans execute
            // identically under the shared seed.
            let a_ms = executed_ms(&db, a, &[&m1], seed)[0];
            let (l_m1, l_m2) = if l == *a {
                let both = executed_ms(&db, a, &[&m2], seed);
                (a_ms, both[0])
            } else {
                outcome.learned_changed += 1;
                let both = executed_ms(&db, &l, &[&m1, &m2], seed);
                (both[0], both[1])
            };
            let h_ms = if h == l {
                if h != *a {
                    outcome.hybrid_changed += 1;
                }
                l_m1
            } else if h == *a {
                a_ms
            } else {
                outcome.hybrid_changed += 1;
                executed_ms(&db, &h, &[&m1], seed)[0]
            };
            outcome.analytic_ms += a_ms;
            outcome.learned_ms += l_m1;
            outcome.hybrid_ms += h_ms;

            // Route the learned pick across machines and score the decision
            // against the executed ground truth on both.
            let decision = router.route(&l).expect("registry resolves both machines");
            let routed_ms = match decision.machine {
                MachineId::M1 => {
                    routing.routed_to_m1 += 1;
                    l_m1
                }
                MachineId::M2 => {
                    routing.routed_to_m2 += 1;
                    l_m2
                }
            };
            let cheaper = if l_m1 <= l_m2 {
                MachineId::M1
            } else {
                MachineId::M2
            };
            routing.routed_queries += 1;
            routing.routed_correct += usize::from(decision.machine == cheaper);
            routing.routed_ms += routed_ms;
            routing.always_m1_ms += l_m1;
            routing.always_m2_ms += l_m2;
            routing.oracle_ms += l_m1.min(l_m2);
        }
        hybrid_learned_groups += hybrid.learned_groups();
        hybrid_analytic_groups += hybrid.analytic_groups();
        per_db.push(outcome);
    }

    let total = |f: fn(&DbOutcome) -> f64| per_db.iter().map(f).sum::<f64>();
    let analytic_total_ms = total(|o| o.analytic_ms);
    let learned_total_ms = total(|o| o.learned_ms);
    let hybrid_total_ms = total(|o| o.hybrid_ms);
    let timings = learned.session().forward_timings();
    PlanSearchReport {
        dbs: per_db.len(),
        queries: per_db.iter().map(|o| o.queries).sum(),
        train_plans: corpus_m1.len(),
        epochs: opts.epochs,
        analytic_total_ms,
        learned_total_ms,
        hybrid_total_ms,
        learned_ratio: learned_total_ms / analytic_total_ms,
        hybrid_ratio: hybrid_total_ms / analytic_total_ms,
        learned_changed: per_db.iter().map(|o| o.learned_changed).sum(),
        hybrid_changed: per_db.iter().map(|o| o.hybrid_changed).sum(),
        hybrid_learned_groups,
        hybrid_analytic_groups,
        scoring: ScoringStats {
            memo_hits: learned.memo().hits(),
            memo_misses: learned.memo().misses(),
            memo_hit_rate: learned.memo().hit_rate(),
            dedup_hits: learned.dedup_hits(),
            plans_scored: learned.session().plans_scored(),
            score_batches,
            scores_per_sec: learned.session().scores_per_sec(),
            scoring_wall_us: learned.session().wall_us(),
            attention_us: timings.attention_us,
            mlp_us: timings.mlp_us,
        },
        routing,
        per_db,
    }
}

/// Render the report as the `results/plansearch.md` body.
pub fn render(report: &PlanSearchReport) -> String {
    let mut out = String::from(
        "Plan search — end-to-end executed latency of DACE-picked vs \
         analytic-picked plans.\n\n",
    );
    let _ = writeln!(
        out,
        "{} databases × {} eval queries (fresh seed {:#x}), {} training plans, {} epochs.\n",
        report.dbs,
        report.queries / report.dbs.max(1),
        EVAL_SEED,
        report.train_plans,
        report.epochs
    );
    let _ = writeln!(
        out,
        "| {:<5} | {:>7} | {:>12} | {:>12} | {:>12} | {:>9} | {:>9} |",
        "db", "queries", "analytic ms", "DACE ms", "hybrid ms", "Δ learned", "Δ hybrid"
    );
    let _ = writeln!(
        out,
        "|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(7),
        "-".repeat(9),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(11),
        "-".repeat(11)
    );
    for o in &report.per_db {
        let _ = writeln!(
            out,
            "| {:<5} | {:>7} | {:>12.1} | {:>12.1} | {:>12.1} | {:>9} | {:>9} |",
            o.db_id,
            o.queries,
            o.analytic_ms,
            o.learned_ms,
            o.hybrid_ms,
            o.learned_changed,
            o.hybrid_changed
        );
    }
    let _ = writeln!(
        out,
        "\nTotals: analytic {:.1} ms, DACE {:.1} ms ({:.3}× analytic), hybrid {:.1} ms \
         ({:.3}×); learned pick differs on {}/{} queries.",
        report.analytic_total_ms,
        report.learned_total_ms,
        report.learned_ratio,
        report.hybrid_total_ms,
        report.hybrid_ratio,
        report.learned_changed,
        report.queries
    );
    let s = &report.scoring;
    let _ = writeln!(
        out,
        "\nMemo: {:.1}% hit rate ({} hits / {} misses, {} batch-local dupes); \
         {} distinct sub-plans scored in {} level batches at {:.0} sub-plans/s \
         (attention {} µs, MLP {} µs).",
        100.0 * s.memo_hit_rate,
        s.memo_hits,
        s.memo_misses,
        s.dedup_hits,
        s.plans_scored,
        s.score_batches,
        s.scores_per_sec,
        s.attention_us,
        s.mlp_us
    );
    let _ = writeln!(
        out,
        "\nHybrid: {} decision groups to the model, {} left analytic \
         (per-db threshold = half the median root cost).",
        report.hybrid_learned_groups, report.hybrid_analytic_groups
    );
    let r = &report.routing;
    let _ = writeln!(
        out,
        "\nRouting ({} queries): {} → M1, {} → M2, {:.1}% agree with the executed \
         oracle. Totals: routed {:.1} ms vs always-M1 {:.1} ms, always-M2 {:.1} ms, \
         oracle {:.1} ms.",
        r.routed_queries,
        r.routed_to_m1,
        r.routed_to_m2,
        100.0 * r.routed_correct as f64 / r.routed_queries.max(1) as f64,
        r.routed_ms,
        r.always_m1_ms,
        r.always_m2_ms,
        r.oracle_ms
    );
    out
}

pub(super) fn run(ctx: &Ctx) -> String {
    let opts = PlanSearchOptions::full(&ctx.cfg);
    let report = measure(&ctx.cfg, &opts, ctx.suite_m1(), ctx.suite_m2());
    render(&report)
}

/// Smoke-sized measurement for the CI gate: a handful of databases, the
/// training corpus collected inline.
pub fn smoke(cfg: &EvalConfig, db_ids: &[u16], epochs: usize) -> PlanSearchReport {
    let mut train_m1 = Dataset::new();
    let mut train_m2 = Dataset::new();
    for &db_id in db_ids {
        train_m1.extend(collect_db(cfg, db_id, MachineId::M1));
        train_m2.extend(collect_db(cfg, db_id, MachineId::M2));
    }
    let opts = PlanSearchOptions {
        db_ids: db_ids.to_vec(),
        eval_queries_per_db: (cfg.queries_per_db / 2).max(8),
        memo_capacity: 1 << 16,
        epochs,
        tune_epochs: (epochs / 2).max(2),
        explore_sigma: 0.6,
    };
    measure(cfg, &opts, &train_m1, &train_m2)
}
