//! Table I: qerror percentiles on workload 3 (Synthetic / Scale / JOB-light)
//! for every model. WDMs train on the IMDB-like workload-3 training set;
//! DACE and Zero-Shot never see the IMDB-like database.

use std::fmt::Write as _;

use dace_baselines::{CostEstimator, Mscn, PgLinear, QppNet, QueryFormer, TPool, ZeroShot};
use dace_catalog::suite::IMDB_LIKE_DB;
use dace_core::FeatureConfig;

use crate::metrics::QErrorStats;
use crate::models::{eval_dace, eval_model, train_dace};

use super::Ctx;

pub(super) fn run(ctx: &Ctx) -> String {
    let wl3 = ctx.wl3();
    let adm_train = ctx.suite_m1().exclude_db(IMDB_LIKE_DB);
    let epochs = ctx.cfg.baseline_epochs;

    // Within-database models train on workload 3.
    let mut pg = PgLinear::new();
    pg.fit(&wl3.train);
    let mut mscn = Mscn::new(1);
    mscn.epochs = epochs;
    mscn.fit(&wl3.train);
    let mut qpp = QppNet::new(2);
    qpp.epochs = epochs;
    qpp.fit(&wl3.train);
    let mut tpool = TPool::new(3);
    tpool.epochs = epochs;
    tpool.fit(&wl3.train);
    let mut qf = QueryFormer::new(4);
    qf.epochs = epochs;
    qf.fit(&wl3.train);

    // Across-database models train on the other 19 databases.
    let mut zs = ZeroShot::new(5);
    zs.epochs = epochs;
    zs.fit(&adm_train);
    let dace = train_dace(
        &adm_train,
        ctx.cfg.dace_epochs,
        0.5,
        FeatureConfig::default(),
    );

    // DACE-LoRA: adapt the pre-trained DACE to workload 3 by training only
    // the adapters (the paper's instance-optimization path).
    let mut dace_lora = dace.clone();
    dace_lora
        .fine_tune_lora(&wl3.train, (ctx.cfg.dace_epochs / 2).max(2), 2e-3)
        .expect("workload 3 train split is non-empty");

    let mut out = String::from(
        "Table I — qerror on workload 3. DACE & Zero-Shot untrained on the IMDB-like database.\n",
    );
    for (set_name, test) in wl3.test_sets() {
        let _ = writeln!(out, "\n### {set_name} ({} queries)\n", test.len());
        let _ = writeln!(out, "{}", QErrorStats::table_header());
        let models: [&dyn CostEstimator; 6] = [&pg, &mscn, &qpp, &tpool, &qf, &zs];
        for m in models {
            let _ = writeln!(out, "{}", eval_model(m, test).table_row(m.name()));
        }
        let _ = writeln!(out, "{}", eval_dace(&dace, test).table_row("DACE"));
        let _ = writeln!(
            out,
            "{}",
            eval_dace(&dace_lora, test).table_row("DACE-LoRA")
        );
    }
    out.push_str(
        "\nExpected shape: DACE beats every baseline on tail qerror (90th+) despite never\n\
         seeing the test database; DACE-LoRA improves on DACE across all metrics.\n",
    );
    out
}
