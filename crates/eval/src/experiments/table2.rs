//! Table II: model size, training throughput and inference throughput.
//!
//! Throughputs are measured on this machine, so absolute numbers differ from
//! the paper's GPU setup; the *ordering* (DACE smallest and fastest by large
//! factors, LoRA tuning faster than full training) is the reproduced shape.
//! "PostgreSQL" inference is the substrate's plan-costing path (the analogue
//! of the optimizer costing a plan).

use std::fmt::Write as _;
use std::time::Instant;

use dace_baselines::{CostEstimator, Mscn, PgLinear, QppNet, QueryFormer, TPool, ZeroShot};
use dace_catalog::suite::IMDB_LIKE_DB;
use dace_core::FeatureConfig;
use dace_plan::Dataset;

use crate::data::suite_db;
use crate::models::{train_dace, Dace};

use super::Ctx;

/// Measure seconds of a closure.
fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

pub(super) fn run(ctx: &Ctx) -> String {
    let wl3 = ctx.wl3();
    // Fixed-size slices so throughput numbers are comparable across scales.
    let train_n = wl3.train.len().min(512);
    let train: Dataset = Dataset::from_plans(wl3.train.plans[..train_n].to_vec());
    let test = &wl3.synthetic;
    let epochs = 4usize;

    let mut out =
        String::from("Table II — efficiency analysis (measured on this machine, CPU only).\n\n");
    let _ = writeln!(
        out,
        "| {:<18} | {:>10} | {:>16} | {:>17} |",
        "Model", "Size (MB)", "Train (q/s)", "Inference (q/s)"
    );
    let _ = writeln!(
        out,
        "|{}|{}|{}|{}|",
        "-".repeat(20),
        "-".repeat(12),
        "-".repeat(18),
        "-".repeat(19)
    );

    // PostgreSQL: inference = the optimizer costing path.
    {
        let db = suite_db(&ctx.cfg, IMDB_LIKE_DB);
        let queries = dace_query::MscnWorkloadGen::default().gen_train(&db, 200);
        let (_, secs) = time(|| {
            for q in &queries {
                let _ = dace_engine::plan_query(&db, q).unwrap();
            }
        });
        let _ = writeln!(
            out,
            "| {:<18} | {:>10} | {:>16} | {:>17.0} |",
            "PostgreSQL",
            "-",
            "-",
            queries.len() as f64 / secs
        );
    }

    let report = |m: &mut dyn CostEstimator| {
        let (_, train_secs) = time(|| m.fit(&train));
        let train_qps = (train.len() * epochs) as f64 / train_secs;
        let (_, inf_secs) = time(|| {
            for p in &test.plans {
                let _ = m.predict_ms(&p.tree);
            }
        });
        let inf_qps = test.len() as f64 / inf_secs;
        format!(
            "| {:<18} | {:>10.3} | {:>16.0} | {:>17.0} |",
            m.name(),
            m.size_mb(),
            train_qps,
            inf_qps
        )
    };

    let mut pg = PgLinear::new();
    let mut mscn = Mscn::new(21);
    mscn.epochs = epochs;
    let mut qpp = QppNet::new(22);
    qpp.epochs = epochs;
    let mut tpool = TPool::new(23);
    tpool.epochs = epochs;
    let mut qf = QueryFormer::new(24);
    qf.epochs = epochs;
    let mut zs = ZeroShot::new(25);
    zs.epochs = epochs;
    pg.fit(&train); // PgLinear "training" is trivial; row above covers it.

    for m in [
        &mut mscn as &mut dyn CostEstimator,
        &mut qpp,
        &mut tpool,
        &mut qf,
        &mut zs,
    ] {
        let row = report(m);
        let _ = writeln!(out, "{row}");
    }

    // DACE: batched training throughput (the production path), with the
    // per-plan reference loop reported alongside so the batching speedup is
    // visible in the table.
    {
        let cfg = dace_core::TrainConfig {
            epochs,
            ..Default::default()
        };
        let mut dace = Dace::with_config(cfg, "DACE");
        let (_, train_secs) = time(|| dace.fit(&train));
        let train_qps = (train.len() * epochs) as f64 / train_secs;
        let est = dace.inner.as_ref().unwrap();
        // Batched inference: the whole test set in packed chunks.
        let trees: Vec<&dace_plan::PlanTree> = test.plans.iter().map(|p| &p.tree).collect();
        let (_, inf_secs) = time(|| {
            let _ = est.predict_batch_ms(&trees);
        });
        let _ = writeln!(
            out,
            "| {:<18} | {:>10.3} | {:>16.0} | {:>17.0} |",
            "DACE",
            est.model.size_mb(),
            train_qps,
            test.len() as f64 / inf_secs
        );

        // Seed matmul kernels + per-plan loop = the configuration this
        // rewrite replaced; the row above / this row is the speedup.
        dace_nn::set_reference_kernels(true);
        let (_, ref_secs) = time(|| {
            let _ = dace_core::Trainer::new(cfg).fit_per_plan_reference(&train);
        });
        dace_nn::set_reference_kernels(false);
        let _ = writeln!(
            out,
            "| {:<18} | {:>10.3} | {:>16.0} | {:>17} |",
            "DACE (per-plan)",
            est.model.size_mb(),
            (train.len() * epochs) as f64 / ref_secs,
            "-"
        );

        // DACE-LoRA: adapter-only tuning throughput + adapter size.
        let mut est = dace.inner.unwrap();
        let (_, tune_secs) = time(|| est.fine_tune_lora(&train, epochs, 2e-3).unwrap());
        let tune_qps = (train.len() * epochs) as f64 / tune_secs;
        let (_, inf_secs) = time(|| {
            let _ = est.predict_batch_ms(&trees);
        });
        let lora_mb = (est.model.lora_param_count() * 4) as f64 / 1_048_576.0;
        let _ = writeln!(
            out,
            "| {:<18} | {:>10.3} | {:>9.0} (tune) | {:>17.0} |",
            "DACE-LoRA",
            lora_mb,
            tune_qps,
            test.len() as f64 / inf_secs
        );
    }

    // Knowledge-integrated variants (their cost ≈ base model + encoder).
    {
        let adm_train = Dataset::from_plans(
            ctx.suite_m1()
                .exclude_db(IMDB_LIKE_DB)
                .plans
                .into_iter()
                .take(512)
                .collect(),
        );
        let dace = train_dace(&adm_train, 4, 0.5, FeatureConfig::default());
        let mut dace_mscn = Mscn::with_encoder(26, dace.clone());
        dace_mscn.epochs = epochs;
        let row = report(&mut dace_mscn);
        let _ = writeln!(out, "{row}");
        let mut dace_qf = QueryFormer::with_encoder(27, dace);
        dace_qf.epochs = epochs;
        let row = report(&mut dace_qf);
        let _ = writeln!(out, "{row}");
    }

    out.push_str(
        "\nExpected shape: DACE is 1–2 orders of magnitude smaller and faster to train than\n\
         every learned baseline; DACE inference beats the DBMS costing path; LoRA tuning\n\
         is faster than full DACE training; the knowledge-integrated variants cost only\n\
         slightly more than their hosts.\n",
    );
    out
}
