#![warn(missing_docs)]
//! Evaluation harness: qerror metrics, suite-wide data collection and one
//! runner per table/figure of the paper's evaluation (Sec. V).
//!
//! The `expts` binary drives everything:
//!
//! ```text
//! cargo run --release -p dace-eval --bin expts -- table1 --scale 1.0
//! cargo run --release -p dace-eval --bin expts -- all
//! ```
//!
//! Every experiment accepts a `--scale` factor multiplying query counts and
//! training epochs, so quick smoke runs and full reproductions share one
//! code path. Reports print to stdout and are written under `results/`.

pub mod data;
pub mod experiments;
pub mod metrics;
pub mod models;

pub use data::{collect_suite_m1, workload3, EvalConfig, Workload3};
pub use metrics::{qerror, QErrorStats};
