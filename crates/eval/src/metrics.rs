//! Q-error metrics (Eq. 1 of the paper).

use serde::{Deserialize, Serialize};

/// `qerror = max(est, actual) / min(est, actual)`, floored at tiny values so
/// a zero prediction cannot divide by zero. Always ≥ 1.
pub fn qerror(est_ms: f64, actual_ms: f64) -> f64 {
    let e = est_ms.max(1e-6);
    let a = actual_ms.max(1e-6);
    (e / a).max(a / e)
}

/// Summary statistics of a qerror distribution — the columns of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QErrorStats {
    /// Number of samples.
    pub count: usize,
    /// 50th percentile.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl QErrorStats {
    /// Stats from (prediction, actual) latency pairs in milliseconds.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> QErrorStats {
        let qs: Vec<f64> = pairs.iter().map(|&(e, a)| qerror(e, a)).collect();
        QErrorStats::from_qerrors(qs)
    }

    /// Stats from raw qerror values.
    pub fn from_qerrors(mut qs: Vec<f64>) -> QErrorStats {
        assert!(!qs.is_empty(), "no samples");
        qs.sort_by(f64::total_cmp);
        let pct = |p: f64| -> f64 {
            let idx = (p * (qs.len() - 1) as f64).round() as usize;
            qs[idx.min(qs.len() - 1)]
        };
        QErrorStats {
            count: qs.len(),
            median: pct(0.50),
            p90: pct(0.90),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *qs.last().unwrap(),
            mean: qs.iter().sum::<f64>() / qs.len() as f64,
        }
    }

    /// One row of a Table-I-style report.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "| {:<18} | {:>7.2} | {:>7.2} | {:>7.2} | {:>8.2} | {:>8.1} | {:>7.2} |",
            name, self.median, self.p90, self.p95, self.p99, self.max, self.mean
        )
    }

    /// The header matching [`QErrorStats::table_row`].
    pub fn table_header() -> String {
        format!(
            "| {:<18} | {:>7} | {:>7} | {:>7} | {:>8} | {:>8} | {:>7} |\n|{}|{}|{}|{}|{}|{}|{}|",
            "Model",
            "Median",
            "90th",
            "95th",
            "99th",
            "Max",
            "Mean",
            "-".repeat(20),
            "-".repeat(9),
            "-".repeat(9),
            "-".repeat(9),
            "-".repeat(10),
            "-".repeat(10),
            "-".repeat(9),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qerror_is_symmetric_and_at_least_one() {
        assert_eq!(qerror(2.0, 8.0), 4.0);
        assert_eq!(qerror(8.0, 2.0), 4.0);
        assert_eq!(qerror(5.0, 5.0), 1.0);
        assert!(qerror(0.0, 1.0) >= 1.0);
    }

    #[test]
    fn stats_percentiles() {
        let qs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = QErrorStats::from_qerrors(qs);
        assert_eq!(s.count, 100);
        assert!((s.median - 50.0).abs() <= 1.0);
        assert!((s.p90 - 90.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let s = QErrorStats::from_qerrors(vec![2.5]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.max, 2.5);
    }

    #[test]
    fn row_formatting_contains_values() {
        let s = QErrorStats::from_qerrors(vec![1.0, 2.0, 3.0]);
        let row = s.table_row("DACE");
        assert!(row.contains("DACE"));
        assert!(row.contains("2.00"));
        assert!(QErrorStats::table_header().contains("Median"));
    }
}
