//! Model construction helpers and the DACE ↔ `CostEstimator` adapter.

use dace_baselines::CostEstimator;
use dace_core::{DaceEstimator, FeatureConfig, TrainConfig, Trainer};
use dace_plan::{Dataset, PlanTree};

use crate::metrics::QErrorStats;

/// Adapter exposing DACE through the shared [`CostEstimator`] trait.
pub struct Dace {
    /// Trained estimator (populated by `fit`, or supplied pre-trained).
    pub inner: Option<DaceEstimator>,
    /// Training configuration used by `fit`.
    pub config: TrainConfig,
    name: &'static str,
}

impl Dace {
    /// Untrained DACE with the paper's hyper-parameters and the given epochs.
    pub fn new(epochs: usize) -> Dace {
        Dace {
            inner: None,
            config: TrainConfig {
                epochs,
                ..Default::default()
            },
            name: "DACE",
        }
    }

    /// Ablation / variant constructor.
    pub fn with_config(config: TrainConfig, name: &'static str) -> Dace {
        Dace {
            inner: None,
            config,
            name,
        }
    }

    /// Wrap an already-trained estimator (e.g. after LoRA fine-tuning).
    pub fn from_trained(inner: DaceEstimator, name: &'static str) -> Dace {
        let config = inner.config;
        Dace {
            inner: Some(inner),
            config,
            name,
        }
    }

    /// The trained inner estimator.
    pub fn estimator(&self) -> &DaceEstimator {
        self.inner.as_ref().expect("DACE not trained")
    }
}

impl CostEstimator for Dace {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, train: &Dataset) {
        self.inner = Some(
            Trainer::new(self.config)
                .fit(train)
                .expect("eval datasets are non-empty"),
        );
    }

    fn predict_ms(&self, tree: &PlanTree) -> f64 {
        self.estimator().predict_ms(tree)
    }

    fn param_count(&self) -> usize {
        match &self.inner {
            Some(e) => e.model.base_param_count(),
            None => dace_core::DaceModel::new(0).base_param_count(),
        }
    }
}

/// Train a DACE estimator directly (no adapter), with variant knobs.
pub fn train_dace(
    train: &Dataset,
    epochs: usize,
    alpha: f32,
    features: FeatureConfig,
) -> DaceEstimator {
    Trainer::new(TrainConfig {
        epochs,
        alpha,
        features,
        ..Default::default()
    })
    .fit(train)
    .expect("eval datasets are non-empty")
}

/// Evaluate any estimator on a test set.
pub fn eval_model(model: &dyn CostEstimator, test: &Dataset) -> QErrorStats {
    let pairs: Vec<(f64, f64)> = test
        .plans
        .iter()
        .map(|p| (model.predict_ms(&p.tree), p.latency_ms()))
        .collect();
    QErrorStats::from_pairs(&pairs)
}

/// Evaluate a bare DACE estimator on a test set using batched inference:
/// the whole test set runs through [`DaceEstimator::predict_batch_ms`] in
/// `batch_plans`-sized packed chunks instead of one forward pass per plan.
pub fn eval_dace(est: &DaceEstimator, test: &Dataset) -> QErrorStats {
    let trees: Vec<&PlanTree> = test.plans.iter().map(|p| &p.tree).collect();
    let preds = est.predict_batch_ms(&trees);
    let pairs: Vec<(f64, f64)> = preds
        .into_iter()
        .zip(&test.plans)
        .map(|(pred, p)| (pred, p.latency_ms()))
        .collect();
    QErrorStats::from_pairs(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{collect_db, EvalConfig};
    use dace_plan::MachineId;

    #[test]
    fn dace_adapter_trains_and_predicts() {
        let cfg = EvalConfig {
            queries_per_db: 60,
            ..EvalConfig::scaled(0.05)
        };
        let ds = collect_db(&cfg, 3, MachineId::M1);
        let (train, test) = ds.split(0.25);
        let mut dace = Dace::new(6);
        dace.fit(&train);
        let stats = eval_model(&dace, &test);
        assert!(stats.median >= 1.0 && stats.median.is_finite());
        assert!(dace.param_count() > 10_000);
        assert_eq!(dace.name(), "DACE");
    }
}
