//! Adam optimizer with global-norm gradient clipping.

use serde::{Deserialize, Serialize};

use crate::param::Param;

/// Adam (Kingma & Ba) with bias-corrected moments.
///
/// Parameters marked `trainable = false` are skipped entirely — this is how
/// the LoRA pre-train/fine-tune split reaches the optimizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Global gradient-norm clip (0 disables clipping).
    pub clip_norm: f32,
    /// Step counter.
    t: u64,
}

impl Adam {
    /// Adam with the usual defaults and the given learning rate.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: 5.0,
            t: 0,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one optimization step to `params` and clear their gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        // Global-norm clip over trainable gradients.
        let scale = if self.clip_norm > 0.0 {
            let total: f32 = params
                .iter()
                .filter(|p| p.trainable)
                .map(|p| p.grad.norm_sq())
                .sum();
            let norm = total.sqrt();
            if norm > self.clip_norm {
                self.clip_norm / norm
            } else {
                1.0
            }
        } else {
            1.0
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            if !p.trainable {
                p.zero_grad();
                continue;
            }
            // A detached serving snapshot (Param::detach) has 0×0 state;
            // reallocate instead of indexing out of bounds so fine-tuning a
            // registry-loaded model just works.
            p.restore_state();
            // Fused single-pass update: split-borrowing the param fields
            // lets value/m/v update in one zipped sweep with no gradient
            // temporary.
            let Param {
                value, grad, m, v, ..
            } = &mut **p;
            for (((val, &g0), mi), vi) in value
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                let g = g0 * scale;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *val -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor2;

    /// Adam should minimize a simple quadratic: f(w) = ||w - target||².
    #[test]
    fn converges_on_quadratic() {
        let target = [3.0f32, -2.0, 0.5];
        let mut p = Param::new(Tensor2::zeros(1, 3));
        let mut opt = Adam::new(0.05);
        for _ in 0..800 {
            for (i, &t) in target.iter().enumerate() {
                let w = p.value.get(0, i);
                p.grad.set(0, i, 2.0 * (w - t));
            }
            opt.step(&mut [&mut p]);
        }
        for (i, &t) in target.iter().enumerate() {
            assert!(
                (p.value.get(0, i) - t).abs() < 1e-2,
                "w[{i}] = {}",
                p.value.get(0, i)
            );
        }
    }

    #[test]
    fn frozen_params_do_not_move() {
        let mut p = Param::new(Tensor2::zeros(1, 2));
        p.trainable = false;
        p.grad.set(0, 0, 100.0);
        let mut opt = Adam::new(0.1);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.get(0, 0), 0.0);
        // Gradient is still cleared so stale grads never leak.
        assert_eq!(p.grad.get(0, 0), 0.0);
    }

    #[test]
    fn clipping_bounds_the_update() {
        let mut p = Param::new(Tensor2::zeros(1, 1));
        p.grad.set(0, 0, 1e6);
        let mut opt = Adam::new(0.1);
        opt.step(&mut [&mut p]);
        // First Adam step magnitude is ≈ lr regardless, but the clipped
        // gradient keeps the moments sane; just check finiteness and scale.
        assert!(p.value.get(0, 0).abs() <= 0.11);
        assert!(p.value.get(0, 0).is_finite());
    }

    #[test]
    fn step_counter_advances() {
        let mut opt = Adam::new(0.1);
        let mut p = Param::new(Tensor2::zeros(1, 1));
        assert_eq!(opt.steps(), 0);
        opt.step(&mut [&mut p]);
        opt.step(&mut [&mut p]);
        assert_eq!(opt.steps(), 2);
    }
}
