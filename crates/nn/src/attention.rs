//! Single-head masked self-attention (Eq. 5 of the paper).
//!
//! `Attention(Q,K,V) = softmax(QKᵀ ⊙ M / √d_k) V` with `M` the
//! tree-structured mask: disallowed positions are driven to `-∞` before the
//! softmax, so every node attends to exactly itself and its descendants.
//! DACE uses one head and one layer (Sec. V-A), so no multi-head machinery.
//!
//! Every pass runs through one **block-diagonal** code path: the input is
//! stacked blocks of rows, attention scores are computed only *within*
//! each block, and rows never attend across block boundaries. A single
//! plan is the degenerate case of one block; a packed mini-batch supplies
//! one variable-length block per plan ([`MaskedSelfAttention::forward_packed`]),
//! giving one set of large Q/K/V projections per batch instead of one per
//! plan and per-block score work proportional to each plan's *real* size.

use serde::{Deserialize, Serialize};

use crate::param::Param;
use crate::tensor::Tensor2;
use crate::workspace::AttnScratch;

fn default_true() -> bool {
    true
}

/// Additive value standing in for `-∞` in masked score positions.
///
/// Kept finite so that a *real* node with every tree position masked would
/// still produce finite probabilities; genuine `-∞` is reserved for padding
/// rows (see [`Tensor2::softmax_rows`]'s fully-masked-row handling).
pub const MASK_NEG: f32 = -1.0e9;

/// Convert a boolean attention mask into an additive score bias.
fn mask_to_bias(mask: &[bool]) -> Vec<f32> {
    mask.iter()
        .map(|&allowed| if allowed { 0.0 } else { MASK_NEG })
        .collect()
}

/// Single-head masked scaled-dot-product self-attention with learned
/// projections `W_Q`, `W_K` (d → d_k) and `W_V` (d → d_v); no biases, as in
/// the paper's Eq. 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaskedSelfAttention {
    /// Query projection, `d × d_k`.
    pub wq: Param,
    /// Key projection, `d × d_k`.
    pub wk: Param,
    /// Value projection, `d × d_v`.
    pub wv: Param,
    d_k: usize,
    #[serde(skip)]
    cache: Option<Cache>,
    /// Train/eval switch: in eval mode the caching forward entry points
    /// route to their inference twins and skip cloning `x` into the cache.
    #[serde(skip, default = "default_true")]
    train: bool,
}

#[derive(Debug, Clone)]
struct Cache {
    x: Tensor2,
    q: Tensor2,
    k: Tensor2,
    v: Tensor2,
    /// Concatenated per-block probability matrices: block `b` contributes
    /// `lens[b]²` row-major softmax values.
    probs: Vec<f32>,
    /// Rows of each attention block (`[x.rows()]` for a single plan).
    lens: Vec<usize>,
}

impl MaskedSelfAttention {
    /// New attention block with `d`-dim inputs, `d_k`-dim queries/keys and
    /// `d_v`-dim values.
    pub fn new(d: usize, d_k: usize, d_v: usize, seed: u64) -> MaskedSelfAttention {
        MaskedSelfAttention {
            wq: Param::xavier(d, d_k, seed),
            wk: Param::xavier(d, d_k, seed ^ 0x5EED_0001),
            wv: Param::xavier(d, d_v, seed ^ 0x5EED_0002),
            d_k,
            cache: None,
            train: true,
        }
    }

    /// Query/key width (`d_k`) — the softmax scale denominator. Exposed so
    /// the quantized twin reproduces the exact scaling.
    pub fn dk(&self) -> usize {
        self.d_k
    }

    /// Switch between training (activations cached for backward) and eval
    /// (no cache clone) behaviour of the caching forward entry points.
    pub fn set_train(&mut self, train: bool) {
        self.train = train;
        if !train {
            self.cache = None;
        }
    }

    /// Forward pass over `x` (`n × d`) with `mask` (`n × n`, row-major;
    /// `mask[i*n+j]` = may node `i` attend to node `j`). Caches for backward.
    pub fn forward(&mut self, x: &Tensor2, mask: &[bool]) -> Tensor2 {
        let bias = mask_to_bias(mask);
        self.forward_bias(x, &bias)
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Tensor2, mask: &[bool]) -> Tensor2 {
        let bias = mask_to_bias(mask);
        self.forward_bias_inference(x, &bias)
    }

    /// Forward pass with an arbitrary additive score bias (`n × n`,
    /// row-major): `softmax((QKᵀ)/√d_k + bias)`. This generalizes boolean
    /// masking (bias = −∞) and supports QueryFormer-style tree-bias
    /// attention (bias = −λ·distance). Caches for backward.
    pub fn forward_bias(&mut self, x: &Tensor2, bias: &[f32]) -> Tensor2 {
        self.forward_block_diag(x, x.rows(), bias)
    }

    /// Biased forward pass without caching (inference).
    pub fn forward_bias_inference(&self, x: &Tensor2, bias: &[f32]) -> Tensor2 {
        self.forward_block_diag_inference(x, x.rows(), bias)
    }

    /// Block-diagonal forward pass over a packed batch. `x` is
    /// `(nb · block) × d`: `nb` plans each padded to `block` rows. `bias`
    /// holds one `block × block` additive score matrix per plan,
    /// concatenated (`bias[b·block² + i·block + j]`); padding rows/columns
    /// carry `-∞` so their probabilities vanish. Caches for backward.
    pub fn forward_block_diag(&mut self, x: &Tensor2, block: usize, bias: &[f32]) -> Tensor2 {
        let lens = Self::uniform_lens(x.rows(), block);
        self.forward_packed(x, &lens, block, bias)
    }

    /// Block-diagonal forward pass without caching (inference).
    pub fn forward_block_diag_inference(&self, x: &Tensor2, block: usize, bias: &[f32]) -> Tensor2 {
        let lens = Self::uniform_lens(x.rows(), block);
        self.forward_packed_inference(x, &lens, block, bias)
    }

    fn uniform_lens(n: usize, block: usize) -> Vec<usize> {
        assert!(
            block > 0 && n.is_multiple_of(block),
            "rows must tile into blocks"
        );
        vec![block; n / block]
    }

    /// Variable-length block-diagonal forward pass. `x` holds the blocks'
    /// rows back to back **without padding**: block `b` occupies the next
    /// `lens[b]` rows. `bias` is still laid out padded — one
    /// `stride × stride` matrix per block of which only the leading
    /// `lens[b] × lens[b]` corner is read — so a [`PackedBatch`]-style bias
    /// buffer works for both the padded and the compacted row layouts.
    /// Caches for backward.
    ///
    /// This is the fast path for mini-batch training: score/softmax/PV work
    /// is `Σ lens[b]²`, not `nb · stride²`, and the Q/K/V projections only
    /// touch real rows. Results are bit-identical to the padded layout
    /// because padded score columns carry `-∞` bias (probability exactly
    /// zero) and padded rows are all-masked (softmax row exactly zero).
    pub fn forward_packed(
        &mut self,
        x: &Tensor2,
        lens: &[usize],
        stride: usize,
        bias: &[f32],
    ) -> Tensor2 {
        if !self.train {
            return self.forward_packed_inference(x, lens, stride, bias);
        }
        let (q, k, v, probs) = self.project_packed(x, lens, stride, bias);
        let out = Self::apply_probs(&probs, &v, lens);
        self.cache = Some(Cache {
            x: x.clone(),
            q,
            k,
            v,
            probs,
            lens: lens.to_vec(),
        });
        out
    }

    /// Workspace twin of [`forward_packed`]: every intermediate lives in
    /// `ws` and the attention output lands in `out`, so steady-state calls
    /// allocate nothing. `ws.{q, k, v, probs}` double as the backward
    /// cache — call [`backward_params_ws`] with the same `ws`. Same kernels
    /// and op order as [`forward_packed`], so results are bit-identical.
    ///
    /// [`forward_packed`]: MaskedSelfAttention::forward_packed
    /// [`backward_params_ws`]: MaskedSelfAttention::backward_params_ws
    pub fn forward_packed_ws(
        &self,
        x: &Tensor2,
        lens: &[usize],
        stride: usize,
        bias: &[f32],
        ws: &mut AttnScratch,
        out: &mut Tensor2,
    ) {
        let n = x.rows();
        assert_eq!(n, lens.iter().sum::<usize>(), "lens must cover all rows");
        assert!(
            lens.iter().all(|&l| l <= stride),
            "block longer than bias stride"
        );
        assert_eq!(
            bias.len(),
            lens.len() * stride * stride,
            "bias must be stride² per block"
        );
        x.matmul_into(&self.wq.value, &mut ws.q);
        x.matmul_into(&self.wk.value, &mut ws.k);
        x.matmul_into(&self.wv.value, &mut ws.v);
        let scale = 1.0 / (self.d_k as f32).sqrt();
        ws.probs.clear();
        out.resize_zeroed(n, self.wv.value.cols());
        let mut start = 0;
        for (b, &l) in lens.iter().enumerate() {
            ws.qb.copy_row_block_from(&ws.q, start, l);
            ws.kb.copy_row_block_from(&ws.k, start, l);
            ws.qb.matmul_nt_into(&ws.kb, &mut ws.scores);
            ws.scores.scale(scale);
            let bias_b = &bias[b * stride * stride..(b + 1) * stride * stride];
            for i in 0..l {
                let row = ws.scores.row_mut(i);
                for (s, &bv) in row.iter_mut().zip(&bias_b[i * stride..i * stride + l]) {
                    *s += bv;
                }
            }
            ws.scores.softmax_rows();
            ws.probs.extend_from_slice(ws.scores.as_slice());
            ws.vb.copy_row_block_from(&ws.v, start, l);
            ws.scores.matmul_into(&ws.vb, &mut ws.blk);
            out.set_row_block(start, &ws.blk);
            start += l;
        }
    }

    /// Workspace twin of [`backward_params_only`]: reads the Q/K/V/probs a
    /// [`forward_packed_ws`] call left in `ws` and accumulates
    /// dW_Q/dW_K/dW_V with the same op order (so gradients are
    /// bit-identical), never materializing `dx` — correct because attention
    /// is the model's first layer.
    ///
    /// [`backward_params_only`]: MaskedSelfAttention::backward_params_only
    /// [`forward_packed_ws`]: MaskedSelfAttention::forward_packed_ws
    pub fn backward_params_ws(
        &mut self,
        d_out: &Tensor2,
        x: &Tensor2,
        lens: &[usize],
        ws: &mut AttnScratch,
    ) {
        let n = x.rows();
        assert_eq!(d_out.rows(), n, "d_out must match forward rows");
        let scale = 1.0 / (self.d_k as f32).sqrt();
        ws.dq.resize_zeroed(n, ws.q.cols());
        ws.dk.resize_zeroed(n, ws.k.cols());
        ws.dv.resize_zeroed(n, ws.v.cols());
        let (mut start, mut p) = (0, 0);
        for &l in lens {
            ws.pb.copy_from_slice_shaped(l, l, &ws.probs[p..p + l * l]);
            ws.dob.copy_row_block_from(d_out, start, l);
            ws.vb.copy_row_block_from(&ws.v, start, l);

            // dV_b = P_bᵀ @ dOut_b ; dP_b = dOut_b @ V_bᵀ
            ws.pb.matmul_tn_into(&ws.dob, &mut ws.blk);
            ws.dv.set_row_block(start, &ws.blk);
            ws.dob.matmul_nt_into(&ws.vb, &mut ws.dp);

            // Softmax backward per row: ds = p ⊙ (dp − ⟨dp, p⟩).
            ws.dscores.resize_zeroed(l, l);
            for i in 0..l {
                let p_row = ws.pb.row(i);
                let dp_row = ws.dp.row(i);
                let dot: f32 = p_row.iter().zip(dp_row).map(|(a, b)| a * b).sum();
                let out_row = ws.dscores.row_mut(i);
                for j in 0..l {
                    out_row[j] = p_row[j] * (dp_row[j] - dot) * scale;
                }
            }

            // dQ_b = dS_b @ K_b ; dK_b = dS_bᵀ @ Q_b
            ws.kb.copy_row_block_from(&ws.k, start, l);
            ws.qb.copy_row_block_from(&ws.q, start, l);
            ws.dscores.matmul_into(&ws.kb, &mut ws.blk);
            ws.dq.set_row_block(start, &ws.blk);
            ws.dscores.matmul_tn_into(&ws.qb, &mut ws.blk);
            ws.dk.set_row_block(start, &ws.blk);
            start += l;
            p += l * l;
        }

        if self.wq.trainable {
            x.matmul_tn_into(&ws.dq, &mut ws.gtmp);
            self.wq.grad.add_assign(&ws.gtmp);
        }
        if self.wk.trainable {
            x.matmul_tn_into(&ws.dk, &mut ws.gtmp);
            self.wk.grad.add_assign(&ws.gtmp);
        }
        if self.wv.trainable {
            x.matmul_tn_into(&ws.dv, &mut ws.gtmp);
            self.wv.grad.add_assign(&ws.gtmp);
        }
    }

    /// Variable-length block-diagonal forward pass without caching.
    pub fn forward_packed_inference(
        &self,
        x: &Tensor2,
        lens: &[usize],
        stride: usize,
        bias: &[f32],
    ) -> Tensor2 {
        let (_, _, v, probs) = self.project_packed(x, lens, stride, bias);
        Self::apply_probs(&probs, &v, lens)
    }

    /// Mask-driven block-diagonal inference: like
    /// [`forward_packed_inference`] but each block's boolean tree mask
    /// drives the computation directly instead of going through a padded
    /// `stride²`-per-block additive bias buffer. `masks[b]` is block `b`'s
    /// row-major `lens[b] × lens[b]` mask.
    ///
    /// This is the serving fast path. Tree masks over DFS-ordered nodes are
    /// **row intervals** — node `i` attends to exactly `[i, i + subtree)` —
    /// so each row's scores, softmax and value sum run only over its
    /// allowed interval ([`Tensor2::row_dots_nt`] / [`Tensor2::row_combine`]):
    /// no bias buffer, no block copies, and no work at masked positions.
    /// Probabilities are identical to the bias path, which computes the
    /// masked positions and then multiplies them by exactly zero.
    /// Non-interval masks (possible only with hand-built features) fall
    /// back to a dense scored row with the same semantics.
    ///
    /// [`forward_packed_inference`]: MaskedSelfAttention::forward_packed_inference
    pub fn forward_masks_inference(
        &self,
        x: &Tensor2,
        lens: &[usize],
        masks: &[&[bool]],
    ) -> Tensor2 {
        assert_eq!(lens.len(), masks.len(), "one mask per block");
        let mut ws = AttnScratch::default();
        let mut out = Tensor2::default();
        self.forward_masks_into(
            x,
            lens.iter().copied().zip(masks.iter().copied()),
            &mut ws,
            &mut out,
        );
        out
    }

    /// Workspace twin of [`forward_masks_inference`]: blocks stream in as
    /// `(len, mask)` pairs (so callers need not build a `Vec` of mask
    /// slices), projections and the score row live in `ws`, and the
    /// attention output lands in `out`. Same interval-sparse math — the
    /// per-worker serving path uses this to run allocation-free at steady
    /// state.
    ///
    /// [`forward_masks_inference`]: MaskedSelfAttention::forward_masks_inference
    pub fn forward_masks_into<'m, I>(
        &self,
        x: &Tensor2,
        blocks: I,
        ws: &mut AttnScratch,
        out: &mut Tensor2,
    ) where
        I: IntoIterator<Item = (usize, &'m [bool])>,
    {
        let n = x.rows();
        x.matmul_into(&self.wq.value, &mut ws.q);
        x.matmul_into(&self.wk.value, &mut ws.k);
        x.matmul_into(&self.wv.value, &mut ws.v);
        let scale = 1.0 / (self.d_k as f32).sqrt();
        out.resize_zeroed(n, self.wv.value.cols());
        let mut start = 0;
        for (l, mask) in blocks {
            assert_eq!(mask.len(), l * l, "mask must be len² per block");
            for i in 0..l {
                let mrow = &mask[i * l..(i + 1) * l];
                let Some(j0) = mrow.iter().position(|&b| b) else {
                    continue; // fully masked row: zero output, as in the bias path
                };
                let mut run = mrow[j0..].iter().take_while(|&&b| b).count();
                let interval = !mrow[j0 + run..].iter().any(|&b| b);
                if !interval {
                    run = l - j0; // dense fallback: score the rest, mask additively
                }
                if ws.srow.len() < run {
                    ws.srow.resize(run, 0.0);
                }
                let s = &mut ws.srow[..run];
                ws.q.row_dots_nt(start + i, &ws.k, start + j0, run, s);
                for v in s.iter_mut() {
                    *v *= scale;
                }
                if !interval {
                    for (v, &allowed) in s.iter_mut().zip(&mrow[j0..]) {
                        if !allowed {
                            *v += MASK_NEG;
                        }
                    }
                }
                // Softmax over the interval.
                let max = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in s.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                if sum > 0.0 {
                    for v in s.iter_mut() {
                        *v /= sum;
                    }
                }
                Tensor2::row_combine(s, &ws.v, start + j0, out.row_mut(start + i));
            }
            start += l;
        }
        assert_eq!(start, n, "blocks must cover all rows");
    }

    /// Shared Q/K/V projection + per-block masked softmax. The projections
    /// are three large matmuls over the whole packed input; scores are
    /// computed block-by-block on each block's `lens[b] × lens[b]` corner,
    /// so the cost is `Σ lens[b]²·d_k`, not `(Σ lens[b])²·d_k`.
    fn project_packed(
        &self,
        x: &Tensor2,
        lens: &[usize],
        stride: usize,
        bias: &[f32],
    ) -> (Tensor2, Tensor2, Tensor2, Vec<f32>) {
        let n = x.rows();
        assert_eq!(n, lens.iter().sum::<usize>(), "lens must cover all rows");
        assert!(
            lens.iter().all(|&l| l <= stride),
            "block longer than bias stride"
        );
        assert_eq!(
            bias.len(),
            lens.len() * stride * stride,
            "bias must be stride² per block"
        );
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        let scale = 1.0 / (self.d_k as f32).sqrt();
        let mut probs = Vec::with_capacity(lens.iter().map(|l| l * l).sum());
        let mut start = 0;
        for (b, &l) in lens.iter().enumerate() {
            let qb = q.row_block(start, l);
            let kb = k.row_block(start, l);
            let mut scores = qb.matmul_nt(&kb);
            scores.scale(scale);
            let bias_b = &bias[b * stride * stride..(b + 1) * stride * stride];
            for i in 0..l {
                let row = scores.row_mut(i);
                for (s, &bv) in row.iter_mut().zip(&bias_b[i * stride..i * stride + l]) {
                    *s += bv;
                }
            }
            scores.softmax_rows();
            probs.extend_from_slice(scores.as_slice());
            start += l;
        }
        (q, k, v, probs)
    }

    /// `out_b = P_b @ V_b` for each block.
    fn apply_probs(probs: &[f32], v: &Tensor2, lens: &[usize]) -> Tensor2 {
        let mut out = Tensor2::zeros(v.rows(), v.cols());
        let (mut start, mut p) = (0, 0);
        for &l in lens {
            let pb = Tensor2::from_vec(l, l, probs[p..p + l * l].to_vec());
            let vb = v.row_block(start, l);
            out.set_row_block(start, &pb.matmul(&vb));
            start += l;
            p += l * l;
        }
        out
    }

    /// Backward pass: accumulates dW_Q/dW_K/dW_V and returns dx. Works for
    /// any block structure the forward pass cached. With the padded
    /// (`forward_block_diag`) layout, padding rows (zero input, fully
    /// masked, zero upstream gradient) contribute exactly zero to every
    /// weight gradient because both their probability rows and their
    /// `d_out` rows are zero.
    pub fn backward(&mut self, d_out: &Tensor2) -> Tensor2 {
        let (dq, dk, dv) = self.backward_accumulate(d_out);
        let mut dx = dq.matmul_nt(&self.wq.value);
        dx.add_assign(&dk.matmul_nt(&self.wk.value));
        dx.add_assign(&dv.matmul_nt(&self.wv.value));
        dx
    }

    /// Backward pass that only accumulates the weight gradients, skipping
    /// the three `dx` back-projections. Correct whenever the caller
    /// discards `dx` — i.e. whenever attention is the first layer.
    pub fn backward_params_only(&mut self, d_out: &Tensor2) {
        let _ = self.backward_accumulate(d_out);
    }

    /// Shared backward core: per-block gradients through PV, softmax and
    /// the score product, plus dW_Q/dW_K/dW_V accumulation. Returns
    /// (dQ, dK, dV) for the `dx` projections.
    fn backward_accumulate(&mut self, d_out: &Tensor2) -> (Tensor2, Tensor2, Tensor2) {
        let Cache {
            x,
            q,
            k,
            v,
            probs,
            lens,
        } = self.cache.take().expect("backward called before forward");
        let n = x.rows();
        assert_eq!(d_out.rows(), n, "d_out must match cached rows");
        let scale = 1.0 / (self.d_k as f32).sqrt();

        let mut dq = Tensor2::zeros(n, q.cols());
        let mut dk = Tensor2::zeros(n, k.cols());
        let mut dv = Tensor2::zeros(n, v.cols());
        let (mut start, mut p) = (0, 0);
        for &l in &lens {
            let pb = Tensor2::from_vec(l, l, probs[p..p + l * l].to_vec());
            let d_out_b = d_out.row_block(start, l);
            let vb = v.row_block(start, l);

            // dV_b = P_bᵀ @ dOut_b ; dP_b = dOut_b @ V_bᵀ
            dv.set_row_block(start, &pb.matmul_tn(&d_out_b));
            let dp = d_out_b.matmul_nt(&vb);

            // Softmax backward per row: ds = p ⊙ (dp − ⟨dp, p⟩).
            let mut dscores = Tensor2::zeros(l, l);
            for i in 0..l {
                let p_row = pb.row(i);
                let dp_row = dp.row(i);
                let dot: f32 = p_row.iter().zip(dp_row).map(|(a, b)| a * b).sum();
                let out_row = dscores.row_mut(i);
                for j in 0..l {
                    out_row[j] = p_row[j] * (dp_row[j] - dot) * scale;
                }
            }

            // dQ_b = dS_b @ K_b ; dK_b = dS_bᵀ @ Q_b
            let kb = k.row_block(start, l);
            let qb = q.row_block(start, l);
            dq.set_row_block(start, &dscores.matmul(&kb));
            dk.set_row_block(start, &dscores.matmul_tn(&qb));
            start += l;
            p += l * l;
        }

        if self.wq.trainable {
            self.wq.grad.add_assign(&x.matmul_tn(&dq));
        }
        if self.wk.trainable {
            self.wk.grad.add_assign(&x.matmul_tn(&dk));
        }
        if self.wv.trainable {
            self.wv.grad.add_assign(&x.matmul_tn(&dv));
        }
        (dq, dk, dv)
    }

    /// Mutable references to the projection parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv]
    }

    /// Total scalar parameters.
    pub fn param_count(&self) -> usize {
        self.wq.count() + self.wk.count() + self.wv.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_mask(n: usize) -> Vec<bool> {
        vec![true; n * n]
    }

    /// Lower-triangular-style tree mask: node 0 sees all, leaves see self.
    fn chain_mask(n: usize) -> Vec<bool> {
        let mut m = vec![false; n * n];
        for i in 0..n {
            for j in i..n {
                m[i * n + j] = true;
            }
        }
        m
    }

    #[test]
    fn masked_rows_ignore_disallowed_positions() {
        let attn = MaskedSelfAttention::new(4, 8, 8, 3);
        let x = Tensor2::uniform(3, 4, 1.0, 7);
        let out_full = attn.forward_inference(&x, &full_mask(3));
        let out_chain = attn.forward_inference(&x, &chain_mask(3));
        // The last node attends only to itself under the chain mask: its
        // output must equal its own value projection.
        let v = x.matmul(&attn.wv.value);
        for c in 0..8 {
            assert!((out_chain.get(2, c) - v.get(2, c)).abs() < 1e-5);
        }
        // And the restricted rows must differ from the fully-attended output
        // (row 0 sees everything under both masks, so compare row 2).
        let differs = (0..8).any(|c| (out_full.get(2, c) - out_chain.get(2, c)).abs() > 1e-6);
        assert!(differs);
    }

    #[test]
    fn changing_a_masked_out_node_does_not_change_output() {
        let attn = MaskedSelfAttention::new(4, 8, 8, 3);
        let mut x = Tensor2::uniform(3, 4, 1.0, 7);
        let mask = chain_mask(3);
        let before = attn.forward_inference(&x, &mask);
        // Node 0 is masked out from node 2's view (mask[2][0] = false) and
        // node 1's view; perturb node 0 and check rows 1, 2 are unchanged.
        x.set(0, 0, x.get(0, 0) + 10.0);
        let after = attn.forward_inference(&x, &mask);
        for r in 1..3 {
            for c in 0..8 {
                assert!(
                    (before.get(r, c) - after.get(r, c)).abs() < 1e-5,
                    "row {r} changed despite mask"
                );
            }
        }
    }

    #[test]
    fn block_diag_matches_per_plan_forwards() {
        let attn = MaskedSelfAttention::new(4, 8, 8, 3);
        // Two "plans": 2 and 3 nodes, padded to block = 3.
        let xa = Tensor2::uniform(2, 4, 1.0, 7);
        let xb = Tensor2::uniform(3, 4, 1.0, 8);
        let ma = chain_mask(2);
        let mb = chain_mask(3);
        let out_a = attn.forward_inference(&xa, &ma);
        let out_b = attn.forward_inference(&xb, &mb);

        let block = 3;
        let mut x = Tensor2::zeros(2 * block, 4);
        for r in 0..2 {
            for c in 0..4 {
                x.set(r, c, xa.get(r, c));
            }
        }
        for r in 0..3 {
            for c in 0..4 {
                x.set(block + r, c, xb.get(r, c));
            }
        }
        // Bias: MASK_NEG for real tree-masked positions, -inf wherever a
        // padding row or column is involved.
        let mut bias = vec![f32::NEG_INFINITY; 2 * block * block];
        for i in 0..2 {
            for j in 0..2 {
                bias[i * block + j] = if ma[i * 2 + j] { 0.0 } else { MASK_NEG };
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                bias[block * block + i * block + j] = if mb[i * 3 + j] { 0.0 } else { MASK_NEG };
            }
        }
        let out = attn.forward_block_diag_inference(&x, block, &bias);
        for r in 0..2 {
            for c in 0..8 {
                assert!((out.get(r, c) - out_a.get(r, c)).abs() < 1e-5);
            }
        }
        for r in 0..3 {
            for c in 0..8 {
                assert!((out.get(block + r, c) - out_b.get(r, c)).abs() < 1e-5);
            }
        }
        // The padding row (fully masked) must come out exactly zero.
        for c in 0..8 {
            assert_eq!(out.get(2, c), 0.0);
        }
    }

    #[test]
    fn workspace_packed_pass_matches_caching_path() {
        let mut a = MaskedSelfAttention::new(4, 8, 8, 3);
        let mut b = a.clone();
        // Two blocks of 2 and 3 rows, compact layout, stride 3.
        let x = Tensor2::uniform(5, 4, 1.0, 7);
        let stride = 3;
        let mut bias = vec![f32::NEG_INFINITY; 2 * stride * stride];
        let (ma, mb) = (chain_mask(2), chain_mask(3));
        for i in 0..2 {
            for j in 0..2 {
                bias[i * stride + j] = if ma[i * 2 + j] { 0.0 } else { MASK_NEG };
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                bias[stride * stride + i * stride + j] = if mb[i * 3 + j] { 0.0 } else { MASK_NEG };
            }
        }
        let lens = [2usize, 3];
        let d_out = Tensor2::uniform(5, 8, 1.0, 19);

        let out = a.forward_packed(&x, &lens, stride, &bias);
        a.backward_params_only(&d_out);

        let mut ws = AttnScratch::default();
        let mut out_ws = Tensor2::default();
        b.forward_packed_ws(&x, &lens, stride, &bias, &mut ws, &mut out_ws);
        b.backward_params_ws(&d_out, &x, &lens, &mut ws);

        assert_eq!(out.as_slice(), out_ws.as_slice());
        for (pa, pb) in a.params_mut().iter().zip(b.params_mut().iter()) {
            assert_eq!(pa.grad.as_slice(), pb.grad.as_slice());
        }

        // A second pass through the same (warmed) workspace must agree too.
        b.forward_packed_ws(&x, &lens, stride, &bias, &mut ws, &mut out_ws);
        assert_eq!(out.as_slice(), out_ws.as_slice());
    }

    #[test]
    fn eval_mode_packed_forward_skips_cache() {
        let mut a = MaskedSelfAttention::new(4, 8, 8, 3);
        let x = Tensor2::uniform(3, 4, 1.0, 7);
        let bias = mask_to_bias(&chain_mask(3));
        a.set_train(false);
        let out = a.forward_packed(&x, &[3], 3, &bias);
        assert!(a.cache.is_none());
        assert_eq!(
            out.as_slice(),
            a.forward_packed_inference(&x, &[3], 3, &bias).as_slice()
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut attn = MaskedSelfAttention::new(3, 4, 4, 11);
        let x = Tensor2::uniform(4, 3, 1.0, 17);
        let mask = chain_mask(4);
        let y = attn.forward(&x, &mask);
        let dx = attn.backward(&y); // loss = ||y||²/2

        let eps = 1e-2f32;
        let loss = |attn: &MaskedSelfAttention, x: &Tensor2| {
            0.5 * attn.forward_inference(x, &mask).norm_sq()
        };

        // Check each projection matrix.
        for which in 0..3 {
            let len = match which {
                0 => attn.wq.value.len(),
                1 => attn.wk.value.len(),
                _ => attn.wv.value.len(),
            };
            for idx in 0..len {
                let (orig, ana) = {
                    let p = match which {
                        0 => &attn.wq,
                        1 => &attn.wk,
                        _ => &attn.wv,
                    };
                    (p.value.as_slice()[idx], p.grad.as_slice()[idx])
                };
                let set = |attn: &mut MaskedSelfAttention, v: f32| {
                    let p = match which {
                        0 => &mut attn.wq,
                        1 => &mut attn.wk,
                        _ => &mut attn.wv,
                    };
                    p.value.as_mut_slice()[idx] = v;
                };
                set(&mut attn, orig + eps);
                let lp = loss(&attn, &x);
                set(&mut attn, orig - eps);
                let lm = loss(&attn, &x);
                set(&mut attn, orig);
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                    "W{which}[{idx}]: numeric {num} vs analytic {ana}"
                );
            }
        }
        // Check dx.
        let mut x2 = x.clone();
        for idx in 0..x2.len() {
            let orig = x2.as_slice()[idx];
            x2.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&attn, &x2);
            x2.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&attn, &x2);
            x2.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.as_slice()[idx];
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                "dx[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }
}
