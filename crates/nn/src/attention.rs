//! Single-head masked self-attention (Eq. 5 of the paper).
//!
//! `Attention(Q,K,V) = softmax(QKᵀ ⊙ M / √d_k) V` with `M` the
//! tree-structured mask: disallowed positions are driven to `-∞` before the
//! softmax, so every node attends to exactly itself and its descendants.
//! DACE uses one head and one layer (Sec. V-A), so no multi-head machinery.

use serde::{Deserialize, Serialize};

use crate::param::Param;
use crate::tensor::Tensor2;

/// Additive value standing in for `-∞` in masked score positions.
const MASK_NEG: f32 = -1.0e9;

/// Convert a boolean attention mask into an additive score bias.
fn mask_to_bias(mask: &[bool]) -> Vec<f32> {
    mask.iter()
        .map(|&allowed| if allowed { 0.0 } else { MASK_NEG })
        .collect()
}

/// Single-head masked scaled-dot-product self-attention with learned
/// projections `W_Q`, `W_K` (d → d_k) and `W_V` (d → d_v); no biases, as in
/// the paper's Eq. 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaskedSelfAttention {
    /// Query projection, `d × d_k`.
    pub wq: Param,
    /// Key projection, `d × d_k`.
    pub wk: Param,
    /// Value projection, `d × d_v`.
    pub wv: Param,
    d_k: usize,
    #[serde(skip)]
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    x: Tensor2,
    q: Tensor2,
    k: Tensor2,
    v: Tensor2,
    probs: Tensor2,
}

impl MaskedSelfAttention {
    /// New attention block with `d`-dim inputs, `d_k`-dim queries/keys and
    /// `d_v`-dim values.
    pub fn new(d: usize, d_k: usize, d_v: usize, seed: u64) -> MaskedSelfAttention {
        MaskedSelfAttention {
            wq: Param::xavier(d, d_k, seed),
            wk: Param::xavier(d, d_k, seed ^ 0x5EED_0001),
            wv: Param::xavier(d, d_v, seed ^ 0x5EED_0002),
            d_k,
            cache: None,
        }
    }

    /// Forward pass over `x` (`n × d`) with `mask` (`n × n`, row-major;
    /// `mask[i*n+j]` = may node `i` attend to node `j`). Caches for backward.
    pub fn forward(&mut self, x: &Tensor2, mask: &[bool]) -> Tensor2 {
        let bias = mask_to_bias(mask);
        self.forward_bias(x, &bias)
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Tensor2, mask: &[bool]) -> Tensor2 {
        let bias = mask_to_bias(mask);
        self.forward_bias_inference(x, &bias)
    }

    /// Forward pass with an arbitrary additive score bias (`n × n`,
    /// row-major): `softmax((QKᵀ)/√d_k + bias)`. This generalizes boolean
    /// masking (bias = −∞) and supports QueryFormer-style tree-bias
    /// attention (bias = −λ·distance). Caches for backward.
    pub fn forward_bias(&mut self, x: &Tensor2, bias: &[f32]) -> Tensor2 {
        let (q, k, v, probs) = self.project(x, bias);
        let out = probs.matmul(&v);
        self.cache = Some(Cache {
            x: x.clone(),
            q,
            k,
            v,
            probs,
        });
        out
    }

    /// Biased forward pass without caching (inference).
    pub fn forward_bias_inference(&self, x: &Tensor2, bias: &[f32]) -> Tensor2 {
        let (_, _, v, probs) = self.project(x, bias);
        probs.matmul(&v)
    }

    fn project(&self, x: &Tensor2, bias: &[f32]) -> (Tensor2, Tensor2, Tensor2, Tensor2) {
        let n = x.rows();
        assert_eq!(bias.len(), n * n, "bias must be n × n");
        let q = x.matmul(&self.wq.value);
        let k = x.matmul(&self.wk.value);
        let v = x.matmul(&self.wv.value);
        let scale = 1.0 / (self.d_k as f32).sqrt();
        let mut scores = q.matmul_nt(&k);
        scores.scale(scale);
        for i in 0..n {
            let row = scores.row_mut(i);
            for (j, s) in row.iter_mut().enumerate() {
                *s += bias[i * n + j];
            }
        }
        scores.softmax_rows();
        (q, k, v, scores)
    }

    /// Backward pass: accumulates dW_Q/dW_K/dW_V and returns dx.
    pub fn backward(&mut self, d_out: &Tensor2) -> Tensor2 {
        let Cache { x, q, k, v, probs } =
            self.cache.take().expect("backward called before forward");
        let n = x.rows();
        let scale = 1.0 / (self.d_k as f32).sqrt();

        // dV = Pᵀ @ dOut ; dP = dOut @ Vᵀ
        let dv = probs.matmul_tn(d_out);
        let dp = d_out.matmul_nt(&v);

        // Softmax backward per row: ds = p ⊙ (dp − ⟨dp, p⟩).
        let mut dscores = Tensor2::zeros(n, n);
        for i in 0..n {
            let p_row = probs.row(i);
            let dp_row = dp.row(i);
            let dot: f32 = p_row.iter().zip(dp_row).map(|(a, b)| a * b).sum();
            let out_row = dscores.row_mut(i);
            for j in 0..n {
                out_row[j] = p_row[j] * (dp_row[j] - dot) * scale;
            }
        }

        // dQ = dS @ K ; dK = dSᵀ @ Q
        let dq = dscores.matmul(&k);
        let dk = dscores.matmul_tn(&q);

        if self.wq.trainable {
            self.wq.grad.add_assign(&x.matmul_tn(&dq));
        }
        if self.wk.trainable {
            self.wk.grad.add_assign(&x.matmul_tn(&dk));
        }
        if self.wv.trainable {
            self.wv.grad.add_assign(&x.matmul_tn(&dv));
        }

        let mut dx = dq.matmul_nt(&self.wq.value);
        dx.add_assign(&dk.matmul_nt(&self.wk.value));
        dx.add_assign(&dv.matmul_nt(&self.wv.value));
        dx
    }

    /// Mutable references to the projection parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wq, &mut self.wk, &mut self.wv]
    }

    /// Total scalar parameters.
    pub fn param_count(&self) -> usize {
        self.wq.count() + self.wk.count() + self.wv.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_mask(n: usize) -> Vec<bool> {
        vec![true; n * n]
    }

    /// Lower-triangular-style tree mask: node 0 sees all, leaves see self.
    fn chain_mask(n: usize) -> Vec<bool> {
        let mut m = vec![false; n * n];
        for i in 0..n {
            for j in i..n {
                m[i * n + j] = true;
            }
        }
        m
    }

    #[test]
    fn masked_rows_ignore_disallowed_positions() {
        let attn = MaskedSelfAttention::new(4, 8, 8, 3);
        let x = Tensor2::uniform(3, 4, 1.0, 7);
        let out_full = attn.forward_inference(&x, &full_mask(3));
        let out_chain = attn.forward_inference(&x, &chain_mask(3));
        // The last node attends only to itself under the chain mask: its
        // output must equal its own value projection.
        let v = x.matmul(&attn.wv.value);
        for c in 0..8 {
            assert!((out_chain.get(2, c) - v.get(2, c)).abs() < 1e-5);
        }
        // And the restricted rows must differ from the fully-attended output
        // (row 0 sees everything under both masks, so compare row 2).
        let differs = (0..8).any(|c| (out_full.get(2, c) - out_chain.get(2, c)).abs() > 1e-6);
        assert!(differs);
    }

    #[test]
    fn changing_a_masked_out_node_does_not_change_output() {
        let attn = MaskedSelfAttention::new(4, 8, 8, 3);
        let mut x = Tensor2::uniform(3, 4, 1.0, 7);
        let mask = chain_mask(3);
        let before = attn.forward_inference(&x, &mask);
        // Node 0 is masked out from node 2's view (mask[2][0] = false) and
        // node 1's view; perturb node 0 and check rows 1, 2 are unchanged.
        x.set(0, 0, x.get(0, 0) + 10.0);
        let after = attn.forward_inference(&x, &mask);
        for r in 1..3 {
            for c in 0..8 {
                assert!(
                    (before.get(r, c) - after.get(r, c)).abs() < 1e-5,
                    "row {r} changed despite mask"
                );
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut attn = MaskedSelfAttention::new(3, 4, 4, 11);
        let x = Tensor2::uniform(4, 3, 1.0, 17);
        let mask = chain_mask(4);
        let y = attn.forward(&x, &mask);
        let dx = attn.backward(&y); // loss = ||y||²/2

        let eps = 1e-2f32;
        let loss =
            |attn: &MaskedSelfAttention, x: &Tensor2| 0.5 * attn.forward_inference(x, &mask).norm_sq();

        // Check each projection matrix.
        for which in 0..3 {
            let len = match which {
                0 => attn.wq.value.len(),
                1 => attn.wk.value.len(),
                _ => attn.wv.value.len(),
            };
            for idx in 0..len {
                let (orig, ana) = {
                    let p = match which {
                        0 => &attn.wq,
                        1 => &attn.wk,
                        _ => &attn.wv,
                    };
                    (p.value.as_slice()[idx], p.grad.as_slice()[idx])
                };
                let set = |attn: &mut MaskedSelfAttention, v: f32| {
                    let p = match which {
                        0 => &mut attn.wq,
                        1 => &mut attn.wk,
                        _ => &mut attn.wv,
                    };
                    p.value.as_mut_slice()[idx] = v;
                };
                set(&mut attn, orig + eps);
                let lp = loss(&attn, &x);
                set(&mut attn, orig - eps);
                let lm = loss(&attn, &x);
                set(&mut attn, orig);
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                    "W{which}[{idx}]: numeric {num} vs analytic {ana}"
                );
            }
        }
        // Check dx.
        let mut x2 = x.clone();
        for idx in 0..x2.len() {
            let orig = x2.as_slice()[idx];
            x2.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&attn, &x2);
            x2.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&attn, &x2);
            x2.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.as_slice()[idx];
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                "dx[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }
}
