#![warn(missing_docs)]
//! A micro deep-learning library: just enough to train DACE and the
//! baselines, from scratch, with no native dependencies.
//!
//! The paper's models are small (DACE is ~30k parameters), so instead of
//! binding a tensor framework this crate implements row-major `f32` matrices
//! ([`Tensor2`]) and a handful of modules with *explicit* forward/backward
//! passes: [`Linear`], [`LoraLinear`] (Low-Rank Adaptation, Eq. 8 of the
//! paper), [`Relu`], and single-head [`MaskedSelfAttention`] (Eq. 5).
//! Optimization is [`Adam`] with gradient clipping; featurization helpers
//! ([`RobustScaler`], one-hot) round out the kit.
//!
//! Every module's backward pass is verified against central finite
//! differences in the test suite — the from-scratch substitute for trusting
//! a framework's autograd.

mod adam;
mod attention;
mod linear;
mod param;
mod quant;
mod relu;
mod scaler;
mod tensor;
mod workspace;

pub use adam::Adam;
pub use attention::{MaskedSelfAttention, MASK_NEG};
pub use linear::{Linear, LoraLinear, LoraMode};
pub use param::Param;
pub use quant::{QuantRows, QuantScratch, QuantizedAttention, QuantizedLinear, QuantizedMatrix};
pub use relu::Relu;
pub use scaler::RobustScaler;
pub use tensor::{set_kernel_tier, set_reference_kernels, KernelTier, Tensor2};
pub use workspace::{AttnScratch, Workspace};

/// Seeded Xavier/Glorot-uniform initialization bound for a `fan_in × fan_out`
/// weight matrix.
pub fn xavier_bound(fan_in: usize, fan_out: usize) -> f32 {
    (6.0 / (fan_in + fan_out) as f32).sqrt()
}
