//! Fully-connected layers, with and without LoRA adapters.

use serde::{Deserialize, Serialize};

use crate::param::Param;
use crate::tensor::Tensor2;

fn default_true() -> bool {
    true
}

/// `y = x @ W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight, `in × out`.
    pub w: Param,
    /// Bias, `1 × out`.
    pub b: Param,
    #[serde(skip)]
    cache_x: Option<Tensor2>,
    /// Train/eval switch: in eval mode [`Linear::forward`] skips cloning
    /// the input into the backward cache.
    #[serde(skip, default = "default_true")]
    train: bool,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(input: usize, output: usize, seed: u64) -> Linear {
        Linear {
            w: Param::xavier(input, output, seed),
            b: Param::zeros(1, output),
            cache_x: None,
            train: true,
        }
    }

    /// Switch between training (input cached for backward) and eval (no
    /// cache clone) behaviour of [`Linear::forward`].
    pub fn set_train(&mut self, train: bool) {
        self.train = train;
        if !train {
            self.cache_x = None;
        }
    }

    /// Forward pass; caches the input for backward (in train mode).
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        if !self.train {
            return self.forward_inference(x);
        }
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(self.b.value.row(0));
        self.cache_x = Some(x.clone());
        y
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(self.b.value.row(0));
        y
    }

    /// Backward pass: accumulates dW, db; returns dx.
    pub fn backward(&mut self, dy: &Tensor2) -> Tensor2 {
        let x = self.cache_x.take().expect("backward called before forward");
        // dW = xᵀ @ dy
        self.w.grad.add_assign(&x.matmul_tn(dy));
        // db = column sums of dy
        let sums = dy.col_sums();
        for (i, s) in sums.iter().enumerate() {
            let cur = self.b.grad.get(0, i);
            self.b.grad.set(0, i, cur + s);
        }
        // dx = dy @ Wᵀ
        dy.matmul_nt(&self.w.value)
    }

    /// Stateless backward: like [`Linear::backward`] but with the caller
    /// supplying the cached input. Needed by recursive tree networks
    /// (QPPNet, Zero-Shot) that call the same layer many times per tree and
    /// therefore cannot rely on the single internal cache slot.
    pub fn backward_from(&mut self, dy: &Tensor2, x: &Tensor2) -> Tensor2 {
        self.w.grad.add_assign(&x.matmul_tn(dy));
        let sums = dy.col_sums();
        for (i, s) in sums.iter().enumerate() {
            let cur = self.b.grad.get(0, i);
            self.b.grad.set(0, i, cur + s);
        }
        dy.matmul_nt(&self.w.value)
    }

    /// Mutable references to the layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Total scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.count() + self.b.count()
    }
}

/// Which parameter set trains in a [`LoraLinear`] (the paper's Eq. 8
/// protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoraMode {
    /// Pre-training: update `W`/bias, freeze the adapters.
    Pretrain,
    /// Fine-tuning: freeze `W`/bias, update only `ΔW = B·A`.
    Finetune,
}

/// `y = x @ W + (x @ B) @ A + b` — a linear layer with a rank-`r` LoRA
/// adapter (`B: in×r`, `A: r×out`, `r ≪ min(in, out)`).
///
/// `A` starts at zero so `ΔW = 0` at initialization: fine-tuning begins
/// exactly at the pre-trained function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoraLinear {
    /// Base weight, `in × out`.
    pub w: Param,
    /// Bias, `1 × out`.
    pub b: Param,
    /// LoRA down-projection, `in × r`.
    pub lora_b: Param,
    /// LoRA up-projection, `r × out`.
    pub lora_a: Param,
    /// Current training mode.
    pub mode: LoraMode,
    #[serde(skip)]
    cache_x: Option<Tensor2>,
    #[serde(skip)]
    cache_xb: Option<Tensor2>,
    /// Train/eval switch: in eval mode [`LoraLinear::forward`] skips the
    /// cache clones.
    #[serde(skip, default = "default_true")]
    train: bool,
}

impl LoraLinear {
    /// Xavier base weight, Xavier `B`, zero `A`, pre-train mode.
    ///
    /// The rank only needs to be smaller than the larger dimension to save
    /// parameters (the paper itself uses r₃ = 8 on its 64 → 1 output layer).
    pub fn new(input: usize, output: usize, rank: usize, seed: u64) -> LoraLinear {
        assert!(
            rank >= 1 && rank < input.max(output),
            "LoRA rank must be in 1..max(in,out)"
        );
        let mut l = LoraLinear {
            w: Param::xavier(input, output, seed),
            b: Param::zeros(1, output),
            lora_b: Param::xavier(input, rank, seed ^ 0x10_0A),
            lora_a: Param::zeros(rank, output),
            mode: LoraMode::Pretrain,
            cache_x: None,
            cache_xb: None,
            train: true,
        };
        l.set_mode(LoraMode::Pretrain);
        l
    }

    /// Switch between training (activations cached for backward) and eval
    /// (no cache clones) behaviour of [`LoraLinear::forward`].
    pub fn set_train(&mut self, train: bool) {
        self.train = train;
        if !train {
            self.cache_x = None;
            self.cache_xb = None;
        }
    }

    /// Switch pre-train / fine-tune mode, updating trainability flags.
    pub fn set_mode(&mut self, mode: LoraMode) {
        self.mode = mode;
        let finetune = mode == LoraMode::Finetune;
        self.w.trainable = !finetune;
        self.b.trainable = !finetune;
        self.lora_a.trainable = finetune;
        self.lora_b.trainable = finetune;
    }

    /// Forward pass; caches activations for backward (in train mode).
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        if !self.train {
            return self.forward_inference(x);
        }
        let mut y = x.matmul(&self.w.value);
        let xb = x.matmul(&self.lora_b.value);
        y.add_assign(&xb.matmul(&self.lora_a.value));
        y.add_row_broadcast(self.b.value.row(0));
        self.cache_x = Some(x.clone());
        self.cache_xb = Some(xb);
        y
    }

    /// Workspace forward: `y = x @ W + (x @ B) @ A + b` written into
    /// caller-owned buffers (`y`, the LoRA intermediate `xb`, and a matmul
    /// temporary), with the caller keeping `x`/`xb` alive as the backward
    /// cache. Same op order as [`LoraLinear::forward`], so results are
    /// bit-identical; nothing allocates once the buffers reach capacity.
    pub fn forward_ws(&self, x: &Tensor2, y: &mut Tensor2, xb: &mut Tensor2, tmp: &mut Tensor2) {
        x.matmul_into(&self.w.value, y);
        x.matmul_into(&self.lora_b.value, xb);
        xb.matmul_into(&self.lora_a.value, tmp);
        y.add_assign(tmp);
        y.add_row_broadcast(self.b.value.row(0));
    }

    /// Workspace backward over the activations a [`LoraLinear::forward_ws`]
    /// call left in the caller's buffers: accumulates the mode-trainable
    /// parameter gradients (same order as [`LoraLinear::backward`]) and
    /// writes dx into `dx`. `dxb`/`gtmp` are reusable scratch.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_ws(
        &mut self,
        dy: &Tensor2,
        x: &Tensor2,
        xb: &Tensor2,
        dx: &mut Tensor2,
        dxb: &mut Tensor2,
        gtmp: &mut Tensor2,
    ) {
        if self.w.trainable {
            x.matmul_tn_into(dy, gtmp);
            self.w.grad.add_assign(gtmp);
        }
        if self.b.trainable {
            dy.col_sums_acc(self.b.grad.row_mut(0));
        }
        // dA = (xB)ᵀ @ dy ; d(xB) = dy @ Aᵀ ; dB = xᵀ @ d(xB)
        if self.lora_a.trainable {
            xb.matmul_tn_into(dy, gtmp);
            self.lora_a.grad.add_assign(gtmp);
        }
        dy.matmul_nt_into(&self.lora_a.value, dxb);
        if self.lora_b.trainable {
            x.matmul_tn_into(dxb, gtmp);
            self.lora_b.grad.add_assign(gtmp);
        }

        // dx = dy @ Wᵀ + d(xB) @ Bᵀ
        dy.matmul_nt_into(&self.w.value, dx);
        dxb.matmul_nt_into(&self.lora_b.value, gtmp);
        dx.add_assign(gtmp);
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let mut y = x.matmul(&self.w.value);
        let xb = x.matmul(&self.lora_b.value);
        y.add_assign(&xb.matmul(&self.lora_a.value));
        y.add_row_broadcast(self.b.value.row(0));
        y
    }

    /// Backward pass: accumulates gradients only on the parameters the
    /// current mode marks trainable (frozen weight gradients are skipped
    /// entirely — this is what makes LoRA tuning cheaper than full
    /// training, Sec. V-C) and returns dx.
    pub fn backward(&mut self, dy: &Tensor2) -> Tensor2 {
        let x = self.cache_x.take().expect("backward called before forward");
        let xb = self.cache_xb.take().expect("missing LoRA cache");

        if self.w.trainable {
            self.w.grad.add_assign(&x.matmul_tn(dy));
        }
        if self.b.trainable {
            let sums = dy.col_sums();
            for (i, s) in sums.iter().enumerate() {
                let cur = self.b.grad.get(0, i);
                self.b.grad.set(0, i, cur + s);
            }
        }
        // dA = (xB)ᵀ @ dy ; d(xB) = dy @ Aᵀ ; dB = xᵀ @ d(xB)
        if self.lora_a.trainable {
            self.lora_a.grad.add_assign(&xb.matmul_tn(dy));
        }
        let dxb = dy.matmul_nt(&self.lora_a.value);
        if self.lora_b.trainable {
            self.lora_b.grad.add_assign(&x.matmul_tn(&dxb));
        }

        // dx = dy @ Wᵀ + d(xB) @ Bᵀ
        let mut dx = dy.matmul_nt(&self.w.value);
        dx.add_assign(&dxb.matmul_nt(&self.lora_b.value));
        dx
    }

    /// Mutable references to all parameters (frozen ones included; the
    /// optimizer honours `trainable`).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b, &mut self.lora_b, &mut self.lora_a]
    }

    /// The adapter weights `(B, A)` — everything fine-tuning trains. This is
    /// the hand-off unit for per-database adapters: extract after
    /// fine-tuning, ship, and [`set_lora_weights`] into a base model.
    ///
    /// [`set_lora_weights`]: LoraLinear::set_lora_weights
    pub fn lora_weights(&self) -> (&Tensor2, &Tensor2) {
        (&self.lora_b.value, &self.lora_a.value)
    }

    /// Install adapter weights `(B, A)` extracted from a compatible layer.
    /// Fails (returning the expected shapes) instead of silently producing
    /// a model with torn dimensions.
    pub fn set_lora_weights(&mut self, b: Tensor2, a: Tensor2) -> Result<(), String> {
        let want_b = (self.lora_b.value.rows(), self.lora_b.value.cols());
        let want_a = (self.lora_a.value.rows(), self.lora_a.value.cols());
        if (b.rows(), b.cols()) != want_b || (a.rows(), a.cols()) != want_a {
            return Err(format!(
                "LoRA shape mismatch: got B {}×{} / A {}×{}, layer expects B {}×{} / A {}×{}",
                b.rows(),
                b.cols(),
                a.rows(),
                a.cols(),
                want_b.0,
                want_b.1,
                want_a.0,
                want_a.1
            ));
        }
        self.lora_b.value = b;
        self.lora_a.value = a;
        Ok(())
    }

    /// Base (non-LoRA) parameter count.
    pub fn base_param_count(&self) -> usize {
        self.w.count() + self.b.count()
    }

    /// Adapter-only parameter count (what fine-tuning trains).
    pub fn lora_param_count(&self) -> usize {
        self.lora_a.count() + self.lora_b.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference gradient check for Linear.
    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut layer = Linear::new(3, 2, 7);
        let x = Tensor2::uniform(4, 3, 1.0, 11);
        // Loss = sum(y²)/2 so dy = y.
        let y = layer.forward(&x);
        let dx = layer.backward(&y);

        let eps = 1e-3f32;
        let loss = |layer: &Linear, x: &Tensor2| -> f32 {
            let y = layer.forward_inference(x);
            0.5 * y.norm_sq()
        };
        // Check dW numerically.
        for idx in 0..layer.w.value.len() {
            let orig = layer.w.value.as_slice()[idx];
            layer.w.value.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&layer, &x);
            layer.w.value.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&layer, &x);
            layer.w.value.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = layer.w.grad.as_slice()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dW[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // Check dx numerically.
        let mut x2 = x.clone();
        for idx in 0..x2.len() {
            let orig = x2.as_slice()[idx];
            x2.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&layer, &x2);
            x2.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&layer, &x2);
            x2.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.as_slice()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dx[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn lora_starts_identical_to_base() {
        let mut lora = LoraLinear::new(6, 4, 2, 3);
        let x = Tensor2::uniform(5, 6, 1.0, 9);
        let y = lora.forward(&x);
        // A is zero ⇒ ΔW = 0 ⇒ output equals the base layer's.
        let base = x.matmul(&lora.w.value);
        for (a, b) in y.as_slice().iter().zip(base.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn lora_gradients_match_finite_differences() {
        let mut layer = LoraLinear::new(4, 3, 2, 5);
        // Adapter gradients only accumulate in fine-tune mode.
        layer.set_mode(LoraMode::Finetune);
        // Give A nonzero values so its gradient path is exercised.
        layer.lora_a.value = Tensor2::uniform(2, 3, 0.5, 21);
        let x = Tensor2::uniform(3, 4, 1.0, 13);
        let y = layer.forward(&x);
        let _ = layer.backward(&y);

        let eps = 1e-3f32;
        let loss =
            |layer: &LoraLinear, x: &Tensor2| -> f32 { 0.5 * layer.forward_inference(x).norm_sq() };
        for (name, grad_idx) in [("lora_a", 0usize), ("lora_b", 1)] {
            let n = if grad_idx == 0 {
                layer.lora_a.value.len()
            } else {
                layer.lora_b.value.len()
            };
            for idx in 0..n {
                let (orig, ana) = if grad_idx == 0 {
                    (
                        layer.lora_a.value.as_slice()[idx],
                        layer.lora_a.grad.as_slice()[idx],
                    )
                } else {
                    (
                        layer.lora_b.value.as_slice()[idx],
                        layer.lora_b.grad.as_slice()[idx],
                    )
                };
                let set = |layer: &mut LoraLinear, v: f32| {
                    if grad_idx == 0 {
                        layer.lora_a.value.as_mut_slice()[idx] = v;
                    } else {
                        layer.lora_b.value.as_mut_slice()[idx] = v;
                    }
                };
                set(&mut layer, orig + eps);
                let lp = loss(&layer, &x);
                set(&mut layer, orig - eps);
                let lm = loss(&layer, &x);
                set(&mut layer, orig);
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                    "{name}[{idx}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn mode_switch_flips_trainability() {
        let mut layer = LoraLinear::new(8, 4, 2, 1);
        assert!(layer.w.trainable && !layer.lora_a.trainable);
        layer.set_mode(LoraMode::Finetune);
        assert!(!layer.w.trainable && layer.lora_a.trainable && layer.lora_b.trainable);
    }

    #[test]
    fn lora_weight_roundtrip_and_shape_guard() {
        let mut src = LoraLinear::new(6, 4, 2, 3);
        src.lora_a.value = Tensor2::uniform(2, 4, 0.5, 17);
        let mut dst = LoraLinear::new(6, 4, 2, 99);
        let (b, a) = src.lora_weights();
        dst.set_lora_weights(b.clone(), a.clone()).unwrap();
        let x = Tensor2::uniform(3, 6, 1.0, 5);
        // Same base? No — different seeds. But the LoRA delta must match:
        // Δ = (x @ B) @ A is identical once the adapters are installed.
        let delta = |l: &LoraLinear| x.matmul(&l.lora_b.value).matmul(&l.lora_a.value);
        assert_eq!(delta(&src).as_slice(), delta(&dst).as_slice());
        // Wrong-rank adapters are rejected, not torn in.
        let bad = LoraLinear::new(6, 4, 3, 1);
        let (bb, ba) = (bad.lora_b.value.clone(), bad.lora_a.value.clone());
        assert!(dst.set_lora_weights(bb, ba).is_err());
    }

    #[test]
    fn workspace_forward_backward_match_caching_path() {
        for mode in [LoraMode::Pretrain, LoraMode::Finetune] {
            let mut a = LoraLinear::new(6, 4, 2, 3);
            a.lora_a.value = Tensor2::uniform(2, 4, 0.5, 17);
            a.set_mode(mode);
            let mut b = a.clone();
            let x = Tensor2::uniform(5, 6, 1.0, 9);
            let dy = Tensor2::uniform(5, 4, 1.0, 23);

            let y = a.forward(&x);
            let dx = a.backward(&dy);

            let (mut y2, mut xb, mut tmp) =
                (Tensor2::default(), Tensor2::default(), Tensor2::default());
            let (mut dx2, mut dxb, mut gtmp) =
                (Tensor2::default(), Tensor2::default(), Tensor2::default());
            b.forward_ws(&x, &mut y2, &mut xb, &mut tmp);
            b.backward_ws(&dy, &x, &xb, &mut dx2, &mut dxb, &mut gtmp);

            assert_eq!(y.as_slice(), y2.as_slice(), "{mode:?} forward");
            assert_eq!(dx.as_slice(), dx2.as_slice(), "{mode:?} dx");
            for (pa, pb) in a.params_mut().iter().zip(b.params_mut().iter()) {
                assert_eq!(pa.grad.as_slice(), pb.grad.as_slice(), "{mode:?} grads");
            }
        }
    }

    #[test]
    fn eval_mode_forward_skips_cache() {
        let mut lin = Linear::new(3, 2, 7);
        let mut lora = LoraLinear::new(3, 2, 1, 7);
        let x = Tensor2::uniform(4, 3, 1.0, 11);
        lin.set_train(false);
        lora.set_train(false);
        assert_eq!(lin.forward(&x), lin.forward_inference(&x));
        assert_eq!(lora.forward(&x), lora.forward_inference(&x));
        assert!(lin.cache_x.is_none() && lora.cache_x.is_none() && lora.cache_xb.is_none());
        lin.set_train(true);
        let _ = lin.forward(&x);
        assert!(lin.cache_x.is_some());
    }

    #[test]
    fn lora_param_count_is_much_smaller() {
        let layer = LoraLinear::new(128, 128, 32, 2);
        assert!(layer.lora_param_count() < layer.base_param_count());
        assert_eq!(layer.lora_param_count(), 128 * 32 + 32 * 128);
    }
}
