//! Fully-connected layers, with and without LoRA adapters.

use serde::{Deserialize, Serialize};

use crate::param::Param;
use crate::tensor::Tensor2;

/// `y = x @ W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight, `in × out`.
    pub w: Param,
    /// Bias, `1 × out`.
    pub b: Param,
    #[serde(skip)]
    cache_x: Option<Tensor2>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(input: usize, output: usize, seed: u64) -> Linear {
        Linear {
            w: Param::xavier(input, output, seed),
            b: Param::zeros(1, output),
            cache_x: None,
        }
    }

    /// Forward pass; caches the input for backward.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(self.b.value.row(0));
        self.cache_x = Some(x.clone());
        y
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let mut y = x.matmul(&self.w.value);
        y.add_row_broadcast(self.b.value.row(0));
        y
    }

    /// Backward pass: accumulates dW, db; returns dx.
    pub fn backward(&mut self, dy: &Tensor2) -> Tensor2 {
        let x = self.cache_x.take().expect("backward called before forward");
        // dW = xᵀ @ dy
        self.w.grad.add_assign(&x.matmul_tn(dy));
        // db = column sums of dy
        let sums = dy.col_sums();
        for (i, s) in sums.iter().enumerate() {
            let cur = self.b.grad.get(0, i);
            self.b.grad.set(0, i, cur + s);
        }
        // dx = dy @ Wᵀ
        dy.matmul_nt(&self.w.value)
    }

    /// Stateless backward: like [`Linear::backward`] but with the caller
    /// supplying the cached input. Needed by recursive tree networks
    /// (QPPNet, Zero-Shot) that call the same layer many times per tree and
    /// therefore cannot rely on the single internal cache slot.
    pub fn backward_from(&mut self, dy: &Tensor2, x: &Tensor2) -> Tensor2 {
        self.w.grad.add_assign(&x.matmul_tn(dy));
        let sums = dy.col_sums();
        for (i, s) in sums.iter().enumerate() {
            let cur = self.b.grad.get(0, i);
            self.b.grad.set(0, i, cur + s);
        }
        dy.matmul_nt(&self.w.value)
    }

    /// Mutable references to the layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Total scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.count() + self.b.count()
    }
}

/// Which parameter set trains in a [`LoraLinear`] (the paper's Eq. 8
/// protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoraMode {
    /// Pre-training: update `W`/bias, freeze the adapters.
    Pretrain,
    /// Fine-tuning: freeze `W`/bias, update only `ΔW = B·A`.
    Finetune,
}

/// `y = x @ W + (x @ B) @ A + b` — a linear layer with a rank-`r` LoRA
/// adapter (`B: in×r`, `A: r×out`, `r ≪ min(in, out)`).
///
/// `A` starts at zero so `ΔW = 0` at initialization: fine-tuning begins
/// exactly at the pre-trained function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoraLinear {
    /// Base weight, `in × out`.
    pub w: Param,
    /// Bias, `1 × out`.
    pub b: Param,
    /// LoRA down-projection, `in × r`.
    pub lora_b: Param,
    /// LoRA up-projection, `r × out`.
    pub lora_a: Param,
    /// Current training mode.
    pub mode: LoraMode,
    #[serde(skip)]
    cache_x: Option<Tensor2>,
    #[serde(skip)]
    cache_xb: Option<Tensor2>,
}

impl LoraLinear {
    /// Xavier base weight, Xavier `B`, zero `A`, pre-train mode.
    ///
    /// The rank only needs to be smaller than the larger dimension to save
    /// parameters (the paper itself uses r₃ = 8 on its 64 → 1 output layer).
    pub fn new(input: usize, output: usize, rank: usize, seed: u64) -> LoraLinear {
        assert!(
            rank >= 1 && rank < input.max(output),
            "LoRA rank must be in 1..max(in,out)"
        );
        let mut l = LoraLinear {
            w: Param::xavier(input, output, seed),
            b: Param::zeros(1, output),
            lora_b: Param::xavier(input, rank, seed ^ 0x10_0A),
            lora_a: Param::zeros(rank, output),
            mode: LoraMode::Pretrain,
            cache_x: None,
            cache_xb: None,
        };
        l.set_mode(LoraMode::Pretrain);
        l
    }

    /// Switch pre-train / fine-tune mode, updating trainability flags.
    pub fn set_mode(&mut self, mode: LoraMode) {
        self.mode = mode;
        let finetune = mode == LoraMode::Finetune;
        self.w.trainable = !finetune;
        self.b.trainable = !finetune;
        self.lora_a.trainable = finetune;
        self.lora_b.trainable = finetune;
    }

    /// Forward pass; caches activations for backward.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let mut y = x.matmul(&self.w.value);
        let xb = x.matmul(&self.lora_b.value);
        y.add_assign(&xb.matmul(&self.lora_a.value));
        y.add_row_broadcast(self.b.value.row(0));
        self.cache_x = Some(x.clone());
        self.cache_xb = Some(xb);
        y
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let mut y = x.matmul(&self.w.value);
        let xb = x.matmul(&self.lora_b.value);
        y.add_assign(&xb.matmul(&self.lora_a.value));
        y.add_row_broadcast(self.b.value.row(0));
        y
    }

    /// Backward pass: accumulates gradients only on the parameters the
    /// current mode marks trainable (frozen weight gradients are skipped
    /// entirely — this is what makes LoRA tuning cheaper than full
    /// training, Sec. V-C) and returns dx.
    pub fn backward(&mut self, dy: &Tensor2) -> Tensor2 {
        let x = self.cache_x.take().expect("backward called before forward");
        let xb = self.cache_xb.take().expect("missing LoRA cache");

        if self.w.trainable {
            self.w.grad.add_assign(&x.matmul_tn(dy));
        }
        if self.b.trainable {
            let sums = dy.col_sums();
            for (i, s) in sums.iter().enumerate() {
                let cur = self.b.grad.get(0, i);
                self.b.grad.set(0, i, cur + s);
            }
        }
        // dA = (xB)ᵀ @ dy ; d(xB) = dy @ Aᵀ ; dB = xᵀ @ d(xB)
        if self.lora_a.trainable {
            self.lora_a.grad.add_assign(&xb.matmul_tn(dy));
        }
        let dxb = dy.matmul_nt(&self.lora_a.value);
        if self.lora_b.trainable {
            self.lora_b.grad.add_assign(&x.matmul_tn(&dxb));
        }

        // dx = dy @ Wᵀ + d(xB) @ Bᵀ
        let mut dx = dy.matmul_nt(&self.w.value);
        dx.add_assign(&dxb.matmul_nt(&self.lora_b.value));
        dx
    }

    /// Mutable references to all parameters (frozen ones included; the
    /// optimizer honours `trainable`).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b, &mut self.lora_b, &mut self.lora_a]
    }

    /// The adapter weights `(B, A)` — everything fine-tuning trains. This is
    /// the hand-off unit for per-database adapters: extract after
    /// fine-tuning, ship, and [`set_lora_weights`] into a base model.
    ///
    /// [`set_lora_weights`]: LoraLinear::set_lora_weights
    pub fn lora_weights(&self) -> (&Tensor2, &Tensor2) {
        (&self.lora_b.value, &self.lora_a.value)
    }

    /// Install adapter weights `(B, A)` extracted from a compatible layer.
    /// Fails (returning the expected shapes) instead of silently producing
    /// a model with torn dimensions.
    pub fn set_lora_weights(&mut self, b: Tensor2, a: Tensor2) -> Result<(), String> {
        let want_b = (self.lora_b.value.rows(), self.lora_b.value.cols());
        let want_a = (self.lora_a.value.rows(), self.lora_a.value.cols());
        if (b.rows(), b.cols()) != want_b || (a.rows(), a.cols()) != want_a {
            return Err(format!(
                "LoRA shape mismatch: got B {}×{} / A {}×{}, layer expects B {}×{} / A {}×{}",
                b.rows(),
                b.cols(),
                a.rows(),
                a.cols(),
                want_b.0,
                want_b.1,
                want_a.0,
                want_a.1
            ));
        }
        self.lora_b.value = b;
        self.lora_a.value = a;
        Ok(())
    }

    /// Base (non-LoRA) parameter count.
    pub fn base_param_count(&self) -> usize {
        self.w.count() + self.b.count()
    }

    /// Adapter-only parameter count (what fine-tuning trains).
    pub fn lora_param_count(&self) -> usize {
        self.lora_a.count() + self.lora_b.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference gradient check for Linear.
    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut layer = Linear::new(3, 2, 7);
        let x = Tensor2::uniform(4, 3, 1.0, 11);
        // Loss = sum(y²)/2 so dy = y.
        let y = layer.forward(&x);
        let dx = layer.backward(&y);

        let eps = 1e-3f32;
        let loss = |layer: &Linear, x: &Tensor2| -> f32 {
            let y = layer.forward_inference(x);
            0.5 * y.norm_sq()
        };
        // Check dW numerically.
        for idx in 0..layer.w.value.len() {
            let orig = layer.w.value.as_slice()[idx];
            layer.w.value.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&layer, &x);
            layer.w.value.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&layer, &x);
            layer.w.value.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = layer.w.grad.as_slice()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dW[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // Check dx numerically.
        let mut x2 = x.clone();
        for idx in 0..x2.len() {
            let orig = x2.as_slice()[idx];
            x2.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&layer, &x2);
            x2.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&layer, &x2);
            x2.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.as_slice()[idx];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dx[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn lora_starts_identical_to_base() {
        let mut lora = LoraLinear::new(6, 4, 2, 3);
        let x = Tensor2::uniform(5, 6, 1.0, 9);
        let y = lora.forward(&x);
        // A is zero ⇒ ΔW = 0 ⇒ output equals the base layer's.
        let base = x.matmul(&lora.w.value);
        for (a, b) in y.as_slice().iter().zip(base.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn lora_gradients_match_finite_differences() {
        let mut layer = LoraLinear::new(4, 3, 2, 5);
        // Adapter gradients only accumulate in fine-tune mode.
        layer.set_mode(LoraMode::Finetune);
        // Give A nonzero values so its gradient path is exercised.
        layer.lora_a.value = Tensor2::uniform(2, 3, 0.5, 21);
        let x = Tensor2::uniform(3, 4, 1.0, 13);
        let y = layer.forward(&x);
        let _ = layer.backward(&y);

        let eps = 1e-3f32;
        let loss =
            |layer: &LoraLinear, x: &Tensor2| -> f32 { 0.5 * layer.forward_inference(x).norm_sq() };
        for (name, grad_idx) in [("lora_a", 0usize), ("lora_b", 1)] {
            let n = if grad_idx == 0 {
                layer.lora_a.value.len()
            } else {
                layer.lora_b.value.len()
            };
            for idx in 0..n {
                let (orig, ana) = if grad_idx == 0 {
                    (
                        layer.lora_a.value.as_slice()[idx],
                        layer.lora_a.grad.as_slice()[idx],
                    )
                } else {
                    (
                        layer.lora_b.value.as_slice()[idx],
                        layer.lora_b.grad.as_slice()[idx],
                    )
                };
                let set = |layer: &mut LoraLinear, v: f32| {
                    if grad_idx == 0 {
                        layer.lora_a.value.as_mut_slice()[idx] = v;
                    } else {
                        layer.lora_b.value.as_mut_slice()[idx] = v;
                    }
                };
                set(&mut layer, orig + eps);
                let lp = loss(&layer, &x);
                set(&mut layer, orig - eps);
                let lm = loss(&layer, &x);
                set(&mut layer, orig);
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                    "{name}[{idx}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn mode_switch_flips_trainability() {
        let mut layer = LoraLinear::new(8, 4, 2, 1);
        assert!(layer.w.trainable && !layer.lora_a.trainable);
        layer.set_mode(LoraMode::Finetune);
        assert!(!layer.w.trainable && layer.lora_a.trainable && layer.lora_b.trainable);
    }

    #[test]
    fn lora_weight_roundtrip_and_shape_guard() {
        let mut src = LoraLinear::new(6, 4, 2, 3);
        src.lora_a.value = Tensor2::uniform(2, 4, 0.5, 17);
        let mut dst = LoraLinear::new(6, 4, 2, 99);
        let (b, a) = src.lora_weights();
        dst.set_lora_weights(b.clone(), a.clone()).unwrap();
        let x = Tensor2::uniform(3, 6, 1.0, 5);
        // Same base? No — different seeds. But the LoRA delta must match:
        // Δ = (x @ B) @ A is identical once the adapters are installed.
        let delta = |l: &LoraLinear| x.matmul(&l.lora_b.value).matmul(&l.lora_a.value);
        assert_eq!(delta(&src).as_slice(), delta(&dst).as_slice());
        // Wrong-rank adapters are rejected, not torn in.
        let bad = LoraLinear::new(6, 4, 3, 1);
        let (bb, ba) = (bad.lora_b.value.clone(), bad.lora_a.value.clone());
        assert!(dst.set_lora_weights(bb, ba).is_err());
    }

    #[test]
    fn lora_param_count_is_much_smaller() {
        let layer = LoraLinear::new(128, 128, 32, 2);
        assert!(layer.lora_param_count() < layer.base_param_count());
        assert_eq!(layer.lora_param_count(), 128 * 32 + 32 * 128);
    }
}
