//! Trainable parameters: value + gradient + Adam state.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor2;

/// One trainable parameter tensor with its accumulated gradient and Adam
/// moment estimates.
///
/// `trainable` implements the paper's two-phase LoRA protocol (Eq. 8):
/// pre-training updates the base weights and freezes the adapters;
/// fine-tuning flips both flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter values.
    pub value: Tensor2,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor2,
    /// Adam first-moment estimate.
    pub m: Tensor2,
    /// Adam second-moment estimate.
    pub v: Tensor2,
    /// Whether the optimizer may update this parameter.
    pub trainable: bool,
}

impl Param {
    /// Parameter from an initial value, trainable, zeroed state.
    pub fn new(value: Tensor2) -> Param {
        let (r, c) = (value.rows(), value.cols());
        Param {
            value,
            grad: Tensor2::zeros(r, c),
            m: Tensor2::zeros(r, c),
            v: Tensor2::zeros(r, c),
            trainable: true,
        }
    }

    /// Zero-initialized parameter.
    pub fn zeros(rows: usize, cols: usize) -> Param {
        Param::new(Tensor2::zeros(rows, cols))
    }

    /// Seeded Xavier-uniform parameter for a `fan_in × fan_out` weight.
    pub fn xavier(fan_in: usize, fan_out: usize, seed: u64) -> Param {
        let bound = crate::xavier_bound(fan_in, fan_out);
        Param::new(Tensor2::uniform(fan_in, fan_out, bound, seed))
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.value.len()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bound_shrinks_with_fanin() {
        let small = Param::xavier(4, 4, 0);
        let large = Param::xavier(400, 400, 0);
        let max_small = small
            .value
            .as_slice()
            .iter()
            .fold(0.0f32, |a, v| a.max(v.abs()));
        let max_large = large
            .value
            .as_slice()
            .iter()
            .fold(0.0f32, |a, v| a.max(v.abs()));
        assert!(max_small > max_large);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros(2, 2);
        p.grad.set(0, 0, 5.0);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0; 4]);
    }
}
