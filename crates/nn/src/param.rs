//! Trainable parameters: value + gradient + Adam state.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor2;

/// One trainable parameter tensor with its accumulated gradient and Adam
/// moment estimates.
///
/// `trainable` implements the paper's two-phase LoRA protocol (Eq. 8):
/// pre-training updates the base weights and freezes the adapters;
/// fine-tuning flips both flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter values.
    pub value: Tensor2,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor2,
    /// Adam first-moment estimate.
    pub m: Tensor2,
    /// Adam second-moment estimate.
    pub v: Tensor2,
    /// Whether the optimizer may update this parameter.
    pub trainable: bool,
}

impl Param {
    /// Parameter from an initial value, trainable, zeroed state.
    pub fn new(value: Tensor2) -> Param {
        let (r, c) = (value.rows(), value.cols());
        Param {
            value,
            grad: Tensor2::zeros(r, c),
            m: Tensor2::zeros(r, c),
            v: Tensor2::zeros(r, c),
            trainable: true,
        }
    }

    /// Zero-initialized parameter.
    pub fn zeros(rows: usize, cols: usize) -> Param {
        Param::new(Tensor2::zeros(rows, cols))
    }

    /// Seeded Xavier-uniform parameter for a `fan_in × fan_out` weight.
    pub fn xavier(fan_in: usize, fan_out: usize, seed: u64) -> Param {
        let bound = crate::xavier_bound(fan_in, fan_out);
        Param::new(Tensor2::uniform(fan_in, fan_out, bound, seed))
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.value.len()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Drop the gradient and Adam moments (shrunk to `0 × 0`), keeping only
    /// the values. A detached parameter is what serving snapshots share
    /// across threads: it costs a quarter of the training-time memory and
    /// clones four times faster. Inference never touches the dropped
    /// tensors; training paths restore them via [`Param::restore_state`].
    pub fn detach(&mut self) {
        self.grad = Tensor2::zeros(0, 0);
        self.m = Tensor2::zeros(0, 0);
        self.v = Tensor2::zeros(0, 0);
    }

    /// Whether the optimizer state has been dropped by [`Param::detach`].
    pub fn is_detached(&self) -> bool {
        self.grad.len() != self.value.len()
    }

    /// Reallocate zeroed gradient/moment tensors if they were detached (or
    /// loaded with mismatched shapes). Training entry points call this so a
    /// detached serving snapshot can be fine-tuned again.
    pub fn restore_state(&mut self) {
        if self.is_detached() {
            let (r, c) = (self.value.rows(), self.value.cols());
            self.grad = Tensor2::zeros(r, c);
            self.m = Tensor2::zeros(r, c);
            self.v = Tensor2::zeros(r, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bound_shrinks_with_fanin() {
        let small = Param::xavier(4, 4, 0);
        let large = Param::xavier(400, 400, 0);
        let max_small = small
            .value
            .as_slice()
            .iter()
            .fold(0.0f32, |a, v| a.max(v.abs()));
        let max_large = large
            .value
            .as_slice()
            .iter()
            .fold(0.0f32, |a, v| a.max(v.abs()));
        assert!(max_small > max_large);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros(2, 2);
        p.grad.set(0, 0, 5.0);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn detach_drops_state_and_restore_reallocates() {
        let mut p = Param::xavier(3, 4, 1);
        p.grad.set(1, 1, 2.0);
        p.m.set(0, 0, 1.0);
        let values = p.value.clone();
        p.detach();
        assert!(p.is_detached());
        assert_eq!(p.grad.len(), 0);
        assert_eq!(p.m.len(), 0);
        assert_eq!(p.v.len(), 0);
        assert_eq!(p.value, values, "detach must not touch the values");
        p.restore_state();
        assert!(!p.is_detached());
        assert_eq!(p.grad.as_slice(), &[0.0; 12]);
        assert_eq!(p.value, values);
    }
}
