//! Int8 quantized inference kernels — the serving fast tier.
//!
//! Weight matrices are quantized **per output channel** ("per-row scale":
//! the matrix is stored transposed, one row per output channel, each row
//! carrying its own `f32` scale), activations are quantized dynamically per
//! input row, and dot products accumulate in `i32` before one multiply by
//! `scale_x · scale_w` dequantizes the result. That keeps the quantization
//! error per output at the int8 resolution (~1/127 relative) regardless of
//! channel magnitude spread.
//!
//! [`QuantizedLinear`] additionally **folds the LoRA delta into the base
//! weight** at quantization time (`W_eff = W + B·A`): the quantized forward
//! is a single int8 matmul plus bias where the full-precision path runs
//! three f32 matmuls — the fold is exact (done in f32 before quantizing)
//! and is where most of the fast tier's speedup comes from.
//!
//! [`QuantizedAttention`] quantizes only the Q/K/V projections; scores,
//! the interval-sparse masked softmax and the value combine stay in f32,
//! replicating [`MaskedSelfAttention::forward_masks_into`] exactly —
//! including the guard that a fully-masked (all `-inf` logits) row produces
//! a **zero, finite** output row instead of `NaN`.
//!
//! Built once per registry swap (never on the request path), so
//! quantization cost is amortized across every request a model version
//! serves.
//!
//! [`MaskedSelfAttention::forward_masks_into`]: crate::MaskedSelfAttention::forward_masks_into

use crate::attention::MaskedSelfAttention;
use crate::linear::LoraLinear;
use crate::tensor::Tensor2;

/// One int8-quantized weight matrix with per-output-channel scales.
///
/// Logically `in × out` (the right-hand side of `y = x·W`), stored
/// **k-major and quad-interleaved**: inputs are grouped in quads of four
/// (zero-padded), and for quad `q` the weights of all output channels sit
/// contiguously as 4-byte groups — `w[4q..4q+4, o]` at byte offset
/// `(q·out_pad + o)·4`. That is exactly the operand shape of AVX-512 VNNI's
/// `vpdpbusd` (64 int8 MACs per instruction into sixteen i32 lanes), and it
/// lets the scalar fallback accumulate down columns without the per-channel
/// horizontal reduction that made a channel-major layout slower than the
/// autovectorized f32 matmul at `in_dim = FEATURE_DIM`.
///
/// Activations are quantized to **u8 with a +128 zero point** (`vpdpbusd`
/// is unsigned×signed); the exact correction `128·Σ_k w[k,o]` is
/// precomputed per channel in [`Self::wsum`] and subtracted after
/// accumulation, so the result equals the symmetric i8·i8 dot bit for bit
/// on every path.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// `quads × out_pad × 4` int8, quad-interleaved k-major (see above).
    data: Vec<i8>,
    /// Per-output-channel dequantization scale, zero-padded to `out_pad`.
    scales: Vec<f32>,
    /// Per-channel weight sums (`Σ_k w[k,o]`) for the u8 zero-point
    /// correction, zero-padded to `out_pad`.
    wsum: Vec<i32>,
    in_dim: usize,
    out_dim: usize,
    /// `ceil(in_dim / 4)` input quads.
    quads: usize,
    /// `out_dim` rounded up to the 32-channel register tile.
    out_pad: usize,
}

/// Quantized activation lanes per `vpdpbusd` group.
const QUAD: usize = 4;
/// i32 lanes per AVX-512 vector.
const TILE: usize = 16;
/// Output channels per register tile (two vectors); `out_pad` rounds up to
/// this so the column loop never branches on vector width.
const GROUP: usize = 2 * TILE;
/// Input rows per register tile: 4 rows × 2 column vectors = 8 live
/// accumulators, leaving headroom for the weight and broadcast registers.
const ROW_TILE: usize = 4;

/// Dynamically quantized activation rows, decoupled from the matmul so one
/// quantization pass can feed several weight matrices (the attention Q/K/V
/// projections share it three ways).
///
/// Rows are u8 at a +128 zero point, padded to whole quads with the zero
/// point (padding multiplies all-zero weights). A zero or non-finite input
/// row keeps `sx = 0` and an all-zero-point quantized row, which the
/// matmul turns into an exactly-zero output row rather than poison.
#[derive(Debug, Default)]
pub struct QuantRows {
    /// `n × quads·4` u8, row-major.
    xu: Vec<u8>,
    /// Per-row dequantization scale (`absmax / 127`, 0 for degenerate rows).
    sx: Vec<f32>,
    n: usize,
    quads: usize,
}

impl QuantRows {
    /// Quantize every row of `x`. Buffers are reused across calls.
    ///
    /// The AVX-512 path rounds half-way values to even (`vcvtps2dq`) where
    /// the portable path rounds them away from zero — a ≤1-LSB difference
    /// on exact `.5` boundaries only, well inside the int8 error budget.
    pub fn quantize(&mut self, x: &Tensor2) {
        let quads = x.cols().div_ceil(QUAD);
        let stride = quads * QUAD;
        self.n = x.rows();
        self.quads = quads;
        self.xu.clear();
        self.xu.resize(self.n * stride, ZERO_POINT);
        self.sx.clear();
        self.sx.resize(self.n, 0.0);
        #[cfg(target_arch = "x86_64")]
        {
            if vnni_available() {
                // SAFETY: guarded by runtime avx512f+bw+vl detection.
                unsafe { self.quantize_avx512(x, stride) };
                return;
            }
        }
        self.quantize_scalar(x, stride);
    }

    fn quantize_scalar(&mut self, x: &Tensor2, stride: usize) {
        for i in 0..self.n {
            let row = x.row(i);
            let mut absmax = 0.0f32;
            for &v in row {
                absmax = absmax.max(v.abs());
            }
            if absmax == 0.0 || !absmax.is_finite() {
                continue;
            }
            self.sx[i] = absmax / 127.0;
            let inv = 127.0 / absmax;
            let dst = &mut self.xu[i * stride..i * stride + row.len()];
            for (q, &v) in dst.iter_mut().zip(row) {
                let s = (v * inv).round().clamp(-127.0, 127.0) as i32;
                *q = (s + i32::from(ZERO_POINT)) as u8;
            }
        }
    }

    /// Vectorized row quantization: one abs-max/NaN sweep and one
    /// scale-round-clamp-narrow sweep per row, 16 lanes at a time with
    /// masked tail loads/stores.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512vl")]
    unsafe fn quantize_avx512(&mut self, x: &Tensor2, stride: usize) {
        use std::arch::x86_64::*;
        let len = x.cols();
        let sign = _mm512_set1_ps(-0.0);
        for i in 0..self.n {
            let row = x.row(i).as_ptr();
            let mut vmax = _mm512_setzero_ps();
            let mut unord: u16 = 0;
            let mut k = 0;
            while k + TILE <= len {
                let v = _mm512_loadu_ps(row.add(k));
                unord |= _mm512_cmp_ps_mask::<_CMP_UNORD_Q>(v, v);
                vmax = _mm512_max_ps(vmax, _mm512_andnot_ps(sign, v));
                k += TILE;
            }
            if k < len {
                let m: u16 = (1 << (len - k)) - 1;
                let v = _mm512_maskz_loadu_ps(m, row.add(k));
                unord |= _mm512_cmp_ps_mask::<_CMP_UNORD_Q>(v, v);
                vmax = _mm512_max_ps(vmax, _mm512_andnot_ps(sign, v));
            }
            let absmax = _mm512_reduce_max_ps(vmax);
            if absmax == 0.0 || !absmax.is_finite() || unord != 0 {
                continue; // degenerate row: sx stays 0, xu stays zero-point
            }
            self.sx[i] = absmax / 127.0;
            let inv = _mm512_set1_ps(127.0 / absmax);
            let lo = _mm512_set1_epi32(-127);
            let hi = _mm512_set1_epi32(127);
            let zp = _mm512_set1_epi32(i32::from(ZERO_POINT));
            let dst = self.xu.as_mut_ptr().add(i * stride);
            let mut k = 0;
            while k < len {
                let m: u16 = if k + TILE <= len {
                    !0
                } else {
                    (1 << (len - k)) - 1
                };
                let v = _mm512_maskz_loadu_ps(m, row.add(k));
                let q = _mm512_cvtps_epi32(_mm512_mul_ps(v, inv));
                let q = _mm512_add_epi32(_mm512_min_epi32(_mm512_max_epi32(q, lo), hi), zp);
                _mm_mask_storeu_epi8(dst.add(k).cast(), m, _mm512_cvtepi32_epi8(q));
                k += TILE;
            }
        }
    }
}

impl QuantizedMatrix {
    /// Quantize a full-precision `in × out` matrix. Each output channel
    /// (column of `w`) gets scale `max|w[:,o]| / 127`; an all-zero channel
    /// keeps scale 0 and dequantizes to exact zeros.
    pub fn from_f32(w: &Tensor2) -> QuantizedMatrix {
        let (in_dim, out_dim) = (w.rows(), w.cols());
        let quads = in_dim.div_ceil(QUAD);
        let out_pad = out_dim.div_ceil(GROUP) * GROUP;
        let mut data = vec![0i8; quads * out_pad * QUAD];
        let mut scales = vec![0.0f32; out_pad];
        let mut wsum = vec![0i32; out_pad];
        for o in 0..out_dim {
            let mut absmax = 0.0f32;
            for k in 0..in_dim {
                absmax = absmax.max(w.get(k, o).abs());
            }
            if absmax == 0.0 {
                continue;
            }
            scales[o] = absmax / 127.0;
            let inv = 127.0 / absmax;
            for k in 0..in_dim {
                let q = (w.get(k, o) * inv).round().clamp(-127.0, 127.0) as i8;
                data[(k / QUAD * out_pad + o) * QUAD + k % QUAD] = q;
                wsum[o] += i32::from(q);
            }
        }
        QuantizedMatrix {
            data,
            scales,
            wsum,
            in_dim,
            out_dim,
            quads,
            out_pad,
        }
    }

    /// Input dimension (`rows` of the logical matrix).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension (`cols` of the logical matrix).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Reconstruct the f32 matrix (`in × out`) — tests and error analysis.
    pub fn dequantize(&self) -> Tensor2 {
        let mut out = Tensor2::zeros(self.in_dim, self.out_dim);
        for k in 0..self.in_dim {
            let row = out.row_mut(k);
            for (o, v) in row.iter_mut().enumerate() {
                let q = self.data[(k / QUAD * self.out_pad + o) * QUAD + k % QUAD];
                *v = f32::from(q) * self.scales[o];
            }
        }
        out
    }

    /// Bytes held by the quantized weights (the memory-footprint story:
    /// ~4× smaller than the f32 matrix they replace).
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4 + self.wsum.len() * 4
    }

    /// `y = x · W` with dynamic per-row activation quantization. `x` is
    /// `n × in_dim`; `out` is resized to `n × out_dim`. `scratch` holds the
    /// quantized activation rows and is reused across calls.
    pub fn matmul_into(&self, x: &Tensor2, out: &mut Tensor2, scratch: &mut QuantScratch) {
        assert_eq!(x.cols(), self.in_dim, "input width mismatch");
        scratch.rows.quantize(x);
        self.matmul_quant_into(&scratch.rows, out);
    }

    /// `y = x · W` over already-quantized rows — the attention forward
    /// quantizes once and feeds all three projections through here.
    pub fn matmul_quant_into(&self, rows: &QuantRows, out: &mut Tensor2) {
        assert_eq!(rows.quads, self.quads, "quantized row width mismatch");
        // Every element of `out` is written below (degenerate rows dequantize
        // to exact zeros via `sx = 0`), so no zero-fill is needed.
        out.resize_for_overwrite(rows.n, self.out_dim);
        if rows.n == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if vnni_available() {
                // SAFETY: guarded by runtime avx512f+bw+vnni detection;
                // data/scales/wsum are padded to whole 32-channel groups.
                unsafe { self.gemm_vnni(rows, out) };
                return;
            }
        }
        self.gemm_scalar(rows, out);
    }

    /// Portable kernel: i32 accumulation down each quad column, identical
    /// arithmetic (and therefore bit-identical output) to the VNNI path.
    fn gemm_scalar(&self, rows: &QuantRows, out: &mut Tensor2) {
        let stride = self.quads * QUAD;
        for i in 0..rows.n {
            let xu = &rows.xu[i * stride..(i + 1) * stride];
            let sx = rows.sx[i];
            let y = out.row_mut(i);
            for (o, v) in y.iter_mut().enumerate() {
                let mut acc = 0i32;
                for q in 0..self.quads {
                    let w = &self.data[(q * self.out_pad + o) * QUAD..][..QUAD];
                    let x4 = &xu[q * QUAD..][..QUAD];
                    for j in 0..QUAD {
                        acc += i32::from(x4[j]) * i32::from(w[j]);
                    }
                }
                acc -= i32::from(ZERO_POINT) * self.wsum[o];
                // Grouped as acc·(sx·scale) to match the VNNI epilogue's
                // rounding order exactly.
                *v = acc as f32 * (sx * self.scales[o]);
            }
        }
    }

    /// AVX-512 VNNI kernel, register-tiled 4 rows × 32 channels: each
    /// weight group is loaded once and dotted into four row accumulators
    /// (`vpdpbusd` — 64 int8 MACs per instruction, no horizontal
    /// reductions anywhere). The u8 zero-point correction (`acc − 128·Σw`)
    /// and dequantization are vectorized in the epilogue; the ragged last
    /// half-group uses masked stores.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    unsafe fn gemm_vnni(&self, rows: &QuantRows, out: &mut Tensor2) {
        let mut r0 = 0;
        // Full row tiles with a compile-time row count (the accumulator
        // array must unroll into registers — a runtime-bounded row loop
        // spills it to the stack on every vpdpbusd), then the ragged tail
        // one row at a time.
        while r0 + ROW_TILE <= rows.n {
            self.gemm_vnni_tile::<ROW_TILE>(rows, out, r0);
            r0 += ROW_TILE;
        }
        while r0 < rows.n {
            self.gemm_vnni_tile::<1>(rows, out, r0);
            r0 += 1;
        }
    }

    /// One `RT`-row stripe of the VNNI GEMM (see [`Self::gemm_vnni`]).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    unsafe fn gemm_vnni_tile<const RT: usize>(
        &self,
        rows: &QuantRows,
        out: &mut Tensor2,
        r0: usize,
    ) {
        use std::arch::x86_64::*;
        let stride = self.quads * QUAD;
        let data = self.data.as_ptr();
        let xu = rows.xu.as_ptr();
        let mut c = 0;
        while c < self.out_pad {
            let mut acc = [[_mm512_setzero_si512(); 2]; RT];
            for q in 0..self.quads {
                let wp = data.add((q * self.out_pad + c) * QUAD);
                let w0 = _mm512_loadu_si512(wp.cast());
                let w1 = _mm512_loadu_si512(wp.add(TILE * QUAD).cast());
                for (r, a) in acc.iter_mut().enumerate() {
                    let xb = _mm512_set1_epi32(
                        xu.add((r0 + r) * stride + q * QUAD)
                            .cast::<i32>()
                            .read_unaligned(),
                    );
                    a[0] = _mm512_dpbusd_epi32(a[0], xb, w0);
                    a[1] = _mm512_dpbusd_epi32(a[1], xb, w1);
                }
            }
            let corr0 =
                _mm512_slli_epi32::<7>(_mm512_loadu_si512(self.wsum.as_ptr().add(c).cast()));
            let corr1 =
                _mm512_slli_epi32::<7>(_mm512_loadu_si512(self.wsum.as_ptr().add(c + TILE).cast()));
            let sc0 = _mm512_loadu_ps(self.scales.as_ptr().add(c));
            let sc1 = _mm512_loadu_ps(self.scales.as_ptr().add(c + TILE));
            let lanes0 = self.out_dim.saturating_sub(c).min(TILE);
            let lanes1 = self.out_dim.saturating_sub(c + TILE).min(TILE);
            let m0: u16 = if lanes0 == TILE {
                !0
            } else {
                (1 << lanes0) - 1
            };
            let m1: u16 = if lanes1 == TILE {
                !0
            } else {
                (1 << lanes1) - 1
            };
            for (r, a) in acc.iter().enumerate() {
                let sx = _mm512_set1_ps(rows.sx[r0 + r]);
                let y = out.row_mut(r0 + r).as_mut_ptr();
                let v0 = _mm512_mul_ps(
                    _mm512_cvtepi32_ps(_mm512_sub_epi32(a[0], corr0)),
                    _mm512_mul_ps(sx, sc0),
                );
                _mm512_mask_storeu_ps(y.add(c), m0, v0);
                if lanes1 > 0 {
                    let v1 = _mm512_mul_ps(
                        _mm512_cvtepi32_ps(_mm512_sub_epi32(a[1], corr1)),
                        _mm512_mul_ps(sx, sc1),
                    );
                    _mm512_mask_storeu_ps(y.add(c + TILE), m1, v1);
                }
            }
            c += GROUP;
        }
    }
}

/// The u8 activation zero point (`xq + 128`), correcting through
/// [`QuantizedMatrix::wsum`].
const ZERO_POINT: u8 = 128;

#[cfg(target_arch = "x86_64")]
fn vnni_available() -> bool {
    use std::sync::OnceLock;
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512vnni")
    })
}

/// Reusable scratch for the quantized forward path: the quantized
/// activation row plus the attention projection buffers. One per worker;
/// buffers grow to the high-water batch size and then stop allocating.
#[derive(Debug, Default)]
pub struct QuantScratch {
    rows: QuantRows,
    /// Quantized-projection outputs (f32 after dequantization).
    pub q: Tensor2,
    /// Key projections.
    pub k: Tensor2,
    /// Value projections.
    pub v: Tensor2,
    srow: Vec<f32>,
}

/// A LoRA linear layer quantized for inference: the LoRA delta is folded
/// into the base weight in f32 (`W + B·A`, exact), then the folded matrix
/// is int8-quantized per output channel. Bias stays f32.
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    /// The folded, quantized weight.
    pub w: QuantizedMatrix,
    bias: Vec<f32>,
}

impl QuantizedLinear {
    /// Quantize `layer` with its LoRA delta folded in.
    pub fn from_lora(layer: &LoraLinear) -> QuantizedLinear {
        let (lora_b, lora_a) = layer.lora_weights();
        let mut folded = layer.w.value.clone();
        if lora_b.cols() > 0 {
            folded.add_assign(&lora_b.matmul(lora_a));
        }
        QuantizedLinear {
            w: QuantizedMatrix::from_f32(&folded),
            bias: layer.b.value.row(0).to_vec(),
        }
    }

    /// `y = x·W_q + b` into `y` (resized to `n × out`).
    pub fn forward_into(&self, x: &Tensor2, y: &mut Tensor2, scratch: &mut QuantScratch) {
        self.w.matmul_into(x, y, scratch);
        for i in 0..y.rows() {
            for (v, b) in y.row_mut(i).iter_mut().zip(&self.bias) {
                *v += b;
            }
        }
    }

    /// Quantized weight bytes (bias excluded).
    pub fn bytes(&self) -> usize {
        self.w.bytes()
    }
}

/// The quantized twin of [`MaskedSelfAttention`]: int8 Q/K/V projections,
/// f32 interval-sparse masked softmax and value combine.
#[derive(Debug, Clone)]
pub struct QuantizedAttention {
    wq: QuantizedMatrix,
    wk: QuantizedMatrix,
    wv: QuantizedMatrix,
    d_k: usize,
}

impl QuantizedAttention {
    /// Quantize an attention block's projections.
    pub fn from_attention(attn: &MaskedSelfAttention) -> QuantizedAttention {
        QuantizedAttention {
            wq: QuantizedMatrix::from_f32(&attn.wq.value),
            wk: QuantizedMatrix::from_f32(&attn.wk.value),
            wv: QuantizedMatrix::from_f32(&attn.wv.value),
            d_k: attn.dk(),
        }
    }

    /// Output width (`d_v`).
    pub fn out_dim(&self) -> usize {
        self.wv.out_dim()
    }

    /// Quantized weight bytes across the three projections.
    pub fn bytes(&self) -> usize {
        self.wq.bytes() + self.wk.bytes() + self.wv.bytes()
    }

    /// Quantized twin of [`MaskedSelfAttention::forward_masks_into`]: same
    /// block iteration, same interval-sparse scoring, same dense fallback
    /// with additive `MASK_NEG`, same softmax guard — a fully-masked row
    /// (softmax over all `-inf`) produces a zero output row, never `NaN`.
    /// Only the three projections differ (int8 instead of f32).
    pub fn forward_masks_into<'m, I>(
        &self,
        x: &Tensor2,
        blocks: I,
        ws: &mut QuantScratch,
        out: &mut Tensor2,
    ) where
        I: IntoIterator<Item = (usize, &'m [bool])>,
    {
        use crate::attention::MASK_NEG;
        let n = x.rows();
        // Quantize the input rows once and feed all three projections from
        // the same buffer — q/k/v are their destinations.
        {
            let QuantScratch { rows, q, k, v, .. } = ws;
            rows.quantize(x);
            self.wq.matmul_quant_into(rows, q);
            self.wk.matmul_quant_into(rows, k);
            self.wv.matmul_quant_into(rows, v);
        }
        let scale = 1.0 / (self.d_k as f32).sqrt();
        out.resize_zeroed(n, self.wv.out_dim());
        let mut start = 0;
        for (l, mask) in blocks {
            assert_eq!(mask.len(), l * l, "mask must be len² per block");
            for i in 0..l {
                let mrow = &mask[i * l..(i + 1) * l];
                let Some(j0) = mrow.iter().position(|&b| b) else {
                    continue; // fully masked row: zero output, as in f32
                };
                let mut run = mrow[j0..].iter().take_while(|&&b| b).count();
                let interval = !mrow[j0 + run..].iter().any(|&b| b);
                if !interval {
                    run = l - j0; // dense fallback: mask additively
                }
                if ws.srow.len() < run {
                    ws.srow.resize(run, 0.0);
                }
                let s = &mut ws.srow[..run];
                ws.q.row_dots_nt(start + i, &ws.k, start + j0, run, s);
                for v in s.iter_mut() {
                    *v *= scale;
                }
                if !interval {
                    for (v, &allowed) in s.iter_mut().zip(&mrow[j0..]) {
                        if !allowed {
                            *v += MASK_NEG;
                        }
                    }
                }
                let max = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in s.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                if sum > 0.0 {
                    for v in s.iter_mut() {
                        *v /= sum;
                    }
                }
                Tensor2::row_combine(s, &ws.v, start + j0, out.row_mut(start + i));
            }
            start += l;
        }
        assert_eq!(start, n, "blocks must cover all rows");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor2 {
        let mut rng = SmallRng::seed_from_u64(seed);
        Tensor2::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-2.0..2.0)).collect(),
        )
    }

    #[test]
    fn dequantize_roundtrip_error_is_subpercent() {
        let w = random_tensor(64, 128, 1);
        let q = QuantizedMatrix::from_f32(&w);
        let back = q.dequantize();
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= 2.0 / 127.0 + 1e-6, "{a} vs {b}");
        }
        assert!(q.bytes() < 64 * 128 * 4 / 3, "not actually smaller");
    }

    #[test]
    fn quantized_matmul_tracks_f32() {
        let w = random_tensor(32, 48, 2);
        let x = random_tensor(8, 32, 3);
        let q = QuantizedMatrix::from_f32(&w);
        let mut scratch = QuantScratch::default();
        let mut got = Tensor2::default();
        q.matmul_into(&x, &mut got, &mut scratch);
        let want = x.matmul(&w);
        for (g, w_) in got.as_slice().iter().zip(want.as_slice()) {
            // Two int8 quantizations (weight + activation) in a 32-term
            // dot product: error stays well under 5% of the row magnitude.
            assert!((g - w_).abs() < 0.15, "{g} vs {w_}");
        }
    }

    #[test]
    fn zero_and_nonfinite_rows_stay_finite() {
        let w = random_tensor(8, 4, 4);
        let q = QuantizedMatrix::from_f32(&w);
        let mut x = Tensor2::zeros(2, 8);
        x.row_mut(1)[0] = f32::INFINITY;
        let mut scratch = QuantScratch::default();
        let mut got = Tensor2::default();
        q.matmul_into(&x, &mut got, &mut scratch);
        assert!(got.as_slice().iter().all(|v| v.is_finite()));
        assert!(got.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn folded_lora_linear_tracks_inference_forward() {
        let mut layer = LoraLinear::new(32, 16, 8, 7);
        // Give the LoRA factors real weight so folding is exercised.
        let b = random_tensor(32, 8, 8);
        let a = random_tensor(8, 16, 9);
        layer.set_lora_weights(b, a).unwrap();
        let x = random_tensor(4, 32, 10);
        let want = layer.forward_inference(&x);
        let q = QuantizedLinear::from_lora(&layer);
        let mut scratch = QuantScratch::default();
        let mut got = Tensor2::default();
        q.forward_into(&x, &mut got, &mut scratch);
        for (g, w_) in got.as_slice().iter().zip(want.as_slice()) {
            // Int8 error scales with ‖x‖·‖w_channel‖ (here the synthetic
            // folded channels reach ~16), not with |y| — so the bound is
            // absolute-or-relative, whichever is looser at this magnitude.
            assert!((g - w_).abs() < (0.02 * w_.abs()).max(0.5), "{g} vs {w_}");
        }
    }

    #[test]
    fn quantized_attention_tracks_f32_on_interval_masks() {
        let attn = MaskedSelfAttention::new(16, 32, 24, 11);
        let q = QuantizedAttention::from_attention(&attn);
        let x = random_tensor(5, 16, 12);
        // Ancestor-style interval mask for a 5-node chain-ish tree.
        let l = 5;
        let mut mask = vec![false; l * l];
        for i in 0..l {
            for j in i..l {
                mask[i * l + j] = true;
            }
        }
        let want = attn.forward_masks_inference(&x, &[l], &[&mask]);
        let mut ws = QuantScratch::default();
        let mut got = Tensor2::default();
        q.forward_masks_into(&x, [(l, mask.as_slice())], &mut ws, &mut got);
        assert_eq!(got.rows(), want.rows());
        for (g, w_) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w_).abs() < 0.2, "{g} vs {w_}");
        }
    }

    #[test]
    fn fully_masked_row_yields_finite_zero_output() {
        let attn = MaskedSelfAttention::new(8, 16, 16, 13);
        let q = QuantizedAttention::from_attention(&attn);
        let x = random_tensor(3, 8, 14);
        // Row 1 is fully masked (softmax over all -inf in the bias path).
        let l = 3;
        let mut mask = vec![true; l * l];
        for j in 0..l {
            mask[l + j] = false;
        }
        let mut ws = QuantScratch::default();
        let mut got = Tensor2::default();
        q.forward_masks_into(&x, [(l, mask.as_slice())], &mut ws, &mut got);
        assert!(got.as_slice().iter().all(|v| v.is_finite()));
        assert!(got.row(1).iter().all(|&v| v == 0.0), "masked row not zero");
    }

    #[test]
    fn dense_fallback_mask_matches_f32_path() {
        let attn = MaskedSelfAttention::new(8, 16, 16, 15);
        let q = QuantizedAttention::from_attention(&attn);
        let x = random_tensor(4, 8, 16);
        // Non-interval mask: row 0 attends to {0, 2} — forces the dense
        // fallback with additive MASK_NEG.
        let l = 4;
        let mut mask = vec![true; l * l];
        mask[1] = false;
        let want = attn.forward_masks_inference(&x, &[l], &[&mask]);
        let mut ws = QuantScratch::default();
        let mut got = Tensor2::default();
        q.forward_masks_into(&x, [(l, mask.as_slice())], &mut ws, &mut got);
        for (g, w_) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w_).abs() < 0.2, "{g} vs {w_}");
        }
    }

    #[test]
    fn vnni_and_scalar_kernels_agree_bit_for_bit() {
        // Ragged dims on purpose: inputs off the quad, outputs off both the
        // 16-lane half-group and the 32-channel group (masked stores), and
        // row counts off the 4-row register tile.
        for (in_dim, out_dim, n, seed) in [
            (18, 23, 5, 17),
            (1, 1, 1, 18),
            (128, 48, 7, 19),
            (7, 129, 4, 20),
            (18, 16, 9, 21),
        ] {
            let w = random_tensor(in_dim, out_dim, seed);
            let mut x = random_tensor(n, in_dim, seed + 100);
            x.row_mut(0).fill(0.0); // degenerate row: exact zeros both paths
            let q = QuantizedMatrix::from_f32(&w);
            let mut scratch = QuantScratch::default();
            let mut fast = Tensor2::default();
            q.matmul_into(&x, &mut fast, &mut scratch);
            let mut rows = QuantRows::default();
            rows.quantize(&x);
            let mut want = Tensor2::default();
            want.resize_for_overwrite(n, out_dim);
            q.gemm_scalar(&rows, &mut want);
            for i in 0..n {
                assert_eq!(fast.row(i), want.row(i), "dims {in_dim}×{out_dim} row {i}");
            }
            assert!(fast.row(0).iter().all(|&v| v == 0.0), "zero row not zeroed");
        }
    }
}
