//! ReLU activation with cached mask.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor2;

/// Elementwise `max(0, x)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// New activation.
    pub fn new() -> Relu {
        Relu::default()
    }

    /// Forward pass; caches the activation mask.
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        let mut y = x.clone();
        let mask: Vec<bool> = y
            .as_mut_slice()
            .iter_mut()
            .map(|v| {
                if *v > 0.0 {
                    true
                } else {
                    *v = 0.0;
                    false
                }
            })
            .collect();
        self.mask = Some(mask);
        y
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    /// Stateless backward from the *output* `y` (the mask is recoverable
    /// because `y > 0 ⇔ x > 0`). Companion to [`crate::Linear::backward_from`]
    /// for recursive tree networks.
    pub fn backward_from(dy: &Tensor2, y: &Tensor2) -> Tensor2 {
        let mut dx = dy.clone();
        for (v, &out) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
            if out <= 0.0 {
                *v = 0.0;
            }
        }
        dx
    }

    /// Backward pass: zero gradient where the input was non-positive.
    pub fn backward(&mut self, dy: &Tensor2) -> Tensor2 {
        let mask = self.mask.take().expect("backward before forward");
        let mut dx = dy.clone();
        for (v, &alive) in dx.as_mut_slice().iter_mut().zip(&mask) {
            if !alive {
                *v = 0.0;
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_gate_together() {
        let mut relu = Relu::new();
        let x = Tensor2::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Tensor2::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let dx = relu.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut relu = Relu::new();
        let x = Tensor2::uniform(3, 3, 2.0, 5);
        let a = relu.forward(&x);
        let b = relu.forward_inference(&x);
        assert_eq!(a, b);
    }
}
