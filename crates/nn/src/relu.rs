//! ReLU activation with cached mask.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor2;

fn default_true() -> bool {
    true
}

/// Elementwise `max(0, x)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
    /// Train/eval switch: in eval mode [`Relu::forward`] skips building the
    /// backward mask.
    #[serde(skip, default = "default_true")]
    train: bool,
}

impl Default for Relu {
    fn default() -> Relu {
        Relu {
            mask: None,
            train: true,
        }
    }
}

impl Relu {
    /// New activation.
    pub fn new() -> Relu {
        Relu::default()
    }

    /// Switch between training (mask cached for backward) and eval (no
    /// cache) behaviour of [`Relu::forward`].
    pub fn set_train(&mut self, train: bool) {
        self.train = train;
        if !train {
            self.mask = None;
        }
    }

    /// Forward pass; caches the activation mask (in train mode).
    pub fn forward(&mut self, x: &Tensor2) -> Tensor2 {
        if !self.train {
            return self.forward_inference(x);
        }
        let mut y = x.clone();
        let mask: Vec<bool> = y
            .as_mut_slice()
            .iter_mut()
            .map(|v| {
                if *v > 0.0 {
                    true
                } else {
                    *v = 0.0;
                    false
                }
            })
            .collect();
        self.mask = Some(mask);
        y
    }

    /// In-place [`Relu::forward`]: clamp negatives in `x` directly, saving
    /// the sign mask into the caller's buffer (cleared and refilled, so no
    /// allocation once capacity is reached). Pairs with
    /// [`Relu::backward_in_place`].
    pub fn forward_in_place(x: &mut Tensor2, mask: &mut Vec<bool>) {
        mask.clear();
        mask.extend(x.as_mut_slice().iter_mut().map(|v| {
            if *v > 0.0 {
                true
            } else {
                *v = 0.0;
                false
            }
        }));
    }

    /// In-place [`Relu::backward`]: zero `d` wherever the saved sign mask
    /// is dead.
    pub fn backward_in_place(d: &mut Tensor2, mask: &[bool]) {
        assert_eq!(d.len(), mask.len(), "relu mask/gradient length mismatch");
        for (v, &alive) in d.as_mut_slice().iter_mut().zip(mask) {
            if !alive {
                *v = 0.0;
            }
        }
    }

    /// In-place inference forward (no mask saved).
    pub fn relu_in_place(x: &mut Tensor2) {
        for v in x.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Forward pass without caching (inference).
    pub fn forward_inference(&self, x: &Tensor2) -> Tensor2 {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    /// Stateless backward from the *output* `y` (the mask is recoverable
    /// because `y > 0 ⇔ x > 0`). Companion to [`crate::Linear::backward_from`]
    /// for recursive tree networks.
    pub fn backward_from(dy: &Tensor2, y: &Tensor2) -> Tensor2 {
        let mut dx = dy.clone();
        for (v, &out) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
            if out <= 0.0 {
                *v = 0.0;
            }
        }
        dx
    }

    /// Backward pass: zero gradient where the input was non-positive.
    pub fn backward(&mut self, dy: &Tensor2) -> Tensor2 {
        let mask = self.mask.take().expect("backward before forward");
        let mut dx = dy.clone();
        for (v, &alive) in dx.as_mut_slice().iter_mut().zip(&mask) {
            if !alive {
                *v = 0.0;
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_gate_together() {
        let mut relu = Relu::new();
        let x = Tensor2::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Tensor2::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let dx = relu.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut relu = Relu::new();
        let x = Tensor2::uniform(3, 3, 2.0, 5);
        let a = relu.forward(&x);
        let b = relu.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let mut relu = Relu::new();
        let x = Tensor2::uniform(4, 5, 2.0, 9);
        let y = relu.forward(&x);
        let mut y_ip = x.clone();
        let mut mask = Vec::new();
        Relu::forward_in_place(&mut y_ip, &mut mask);
        assert_eq!(y.as_slice(), y_ip.as_slice());

        let dy = Tensor2::uniform(4, 5, 1.0, 10);
        let dx = relu.backward(&dy);
        let mut dx_ip = dy.clone();
        Relu::backward_in_place(&mut dx_ip, &mask);
        assert_eq!(dx.as_slice(), dx_ip.as_slice());

        let mut inf = x.clone();
        Relu::relu_in_place(&mut inf);
        assert_eq!(inf, relu.forward_inference(&x));
    }

    #[test]
    fn eval_mode_forward_skips_mask_cache() {
        let mut relu = Relu::new();
        let x = Tensor2::uniform(2, 3, 2.0, 7);
        relu.set_train(false);
        let y = relu.forward(&x);
        assert_eq!(y, relu.forward_inference(&x));
        assert!(relu.mask.is_none());
        relu.set_train(true);
        let _ = relu.forward(&x);
        assert!(relu.mask.is_some());
    }
}
