//! Robust scaling of scalar features (median / IQR), as Zero-Shot and the
//! paper's encoder apply to DBMS-estimated cost and cardinality.

use serde::{Deserialize, Serialize};

/// `scaled = (x − median) / IQR`, robust to the heavy right tails of cost
/// and cardinality distributions. Fit once on training data, then reused
/// verbatim on any test database — the scaler is part of the pre-trained
/// model, not of the target database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustScaler {
    /// Fitted median.
    pub median: f64,
    /// Fitted interquartile range (≥ a small floor to avoid division blowup).
    pub iqr: f64,
}

impl RobustScaler {
    /// Fit on raw values.
    pub fn fit(values: &[f64]) -> RobustScaler {
        if values.is_empty() {
            return RobustScaler {
                median: 0.0,
                iqr: 1.0,
            };
        }
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        v.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let idx = (p * (v.len() - 1) as f64).round() as usize;
            v[idx.min(v.len() - 1)]
        };
        let median = q(0.5);
        let iqr = (q(0.75) - q(0.25)).max(1e-6);
        RobustScaler { median, iqr }
    }

    /// Scale one value.
    #[inline]
    pub fn transform(&self, x: f64) -> f64 {
        (x - self.median) / self.iqr
    }

    /// Inverse of [`RobustScaler::transform`].
    #[inline]
    pub fn inverse(&self, y: f64) -> f64 {
        y * self.iqr + self.median
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_centers_the_median() {
        let values: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let s = RobustScaler::fit(&values);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.transform(50.0), 0.0);
        assert!((s.transform(75.0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn roundtrip() {
        let values = vec![1.0, 5.0, 2.0, 100.0, 3.0];
        let s = RobustScaler::fit(&values);
        for x in [0.0, 7.5, -3.0, 1e6] {
            assert!((s.inverse(s.transform(x)) - x).abs() < 1e-9 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn constant_input_does_not_divide_by_zero() {
        let s = RobustScaler::fit(&[4.0; 10]);
        assert!(s.transform(4.0).is_finite());
        assert_eq!(s.transform(4.0), 0.0);
    }

    #[test]
    fn empty_input_is_identityish() {
        let s = RobustScaler::fit(&[]);
        assert_eq!(s.transform(3.0), 3.0);
    }

    #[test]
    fn outliers_barely_move_the_scale() {
        let mut values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let plain = RobustScaler::fit(&values);
        values.push(1e12);
        let with_outlier = RobustScaler::fit(&values);
        assert!((plain.iqr - with_outlier.iqr).abs() / plain.iqr < 0.1);
    }
}
