//! Row-major 2-D `f32` tensors and the linear-algebra kernels the modules
//! need. The matmul family has four tiers, picked at runtime:
//!
//! 1. **AVX-512F register-tiled kernels** (x86-64 with `avx512f`
//!    detected): 6×32 output tiles accumulate over the whole shared
//!    dimension in zmm registers — twice the lane width and deeper
//!    accumulator parallelism than the AVX2 tier, with masked loads/stores
//!    covering the column tail so every output element stays on the fused
//!    p-ascending path.
//! 2. **AVX2+FMA register-tiled kernels** (x86-64 with `avx2`+`fma`
//!    detected): 4×16 output tiles accumulate over the whole shared
//!    dimension in ymm registers, so each B element is loaded once per
//!    four output rows and every multiply-add is fused. Batched training
//!    packs whole mini-batches into single tensors (hundreds of rows),
//!    which is exactly the regime these tiles are built for.
//! 3. **Blocked scalar kernels** (portable fallback): four output rows per
//!    pass with chained-zip inner loops that auto-vectorize without bounds
//!    checks, shared dimension in L1-sized blocks.
//! 4. **Seed reference kernels**: the original unblocked i-k-j loops,
//!    selectable process-wide via [`set_reference_kernels`] so benchmarks
//!    can measure the pre-optimization configuration faithfully.
//!
//! Per output element the FMA and blocked kernels keep the same `p`-
//! ascending summation order as the reference (FMA only fuses the rounding
//! of each step); `matmul_nt` additionally splits the dot product across
//! SIMD lanes, which reassociates the sum — all consumers tolerate 1e-5.

#[cfg(target_arch = "x86_64")]
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Process-wide matmul dispatch override, **for benchmarking only** (the
/// `table2_throughput` baseline rows): flipping it while other threads
/// compute would change their kernels mid-flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelTier {
    /// Best available: AVX-512 → AVX2+FMA → blocked scalar.
    Auto,
    /// The PR-1 configuration: AVX2+FMA tiles, dot-product `matmul_nt`
    /// (no transposed-B packing), and an unconditional output memset —
    /// the faithful "before" for kernel-level speedup measurements.
    Avx2Baseline,
    /// The seed's original unblocked scalar kernels.
    SeedReference,
}

static KERNEL_TIER: AtomicU8 = AtomicU8::new(0);

/// Select the matmul dispatch tier for every subsequent matmul in the
/// process. See [`KernelTier`].
pub fn set_kernel_tier(tier: KernelTier) {
    KERNEL_TIER.store(tier as u8, Ordering::Relaxed);
}

fn kernel_tier() -> KernelTier {
    match KERNEL_TIER.load(Ordering::Relaxed) {
        1 => KernelTier::Avx2Baseline,
        2 => KernelTier::SeedReference,
        _ => KernelTier::Auto,
    }
}

/// Select (`true`) or deselect (`false`) the seed reference kernels for
/// every subsequent matmul in the process — shorthand for
/// [`set_kernel_tier`] with [`KernelTier::SeedReference`] / `Auto`.
pub fn set_reference_kernels(on: bool) {
    set_kernel_tier(if on {
        KernelTier::SeedReference
    } else {
        KernelTier::Auto
    });
}

fn reference_kernels() -> bool {
    kernel_tier() == KernelTier::SeedReference
}

/// AVX2+FMA register-tiled kernels, used when the CPU supports them.
// Raw-pointer kernels take (ptr, strides, dims) tuples by design; bundling
// them into structs would only obscure the hot loops.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
mod fma {
    use std::arch::x86_64::*;

    /// Cached runtime check for `avx2` + `fma`.
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }

    /// One `R × 16` output tile of `C = op(A) @ B`, accumulated over the
    /// whole shared dimension in `2R` ymm registers.
    /// `op(A)(i, p) = a[i·sa + p·sp]` expresses both the normal layout
    /// (`sa = k, sp = 1`) and the transposed one (`sa = 1, sp = m`) without
    /// materializing a transpose.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn tile16<const R: usize>(
        a: *const f32,
        sa: usize,
        sp: usize,
        b: *const f32,
        c: *mut f32,
        i: usize,
        j: usize,
        k: usize,
        n: usize,
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; R];
        for p in 0..k {
            let bp = b.add(p * n + j);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for (t, row) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*a.add((i + t) * sa + p * sp));
                row[0] = _mm256_fmadd_ps(av, b0, row[0]);
                row[1] = _mm256_fmadd_ps(av, b1, row[1]);
            }
        }
        for (t, row) in acc.iter().enumerate() {
            let cp = c.add((i + t) * n + j);
            _mm256_storeu_ps(cp, row[0]);
            _mm256_storeu_ps(cp.add(8), row[1]);
        }
    }

    /// `C (m×n, pre-zeroed) = op(A) @ B (k×n)` with
    /// `op(A)(i, p) = a[i·sa + p·sp]`. Full 16-wide column tiles run in
    /// registers; the `n % 16` tail falls back to scalar loops with the
    /// same per-element summation order.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_strided(
        a: *const f32,
        sa: usize,
        sp: usize,
        b: *const f32,
        c: *mut f32,
        m: usize,
        k: usize,
        n: usize,
    ) {
        let nt = n - n % 16;
        let mut i = 0;
        while i < m {
            let r = (m - i).min(4);
            let mut j = 0;
            while j < nt {
                match r {
                    4 => tile16::<4>(a, sa, sp, b, c, i, j, k, n),
                    3 => tile16::<3>(a, sa, sp, b, c, i, j, k, n),
                    2 => tile16::<2>(a, sa, sp, b, c, i, j, k, n),
                    _ => tile16::<1>(a, sa, sp, b, c, i, j, k, n),
                }
                j += 16;
            }
            for t in 0..r {
                for jj in nt..n {
                    let mut s = 0.0f32;
                    for p in 0..k {
                        s += *a.add((i + t) * sa + p * sp) * *b.add(p * n + jj);
                    }
                    *c.add((i + t) * n + jj) = s;
                }
            }
            i += r;
        }
    }

    /// Horizontal sum of a ymm register's eight lanes.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(_mm256_castps256_ps128(v), hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        _mm_cvtss_f32(s)
    }

    /// Four dot products `c[j..j+4] = a_row · b_rows[j..j+4]` over `k`,
    /// eight lanes at a time.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot4(a_row: *const f32, b: *const f32, c: *mut f32, j: usize, k: usize) {
        let kt = k - k % 8;
        let mut acc = [_mm256_setzero_ps(); 4];
        let mut p = 0;
        while p < kt {
            let av = _mm256_loadu_ps(a_row.add(p));
            for (u, accu) in acc.iter_mut().enumerate() {
                let bv = _mm256_loadu_ps(b.add((j + u) * k + p));
                *accu = _mm256_fmadd_ps(av, bv, *accu);
            }
            p += 8;
        }
        for (u, accu) in acc.iter().enumerate() {
            let mut s = hsum(*accu);
            for pp in kt..k {
                s += *a_row.add(pp) * *b.add((j + u) * k + pp);
            }
            *c.add(j + u) = s;
        }
    }

    /// `C (m×n) = A (m×k) @ B (n×k)ᵀ`: every element is a dot product
    /// over `k`. Four B rows share each streamed A row.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_nt(
        a: *const f32,
        b: *const f32,
        c: *mut f32,
        m: usize,
        k: usize,
        n: usize,
    ) {
        let ntile = n - n % 4;
        for i in 0..m {
            let a_row = a.add(i * k);
            let c_row = c.add(i * n);
            let mut j = 0;
            while j < ntile {
                dot4(a_row, b, c_row, j, k);
                j += 4;
            }
            for jj in ntile..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += *a_row.add(p) * *b.add(jj * k + p);
                }
                *c_row.add(jj) = s;
            }
        }
    }
}

/// AVX-512F register-tiled kernels, preferred over the AVX2 tier when the
/// CPU supports them: same tile structure at twice the lane width.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    /// Cached runtime check for `avx512f`.
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f"))
    }

    /// One `R × 32` output tile of `C = op(A) @ B`, accumulated over the
    /// whole shared dimension in `2R` zmm registers. Strides as in
    /// [`super::fma::matmul_strided`].
    #[target_feature(enable = "avx512f")]
    unsafe fn tile32<const R: usize>(
        a: *const f32,
        sa: usize,
        sp: usize,
        b: *const f32,
        c: *mut f32,
        i: usize,
        j: usize,
        k: usize,
        n: usize,
    ) {
        let mut acc = [[_mm512_setzero_ps(); 2]; R];
        for p in 0..k {
            let bp = b.add(p * n + j);
            let b0 = _mm512_loadu_ps(bp);
            let b1 = _mm512_loadu_ps(bp.add(16));
            for (t, row) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*a.add((i + t) * sa + p * sp));
                row[0] = _mm512_fmadd_ps(av, b0, row[0]);
                row[1] = _mm512_fmadd_ps(av, b1, row[1]);
            }
        }
        for (t, row) in acc.iter().enumerate() {
            let cp = c.add((i + t) * n + j);
            _mm512_storeu_ps(cp, row[0]);
            _mm512_storeu_ps(cp.add(16), row[1]);
        }
    }

    /// One `R × ≤16` masked output tile: the column tail of
    /// [`matmul_strided`], still fused and p-ascending per element.
    #[target_feature(enable = "avx512f")]
    unsafe fn tile16m<const R: usize>(
        a: *const f32,
        sa: usize,
        sp: usize,
        b: *const f32,
        c: *mut f32,
        i: usize,
        j: usize,
        k: usize,
        n: usize,
        mask: __mmask16,
    ) {
        let mut acc = [_mm512_setzero_ps(); R];
        for p in 0..k {
            let bv = _mm512_maskz_loadu_ps(mask, b.add(p * n + j));
            for (t, accu) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*a.add((i + t) * sa + p * sp));
                *accu = _mm512_fmadd_ps(av, bv, *accu);
            }
        }
        for (t, accu) in acc.iter().enumerate() {
            _mm512_mask_storeu_ps(c.add((i + t) * n + j), mask, *accu);
        }
    }

    /// `C (m×n, pre-zeroed) = op(A) @ B (k×n)` with
    /// `op(A)(i, p) = a[i·sa + p·sp]`. Full 32-wide column tiles run in
    /// registers; the tail runs in ≤16-wide masked tiles.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul_strided(
        a: *const f32,
        sa: usize,
        sp: usize,
        b: *const f32,
        c: *mut f32,
        m: usize,
        k: usize,
        n: usize,
    ) {
        let mut i = 0;
        while i < m {
            let r = (m - i).min(6);
            let mut j = 0;
            while j + 32 <= n {
                match r {
                    6 => tile32::<6>(a, sa, sp, b, c, i, j, k, n),
                    5 => tile32::<5>(a, sa, sp, b, c, i, j, k, n),
                    4 => tile32::<4>(a, sa, sp, b, c, i, j, k, n),
                    3 => tile32::<3>(a, sa, sp, b, c, i, j, k, n),
                    2 => tile32::<2>(a, sa, sp, b, c, i, j, k, n),
                    _ => tile32::<1>(a, sa, sp, b, c, i, j, k, n),
                }
                j += 32;
            }
            while j < n {
                let rem = (n - j).min(16);
                let mask = 0xffffu16 >> (16 - rem);
                match r {
                    6 => tile16m::<6>(a, sa, sp, b, c, i, j, k, n, mask),
                    5 => tile16m::<5>(a, sa, sp, b, c, i, j, k, n, mask),
                    4 => tile16m::<4>(a, sa, sp, b, c, i, j, k, n, mask),
                    3 => tile16m::<3>(a, sa, sp, b, c, i, j, k, n, mask),
                    2 => tile16m::<2>(a, sa, sp, b, c, i, j, k, n, mask),
                    _ => tile16m::<1>(a, sa, sp, b, c, i, j, k, n, mask),
                }
                j += rem;
            }
            i += r;
        }
    }

    /// Four dot products `c[j..j+4] = a_row · b_rows[j..j+4]` over `k`,
    /// sixteen lanes at a time.
    #[target_feature(enable = "avx512f")]
    unsafe fn dot4(a_row: *const f32, b: *const f32, c: *mut f32, j: usize, k: usize) {
        let kt = k - k % 16;
        let mut acc = [_mm512_setzero_ps(); 4];
        let mut p = 0;
        while p < kt {
            let av = _mm512_loadu_ps(a_row.add(p));
            for (u, accu) in acc.iter_mut().enumerate() {
                let bv = _mm512_loadu_ps(b.add((j + u) * k + p));
                *accu = _mm512_fmadd_ps(av, bv, *accu);
            }
            p += 16;
        }
        for (u, accu) in acc.iter().enumerate() {
            let mut s = _mm512_reduce_add_ps(*accu);
            for pp in kt..k {
                s += *a_row.add(pp) * *b.add((j + u) * k + pp);
            }
            *c.add(j + u) = s;
        }
    }

    /// `C (m×n) = A (m×k) @ B (n×k)ᵀ`: every element is a dot product
    /// over `k`. Four B rows share each streamed A row.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul_nt(
        a: *const f32,
        b: *const f32,
        c: *mut f32,
        m: usize,
        k: usize,
        n: usize,
    ) {
        let ntile = n - n % 4;
        for i in 0..m {
            let a_row = a.add(i * k);
            let c_row = c.add(i * n);
            let mut j = 0;
            while j < ntile {
                dot4(a_row, b, c_row, j, k);
                j += 4;
            }
            for jj in ntile..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += *a_row.add(p) * *b.add(jj * k + p);
                }
                *c_row.add(jj) = s;
            }
        }
    }
}

/// Output-row panel height of the blocked matmul kernels: each streamed
/// B row feeds this many independent accumulator rows.
const MR: usize = 4;

/// Minimum A rows before `matmul_nt` packs a transposed B: below this the
/// pack (`cols × rows` scalar stores) rivals the multiply work itself, and
/// serving's single-row score products stay on the direct dot-product path.
#[cfg(target_arch = "x86_64")]
const NT_PACK_MIN_ROWS: usize = 8;

#[cfg(target_arch = "x86_64")]
thread_local! {
    /// Per-thread transposed-B scratch for [`Tensor2::matmul_nt_into`];
    /// grows to a high-water mark and never shrinks.
    static NT_PACK: std::cell::RefCell<Tensor2> = RefCell::new(Tensor2::default());
}

/// Shared-dimension block size: a `KC × n` B panel (n ≤ 128 everywhere in
/// this model) stays within L1/L2 while a panel of output rows is built.
const KC: usize = 64;

/// A dense row-major matrix of `f32`.
///
/// The default value is the empty `0 × 0` tensor — the natural initial
/// state for the reusable scratch buffers of the `_into` kernel family,
/// which reshape in place and grow capacity only to a high-water mark.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Zero-filled `rows × cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor2 {
        Tensor2 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor from existing data (`data.len() == rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor2 {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor2 { rows, cols, data }
    }

    /// Uniform random tensor in `[-bound, bound]`, seeded.
    pub fn uniform(rows: usize, cols: usize, bound: f32, seed: u64) -> Tensor2 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        Tensor2 { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshape to `rows × cols` reusing the existing allocation, with every
    /// element zeroed. The workhorse of the `_into` kernel family: once a
    /// scratch buffer has grown to its high-water capacity this never
    /// touches the allocator again.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape to `rows × cols` reusing the existing allocation **without**
    /// re-zeroing when the element count is unchanged. For kernels that
    /// overwrite every output element (the SIMD matmul tiers): stale values
    /// never survive, and skipping the memset keeps the hot loops
    /// store-once. Paths that *accumulate* into the output (blocked/seed
    /// matmul) must zero it first — see [`Tensor2::fill_zero`].
    pub(crate) fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let len = rows * cols;
        if self.data.len() != len {
            self.data.clear();
            self.data.resize(len, 0.0);
        }
    }

    /// Become a copy of `src` (shape and contents), reusing capacity.
    pub fn copy_from(&mut self, src: &Tensor2) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Become a `rows × cols` copy of `src`, reusing capacity
    /// (`src.len() == rows * cols`).
    pub fn copy_from_slice_shaped(&mut self, rows: usize, cols: usize, src: &[f32]) {
        assert_eq!(src.len(), rows * cols, "shape/data mismatch");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.extend_from_slice(src);
    }

    /// Allocation-free [`Tensor2::row_block`]: become a copy of `rows`
    /// consecutive rows of `src` starting at `start`, reusing capacity.
    pub fn copy_row_block_from(&mut self, src: &Tensor2, start: usize, rows: usize) {
        assert!(start + rows <= src.rows, "row block out of bounds");
        let s = start * src.cols;
        self.copy_from_slice_shaped(rows, src.cols, &src.data[s..s + rows * src.cols]);
    }

    /// `self @ other` (`(m×k) @ (k×n) → m×n`).
    pub fn matmul(&self, other: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Tensor2::matmul`] writing into a caller-owned buffer: `out` is
    /// reshaped in place and filled by the same dispatched kernels, so the
    /// result is bit-identical to the allocating form while steady-state
    /// callers stop touching the allocator.
    pub fn matmul_into(&self, other: &Tensor2, out: &mut Tensor2) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.resize_for_overwrite(self.rows, other.cols);
        let tier = kernel_tier();
        if tier == KernelTier::SeedReference {
            out.fill_zero();
            self.matmul_seed_into(other, out);
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let (m, k, n) = (self.rows, self.cols, other.cols);
            if tier == KernelTier::Auto && avx512::available() {
                unsafe {
                    avx512::matmul_strided(
                        self.data.as_ptr(),
                        k,
                        1,
                        other.data.as_ptr(),
                        out.data.as_mut_ptr(),
                        m,
                        k,
                        n,
                    );
                }
                return;
            }
            if fma::available() {
                if tier == KernelTier::Avx2Baseline {
                    // PR-1 zeroed every output before the kernel ran.
                    out.fill_zero();
                }
                unsafe {
                    fma::matmul_strided(
                        self.data.as_ptr(),
                        k,
                        1,
                        other.data.as_ptr(),
                        out.data.as_mut_ptr(),
                        m,
                        k,
                        n,
                    );
                }
                return;
            }
        }
        out.fill_zero();
        self.matmul_blocked_into(other, out);
    }

    /// Blocked scalar `matmul` fallback: panels of [`MR`] output rows
    /// accumulate together so each B row is loaded once per panel, and k is
    /// processed in [`KC`]-sized blocks so the touched B panel stays
    /// cache-resident. Accumulates into `out`, which must be pre-zeroed
    /// `m × n`.
    fn matmul_blocked_into(&self, other: &Tensor2, out: &mut Tensor2) {
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let a = &self.data;
        let mut i = 0;
        while i + MR <= m {
            let out_panel = &mut out.data[i * n..(i + MR) * n];
            let (o0, rest) = out_panel.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            for p0 in (0..k).step_by(KC) {
                let p1 = (p0 + KC).min(k);
                for p in p0..p1 {
                    let a0 = a[i * k + p];
                    let a1 = a[(i + 1) * k + p];
                    let a2 = a[(i + 2) * k + p];
                    let a3 = a[(i + 3) * k + p];
                    if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                        // One-hot feature rows make A sparse; skip dead lanes.
                        continue;
                    }
                    let b_row = other.row(p);
                    for ((((&b, v0), v1), v2), v3) in b_row
                        .iter()
                        .zip(&mut *o0)
                        .zip(&mut *o1)
                        .zip(&mut *o2)
                        .zip(&mut *o3)
                    {
                        *v0 += a0 * b;
                        *v1 += a1 * b;
                        *v2 += a2 * b;
                        *v3 += a3 * b;
                    }
                }
            }
            i += MR;
        }
        // Remainder rows (m % MR) take the scalar path.
        for i in i..m {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(other.row(p)) {
                    *o += av * b;
                }
            }
        }
    }

    /// `selfᵀ @ other` (`(k×m)ᵀ @ (k×n) → m×n`) without materializing the
    /// transpose.
    pub fn matmul_tn(&self, other: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::default();
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// [`Tensor2::matmul_tn`] writing into a caller-owned buffer. See
    /// [`Tensor2::matmul_into`] for the reuse contract.
    pub fn matmul_tn_into(&self, other: &Tensor2, out: &mut Tensor2) {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        out.resize_for_overwrite(self.cols, other.cols);
        let tier = kernel_tier();
        if tier == KernelTier::SeedReference {
            out.fill_zero();
            self.matmul_tn_seed_into(other, out);
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let (k, m, n) = (self.rows, self.cols, other.cols);
            if tier == KernelTier::Auto && avx512::available() {
                unsafe {
                    avx512::matmul_strided(
                        self.data.as_ptr(),
                        1,
                        m,
                        other.data.as_ptr(),
                        out.data.as_mut_ptr(),
                        m,
                        k,
                        n,
                    );
                }
                return;
            }
            if fma::available() {
                if tier == KernelTier::Avx2Baseline {
                    // PR-1 zeroed every output before the kernel ran.
                    out.fill_zero();
                }
                unsafe {
                    fma::matmul_strided(
                        self.data.as_ptr(),
                        1,
                        m,
                        other.data.as_ptr(),
                        out.data.as_mut_ptr(),
                        m,
                        k,
                        n,
                    );
                }
                return;
            }
        }
        out.fill_zero();
        self.matmul_tn_blocked_into(other, out);
    }

    /// Blocked scalar `matmul_tn` fallback: for each shared row `p`, panels
    /// of [`MR`] output rows consume the same streamed B row. Accumulates
    /// into `out`, which must be pre-zeroed `m × n`.
    fn matmul_tn_blocked_into(&self, other: &Tensor2, out: &mut Tensor2) {
        let (k, m, n) = (self.rows, self.cols, other.cols);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            let mut i = 0;
            while i + MR <= m {
                let (a0, a1, a2, a3) = (a_row[i], a_row[i + 1], a_row[i + 2], a_row[i + 3]);
                if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                    i += MR;
                    continue;
                }
                let out_panel = &mut out.data[i * n..(i + MR) * n];
                let (o0, rest) = out_panel.split_at_mut(n);
                let (o1, rest) = rest.split_at_mut(n);
                let (o2, o3) = rest.split_at_mut(n);
                for ((((&b, v0), v1), v2), v3) in b_row.iter().zip(o0).zip(o1).zip(o2).zip(o3) {
                    *v0 += a0 * b;
                    *v1 += a1 * b;
                    *v2 += a2 * b;
                    *v3 += a3 * b;
                }
                i += MR;
            }
            for (i, &av) in a_row.iter().enumerate().take(m).skip(i) {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += av * b;
                }
            }
        }
    }

    /// `self @ otherᵀ` (`(m×k) @ (n×k)ᵀ → m×n`) without materializing the
    /// transpose.
    pub fn matmul_nt(&self, other: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::default();
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Tensor2::matmul_nt`] writing into a caller-owned buffer. See
    /// [`Tensor2::matmul_into`] for the reuse contract.
    pub fn matmul_nt_into(&self, other: &Tensor2, out: &mut Tensor2) {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        // Every `matmul_nt` tier overwrites each output element (dot
        // products and tile stores, never accumulation), so no tier needs
        // the output pre-zeroed.
        out.resize_for_overwrite(self.rows, other.rows);
        let tier = kernel_tier();
        if tier == KernelTier::SeedReference {
            self.matmul_nt_seed_into(other, out);
            return;
        }
        // With enough output rows to amortize the pack, transpose B once
        // into a thread-local scratch and run the register-tiled strided
        // kernel: per-element dot products are latency-bound (one
        // accumulator chain per output), while the tile kernel keeps 6×2
        // independent chains in flight. Same fused p-ascending per-element
        // summation; the scratch reuses its high-water capacity, so steady
        // state stays allocation-free.
        #[cfg(target_arch = "x86_64")]
        if tier == KernelTier::Auto
            && self.rows >= NT_PACK_MIN_ROWS
            && (avx512::available() || fma::available())
        {
            NT_PACK.with(|cell| {
                let bt = &mut *cell.borrow_mut();
                other.transpose_into(bt);
                let (m, k, n) = (self.rows, self.cols, other.rows);
                unsafe {
                    if avx512::available() {
                        avx512::matmul_strided(
                            self.data.as_ptr(),
                            k,
                            1,
                            bt.data.as_ptr(),
                            out.data.as_mut_ptr(),
                            m,
                            k,
                            n,
                        );
                    } else {
                        fma::matmul_strided(
                            self.data.as_ptr(),
                            k,
                            1,
                            bt.data.as_ptr(),
                            out.data.as_mut_ptr(),
                            m,
                            k,
                            n,
                        );
                    }
                }
            });
            return;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let (m, k, n) = (self.rows, self.cols, other.rows);
            if tier == KernelTier::Auto && avx512::available() {
                unsafe {
                    avx512::matmul_nt(
                        self.data.as_ptr(),
                        other.data.as_ptr(),
                        out.data.as_mut_ptr(),
                        m,
                        k,
                        n,
                    );
                }
                return;
            }
            if fma::available() {
                if tier == KernelTier::Avx2Baseline {
                    // PR-1 zeroed every output before the kernel ran.
                    out.fill_zero();
                }
                unsafe {
                    fma::matmul_nt(
                        self.data.as_ptr(),
                        other.data.as_ptr(),
                        out.data.as_mut_ptr(),
                        m,
                        k,
                        n,
                    );
                }
                return;
            }
        }
        self.matmul_nt_blocked_into(other, out);
    }

    /// Blocked scalar `matmul_nt` fallback: [`MR`] dot products run
    /// together so the streamed A row is loaded once per panel of B rows.
    /// Overwrites `out`, which must be pre-shaped `m × n`.
    fn matmul_nt_blocked_into(&self, other: &Tensor2, out: &mut Tensor2) {
        let (m, k, n) = (self.rows, self.cols, other.rows);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + MR <= n {
                let (b0, b1, b2, b3) = (
                    other.row(j),
                    other.row(j + 1),
                    other.row(j + 2),
                    other.row(j + 3),
                );
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for ((((&a, &v0), &v1), &v2), &v3) in a_row.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                    s0 += a * v0;
                    s1 += a * v1;
                    s2 += a * v2;
                    s3 += a * v3;
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += MR;
            }
            for (j, o) in out_row.iter_mut().enumerate().take(n).skip(j) {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                *o = acc;
            }
        }
    }

    /// The seed's original unblocked `matmul` (i-k-j with zero-skip), kept
    /// verbatim so [`set_reference_kernels`] can reproduce the seed
    /// configuration in benchmarks. Accumulates into pre-zeroed `out`.
    fn matmul_seed_into(&self, other: &Tensor2, out: &mut Tensor2) {
        let (m, k, _n) = (self.rows, self.cols, other.cols);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// The seed's original unblocked `matmul_tn`. See
    /// [`Self::matmul_seed_into`].
    fn matmul_tn_seed_into(&self, other: &Tensor2, out: &mut Tensor2) {
        let (k, m, _n) = (self.rows, self.cols, other.cols);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// The seed's original unblocked `matmul_nt`. See
    /// [`Self::matmul_seed_into`].
    fn matmul_nt_seed_into(&self, other: &Tensor2, out: &mut Tensor2) {
        let (m, k, n) = (self.rows, self.cols, other.rows);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                *o = acc;
            }
        }
    }

    /// Allocating wrapper over [`Self::matmul_seed_into`] for the kernel
    /// equivalence tests.
    #[cfg(test)]
    fn matmul_seed(&self, other: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::zeros(self.rows, other.cols);
        self.matmul_seed_into(other, &mut out);
        out
    }

    /// Allocating wrapper over [`Self::matmul_tn_seed_into`] for tests.
    #[cfg(test)]
    fn matmul_tn_seed(&self, other: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::zeros(self.cols, other.cols);
        self.matmul_tn_seed_into(other, &mut out);
        out
    }

    /// Allocating wrapper over [`Self::matmul_nt_seed_into`] for tests.
    #[cfg(test)]
    fn matmul_nt_seed(&self, other: &Tensor2) -> Tensor2 {
        let mut out = Tensor2::zeros(self.rows, other.rows);
        self.matmul_nt_seed_into(other, &mut out);
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor2 {
        let mut out = Tensor2::default();
        self.transpose_into(&mut out);
        out
    }

    /// [`Tensor2::transpose`] into a caller-owned buffer, reusing capacity.
    pub fn transpose_into(&self, out: &mut Tensor2) {
        out.resize_for_overwrite(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// Elementwise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor2) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Add a row vector (`1 × cols`) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Column sums (`1 × cols`), e.g. the bias gradient.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        self.col_sums_acc(&mut sums);
        sums
    }

    /// Accumulate column sums into `acc` (`acc[j] += Σ_r self[r, j]`) —
    /// the allocation-free [`Tensor2::col_sums`] the bias gradients use.
    pub fn col_sums_acc(&self, acc: &mut [f32]) {
        assert_eq!(acc.len(), self.cols, "col_sums_acc width mismatch");
        for r in 0..self.rows {
            for (s, &v) in acc.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
    }

    /// Row-wise softmax in place. Numerically stable (max-subtracted).
    ///
    /// A row whose entries are all `-inf` (a fully masked row, e.g. batch
    /// padding) becomes all zeros rather than NaN: naive max-subtraction
    /// would compute `(-inf) - (-inf) = NaN` there.
    pub fn softmax_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if max == f32::NEG_INFINITY {
                row.iter_mut().for_each(|v| *v = 0.0);
                continue;
            }
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Dot products of row `i` of `self` against rows `j0..j0+n` of
    /// `other` (same width), written to `dst[..n]`: one row of a
    /// `self @ otherᵀ` product restricted to a column interval. The
    /// serving attention path uses this to score only the positions a
    /// tree mask allows.
    pub fn row_dots_nt(&self, i: usize, other: &Tensor2, j0: usize, n: usize, dst: &mut [f32]) {
        assert_eq!(self.cols, other.cols, "row_dots_nt width mismatch");
        assert!(j0 + n <= other.rows, "row_dots_nt range out of bounds");
        let k = self.cols;
        let a_row = &self.data[i * k..(i + 1) * k];
        if !reference_kernels() {
            #[cfg(target_arch = "x86_64")]
            {
                if avx512::available() {
                    unsafe {
                        avx512::matmul_nt(
                            a_row.as_ptr(),
                            other.data.as_ptr().add(j0 * k),
                            dst.as_mut_ptr(),
                            1,
                            k,
                            n,
                        );
                    }
                    return;
                }
                if fma::available() {
                    unsafe {
                        fma::matmul_nt(
                            a_row.as_ptr(),
                            other.data.as_ptr().add(j0 * k),
                            dst.as_mut_ptr(),
                            1,
                            k,
                            n,
                        );
                    }
                    return;
                }
            }
        }
        for (j, d) in dst[..n].iter_mut().enumerate() {
            let b_row = other.row(j0 + j);
            *d = a_row.iter().zip(b_row).map(|(a, b)| a * b).sum();
        }
    }

    /// `dst = weights @ other[j0..j0+weights.len())`: a convex combination
    /// of a row interval of `other`, written to `dst[..other.cols]`. The
    /// serving attention path uses this for the probability-weighted value
    /// sum over only the unmasked positions.
    pub fn row_combine(weights: &[f32], other: &Tensor2, j0: usize, dst: &mut [f32]) {
        let m = weights.len();
        assert!(j0 + m <= other.rows, "row_combine range out of bounds");
        let n = other.cols;
        if !reference_kernels() {
            #[cfg(target_arch = "x86_64")]
            {
                if avx512::available() {
                    unsafe {
                        avx512::matmul_strided(
                            weights.as_ptr(),
                            m,
                            1,
                            other.data.as_ptr().add(j0 * n),
                            dst.as_mut_ptr(),
                            1,
                            m,
                            n,
                        );
                    }
                    return;
                }
                if fma::available() {
                    unsafe {
                        fma::matmul_strided(
                            weights.as_ptr(),
                            m,
                            1,
                            other.data.as_ptr().add(j0 * n),
                            dst.as_mut_ptr(),
                            1,
                            m,
                            n,
                        );
                    }
                    return;
                }
            }
        }
        dst[..n].fill(0.0);
        for (p, &w) in weights.iter().enumerate() {
            for (d, &b) in dst[..n].iter_mut().zip(other.row(j0 + p)) {
                *d += w * b;
            }
        }
    }

    /// Copy of `rows` consecutive rows starting at `start`.
    pub fn row_block(&self, start: usize, rows: usize) -> Tensor2 {
        assert!(start + rows <= self.rows, "row block out of bounds");
        let s = start * self.cols;
        Tensor2::from_vec(rows, self.cols, self.data[s..s + rows * self.cols].to_vec())
    }

    /// Overwrite consecutive rows starting at `start` with `src`'s rows.
    pub fn set_row_block(&mut self, start: usize, src: &Tensor2) {
        assert_eq!(src.cols, self.cols, "row block width mismatch");
        assert!(start + src.rows <= self.rows, "row block out of bounds");
        let s = start * self.cols;
        self.data[s..s + src.data.len()].copy_from_slice(&src.data);
    }

    /// Set all elements to zero (e.g. to clear gradients).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor2 {
        Tensor2::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_matches_hand_example() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = Tensor2::uniform(4, 3, 1.0, 1);
        let b = Tensor2::uniform(4, 5, 1.0, 2);
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in via_tn.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
        let c = Tensor2::uniform(5, 3, 1.0, 3);
        let via_nt = a.matmul_nt(&c);
        let explicit2 = a.matmul(&c.transpose());
        for (x, y) in via_nt.as_slice().iter().zip(explicit2.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut x = t(2, 3, &[1.0, 2.0, 3.0, -1e9, 0.0, -1e9]);
        x.softmax_rows();
        for r in 0..2 {
            let sum: f32 = x.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Masked positions get ~0 probability, the unmasked one ~1.
        assert!(x.get(1, 1) > 0.999);
        assert!(x.get(1, 0) < 1e-6);
    }

    #[test]
    fn softmax_extreme_values_are_stable() {
        let mut x = t(1, 3, &[1e9, 1e9, -1e9]);
        x.softmax_rows();
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        assert!((x.get(0, 0) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn softmax_fully_masked_row_is_zero_not_nan() {
        // Padding rows in a packed batch have every score at -inf; the
        // softmax must turn them into all-zero rows, and neighbours must be
        // unaffected.
        let inf = f32::NEG_INFINITY;
        let mut x = t(3, 3, &[inf, inf, inf, 0.0, inf, 0.0, inf, inf, 1.0]);
        x.softmax_rows();
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(x.row(0), &[0.0, 0.0, 0.0]);
        assert!((x.get(1, 0) - 0.5).abs() < 1e-6);
        assert_eq!(x.get(1, 1), 0.0);
        assert!((x.get(2, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fast_kernels_match_seed_kernels() {
        // The dispatched kernels (FMA tiles where available, blocked scalar
        // otherwise) must agree with the seed reference implementations on
        // every remainder path: rows % 4, cols % 16 (FMA tile width),
        // cols % 4, and shared dims crossing the 8-lane boundary.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (7, 6, 9), (10, 3, 13)] {
            let a = Tensor2::uniform(m, k, 1.0, (m * 100 + n) as u64);
            let b = Tensor2::uniform(k, n, 1.0, (n * 100 + k) as u64);
            for (x, y) in a
                .matmul(&b)
                .as_slice()
                .iter()
                .zip(a.matmul_seed(&b).as_slice())
            {
                assert!((x - y).abs() < 1e-5, "matmul vs seed at {m}x{k}x{n}");
            }
            let at = a.transpose();
            for (x, y) in at
                .matmul_tn(&b)
                .as_slice()
                .iter()
                .zip(at.matmul_tn_seed(&b).as_slice())
            {
                assert!((x - y).abs() < 1e-5, "matmul_tn vs seed at {m}x{k}x{n}");
            }
            let bt = b.transpose();
            for (x, y) in a
                .matmul_nt(&bt)
                .as_slice()
                .iter()
                .zip(a.matmul_nt_seed(&bt).as_slice())
            {
                assert!((x - y).abs() < 1e-5, "matmul_nt vs seed at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn blocked_matmuls_match_naive_on_odd_shapes() {
        // Shapes chosen to exercise the 4-row panels, the 16-wide FMA
        // tiles, and every remainder path (rows % 4 != 0, cols % 16 != 0,
        // shared dim % 8 != 0).
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (4, 4, 4),
            (7, 6, 9),
            (10, 3, 13),
            (9, 17, 16),
            (12, 18, 33),
            (21, 128, 64),
        ] {
            let a = Tensor2::uniform(m, k, 1.0, (m * 100 + n) as u64);
            let b = Tensor2::uniform(k, n, 1.0, (n * 100 + k) as u64);
            let fast = a.matmul(&b);
            let mut naive = Tensor2::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc += a.get(i, p) * b.get(p, j);
                    }
                    naive.set(i, j, acc);
                }
            }
            for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
                assert!((x - y).abs() < 1e-5, "matmul mismatch at {m}x{k}x{n}");
            }
            let at = a.transpose();
            let tn = at.matmul_tn(&b);
            for (x, y) in tn.as_slice().iter().zip(naive.as_slice()) {
                assert!((x - y).abs() < 1e-5, "matmul_tn mismatch at {m}x{k}x{n}");
            }
            let bt = b.transpose();
            let nt = a.matmul_nt(&bt);
            for (x, y) in nt.as_slice().iter().zip(naive.as_slice()) {
                assert!((x - y).abs() < 1e-5, "matmul_nt mismatch at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut x = Tensor2::zeros(3, 2);
        x.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(x.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn uniform_is_seeded_and_bounded() {
        let a = Tensor2::uniform(10, 10, 0.5, 42);
        let b = Tensor2::uniform(10, 10, 0.5, 42);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|v| v.abs() <= 0.5));
        let c = Tensor2::uniform(10, 10, 0.5, 43);
        assert_ne!(a, c);
    }
}
