//! Row-major 2-D `f32` tensors and the linear-algebra kernels the modules
//! need. Deliberately minimal: sizes are small (dozens of rows × ≤128
//! columns), so clarity beats blocking/SIMD tricks; the inner matmul loop is
//! still written i-k-j so the compiler can vectorize it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// Zero-filled `rows × cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor2 {
        Tensor2 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor from existing data (`data.len() == rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor2 {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor2 { rows, cols, data }
    }

    /// Uniform random tensor in `[-bound, bound]`, seeded.
    pub fn uniform(rows: usize, cols: usize, bound: f32, seed: u64) -> Tensor2 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        Tensor2 { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self @ other` (`(m×k) @ (k×n) → m×n`).
    pub fn matmul(&self, other: &Tensor2) -> Tensor2 {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor2::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` (`(k×m)ᵀ @ (k×n) → m×n`) without materializing the
    /// transpose.
    pub fn matmul_tn(&self, other: &Tensor2) -> Tensor2 {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor2::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` (`(m×k) @ (n×k)ᵀ → m×n`) without materializing the
    /// transpose.
    pub fn matmul_nt(&self, other: &Tensor2) -> Tensor2 {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor2::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                *o = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor2 {
        let mut out = Tensor2::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor2) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Add a row vector (`1 × cols`) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Column sums (`1 × cols`), e.g. the bias gradient.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Row-wise softmax in place. Numerically stable (max-subtracted).
    pub fn softmax_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Set all elements to zero (e.g. to clear gradients).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor2 {
        Tensor2::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_matches_hand_example() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = Tensor2::uniform(4, 3, 1.0, 1);
        let b = Tensor2::uniform(4, 5, 1.0, 2);
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in via_tn.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
        let c = Tensor2::uniform(5, 3, 1.0, 3);
        let via_nt = a.matmul_nt(&c);
        let explicit2 = a.matmul(&c.transpose());
        for (x, y) in via_nt.as_slice().iter().zip(explicit2.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut x = t(2, 3, &[1.0, 2.0, 3.0, -1e9, 0.0, -1e9]);
        x.softmax_rows();
        for r in 0..2 {
            let sum: f32 = x.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Masked positions get ~0 probability, the unmasked one ~1.
        assert!(x.get(1, 1) > 0.999);
        assert!(x.get(1, 0) < 1e-6);
    }

    #[test]
    fn softmax_extreme_values_are_stable() {
        let mut x = t(1, 3, &[1e9, 1e9, -1e9]);
        x.softmax_rows();
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        assert!((x.get(0, 0) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut x = Tensor2::zeros(3, 2);
        x.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(x.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor2::zeros(2, 3);
        let b = Tensor2::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn uniform_is_seeded_and_bounded() {
        let a = Tensor2::uniform(10, 10, 0.5, 42);
        let b = Tensor2::uniform(10, 10, 0.5, 42);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|v| v.abs() <= 0.5));
        let c = Tensor2::uniform(10, 10, 0.5, 43);
        assert_ne!(a, c);
    }
}
