//! Reusable scratch arenas for allocation-free forward/backward passes.
//!
//! Every buffer is a plain [`Tensor2`] (or `Vec`) reshaped in place via
//! [`Tensor2::resize_zeroed`] and friends: the first pass grows each buffer
//! to its high-water capacity, after which steady-state training epochs and
//! serving batches stop touching the allocator entirely. The arena doubles
//! as the layer-activation cache — forward passes leave Q/K/V/probs and the
//! MLP activations here and backward passes read them back, replacing the
//! per-layer `x.clone()` caches of the reference path.

use crate::tensor::Tensor2;

/// Attention-layer scratch: projections and per-block temporaries that
/// persist from a packed forward pass to the matching backward pass.
#[derive(Debug, Default)]
pub struct AttnScratch {
    /// Query projection of the whole packed input (forward → backward).
    pub q: Tensor2,
    /// Key projection (forward → backward).
    pub k: Tensor2,
    /// Value projection (forward → backward).
    pub v: Tensor2,
    /// Concatenated per-block softmax probabilities; block `b` contributes
    /// `lens[b]²` values (forward → backward).
    pub probs: Vec<f32>,
    /// Per-block row copy of `q`.
    pub qb: Tensor2,
    /// Per-block row copy of `k`.
    pub kb: Tensor2,
    /// Per-block row copy of `v`.
    pub vb: Tensor2,
    /// Per-block score / probability matrix (forward).
    pub scores: Tensor2,
    /// Per-block matmul product, scattered into the packed output.
    pub blk: Tensor2,
    /// Per-block probability matrix rebuilt from `probs` (backward).
    pub pb: Tensor2,
    /// Per-block upstream-gradient row copy (backward).
    pub dob: Tensor2,
    /// Per-block `dP` (backward).
    pub dp: Tensor2,
    /// Per-block `dScores` (backward).
    pub dscores: Tensor2,
    /// Packed `dQ` (backward).
    pub dq: Tensor2,
    /// Packed `dK` (backward).
    pub dk: Tensor2,
    /// Packed `dV` (backward).
    pub dv: Tensor2,
    /// Parameter-gradient product scratch (`xᵀ dQ` etc., backward).
    pub gtmp: Tensor2,
    /// One score row for the interval-sparse serving path.
    pub srow: Vec<f32>,
}

/// The full model scratch arena threaded through the batched compact
/// forward/backward and the per-worker serving forward path.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Attention sub-arena.
    pub attn: AttnScratch,
    /// Compact input of the last batched forward (the backward's `x`).
    pub xc: Tensor2,
    /// Block lengths of the last batched forward.
    pub lens: Vec<usize>,
    /// Attention output (the MLP's input).
    pub attn_out: Tensor2,
    /// First hidden activation (post-ReLU; the sign lives in `mask1`).
    pub h1: Tensor2,
    /// Second hidden activation (post-ReLU).
    pub h2: Tensor2,
    /// Final predictions of the last forward pass.
    pub preds: Tensor2,
    /// LoRA intermediate `x @ B` of layer 1 (forward → backward).
    pub xb1: Tensor2,
    /// LoRA intermediate of layer 2.
    pub xb2: Tensor2,
    /// LoRA intermediate of layer 3.
    pub xb3: Tensor2,
    /// ReLU sign mask after layer 1.
    pub mask1: Vec<bool>,
    /// ReLU sign mask after layer 2.
    pub mask2: Vec<bool>,
    /// Shared matmul temporary for the LoRA forward/backward.
    pub tmp: Tensor2,
    /// Gradient ping buffer.
    pub d1: Tensor2,
    /// Gradient pong buffer.
    pub d2: Tensor2,
    /// `d(x @ B)` scratch (backward).
    pub dxb: Tensor2,
    /// Parameter-gradient product scratch (backward).
    pub gtmp: Tensor2,
    /// Root-row gather for root-only serving inference.
    pub heads: Tensor2,
}

impl Workspace {
    /// Empty workspace; buffers grow to their high-water marks on first use.
    pub fn new() -> Workspace {
        Workspace::default()
    }
}

impl Clone for Workspace {
    /// Model snapshots (e.g. early stopping's best-weights copy) must not
    /// duplicate megabytes of scratch: clones start with an empty arena.
    fn clone(&self) -> Workspace {
        Workspace::default()
    }
}
