//! Property-based gradient checks: for random shapes, inputs and parameter
//! values, every module's analytic backward pass must match central finite
//! differences. This is the trust anchor of the from-scratch NN library.

use dace_nn::{Linear, LoraLinear, MaskedSelfAttention, Relu, RobustScaler, Tensor2};
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const TOL: f32 = 6e-2;

fn close(numeric: f32, analytic: f32) -> bool {
    (numeric - analytic).abs() < TOL * (1.0 + analytic.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_weight_gradients(rows in 1usize..5, input in 1usize..6, output in 1usize..5, seed in 0u64..1_000) {
        let mut layer = Linear::new(input, output, seed);
        let x = Tensor2::uniform(rows, input, 1.0, seed ^ 0xF00D);
        let y = layer.forward(&x);
        let _ = layer.backward(&y); // loss = ||y||²/2
        let loss = |l: &Linear| 0.5 * l.forward_inference(&x).norm_sq();
        for idx in 0..layer.w.value.len() {
            let orig = layer.w.value.as_slice()[idx];
            let ana = layer.w.grad.as_slice()[idx];
            layer.w.value.as_mut_slice()[idx] = orig + EPS;
            let lp = loss(&layer);
            layer.w.value.as_mut_slice()[idx] = orig - EPS;
            let lm = loss(&layer);
            layer.w.value.as_mut_slice()[idx] = orig;
            prop_assert!(close((lp - lm) / (2.0 * EPS), ana));
        }
        // Bias gradients too.
        for idx in 0..layer.b.value.len() {
            let orig = layer.b.value.as_slice()[idx];
            let ana = layer.b.grad.as_slice()[idx];
            layer.b.value.as_mut_slice()[idx] = orig + EPS;
            let lp = loss(&layer);
            layer.b.value.as_mut_slice()[idx] = orig - EPS;
            let lm = loss(&layer);
            layer.b.value.as_mut_slice()[idx] = orig;
            prop_assert!(close((lp - lm) / (2.0 * EPS), ana));
        }
    }

    #[test]
    fn lora_adapter_gradients(rows in 1usize..4, dim in 3usize..7, seed in 0u64..1_000) {
        let rank = 2;
        let mut layer = LoraLinear::new(dim, dim, rank, seed);
        layer.set_mode(dace_nn::LoraMode::Finetune);
        layer.lora_a.value = Tensor2::uniform(rank, dim, 0.5, seed ^ 0xA);
        let x = Tensor2::uniform(rows, dim, 1.0, seed ^ 0xB);
        let y = layer.forward(&x);
        let _ = layer.backward(&y);
        let loss = |l: &LoraLinear| 0.5 * l.forward_inference(&x).norm_sq();
        for idx in 0..layer.lora_b.value.len() {
            let orig = layer.lora_b.value.as_slice()[idx];
            let ana = layer.lora_b.grad.as_slice()[idx];
            layer.lora_b.value.as_mut_slice()[idx] = orig + EPS;
            let lp = loss(&layer);
            layer.lora_b.value.as_mut_slice()[idx] = orig - EPS;
            let lm = loss(&layer);
            layer.lora_b.value.as_mut_slice()[idx] = orig;
            prop_assert!(close((lp - lm) / (2.0 * EPS), ana));
        }
    }

    #[test]
    fn attention_input_gradients(n in 2usize..5, d in 2usize..5, seed in 0u64..1_000) {
        let mut attn = MaskedSelfAttention::new(d, 4, 4, seed);
        let mut x = Tensor2::uniform(n, d, 1.0, seed ^ 0xC);
        // Random "tree-ish" mask: lower-triangular style, always reflexive.
        let mut mask = vec![false; n * n];
        for i in 0..n {
            for j in i..n {
                mask[i * n + j] = true;
            }
        }
        let y = attn.forward(&x, &mask);
        let dx = attn.backward(&y);
        let loss = |x: &Tensor2| 0.5 * attn.forward_inference(x, &mask).norm_sq();
        for idx in 0..x.len() {
            let orig = x.as_slice()[idx];
            let ana = dx.as_slice()[idx];
            x.as_mut_slice()[idx] = orig + EPS;
            let lp = loss(&x);
            x.as_mut_slice()[idx] = orig - EPS;
            let lm = loss(&x);
            x.as_mut_slice()[idx] = orig;
            prop_assert!(close((lp - lm) / (2.0 * EPS), ana));
        }
    }

    #[test]
    fn relu_gradient_gates(rows in 1usize..5, cols in 1usize..6, seed in 0u64..1_000) {
        let mut relu = Relu::new();
        let x = Tensor2::uniform(rows, cols, 2.0, seed);
        let y = relu.forward(&x);
        let dy = Tensor2::uniform(rows, cols, 1.0, seed ^ 1);
        let dx = relu.backward(&dy);
        for i in 0..x.len() {
            if x.as_slice()[i] > 0.0 {
                prop_assert_eq!(dx.as_slice()[i], dy.as_slice()[i]);
                prop_assert_eq!(y.as_slice()[i], x.as_slice()[i]);
            } else {
                prop_assert_eq!(dx.as_slice()[i], 0.0);
                prop_assert_eq!(y.as_slice()[i], 0.0);
            }
        }
    }

    #[test]
    fn softmax_rows_are_distributions_for_any_input(
        rows in 1usize..6,
        cols in 1usize..8,
        scale in 0.1f32..50.0,
        seed in 0u64..1_000
    ) {
        let mut x = Tensor2::uniform(rows, cols, scale, seed);
        x.softmax_rows();
        for r in 0..rows {
            let row = x.row(r);
            prop_assert!(row.iter().all(|v| (0.0..=1.0).contains(v) && v.is_finite()));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn scaler_roundtrips_any_distribution(values in proptest::collection::vec(-1e6f64..1e6, 2..200), probe in -1e6f64..1e6) {
        let s = RobustScaler::fit(&values);
        prop_assert!(s.iqr > 0.0);
        let t = s.transform(probe);
        prop_assert!(t.is_finite());
        prop_assert!((s.inverse(t) - probe).abs() < 1e-6 * (1.0 + probe.abs()));
    }

    #[test]
    fn matmul_is_associative_with_transpose_identities(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1_000
    ) {
        let a = Tensor2::uniform(m, k, 1.0, seed);
        let b = Tensor2::uniform(k, n, 1.0, seed ^ 2);
        let ab = a.matmul(&b);
        // (AB)ᵀ = BᵀAᵀ
        let lhs = ab.transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        // matmul_tn / matmul_nt agree with explicit transposes.
        let tn = a.transpose().matmul(&ab); // (k×m)(m×n)
        let tn_fast = a.matmul_tn(&ab);
        for (x, y) in tn.as_slice().iter().zip(tn_fast.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
