//! Bit-identity proptests for the `_into` kernel family and in-place ops.
//!
//! The zero-allocation training path is only sound if every buffer-reuse
//! kernel produces *exactly* the same bits as its allocating counterpart —
//! the trainer's equivalence proofs (batched vs per-plan reference) compose
//! out of these identities. Each property runs under both dispatch modes
//! (optimized FMA/blocked kernels and the seed reference kernels), and the
//! reused output buffers are pre-poisoned with garbage of a *different*
//! shape so stale capacity can never leak into results.

use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;

use dace_nn::{set_kernel_tier, KernelTier, Relu, Tensor2};

/// The kernel tier is process-global and the test harness is
/// multi-threaded: every test that flips dispatch modes must hold this lock
/// so another property never observes a pinned tier mid-run.
fn dispatch_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Run `f` under every kernel-dispatch tier, always restoring the default.
/// Restoration happens even when an assert panics, so one failing property
/// cannot leave the whole process on a pinned tier.
fn with_both_dispatch_modes(mut f: impl FnMut()) {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel_tier(KernelTier::Auto);
        }
    }
    let _guard = dispatch_lock();
    let _restore = Restore;
    for tier in [
        KernelTier::Auto,
        KernelTier::Avx2Baseline,
        KernelTier::SeedReference,
    ] {
        set_kernel_tier(tier);
        f();
    }
}

/// A deterministic garbage buffer, shaped differently from any result, so
/// `_into` must fully overwrite both shape and contents.
fn poisoned() -> Tensor2 {
    Tensor2::uniform(3, 7, 123.0, 0xBAD)
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    // Cover the FMA tile edges (n % 16, m % 4), the blocked-kernel panels,
    // and the k % 8 dot-product boundary.
    (1usize..24, 1usize..20, 1usize..36)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_into_is_bit_identical(mkn in dims(), seed in 0u64..1000) {
        let (m, k, n) = mkn;
        let a = Tensor2::uniform(m, k, 1.0, seed);
        let b = Tensor2::uniform(k, n, 1.0, seed ^ 0xF00D);
        with_both_dispatch_modes(|| {
            let want = a.matmul(&b);
            let mut out = poisoned();
            a.matmul_into(&b, &mut out);
            prop_assert_eq!(want.as_slice(), out.as_slice());
            prop_assert_eq!((out.rows(), out.cols()), (m, n));
            // Reusing the warmed buffer must give the same bits again.
            a.matmul_into(&b, &mut out);
            prop_assert_eq!(want.as_slice(), out.as_slice());
        });
    }

    #[test]
    fn matmul_tn_into_is_bit_identical(mkn in dims(), seed in 0u64..1000) {
        let (m, k, n) = mkn;
        let a = Tensor2::uniform(k, m, 1.0, seed);
        let b = Tensor2::uniform(k, n, 1.0, seed ^ 0xF00D);
        with_both_dispatch_modes(|| {
            let want = a.matmul_tn(&b);
            let mut out = poisoned();
            a.matmul_tn_into(&b, &mut out);
            prop_assert_eq!(want.as_slice(), out.as_slice());
            prop_assert_eq!((out.rows(), out.cols()), (m, n));
        });
    }

    #[test]
    fn matmul_nt_into_is_bit_identical(mkn in dims(), seed in 0u64..1000) {
        let (m, k, n) = mkn;
        let a = Tensor2::uniform(m, k, 1.0, seed);
        let b = Tensor2::uniform(n, k, 1.0, seed ^ 0xF00D);
        with_both_dispatch_modes(|| {
            let want = a.matmul_nt(&b);
            let mut out = poisoned();
            a.matmul_nt_into(&b, &mut out);
            prop_assert_eq!(want.as_slice(), out.as_slice());
            prop_assert_eq!((out.rows(), out.cols()), (m, n));
        });
    }

    #[test]
    fn row_block_copy_and_col_sums_acc_match(
        shape in (2usize..12, 1usize..9),
        seed in 0u64..1000,
    ) {
        let (rows, cols) = shape;
        let x = Tensor2::uniform(rows, cols, 2.0, seed);
        let start = (seed as usize) % (rows - 1);
        let take = 1 + (seed as usize) % (rows - start);
        let want = x.row_block(start, take);
        let mut got = poisoned();
        got.copy_row_block_from(&x, start, take);
        prop_assert_eq!(want.as_slice(), got.as_slice());
        prop_assert_eq!((got.rows(), got.cols()), (take, cols));

        let mut acc = vec![0.0f32; cols];
        x.col_sums_acc(&mut acc);
        prop_assert_eq!(x.col_sums(), acc.clone());
        // Accumulation (not overwrite): a second pass ~doubles the sums
        // (approximate — the second pass folds onto a non-zero start, which
        // reassociates the float sum).
        x.col_sums_acc(&mut acc);
        for (s, a) in x.col_sums().iter().zip(&acc) {
            prop_assert!((2.0 * s - a).abs() <= 1e-4 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn in_place_relu_matches_allocating_relu(
        shape in (1usize..10, 1usize..10),
        seed in 0u64..1000,
    ) {
        let (rows, cols) = shape;
        let x = Tensor2::uniform(rows, cols, 2.0, seed);
        let dy = Tensor2::uniform(rows, cols, 1.0, seed ^ 0x1CE);
        let mut relu = Relu::new();
        let y = relu.forward(&x);
        let dx = relu.backward(&dy);

        let mut y_ip = x.clone();
        let mut mask = vec![true; 3]; // wrong-sized garbage: must be refilled
        Relu::forward_in_place(&mut y_ip, &mut mask);
        prop_assert_eq!(y.as_slice(), y_ip.as_slice());

        let mut dx_ip = dy.clone();
        Relu::backward_in_place(&mut dx_ip, &mask);
        prop_assert_eq!(dx.as_slice(), dx_ip.as_slice());

        let mut inf = x.clone();
        Relu::relu_in_place(&mut inf);
        prop_assert_eq!(relu.forward_inference(&x).as_slice(), inf.as_slice());
    }
}

/// Every dispatch tier must agree numerically: the `Avx2Baseline` and
/// `SeedReference` tiers exist so benchmarks can time historical kernel
/// configurations, which is only meaningful if they compute the same
/// function. `matmul`/`matmul_tn` keep the exact p-ascending per-element
/// FMA chain across SIMD tiers (bit-identical); `matmul_nt`'s dot-product
/// tier splits the sum across lanes, so cross-tier agreement is 1e-5.
#[test]
fn kernel_tiers_agree_numerically() {
    let _guard = dispatch_lock();
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel_tier(KernelTier::Auto);
        }
    }
    let _restore = Restore;
    // Big enough to engage the AVX-512 panels and the nt transpose-pack
    // path (rows ≥ 8), with ragged tails on every dimension.
    let (m, k, n) = (37, 45, 51);
    let a = Tensor2::uniform(m, k, 1.0, 11);
    let b = Tensor2::uniform(k, n, 1.0, 22);
    let at = Tensor2::uniform(k, m, 1.0, 33);
    let bt = Tensor2::uniform(n, k, 1.0, 44);
    let run = |tier| {
        set_kernel_tier(tier);
        (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt))
    };
    let (mm0, tn0, nt0) = run(KernelTier::Auto);
    for tier in [KernelTier::Avx2Baseline, KernelTier::SeedReference] {
        let (mm, tn, nt) = run(tier);
        for (want, got) in [(&mm0, &mm), (&tn0, &tn), (&nt0, &nt)] {
            for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
                assert!(
                    (w - g).abs() <= 1e-5 * (1.0 + w.abs()),
                    "{tier:?} diverges: {w} vs {g}"
                );
            }
        }
    }
}

/// In-place softmax (already the only softmax) must keep its all-`−∞`-row
/// guarantee when fed through reused buffers in both dispatch modes.
#[test]
fn softmax_fully_masked_rows_stay_zero_in_reused_buffers() {
    with_both_dispatch_modes(|| {
        let inf = f32::NEG_INFINITY;
        let mut x = poisoned();
        x.copy_from_slice_shaped(3, 3, &[inf, inf, inf, 0.0, inf, 0.0, inf, inf, 1.0]);
        x.softmax_rows();
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(x.row(0), &[0.0, 0.0, 0.0]);
        assert!((x.get(1, 0) - 0.5).abs() < 1e-6);
        assert!((x.get(2, 2) - 1.0).abs() < 1e-6);
    });
}
