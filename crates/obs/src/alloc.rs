//! Heap-allocation probe: a process-global hook the benchmark harness can
//! install so the trainer reports bytes allocated per epoch.
//!
//! `dace-obs` deliberately does *not* ship a global allocator — swapping the
//! allocator is a whole-binary decision that belongs to the final artifact
//! (the `train_alloc` bench installs a counting wrapper around `System`).
//! Instead, any binary that *does* count allocations registers a probe here
//! once at startup; library code (the trainer) samples it opportunistically
//! and records the delta. When no probe is installed the cost is one
//! `OnceLock` load and every reading is `None`.

use std::sync::OnceLock;

static PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Install the process-wide allocation probe. `probe` must return a
/// monotonically non-decreasing count of bytes allocated so far (frees are
/// not subtracted — the trainer differences two readings, so what it reports
/// is gross bytes allocated in between).
///
/// First caller wins; later calls are ignored so tests running in one
/// process cannot fight over the hook.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = PROBE.set(probe);
}

/// Bytes allocated so far according to the installed probe, or `None` when
/// no probe was registered (the common case outside the alloc bench).
pub fn alloc_probe_bytes() -> Option<u64> {
    PROBE.get().map(|probe| probe())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_probe() -> u64 {
        42
    }

    #[test]
    fn probe_roundtrip_and_first_caller_wins() {
        // Before registration this may already be set by another test in the
        // same process, so only assert the post-registration contract.
        set_alloc_probe(fake_probe);
        assert_eq!(alloc_probe_bytes(), Some(42));
        // Second registration is a no-op, not a panic.
        set_alloc_probe(fake_probe);
        assert_eq!(alloc_probe_bytes(), Some(42));
    }
}
