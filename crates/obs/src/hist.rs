//! Lock-free fixed-bucket histograms of `u64` samples.
//!
//! Histograms use an HDR-style layout — 8 linear sub-buckets per power-of-2
//! octave — so quantile estimates carry at most ~12.5% relative error while
//! `record` stays a single relaxed `fetch_add`. Everything here is written
//! from hot paths (the serve scheduler, stage timers), so there are no locks
//! anywhere.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: `2^SUB_BITS` linear buckets per octave.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets; covers values up to `2^60` with clamping above.
pub const HIST_BUCKETS: usize = 512;

/// Bucket index a value lands in. Exposed (with [`bucket_upper`]) so tests
/// can check the layout invariant `bucket_upper(bucket_index(v)) >= v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let shift = msb - SUB_BITS as u64;
    let sub = (v >> shift) & (SUB - 1);
    ((((msb - SUB_BITS as u64) + 1) * SUB) + sub).min(HIST_BUCKETS as u64 - 1) as usize
}

/// Inclusive upper bound of bucket `i` (what quantiles report). Computed
/// in `u128` because the topmost occupied bucket's bound is exactly
/// `u64::MAX` and the shift would otherwise overflow.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let shift = i / SUB - 1;
    let sub = i % SUB;
    let upper = (((SUB + sub + 1) as u128) << shift) - 1;
    upper.min(u64::MAX as u128) as u64
}

/// A fixed-bucket concurrent histogram of `u64` samples (the serve layer
/// records microseconds and batch sizes). All operations are wait-free
/// relaxed atomics; snapshots are not linearizable with respect to
/// concurrent writers, which is fine for monitoring.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; HIST_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([0u64; HIST_BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let quantile = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the p-quantile sample, 1-based.
            let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(HIST_BUCKETS - 1)
        };
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of the raw samples (exact; what Prometheus `_sum` reports).
    #[serde(default)]
    pub sum: u64,
    /// Arithmetic mean of the raw samples (exact, from the running sum).
    pub mean: f64,
    /// Median (bucket upper bound, ≤ ~12.5% high).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_bounds_error() {
        // Every value must land in a bucket whose upper bound is within
        // 12.5% above it (one sub-bucket of slack).
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 12345, 1 << 40, u64::MAX]) {
            let i = bucket_index(v);
            let hi = bucket_upper(i);
            assert!(hi >= v, "upper({i}) = {hi} < {v}");
            assert!(
                hi as f64 <= v as f64 * 1.125 + 1.0,
                "upper({i}) = {hi} too far above {v}"
            );
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "v={v} not below previous bound");
            }
        }
    }

    #[test]
    fn quantiles_on_uniform_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        assert!((s.mean - 500.5).abs() < 1e-9);
        // Bucket upper bounds overestimate by ≤ 12.5%.
        assert!((500..=563).contains(&s.p50), "p50 = {}", s.p50);
        assert!((950..=1069).contains(&s.p95), "p95 = {}", s.p95);
        assert!((990..=1114).contains(&s.p99), "p99 = {}", s.p99);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 40_000);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let h = Histogram::new();
        h.record(120);
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"count\":1"));
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
