//! The lifecycle event journal: a crash-safe, typed, append-only record of
//! every decision the serving estimator makes about itself.
//!
//! Counters say *how often* something happened; the journal says *what*
//! happened, *when*, and *why* — which model version was promoted, what
//! drift trip caused it, which worker was respawned, when the breaker
//! opened. Each entry is a [`JournalRecord`] carrying a monotone sequence
//! number, a wall-clock timestamp, the causal trace id of the request or
//! lineage that produced it, and a typed [`LifecycleEvent`].
//!
//! On-disk format: append-only JSONL with per-record framing borrowed from
//! the checkpoint discipline (`persist.rs`) —
//!
//! ```text
//! <len> <fnv 16 lowercase hex> <json>\n
//! ```
//!
//! where `len` is the JSON byte length and the FNV-1a64 checksum covers the
//! JSON bytes. Every append is flushed and fsynced (lifecycle events are
//! rare — a few dozen per run — so durability is cheap here). The reader
//! ([`decode_journal`]) validates each frame and **stops at the first
//! corrupt one**, returning the valid prefix: a torn tail from a crash
//! mid-append loses at most the record being written, never yields a
//! malformed or silently-wrong record, and never panics. [`EventJournal::open`]
//! truncates any torn tail it finds so the file heals on restart.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// FNV-1a64 (same constants as `dace_core::persist`; duplicated here so the
/// journal stays dependency-free inside `dace-obs`).
pub fn journal_fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A typed lifecycle event. Struct variants serialize as
/// `{"VariantName": {fields...}}`, unit variants as `"VariantName"` — both
/// shapes are stable and asserted by CI's jq checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LifecycleEvent {
    /// The serving stack came up (journal head marker).
    ServerStarted {
        /// Worker threads in the pool.
        workers: u64,
        /// Base model version published at start.
        version: u64,
    },
    /// The drift detector's windowed q-error crossed its trip ratio.
    DriftTripped {
        /// Baseline q-error quantile the detector re-anchored to.
        baseline_q: f64,
        /// Current sliding-window q-error quantile that tripped.
        window_q: f64,
        /// Feedback samples observed when the trip fired.
        samples: u64,
    },
    /// A background retrain was spawned.
    RetrainStarted {
        /// Feedback samples drained into the retrain set.
        samples: u64,
    },
    /// The retrain could not produce a candidate (crash, empty window, …).
    RetrainFailed {
        /// Human-readable failure cause.
        reason: String,
    },
    /// A candidate trained but lost its shadow eval against the incumbent.
    RetrainRejected {
        /// Candidate's holdback q-error quantile.
        candidate_q: f64,
        /// Incumbent's holdback q-error quantile.
        current_q: f64,
    },
    /// A new model version was published to the registry.
    SwapPromoted {
        /// Version serving before the swap.
        from: u64,
        /// Version serving after the swap.
        to: u64,
        /// What initiated the retrain that won ("drift", "manual", …).
        trigger: String,
        /// Candidate's shadow-eval q-error quantile at promotion.
        shadow_p90: f64,
    },
    /// A promoted version survived its probation window.
    ProbationPassed {
        /// The version that passed.
        version: u64,
        /// Probation-window q-error quantile at the verdict.
        q_p90: f64,
    },
    /// Probation failed: the registry was rolled back to the last good
    /// version.
    RollbackFired {
        /// The version rolled back from.
        from: u64,
        /// The version restored.
        to: u64,
        /// Probation-window q-error quantile that failed.
        q_p90: f64,
        /// The limit it had to stay under.
        limit: f64,
    },
    /// The circuit breaker opened (model path failing; fallback serving).
    BreakerOpened {
        /// Observed failure percentage over the breaker window.
        error_percent: f64,
    },
    /// The breaker let a probe request through after its cooldown.
    BreakerHalfOpen,
    /// The breaker closed (model path healthy again).
    BreakerClosed,
    /// The supervisor replaced a dead worker thread.
    WorkerRespawned {
        /// Pool slot of the respawned worker.
        slot: u64,
        /// Consecutive respawns of this slot without a healthy interval.
        consecutive: u64,
    },
    /// A checkpoint failed validation and was rejected (corrupt or
    /// unparseable); the previous version kept serving.
    CheckpointRejected {
        /// The typed decode/reload error, stringified.
        reason: String,
    },
    /// A multi-window SLO burn-rate alert fired.
    Alert {
        /// Which SLO ("qerr_p90" or "deadline_miss").
        slo: String,
        /// Burn rate over the fast window.
        fast_burn: f64,
        /// Burn rate over the slow window.
        slow_burn: f64,
        /// The burn-rate threshold both windows exceeded.
        threshold: f64,
    },
    /// A diagnostic bundle (flight-recorder + journal tail) was written.
    BundleDumped {
        /// Directory the bundle landed in.
        dir: String,
        /// What triggered the dump ("breaker_open", "rollback", …).
        cause: String,
    },
    /// A tenant's adapter was paged in from its checkpoint and is now
    /// resident.
    AdapterLoaded {
        /// Tenant whose adapter loaded.
        tenant: String,
        /// Registry version id published for the paged-in snapshot.
        version: u64,
    },
    /// A resident tenant adapter was evicted by the hot-set LRU.
    AdapterEvicted {
        /// Tenant whose adapter was evicted.
        tenant: String,
        /// Adapters still resident after the eviction.
        resident: u64,
    },
    /// A tenant adapter checkpoint failed to load (missing, corrupt, or
    /// rejected by validation); the tenant keeps serving zero-shot from the
    /// base model.
    AdapterLoadFailed {
        /// Tenant whose load failed.
        tenant: String,
        /// The typed load error, stringified.
        reason: String,
    },
    /// A tenant's private circuit breaker opened: that tenant degrades to
    /// the fallback path while every other tenant keeps the model path.
    TenantBreakerOpened {
        /// The isolated tenant.
        tenant: String,
        /// Configured failure percentage the tenant's window crossed.
        error_percent: f64,
    },
    /// A tenant's private circuit breaker closed again.
    TenantBreakerClosed {
        /// The recovered tenant.
        tenant: String,
    },
}

impl LifecycleEvent {
    /// The variant name — the journal's grouping/audit key.
    pub fn kind(&self) -> &'static str {
        match self {
            LifecycleEvent::ServerStarted { .. } => "ServerStarted",
            LifecycleEvent::DriftTripped { .. } => "DriftTripped",
            LifecycleEvent::RetrainStarted { .. } => "RetrainStarted",
            LifecycleEvent::RetrainFailed { .. } => "RetrainFailed",
            LifecycleEvent::RetrainRejected { .. } => "RetrainRejected",
            LifecycleEvent::SwapPromoted { .. } => "SwapPromoted",
            LifecycleEvent::ProbationPassed { .. } => "ProbationPassed",
            LifecycleEvent::RollbackFired { .. } => "RollbackFired",
            LifecycleEvent::BreakerOpened { .. } => "BreakerOpened",
            LifecycleEvent::BreakerHalfOpen => "BreakerHalfOpen",
            LifecycleEvent::BreakerClosed => "BreakerClosed",
            LifecycleEvent::WorkerRespawned { .. } => "WorkerRespawned",
            LifecycleEvent::CheckpointRejected { .. } => "CheckpointRejected",
            LifecycleEvent::Alert { .. } => "Alert",
            LifecycleEvent::BundleDumped { .. } => "BundleDumped",
            LifecycleEvent::AdapterLoaded { .. } => "AdapterLoaded",
            LifecycleEvent::AdapterEvicted { .. } => "AdapterEvicted",
            LifecycleEvent::AdapterLoadFailed { .. } => "AdapterLoadFailed",
            LifecycleEvent::TenantBreakerOpened { .. } => "TenantBreakerOpened",
            LifecycleEvent::TenantBreakerClosed { .. } => "TenantBreakerClosed",
        }
    }
}

/// One journal entry: sequence, wall clock, causal trace, typed event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Monotone per-journal sequence number (0-based).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at append time.
    pub t_ms: u64,
    /// Causal trace id of the request/lineage that produced the event
    /// (0 when the event has no originating request).
    pub trace: u64,
    /// The event itself.
    pub event: LifecycleEvent,
}

/// How many records the in-memory tail retains for `/events` queries.
pub const DEFAULT_JOURNAL_TAIL: usize = 4096;

struct JournalInner {
    file: Option<File>,
    next_seq: u64,
    tail: VecDeque<JournalRecord>,
}

/// The crash-safe append-only lifecycle journal. Thread-safe: appends from
/// any thread serialize on an internal mutex (events are rare; this is
/// nowhere near a hot path).
pub struct EventJournal {
    inner: Mutex<JournalInner>,
    path: Option<PathBuf>,
    tail_capacity: usize,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("path", &self.path)
            .field("tail_capacity", &self.tail_capacity)
            .finish_non_exhaustive()
    }
}

impl EventJournal {
    /// A journal with no backing file: events live only in the bounded
    /// in-memory tail. Used by tests and by servers run without a journal
    /// directory configured.
    pub fn in_memory() -> EventJournal {
        EventJournal {
            inner: Mutex::new(JournalInner {
                file: None,
                next_seq: 0,
                tail: VecDeque::new(),
            }),
            path: None,
            tail_capacity: DEFAULT_JOURNAL_TAIL,
        }
    }

    /// Open (or create) a journal file for appending. Any valid prefix
    /// already present is loaded into the tail and the sequence continues
    /// from it; a torn tail left by a crash is truncated away so the file
    /// heals.
    pub fn open(path: &Path) -> std::io::Result<EventJournal> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = decode_journal(&bytes);
        if valid_len < bytes.len() {
            // Torn or corrupt tail: truncate to the valid prefix. Re-open
            // without append so set_len + seek behave predictably.
            drop(file);
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(valid_len as u64)?;
            f.sync_data()?;
            file = OpenOptions::new().read(true).append(true).open(path)?;
            file.seek(std::io::SeekFrom::End(0))?;
        }
        let next_seq = records.last().map_or(0, |r| r.seq + 1);
        let mut tail = VecDeque::new();
        for r in records
            .into_iter()
            .rev()
            .take(DEFAULT_JOURNAL_TAIL)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            tail.push_back(r);
        }
        Ok(EventJournal {
            inner: Mutex::new(JournalInner {
                file: Some(file),
                next_seq,
                tail,
            }),
            path: Some(path.to_path_buf()),
            tail_capacity: DEFAULT_JOURNAL_TAIL,
        })
    }

    /// The backing file path, when this journal is durable.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Append one event, stamped with `trace` (0 = no originating request).
    /// Returns the record as written. Durable journals flush + fsync before
    /// returning; I/O errors are swallowed after being counted into the
    /// record's in-memory copy (the journal must never take down serving).
    pub fn append(&self, trace: u64, event: LifecycleEvent) -> JournalRecord {
        let t_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let record = JournalRecord {
            seq: inner.next_seq,
            t_ms,
            trace,
            event,
        };
        inner.next_seq += 1;
        if let Some(file) = inner.file.as_mut() {
            let json = serde_json::to_string(&record).expect("journal record serializes");
            let frame = format!(
                "{} {:016x} {json}\n",
                json.len(),
                journal_fnv1a64(json.as_bytes())
            );
            // Best effort: a full disk must not crash the server, and the
            // framing guarantees a partial write reads back as a torn tail.
            let _ = file
                .write_all(frame.as_bytes())
                .and_then(|()| file.flush())
                .and_then(|()| file.sync_data());
        }
        if inner.tail.len() >= self.tail_capacity {
            inner.tail.pop_front();
        }
        inner.tail.push_back(record.clone());
        record
    }

    /// The last `n` records (in order) from the in-memory tail.
    pub fn tail(&self, n: usize) -> Vec<JournalRecord> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let skip = inner.tail.len().saturating_sub(n);
        inner.tail.iter().skip(skip).cloned().collect()
    }

    /// Every record currently retained in the in-memory tail.
    pub fn records(&self) -> Vec<JournalRecord> {
        self.tail(usize::MAX)
    }

    /// Total events appended over this journal's lifetime (including any
    /// loaded from disk at open).
    pub fn len(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .next_seq
    }

    /// Whether no event has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Decode journal bytes: returns every valid record from the front and the
/// byte length of that valid prefix. Stops (without panicking) at the first
/// frame that is torn, truncated, checksum-mismatched, or unparseable — a
/// crash mid-append therefore costs at most the record being written.
pub fn decode_journal(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        match decode_frame(bytes, i) {
            Some((record, next)) => {
                out.push(record);
                i = next;
            }
            None => return (out, i),
        }
    }
}

/// Read one `<len> <fnv16> <json>\n` frame at `start`; `None` on any
/// deviation from the canonical framing.
fn decode_frame(bytes: &[u8], start: usize) -> Option<(JournalRecord, usize)> {
    let rest = &bytes[start.min(bytes.len())..];
    // <len>: 1..=10 ASCII digits, then a space.
    let sp1 = rest.iter().position(|&b| b == b' ')?;
    if sp1 == 0 || sp1 > 10 || !rest[..sp1].iter().all(u8::is_ascii_digit) {
        return None;
    }
    let len: usize = std::str::from_utf8(&rest[..sp1]).ok()?.parse().ok()?;
    // <fnv>: exactly 16 lowercase hex digits, then a space.
    let hex = rest.get(sp1 + 1..sp1 + 17)?;
    if !hex
        .iter()
        .all(|&b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    let declared = u64::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
    if rest.get(sp1 + 17) != Some(&b' ') {
        return None;
    }
    let json_start = sp1 + 18;
    let json = rest.get(json_start..json_start + len)?;
    if rest.get(json_start + len) != Some(&b'\n') {
        return None;
    }
    if journal_fnv1a64(json) != declared {
        return None;
    }
    let record: JournalRecord = serde_json::from_str(std::str::from_utf8(json).ok()?).ok()?;
    Some((record, start + json_start + len + 1))
}

/// Read a journal file, returning its valid prefix of records (empty for a
/// missing file — a journal never written is not an error).
pub fn read_journal(path: &Path) -> Vec<JournalRecord> {
    match std::fs::read(path) {
        Ok(bytes) => decode_journal(&bytes).0,
        Err(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<LifecycleEvent> {
        vec![
            LifecycleEvent::ServerStarted {
                workers: 4,
                version: 1,
            },
            LifecycleEvent::DriftTripped {
                baseline_q: 1.2,
                window_q: 7.5,
                samples: 640,
            },
            LifecycleEvent::RetrainStarted { samples: 128 },
            LifecycleEvent::SwapPromoted {
                from: 1,
                to: 2,
                trigger: "drift".to_string(),
                shadow_p90: 1.4,
            },
            LifecycleEvent::BreakerOpened {
                error_percent: 62.5,
            },
            LifecycleEvent::BreakerHalfOpen,
            LifecycleEvent::BreakerClosed,
            LifecycleEvent::Alert {
                slo: "qerr_p90".to_string(),
                fast_burn: 11.0,
                slow_burn: 4.2,
                threshold: 2.0,
            },
        ]
    }

    #[test]
    fn in_memory_append_and_tail() {
        let j = EventJournal::in_memory();
        for (i, ev) in sample_events().into_iter().enumerate() {
            let rec = j.append(i as u64 + 100, ev);
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.trace, i as u64 + 100);
        }
        assert_eq!(j.len(), 8);
        let tail = j.tail(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[2].event.kind(), "Alert");
        assert_eq!(tail[0].event.kind(), "BreakerHalfOpen");
    }

    #[test]
    fn durable_roundtrip_and_reopen_continues_sequence() {
        let dir = std::env::temp_dir().join(format!("dace-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let j = EventJournal::open(&path).unwrap();
            for ev in sample_events() {
                j.append(7, ev);
            }
        }
        let records = read_journal(&path);
        assert_eq!(records.len(), 8);
        assert_eq!(records[3].event.kind(), "SwapPromoted");
        assert!(records.iter().all(|r| r.trace == 7));

        // Re-open: sequence continues, tail is pre-loaded.
        let j = EventJournal::open(&path).unwrap();
        assert_eq!(j.len(), 8);
        let rec = j.append(9, LifecycleEvent::BreakerClosed);
        assert_eq!(rec.seq, 8);
        assert_eq!(read_journal(&path).len(), 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_and_healed() {
        let dir = std::env::temp_dir().join(format!("dace-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let j = EventJournal::open(&path).unwrap();
            for ev in sample_events() {
                j.append(0, ev);
            }
        }
        // Tear the last frame mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert_eq!(read_journal(&path).len(), 7, "torn frame dropped");

        // Re-opening heals the tail and appends continue cleanly.
        let j = EventJournal::open(&path).unwrap();
        assert_eq!(j.len(), 7);
        j.append(0, LifecycleEvent::BreakerClosed);
        drop(j);
        assert_eq!(read_journal(&path).len(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn events_serialize_with_stable_variant_shapes() {
        let swap = serde_json::to_string(&LifecycleEvent::SwapPromoted {
            from: 1,
            to: 2,
            trigger: "drift".to_string(),
            shadow_p90: 1.5,
        })
        .unwrap();
        assert!(swap.contains("\"SwapPromoted\""), "{swap}");
        let unit = serde_json::to_string(&LifecycleEvent::BreakerHalfOpen).unwrap();
        assert_eq!(unit, "\"BreakerHalfOpen\"");
        // Round-trip through Deserialize.
        for ev in sample_events() {
            let json = serde_json::to_string(&ev).unwrap();
            let back: LifecycleEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn decode_stops_at_bad_checksum() {
        let j = EventJournal::in_memory();
        drop(j);
        // Build two frames by hand, corrupt the second's payload.
        let mut bytes = Vec::new();
        for (i, ev) in sample_events().into_iter().take(2).enumerate() {
            let rec = JournalRecord {
                seq: i as u64,
                t_ms: 1,
                trace: 0,
                event: ev,
            };
            let json = serde_json::to_string(&rec).unwrap();
            bytes.extend_from_slice(
                format!(
                    "{} {:016x} {json}\n",
                    json.len(),
                    journal_fnv1a64(json.as_bytes())
                )
                .as_bytes(),
            );
        }
        let (clean, n) = decode_journal(&bytes);
        assert_eq!(clean.len(), 2);
        assert_eq!(n, bytes.len());
        // Flip one payload byte in frame 2.
        let mid = bytes.len() - 10;
        bytes[mid] ^= 0x40;
        let (records, valid) = decode_journal(&bytes);
        assert_eq!(records.len(), 1);
        assert!(valid < bytes.len());
    }
}
