//! `dace-obs` — workspace-wide observability for the DACE reproduction.
//!
//! Four pieces, all hand-rolled on `std` + vendored serde (no external
//! runtime deps):
//!
//! - **Tracing spans** ([`span!`], [`SpanGuard`]): RAII guards recording
//!   nested wall-time per thread. Off by default ([`set_tracing`]); a
//!   disabled span costs one relaxed atomic load.
//! - **Flight recorder** ([`FlightRecorder`]): a fixed-capacity lock-free
//!   MPSC event ring the spans feed. Snapshot on demand, exact drop counter
//!   on overflow, Chrome-trace export ([`chrome_trace`]).
//! - **Metrics registry** ([`MetricsRegistry`]): name-keyed counters and
//!   HDR-style log-bucket histograms ([`Histogram`]) shared across crates,
//!   with Prometheus-text and JSON exporters.
//! - **Run sinks** ([`RunSink`], [`JsonlSink`]): per-epoch training
//!   telemetry ([`EpochRecord`]) written as JSONL run manifests.
//!
//! Quickstart (see `examples/trace_inference.rs` at the workspace root):
//!
//! ```
//! dace_obs::set_tracing(true);
//! {
//!     let _span = dace_obs::span!("doc_example");
//!     dace_obs::MetricsRegistry::global()
//!         .histogram("doc_example_us")
//!         .record(42);
//! }
//! let events = dace_obs::FlightRecorder::global().snapshot_records();
//! assert!(events.iter().any(|e| e.name == "doc_example"));
//! dace_obs::set_tracing(false);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod sketch;
pub mod slo;
pub mod span;
pub mod trace;

pub use alloc::{alloc_probe_bytes, set_alloc_probe};
pub use hist::{bucket_index, bucket_upper, Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use journal::{
    decode_journal, read_journal, EventJournal, JournalRecord, LifecycleEvent, DEFAULT_JOURNAL_TAIL,
};
pub use metrics::{parse_prometheus_text, Counter, Gauge, MetricsRegistry, RegistrySnapshot};
pub use recorder::{chrome_trace, Event, EventRecord, FlightRecorder, DEFAULT_RECORDER_CAPACITY};
pub use sink::{
    parse_manifest, records_by_phase, EpochRecord, JsonlSink, MemorySink, RunSink, Verbosity,
};
pub use sketch::{escape_label_value, AccuracyLedger, QErrorSketch, QERR_BUCKETS};
pub use slo::{SloAlert, SloConfig, SloSeries, SloStatus, SloTracker};
pub use span::{intern_span_name, set_tracing, span_name, tracing_enabled, SpanGuard};
pub use trace::{current_trace, next_trace_id, splitmix64, trace_scope, TraceScope};
