//! The name-keyed metrics registry: counters and histograms shared across
//! crates, exported as Prometheus text or JSON.
//!
//! Registration (name → handle) takes a mutex once; hot paths hold the
//! returned `Arc` and never touch the registry again, so recording stays
//! wait-free. The same name always resolves to the same underlying metric,
//! which is what lets `serve`, `core` and `engine` report through one sink.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (for externally tracked quantities sampled at
/// export time, like ring drop counts owned by lock-free structures).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A name-keyed collection of [`Counter`]s and [`Histogram`]s.
///
/// `counter`/`histogram` get-or-create: the first call for a name creates
/// the metric, later calls return the same handle (so two subsystems naming
/// the same metric share it). Asking for an existing name with the wrong
/// kind panics — that is a wiring bug, not a runtime condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry (what `core`/`engine` instrumentation and
    /// anything without an explicit registry reports to).
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            Metric::Histogram(_) => panic!("metric {name:?} is a histogram, not a counter"),
            Metric::Gauge(_) => panic!("metric {name:?} is a gauge, not a counter"),
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Register a `# HELP` description for `name` (idempotent; the last
    /// call wins). Series without a registered description are exported
    /// with a placeholder so every series still carries a HELP line.
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .lock()
            .expect("metrics help poisoned")
            .insert(name.to_string(), help.to_string());
    }

    /// Point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let m = self.metrics.lock().expect("metrics registry poisoned");
        let mut snap = RegistrySnapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap.help = self.help.lock().expect("metrics help poisoned").clone();
        snap
    }

    /// Export in the Prometheus text exposition format: counters as
    /// `counter` samples, histograms as `summary` quantiles plus `_sum`,
    /// `_count` and a `_max` gauge.
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }

    /// Export every metric as one JSON object
    /// (`{"counters": {...}, "histograms": {...}}`).
    pub fn json(&self) -> String {
        serde_json::to_string(&self.snapshot()).expect("registry snapshot serializes")
    }
}

/// Snapshot of a whole [`MetricsRegistry`] (the JSON exporter's shape).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    #[serde(default)]
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Registered `# HELP` descriptions by name.
    #[serde(default)]
    pub help: BTreeMap<String, String>,
}

/// Escape a `# HELP` text per the Prometheus exposition rules (backslash
/// and newline).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

impl RegistrySnapshot {
    fn help_line(&self, out: &mut String, name: &str) {
        let help = self
            .help
            .get(name)
            .map_or_else(|| format!("dace metric {name}"), |h| escape_help(h));
        let _ = writeln!(out, "# HELP {name} {help}");
    }

    /// Render this snapshot in the Prometheus text exposition format.
    /// Every series carries `# HELP` and `# TYPE` lines.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            self.help_line(&mut out, name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            self.help_line(&mut out, name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            self.help_line(&mut out, name);
            let _ = writeln!(out, "# TYPE {name} summary");
            let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {}", h.p95);
            let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
            self.help_line(&mut out, &format!("{name}_max"));
            let _ = writeln!(out, "# TYPE {name}_max gauge");
            let _ = writeln!(out, "{name}_max {}", h.max);
        }
        out
    }
}

/// Parse Prometheus text exposition back into `sample name (with labels) →
/// value`. Comment/`# TYPE` lines are skipped. This is the round-trip half
/// of [`RegistrySnapshot::prometheus_text`], used by CI and tests to assert
/// the exporter emits well-formed samples; it is not a general scraper.
pub fn parse_prometheus_text(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name{labels} value` or `name value`; the value is the final
        // whitespace-separated token, the key is everything before it.
        if let Some((key, value)) = line.rsplit_once(char::is_whitespace) {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(key.trim().to_string(), v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));

        let h1 = reg.histogram("latency_us");
        let h2 = reg.histogram("latency_us");
        h1.record(10);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    #[should_panic(expected = "is a histogram, not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.histogram("x");
        reg.counter("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(5);
        reg.counter("a_total").inc();
        reg.histogram("lat_us").record(100);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters.keys().collect::<Vec<_>>(),
            vec!["a_total", "b_total"]
        );
        assert_eq!(snap.counters["b_total"], 5);
        assert_eq!(snap.histograms["lat_us"].count, 1);
    }

    #[test]
    fn prometheus_round_trips_through_parser() {
        let reg = MetricsRegistry::new();
        reg.counter("served_total").add(42);
        let h = reg.histogram("e2e_us");
        for v in 1..=100 {
            h.record(v);
        }
        let text = reg.prometheus_text();
        let parsed = parse_prometheus_text(&text);
        let snap = reg.snapshot().histograms["e2e_us"];
        assert_eq!(parsed["served_total"], 42.0);
        assert_eq!(parsed["e2e_us{quantile=\"0.5\"}"], snap.p50 as f64);
        assert_eq!(parsed["e2e_us{quantile=\"0.95\"}"], snap.p95 as f64);
        assert_eq!(parsed["e2e_us{quantile=\"0.99\"}"], snap.p99 as f64);
        assert_eq!(parsed["e2e_us_count"], 100.0);
        assert_eq!(parsed["e2e_us_sum"], 5050.0);
        assert_eq!(parsed["e2e_us_max"], 100.0);
        // Every non-comment line must have parsed into a sample.
        let samples = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .count();
        assert_eq!(samples, parsed.len());
    }

    #[test]
    fn gauges_export_and_round_trip() {
        let reg = MetricsRegistry::new();
        reg.gauge("ring_dropped").set(17);
        reg.gauge("ring_dropped").set(21); // last write wins
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE ring_dropped gauge"));
        let parsed = parse_prometheus_text(&text);
        assert_eq!(parsed["ring_dropped"], 21.0);
        let back: RegistrySnapshot = serde_json::from_str(&reg.json()).unwrap();
        assert_eq!(back.gauges["ring_dropped"], 21);
    }

    #[test]
    fn every_series_carries_help_and_type_lines() {
        let reg = MetricsRegistry::new();
        reg.counter("served_total").inc();
        reg.gauge("depth").set(3);
        reg.histogram("lat_us").record(10);
        reg.describe("served_total", "Requests served.");
        reg.describe("depth", "Queue depth\nwith a newline \\ and slash.");
        let text = reg.prometheus_text();
        // Each sample family is preceded by HELP and TYPE.
        for name in ["served_total", "depth", "lat_us", "lat_us_max"] {
            assert!(
                text.contains(&format!("# HELP {name} ")),
                "missing HELP for {name} in:\n{text}"
            );
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "missing TYPE for {name} in:\n{text}"
            );
        }
        assert!(text.contains("# HELP served_total Requests served."));
        // HELP text is escaped: no raw newline inside the help line.
        assert!(text.contains("Queue depth\\nwith a newline \\\\ and slash."));
        // Hygiene: the parser still consumes every non-comment line.
        let parsed = parse_prometheus_text(&text);
        let samples = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .count();
        assert_eq!(samples, parsed.len());
    }

    #[test]
    fn json_export_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total").add(7);
        reg.histogram("h_us").record(1000);
        let json = reg.json();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg.snapshot());
        assert_eq!(back.counters["c_total"], 7);
        assert_eq!(back.histograms["h_us"].max, 1000);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = MetricsRegistry::global().counter("obs_selftest_total");
        c.inc();
        assert!(
            MetricsRegistry::global()
                .counter("obs_selftest_total")
                .get()
                >= 1
        );
    }
}
