//! The flight recorder: a fixed-capacity lock-free MPSC event log.
//!
//! Producers (span guards, any instrumented thread) publish [`Event`]s with
//! a wait-free-on-average protocol built on safe atomics only: a ticket
//! counter (`head`) hands each event a unique slot, the event's five fields
//! are stored into that slot's plain `AtomicU64` words, and a per-slot
//! sequence word is released last — a reader accepts a slot only once its
//! sequence equals `ticket + 1`, so torn events are impossible without any
//! `unsafe`. When the ring is full the event is **dropped and counted**
//! (recording must never stall the hot path it observes). Snapshots drain
//! from `tail` under a consumer-side mutex that writers never touch, so a
//! snapshot can never block producers; an in-flight write at the drain
//! frontier simply ends the snapshot early and is picked up by the next one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::Serialize;

use crate::span::span_name;

/// One recorded event: a completed span (`dur_us > 0` possible) or an
/// instant marker (`dur_us == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Start time, microseconds since the recorder's epoch.
    pub t_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Interned span-name id (resolve with [`span_name`]).
    pub name_id: u32,
    /// Small dense per-thread id (assigned on each thread's first event).
    pub thread: u32,
    /// Nesting depth inside this thread's span stack (0 = top level).
    pub depth: u32,
    /// Causal trace id active when the span was entered (0 = untraced).
    pub trace: u64,
}

/// One event slot: a sequence gate plus the event's packed words.
#[derive(Debug)]
struct Slot {
    /// `ticket + 1` once the event for `ticket` is fully written; anything
    /// else means empty or in-flight.
    seq: AtomicU64,
    t_us: AtomicU64,
    dur_us: AtomicU64,
    /// `name_id << 32 | thread`.
    ids: AtomicU64,
    depth: AtomicU64,
    trace: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            t_us: AtomicU64::new(0),
            dur_us: AtomicU64::new(0),
            ids: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            trace: AtomicU64::new(0),
        }
    }
}

/// Default capacity of the process-wide recorder (events).
pub const DEFAULT_RECORDER_CAPACITY: usize = 65_536;

/// The fixed-capacity MPSC event log. See the module docs for the protocol.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Next ticket to hand out (monotone).
    head: AtomicU64,
    /// Next unconsumed ticket (monotone, advanced only under `drain`).
    tail: AtomicU64,
    dropped: AtomicU64,
    /// Serializes consumers; producers never touch it.
    drain: Mutex<()>,
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` events (rounded up to 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drain: Mutex::new(()),
            epoch: Instant::now(),
        }
    }

    /// The process-wide recorder the `span!` macro feeds.
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_RECORDER_CAPACITY))
    }

    /// Microseconds elapsed since this recorder's epoch for `at` (0 if `at`
    /// predates the epoch — only possible for instants captured before the
    /// recorder was created).
    pub fn offset_us(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_micros() as u64)
    }

    /// Publish one event. Returns `false` (and counts the drop) when the
    /// ring is full; never blocks, never waits on readers.
    pub fn record(&self, ev: Event) -> bool {
        let cap = self.slots.len() as u64;
        loop {
            let h = self.head.load(Ordering::Acquire);
            if h.wrapping_sub(self.tail.load(Ordering::Acquire)) >= cap {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if self
                .head
                .compare_exchange_weak(h, h + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let slot = &self.slots[(h % cap) as usize];
                slot.t_us.store(ev.t_us, Ordering::Relaxed);
                slot.dur_us.store(ev.dur_us, Ordering::Relaxed);
                slot.ids.store(
                    (ev.name_id as u64) << 32 | ev.thread as u64,
                    Ordering::Relaxed,
                );
                slot.depth.store(ev.depth as u64, Ordering::Relaxed);
                slot.trace.store(ev.trace, Ordering::Relaxed);
                // Publish: readers accept the slot only at seq == ticket+1.
                slot.seq.store(h + 1, Ordering::Release);
                return true;
            }
        }
    }

    /// Drain every fully published event, oldest first. Concurrent
    /// snapshots serialize against each other (each event is returned
    /// exactly once across all of them) but never against producers. An
    /// event whose write is still in flight ends the drain; it and its
    /// successors surface in the next snapshot.
    pub fn snapshot(&self) -> Vec<Event> {
        let _consumer = self.drain.lock().expect("flight recorder drain poisoned");
        let cap = self.slots.len() as u64;
        let mut out = Vec::new();
        loop {
            let t = self.tail.load(Ordering::Acquire);
            if t == self.head.load(Ordering::Acquire) {
                break;
            }
            let slot = &self.slots[(t % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != t + 1 {
                break; // claimed but not yet published
            }
            let ids = slot.ids.load(Ordering::Relaxed);
            out.push(Event {
                t_us: slot.t_us.load(Ordering::Relaxed),
                dur_us: slot.dur_us.load(Ordering::Relaxed),
                name_id: (ids >> 32) as u32,
                thread: ids as u32,
                depth: slot.depth.load(Ordering::Relaxed) as u32,
                trace: slot.trace.load(Ordering::Relaxed),
            });
            // Free the slot for the writer `t + capacity` (which only
            // claims once it observes this store).
            self.tail.store(t + 1, Ordering::Release);
        }
        out
    }

    /// [`snapshot`](FlightRecorder::snapshot) with span names resolved.
    pub fn snapshot_records(&self) -> Vec<EventRecord> {
        self.snapshot()
            .into_iter()
            .map(|ev| EventRecord {
                name: span_name(ev.name_id).to_string(),
                t_us: ev.t_us,
                dur_us: ev.dur_us,
                thread: ev.thread,
                depth: ev.depth,
                trace: ev.trace,
            })
            .collect()
    }

    /// Events dropped on overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently buffered (published or in flight).
    pub fn len(&self) -> usize {
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Relaxed);
        h.saturating_sub(t) as usize
    }

    /// Whether the ring currently holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// A drained event with its span name resolved — the export form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct EventRecord {
    /// Span name.
    pub name: String,
    /// Start time, µs since the recorder epoch.
    pub t_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Dense thread id.
    pub thread: u32,
    /// Span nesting depth.
    pub depth: u32,
    /// Causal trace id (0 = untraced).
    pub trace: u64,
}

/// Render drained events in the Chrome trace-event JSON format (open the
/// output in `chrome://tracing` or Perfetto): one complete (`"ph": "X"`)
/// event per record. Events are grouped causally: every distinct trace id
/// becomes its own process lane (`pid` = dense per-trace index, assigned in
/// first-seen order), so one request's queue→batch→worker→retrain story
/// reads as one row; untraced events stay on `pid` 0. The full trace id is
/// carried in `args.trace` as hex.
pub fn chrome_trace(records: &[EventRecord]) -> String {
    use serde::Value;
    let field = |k: &str, v: Value| (k.to_string(), v);
    let mut trace_pids: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
    for r in records {
        if r.trace != 0 {
            let next = trace_pids.len() as u32 + 1;
            trace_pids.entry(r.trace).or_insert(next);
        }
    }
    let events: Vec<Value> = records
        .iter()
        .map(|r| {
            let pid = if r.trace == 0 {
                0
            } else {
                trace_pids[&r.trace]
            };
            let mut args = vec![field("depth", r.depth.serialize())];
            if r.trace != 0 {
                args.push(field("trace", Value::Str(format!("{:016x}", r.trace))));
            }
            Value::Map(vec![
                field("name", r.name.serialize()),
                field("cat", Value::Str("dace".to_string())),
                field("ph", Value::Str("X".to_string())),
                field("ts", r.t_us.serialize()),
                field("dur", r.dur_us.serialize()),
                field("pid", pid.serialize()),
                field("tid", r.thread.serialize()),
                field("args", Value::Map(args)),
            ])
        })
        .collect();
    serde_json::to_string(&Value::Seq(events)).expect("trace events serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    fn ev(i: u64) -> Event {
        Event {
            t_us: i,
            dur_us: i * 2,
            name_id: 0,
            thread: 0,
            depth: 0,
            trace: 0,
        }
    }

    #[test]
    fn records_and_drains_in_order() {
        let r = FlightRecorder::with_capacity(16);
        for i in 0..10 {
            assert!(r.record(ev(i)));
        }
        assert_eq!(r.len(), 10);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 10);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.t_us, i as u64);
            assert_eq!(e.dur_us, 2 * i as u64);
        }
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        // The oldest four events are retained (drop-newest policy).
        let snap = r.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.t_us).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        // Space freed: recording works again.
        assert!(r.record(ev(99)));
        assert_eq!(r.snapshot()[0].t_us, 99);
    }

    #[test]
    fn slots_are_reused_across_laps() {
        let r = FlightRecorder::with_capacity(4);
        for lap in 0..5u64 {
            for i in 0..4 {
                assert!(r.record(ev(lap * 4 + i)));
            }
            let snap = r.snapshot();
            assert_eq!(snap.len(), 4);
            assert_eq!(snap[0].t_us, lap * 4);
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let records = vec![EventRecord {
            name: "featurize".to_string(),
            t_us: 5,
            dur_us: 17,
            thread: 1,
            depth: 2,
            trace: 0,
        }];
        let json = chrome_trace(&records);
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let ev = v.as_seq().unwrap()[0].as_map().unwrap();
        let get = |k| serde::map_get(ev, k).unwrap();
        assert_eq!(get("name").as_str(), Some("featurize"));
        assert_eq!(get("ph").as_str(), Some("X"));
        assert_eq!(u64::deserialize(get("dur")).unwrap(), 17);
        let args = get("args").as_map().unwrap();
        assert_eq!(
            u64::deserialize(serde::map_get(args, "depth").unwrap()).unwrap(),
            2
        );
    }

    #[test]
    fn chrome_trace_groups_by_trace_id() {
        let rec = |name: &str, trace: u64| EventRecord {
            name: name.to_string(),
            t_us: 1,
            dur_us: 2,
            thread: 0,
            depth: 0,
            trace,
        };
        let records = vec![
            rec("untraced", 0),
            rec("req_a_admit", 0xabcd),
            rec("req_b_admit", 0x1234),
            rec("req_a_forward", 0xabcd),
        ];
        let json = chrome_trace(&records);
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let events = v.as_seq().unwrap();
        let pid_of = |i: usize| {
            u64::deserialize(serde::map_get(events[i].as_map().unwrap(), "pid").unwrap()).unwrap()
        };
        assert_eq!(pid_of(0), 0, "untraced events stay on pid 0");
        assert_ne!(pid_of(1), 0);
        assert_ne!(pid_of(2), 0);
        assert_ne!(pid_of(1), pid_of(2), "distinct traces get distinct lanes");
        assert_eq!(pid_of(1), pid_of(3), "same trace shares a lane");
        let args = serde::map_get(events[1].as_map().unwrap(), "args")
            .unwrap()
            .as_map()
            .unwrap();
        assert_eq!(
            serde::map_get(args, "trace").unwrap().as_str(),
            Some("000000000000abcd")
        );
    }
}
