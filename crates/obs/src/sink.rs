//! Training-run telemetry: per-epoch records, pluggable sinks, and the
//! JSONL run-manifest writer behind `--manifest`.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// How chatty training is on stderr. Telemetry sinks always receive every
/// record regardless of verbosity; this only gates human-readable output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Verbosity {
    /// No stderr output (the default — training is silent).
    #[default]
    Quiet,
    /// One stderr line per epoch.
    Epochs,
}

/// Everything recorded about one training epoch — one JSONL manifest line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Which run this epoch belongs to (`"pretrain"`, `"lora"`, ...).
    pub phase: String,
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Epochs the run was configured for.
    pub epochs_planned: usize,
    /// Mean weighted training loss over this epoch's batches.
    pub train_loss: f64,
    /// L2 norm of the epoch's final batch gradient.
    pub grad_norm: f64,
    /// Learning rate in effect.
    pub lr: f64,
    /// Wall-clock time for the epoch, milliseconds.
    pub epoch_ms: f64,
    /// Validation loss, when a validation split exists (`null` otherwise).
    #[serde(default)]
    pub val_loss: Option<f64>,
    /// Median validation Q-error.
    #[serde(default)]
    pub val_qerr_p50: Option<f64>,
    /// 90th-percentile validation Q-error.
    #[serde(default)]
    pub val_qerr_p90: Option<f64>,
    /// 99th-percentile validation Q-error.
    #[serde(default)]
    pub val_qerr_p99: Option<f64>,
    /// Early-stop decision after this epoch: `"continue"`, `"improved"`,
    /// `"patience N/M"`, or `"stop"`.
    pub early_stop: String,
    /// Heap bytes allocated during this epoch's batch loop (validation
    /// excluded), when an allocation probe is installed
    /// ([`crate::set_alloc_probe`]); `null` otherwise.
    #[serde(default)]
    pub alloc_bytes: Option<u64>,
    /// Causal trace id of the lineage that spawned this run (the drift trip
    /// for an adaptive retrain; 0 for standalone training). Lets one
    /// request's journal chain be joined against the epochs it triggered.
    #[serde(default)]
    pub trace: u64,
}

impl EpochRecord {
    /// One human-readable progress line (what `Verbosity::Epochs` prints).
    pub fn summary_line(&self) -> String {
        let val = match (self.val_loss, self.val_qerr_p50) {
            (Some(vl), Some(p50)) => format!(" val_loss={vl:.5} val_qerr_p50={p50:.3}"),
            (Some(vl), None) => format!(" val_loss={vl:.5}"),
            _ => String::new(),
        };
        format!(
            "[{}] epoch {}/{} loss={:.5} grad_norm={:.4} lr={:.2e} {:.0}ms{} {}",
            self.phase,
            self.epoch + 1,
            self.epochs_planned,
            self.train_loss,
            self.grad_norm,
            self.lr,
            self.epoch_ms,
            val,
            self.early_stop,
        )
    }
}

/// Where per-epoch telemetry goes. Implementations must tolerate being
/// called from the training loop's thread at epoch granularity (i.e. they
/// may do I/O, but should not block for long).
pub trait RunSink: Debug + Send + Sync {
    /// One epoch finished.
    fn epoch(&self, record: &EpochRecord);
    /// The run ended (flush buffers). Also invoked on `Drop` by the
    /// provided sinks; calling it twice is harmless.
    fn finish(&self) {}
}

/// Appends one JSON object per epoch to a file — the `--manifest` format.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and write manifest lines to it.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl RunSink for JsonlSink {
    fn epoch(&self, record: &EpochRecord) {
        let line = serde_json::to_string(record).expect("epoch record serializes");
        let mut out = self.out.lock().expect("manifest writer poisoned");
        // Ignore write errors: telemetry must never abort training.
        let _ = writeln!(out, "{line}");
    }

    fn finish(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Collects records in memory — for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<EpochRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Everything recorded so far.
    pub fn records(&self) -> Vec<EpochRecord> {
        self.records.lock().expect("memory sink poisoned").clone()
    }
}

impl RunSink for MemorySink {
    fn epoch(&self, record: &EpochRecord) {
        self.records
            .lock()
            .expect("memory sink poisoned")
            .push(record.clone());
    }
}

/// Parse a JSONL manifest back into records — the round-trip half of
/// [`JsonlSink`], used by CI and tests. Returns an error on the first
/// malformed line.
pub fn parse_manifest(text: &str) -> Result<Vec<EpochRecord>, serde_json::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Group manifest records by phase, preserving epoch order within each.
pub fn records_by_phase(records: &[EpochRecord]) -> BTreeMap<String, Vec<EpochRecord>> {
    let mut out: BTreeMap<String, Vec<EpochRecord>> = BTreeMap::new();
    for r in records {
        out.entry(r.phase.clone()).or_default().push(r.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: usize) -> EpochRecord {
        EpochRecord {
            phase: "pretrain".to_string(),
            epoch,
            epochs_planned: 3,
            train_loss: 0.5 / (epoch + 1) as f64,
            grad_norm: 1.25,
            lr: 1e-3,
            epoch_ms: 12.0,
            val_loss: Some(0.6),
            val_qerr_p50: Some(1.4),
            val_qerr_p90: Some(3.2),
            val_qerr_p99: Some(9.9),
            early_stop: "improved".to_string(),
            alloc_bytes: None,
            trace: 0xfeed,
        }
    }

    #[test]
    fn jsonl_sink_round_trips_through_parser() {
        let dir = std::env::temp_dir().join("dace_obs_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            for e in 0..3 {
                sink.epoch(&record(e));
            }
            sink.finish();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let back = parse_manifest(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[2], record(2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn optional_fields_round_trip_as_null() {
        let mut r = record(0);
        r.val_loss = None;
        r.val_qerr_p50 = None;
        r.val_qerr_p90 = None;
        r.val_qerr_p99 = None;
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"val_loss\":null"));
        let back: EpochRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::new();
        sink.epoch(&record(0));
        sink.epoch(&record(1));
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].epoch, 1);
        let by_phase = records_by_phase(&recs);
        assert_eq!(by_phase["pretrain"].len(), 2);
    }

    #[test]
    fn summary_line_mentions_the_essentials() {
        let line = record(1).summary_line();
        assert!(line.contains("[pretrain]"));
        assert!(line.contains("epoch 2/3"));
        assert!(line.contains("val_qerr_p50=1.400"));
        assert!(line.contains("improved"));
    }

    #[test]
    fn verbosity_orders_and_serializes() {
        assert!(Verbosity::Quiet < Verbosity::Epochs);
        assert_eq!(Verbosity::default(), Verbosity::Quiet);
        let v: Verbosity = serde_json::from_str("\"Epochs\"").unwrap();
        assert_eq!(v, Verbosity::Epochs);
    }
}
