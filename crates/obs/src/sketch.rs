//! Mergeable log-bucket q-error sketches and the per-(version, database)
//! accuracy ledger.
//!
//! The serving estimator's accuracy is a *moving, keyed* quantity: each
//! model version has its own error distribution, and the paper's
//! database-agnostic story means the same version can be accurate on one
//! database and poor on another. A [`QErrorSketch`] is a wait-free
//! fixed-bucket histogram over q-error (≥ 1.0 by definition) with
//! geometric buckets — ~5% relative resolution, mergeable by bucket-wise
//! addition — and the [`AccuracyLedger`] keys one sketch per
//! `(model version, db id)` pair, feeding Prometheus export with properly
//! escaped labels.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Geometric bucket growth factor (~5% relative quantile error).
const QERR_BASE: f64 = 1.05;
/// Bucket count: covers q-errors up to `1.05^255` ≈ 2.5e5; everything
/// larger (or non-finite) clamps into the final overflow bucket.
pub const QERR_BUCKETS: usize = 256;

/// Bucket index for a q-error value (values < 1.0 clamp to bucket 0,
/// non-finite values clamp to the overflow bucket).
#[inline]
pub fn qerr_bucket(q: f64) -> usize {
    if !q.is_finite() {
        return QERR_BUCKETS - 1;
    }
    if q <= 1.0 {
        return 0;
    }
    let i = (q.ln() / QERR_BASE.ln()).floor();
    (i as usize).min(QERR_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (what quantile queries report).
#[inline]
pub fn qerr_bucket_upper(i: usize) -> f64 {
    QERR_BASE.powi(i as i32 + 1)
}

/// A wait-free mergeable histogram of q-error samples.
#[derive(Debug)]
pub struct QErrorSketch {
    buckets: Box<[AtomicU64; QERR_BUCKETS]>,
    count: AtomicU64,
}

impl Default for QErrorSketch {
    fn default() -> Self {
        QErrorSketch::new()
    }
}

impl QErrorSketch {
    /// An empty sketch.
    pub fn new() -> QErrorSketch {
        QErrorSketch {
            buckets: Box::new([0u64; QERR_BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
        }
    }

    /// Record one q-error sample (one relaxed `fetch_add` per word).
    #[inline]
    pub fn record(&self, q: f64) {
        self.buckets[qerr_bucket(q)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold another sketch into this one (bucket-wise addition) — the merge
    /// that lets per-shard or per-db sketches roll up losslessly.
    pub fn merge_from(&self, other: &QErrorSketch) {
        let mut added = 0;
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
                added += c;
            }
        }
        self.count.fetch_add(added, Ordering::Relaxed);
    }

    /// The `p`-quantile (bucket upper bound, ≤ ~5% high); 0.0 when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return qerr_bucket_upper(i);
            }
        }
        qerr_bucket_upper(QERR_BUCKETS - 1)
    }
}

/// Escape a Prometheus label value: backslash, double quote and newline
/// must be escaped inside the `label="..."` syntax.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Per-(model version, db id) q-error accounting. Handles are get-or-create
/// and shared: the registration lock is taken once per new key, after which
/// recording touches only the sketch's atomics.
#[derive(Debug, Default)]
pub struct AccuracyLedger {
    sketches: Mutex<BTreeMap<(u64, u32), Arc<QErrorSketch>>>,
}

impl AccuracyLedger {
    /// An empty ledger.
    pub fn new() -> AccuracyLedger {
        AccuracyLedger::default()
    }

    /// Get or create the sketch for `(version, db)`.
    pub fn sketch(&self, version: u64, db: u32) -> Arc<QErrorSketch> {
        let mut map = self
            .sketches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(map.entry((version, db)).or_default())
    }

    /// Record one q-error observation for `(version, db)`.
    pub fn observe(&self, version: u64, db: u32, q: f64) {
        self.sketch(version, db).record(q);
    }

    /// Every `(version, db)` key currently tracked, sorted.
    pub fn keys(&self) -> Vec<(u64, u32)> {
        self.sketches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .keys()
            .copied()
            .collect()
    }

    /// All sketches for `version` merged into one (accuracy of a version
    /// across every database it has served).
    pub fn merged_for_version(&self, version: u64) -> QErrorSketch {
        let map = self
            .sketches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let out = QErrorSketch::new();
        for ((v, _), s) in map.iter() {
            if *v == version {
                out.merge_from(s);
            }
        }
        out
    }

    /// Prometheus text for the ledger: per-key quantile summaries under
    /// `dace_qerr` with `version`/`db` labels (values escaped), plus
    /// per-key sample counts.
    pub fn prometheus_text(&self) -> String {
        let map = self
            .sketches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        if map.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "# HELP dace_qerr Per-(model version, database) q-error quantiles."
        );
        let _ = writeln!(out, "# TYPE dace_qerr summary");
        for ((version, db), sketch) in map.iter() {
            let vl = escape_label_value(&version.to_string());
            let dl = escape_label_value(&db.to_string());
            for (p, tag) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "dace_qerr{{version=\"{vl}\",db=\"{dl}\",quantile=\"{tag}\"}} {}",
                    sketch.quantile(p)
                );
            }
            let _ = writeln!(
                out,
                "dace_qerr_count{{version=\"{vl}\",db=\"{dl}\"}} {}",
                sketch.count()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range_with_bounded_error() {
        for q in [1.0, 1.01, 1.5, 2.0, 10.0, 123.4, 1e4, 1e5] {
            let i = qerr_bucket(q);
            let hi = qerr_bucket_upper(i);
            assert!(hi >= q || i == QERR_BUCKETS - 1, "upper({i})={hi} < {q}");
            if i > 0 && i < QERR_BUCKETS - 1 {
                assert!(
                    hi <= q * QERR_BASE * QERR_BASE,
                    "upper({i})={hi} too far above {q}"
                );
            }
        }
        assert_eq!(qerr_bucket(0.5), 0);
        assert_eq!(qerr_bucket(f64::NAN), QERR_BUCKETS - 1);
        assert_eq!(qerr_bucket(f64::INFINITY), QERR_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let s = QErrorSketch::new();
        for i in 0..1000 {
            // 90% of samples near 1.2, 10% near 8.0.
            s.record(if i % 10 == 9 { 8.0 } else { 1.2 });
        }
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((1.1..=1.4).contains(&p50), "p50 = {p50}");
        assert!((7.0..=9.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = QErrorSketch::new();
        let b = QErrorSketch::new();
        for _ in 0..100 {
            a.record(1.5);
            b.record(6.0);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 200);
        let p50 = a.quantile(0.5);
        assert!((1.4..=1.7).contains(&p50), "p50 = {p50}");
        let p99 = a.quantile(0.99);
        assert!((5.5..=6.8).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn ledger_keys_and_version_rollup() {
        let ledger = AccuracyLedger::new();
        ledger.observe(1, 0, 1.2);
        ledger.observe(1, 3, 4.0);
        ledger.observe(2, 0, 1.1);
        assert_eq!(ledger.keys(), vec![(1, 0), (1, 3), (2, 0)]);
        assert_eq!(ledger.merged_for_version(1).count(), 2);
        assert_eq!(ledger.merged_for_version(2).count(), 1);
    }

    #[test]
    fn prometheus_export_has_labels_and_parses() {
        let ledger = AccuracyLedger::new();
        for _ in 0..50 {
            ledger.observe(3, 7, 1.3);
        }
        let text = ledger.prometheus_text();
        assert!(text.contains("# TYPE dace_qerr summary"));
        assert!(text.contains("version=\"3\",db=\"7\",quantile=\"0.9\""));
        let parsed = crate::parse_prometheus_text(&text);
        assert_eq!(parsed["dace_qerr_count{version=\"3\",db=\"7\"}"], 50.0);
        assert!(parsed["dace_qerr{version=\"3\",db=\"7\",quantile=\"0.5\"}"] > 1.0);
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }
}
