//! Multi-window, multi-burn-rate SLO tracking for estimator accuracy and
//! deadline adherence.
//!
//! An SLO here is a *budgeted* objective: "at most `budget` of requests may
//! be bad" (q-error above target, or a missed deadline). The **burn rate**
//! is `bad_fraction / budget` — burn 1.0 consumes the budget exactly at the
//! allowed pace; burn 10 exhausts it 10× too fast. Following the
//! multi-window pattern from SRE practice, an [`SloSeries`] evaluates the
//! burn over a **fast** window (reacts quickly, noisy) and a **slow**
//! window (smooth, laggy) and raises an [`SloAlert`] only when *both*
//! exceed the threshold — the fast window gates latency of detection, the
//! slow window gates false positives from momentary spikes. Alerts latch:
//! once raised, a series re-arms only after the fast-window burn falls back
//! below half the threshold (hysteresis, so a hovering burn doesn't flap).
//!
//! Windows are sample-counted bit rings with running bad-counts — pushes
//! are O(1) and the rings are sized in requests (default 5k fast / 50k
//! slow), not wall time, so the math is identical at any throughput.

use std::sync::Mutex;

use serde::Serialize;

/// Targets and window geometry for the serving SLOs.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Q-error value above which a prediction counts as "bad".
    pub qerr_target: f64,
    /// Budget for the q-error SLO: allowed fraction of bad predictions.
    pub qerr_budget: f64,
    /// Budget for the deadline SLO: allowed fraction of missed deadlines.
    pub deadline_budget: f64,
    /// Fast-window size in samples.
    pub fast_window: usize,
    /// Slow-window size in samples.
    pub slow_window: usize,
    /// Burn-rate threshold both windows must exceed to alert.
    pub burn_threshold: f64,
    /// Minimum fill fraction of a window before its burn is trusted
    /// (avoids alerting off the first handful of samples).
    pub min_fill: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            qerr_target: 4.0,
            qerr_budget: 0.10,
            deadline_budget: 0.01,
            fast_window: 5_000,
            slow_window: 50_000,
            burn_threshold: 2.0,
            min_fill: 0.5,
        }
    }
}

/// A raised burn-rate alert (the journal's `Alert` payload).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloAlert {
    /// Which SLO fired ("qerr_p90" or "deadline_miss").
    pub slo: String,
    /// Burn rate over the fast window at the moment of firing.
    pub fast_burn: f64,
    /// Burn rate over the slow window at the moment of firing.
    pub slow_burn: f64,
    /// The threshold both exceeded.
    pub threshold: f64,
}

/// Point-in-time burn state of one series (the `/health` payload).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SloStatus {
    /// Fast-window burn rate.
    pub fast_burn: f64,
    /// Slow-window burn rate.
    pub slow_burn: f64,
    /// Samples seen by the fast window (saturates at its size).
    pub fast_fill: u64,
    /// Samples seen by the slow window (saturates at its size).
    pub slow_fill: u64,
    /// Whether the alert is currently latched.
    pub alerting: bool,
}

/// Fixed-size bit ring with a running bad-count: O(1) push, O(1) burn.
#[derive(Debug)]
struct BitRing {
    bits: Vec<bool>,
    pos: usize,
    filled: usize,
    bad: usize,
}

impl BitRing {
    fn new(len: usize) -> BitRing {
        BitRing {
            bits: vec![false; len.max(1)],
            pos: 0,
            filled: 0,
            bad: 0,
        }
    }

    fn push(&mut self, bad: bool) {
        let evicted = std::mem::replace(&mut self.bits[self.pos], bad);
        if self.filled == self.bits.len() && evicted {
            self.bad -= 1;
        }
        if bad {
            self.bad += 1;
        }
        self.pos = (self.pos + 1) % self.bits.len();
        self.filled = (self.filled + 1).min(self.bits.len());
    }

    fn bad_fraction(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        self.bad as f64 / self.filled as f64
    }
}

/// One budgeted objective evaluated over a fast and a slow window.
#[derive(Debug)]
pub struct SloSeries {
    name: &'static str,
    budget: f64,
    threshold: f64,
    min_fill: f64,
    inner: Mutex<SeriesInner>,
}

#[derive(Debug)]
struct SeriesInner {
    fast: BitRing,
    slow: BitRing,
    alerting: bool,
}

impl SloSeries {
    /// A series named `name` with the given budget and window geometry.
    pub fn new(
        name: &'static str,
        budget: f64,
        fast_window: usize,
        slow_window: usize,
        threshold: f64,
        min_fill: f64,
    ) -> SloSeries {
        SloSeries {
            name,
            budget: budget.max(1e-9),
            threshold,
            min_fill: min_fill.clamp(0.0, 1.0),
            inner: Mutex::new(SeriesInner {
                fast: BitRing::new(fast_window),
                slow: BitRing::new(slow_window),
                alerting: false,
            }),
        }
    }

    /// This series' name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn burn(&self, ring: &BitRing) -> f64 {
        if (ring.filled as f64) < self.min_fill * ring.bits.len() as f64 {
            return 0.0;
        }
        ring.bad_fraction() / self.budget
    }

    /// Record one sample. Returns `Some(alert)` exactly when this push
    /// crosses both windows above the threshold while not already latched.
    pub fn push(&self, bad: bool) -> Option<SloAlert> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.fast.push(bad);
        inner.slow.push(bad);
        let fast_burn = self.burn(&inner.fast);
        let slow_burn = self.burn(&inner.slow);
        if inner.alerting {
            // Hysteresis: re-arm once the fast window cools to half the
            // threshold.
            if fast_burn < self.threshold * 0.5 {
                inner.alerting = false;
            }
            return None;
        }
        if fast_burn > self.threshold && slow_burn > self.threshold {
            inner.alerting = true;
            return Some(SloAlert {
                slo: self.name.to_string(),
                fast_burn,
                slow_burn,
                threshold: self.threshold,
            });
        }
        None
    }

    /// Current burn state.
    pub fn status(&self) -> SloStatus {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        SloStatus {
            fast_burn: self.burn(&inner.fast),
            slow_burn: self.burn(&inner.slow),
            fast_fill: inner.fast.filled as u64,
            slow_fill: inner.slow.filled as u64,
            alerting: inner.alerting,
        }
    }
}

/// The serving SLO pair: accuracy (q-error) and deadline adherence.
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    /// "qerr_p90": fraction of predictions with q-error above target.
    pub qerr: SloSeries,
    /// "deadline_miss": fraction of requests missing their deadline.
    pub deadline: SloSeries,
}

impl SloTracker {
    /// A tracker with the given config.
    pub fn new(config: SloConfig) -> SloTracker {
        SloTracker {
            qerr: SloSeries::new(
                "qerr_p90",
                config.qerr_budget,
                config.fast_window,
                config.slow_window,
                config.burn_threshold,
                config.min_fill,
            ),
            deadline: SloSeries::new(
                "deadline_miss",
                config.deadline_budget,
                config.fast_window,
                config.slow_window,
                config.burn_threshold,
                config.min_fill,
            ),
            config,
        }
    }

    /// The config this tracker was built with.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Record one observed q-error; alerts when the burn crosses both
    /// windows.
    pub fn push_qerr(&self, q: f64) -> Option<SloAlert> {
        self.qerr.push(q > self.config.qerr_target)
    }

    /// Record a batch's deadline outcomes (`missed` expired + `met` on
    /// time); returns the first alert raised, if any.
    pub fn push_deadline_batch(&self, missed: u64, met: u64) -> Option<SloAlert> {
        let mut alert = None;
        for _ in 0..missed {
            alert = alert.or(self.deadline.push(true));
        }
        for _ in 0..met {
            alert = alert.or(self.deadline.push(false));
        }
        alert
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SloConfig {
        SloConfig {
            qerr_target: 4.0,
            qerr_budget: 0.10,
            deadline_budget: 0.01,
            fast_window: 50,
            slow_window: 200,
            burn_threshold: 2.0,
            min_fill: 0.5,
        }
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let t = SloTracker::new(small_config());
        for _ in 0..1000 {
            assert!(t.push_qerr(1.2).is_none());
            assert!(t.push_deadline_batch(0, 1).is_none());
        }
        assert!(!t.qerr.status().alerting);
        assert_eq!(t.qerr.status().fast_burn, 0.0);
    }

    #[test]
    fn sustained_badness_alerts_once_and_latches() {
        let t = SloTracker::new(small_config());
        let mut alerts = Vec::new();
        for _ in 0..400 {
            if let Some(a) = t.push_qerr(50.0) {
                alerts.push(a);
            }
        }
        assert_eq!(alerts.len(), 1, "latched alert must fire exactly once");
        let a = &alerts[0];
        assert_eq!(a.slo, "qerr_p90");
        assert!(a.fast_burn > a.threshold && a.slow_burn > a.threshold);
        assert!(t.qerr.status().alerting);
    }

    #[test]
    fn alert_rearms_after_recovery() {
        let t = SloTracker::new(small_config());
        let fired: usize = (0..400).filter_map(|_| t.push_qerr(50.0)).count();
        assert_eq!(fired, 1);
        // Recovery: fast window cools below threshold/2 and re-arms.
        for _ in 0..400 {
            assert!(t.push_qerr(1.1).is_none());
        }
        assert!(!t.qerr.status().alerting);
        // A second sustained burn alerts again.
        let fired: usize = (0..400).filter_map(|_| t.push_qerr(50.0)).count();
        assert_eq!(fired, 1);
    }

    #[test]
    fn fast_spike_alone_does_not_alert() {
        let t = SloTracker::new(small_config());
        // Fill the slow window clean, then spike only the fast window: the
        // slow burn stays below threshold (50 bad / 200 = 0.25 / 0.10 = 2.5
        // — careful: that *would* cross; use a shorter spike).
        for _ in 0..200 {
            t.push_qerr(1.1);
        }
        let mut fired = 0;
        for _ in 0..30 {
            // 30 bad of fast 50 = 0.6/0.1 = 6 > 2; slow: 30/200 = 0.15/0.1
            // = 1.5 < 2 → no alert.
            if t.push_qerr(50.0).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 0, "slow window must veto a short spike");
        assert!(t.qerr.status().fast_burn > 2.0);
        assert!(t.qerr.status().slow_burn < 2.0);
    }

    #[test]
    fn under_filled_windows_report_zero_burn() {
        let t = SloTracker::new(small_config());
        for _ in 0..10 {
            assert!(t.push_qerr(100.0).is_none(), "min_fill must gate alerts");
        }
        assert_eq!(t.qerr.status().fast_burn, 0.0);
    }

    #[test]
    fn deadline_batches_count_both_sides() {
        let t = SloTracker::new(small_config());
        // 100% misses blow through the 1% budget as soon as min_fill is met.
        let alert = (0..10).find_map(|_| t.push_deadline_batch(20, 20));
        let a = alert.expect("sustained misses must alert");
        assert_eq!(a.slo, "deadline_miss");
        let st = t.deadline.status();
        assert!(st.alerting);
        assert!(st.fast_fill >= 25);
    }
}
