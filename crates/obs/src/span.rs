//! RAII tracing spans with thread-local nesting, feeding the global
//! [`FlightRecorder`](crate::FlightRecorder).
//!
//! Tracing is **off by default**: a disabled span costs one relaxed atomic
//! load and nothing else, which is what lets `span!` live on hot paths
//! (per-batch in serve, per-epoch in training, per-node in the executor)
//! without a measurable tax. Enable with [`set_tracing`], drain with
//! [`FlightRecorder::snapshot_records`](crate::FlightRecorder::snapshot_records).
//!
//! Span names are interned once per call site: the [`span!`] macro keeps a
//! `static OnceLock<u32>` next to the literal, so steady-state enter/exit
//! never touches the intern table's lock.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::recorder::{Event, FlightRecorder};
use crate::trace::current_trace;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Turn span recording on or off process-wide. Spans already entered keep
/// the decision made at entry, so flipping mid-span never produces a
/// half-recorded event.
pub fn set_tracing(enabled: bool) {
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Whether spans currently record to the flight recorder.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

fn intern_table() -> &'static Mutex<Vec<&'static str>> {
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Intern `name`, returning its dense id. Idempotent per distinct string;
/// the [`span!`] macro caches the result per call site so this runs once.
pub fn intern_span_name(name: &'static str) -> u32 {
    let mut table = intern_table().lock().expect("span intern table poisoned");
    if let Some(i) = table.iter().position(|&n| n == name) {
        return i as u32;
    }
    table.push(name);
    (table.len() - 1) as u32
}

/// Resolve an interned id back to its span name (`"?"` for unknown ids,
/// which can only come from hand-built [`Event`]s).
pub fn span_name(id: u32) -> &'static str {
    let table = intern_table().lock().expect("span intern table poisoned");
    table.get(id as usize).copied().unwrap_or("?")
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static THREAD_ID: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Dense id of the calling thread, assigned on first use.
fn current_thread_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    THREAD_ID.with(|id| {
        if id.get() == u32::MAX {
            id.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

/// An RAII span: constructed by [`span!`], records one [`Event`] covering
/// its lifetime into the global flight recorder on drop. When tracing is
/// disabled at entry the guard is inert (no clock read, no event).
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when tracing was disabled at entry.
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name_id: u32,
    depth: u32,
    start: Instant,
    trace: u64,
}

impl SpanGuard {
    /// Enter a span for the call site owning `slot` (its cached intern id).
    /// Prefer the [`span!`] macro, which supplies the slot. The thread's
    /// current trace id (see [`crate::trace_scope`]) is captured at entry.
    #[inline]
    pub fn enter(name: &'static str, slot: &'static OnceLock<u32>) -> SpanGuard {
        if !tracing_enabled() {
            return SpanGuard { live: None };
        }
        let name_id = *slot.get_or_init(|| intern_span_name(name));
        let depth = DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        SpanGuard {
            live: Some(LiveSpan {
                name_id,
                depth,
                start: Instant::now(),
                trace: current_trace(),
            }),
        }
    }

    /// Record an instant marker (`dur_us == 0`) named by `name`, stamped
    /// with `trace`. Used at causal boundaries (admission, reply) where an
    /// RAII span has nothing to measure but the trace's timeline needs the
    /// point. A no-op (one relaxed load) when tracing is off. Prefer the
    /// [`mark!`](crate::mark) macro, which supplies the slot.
    #[inline]
    pub fn mark(name: &'static str, slot: &'static OnceLock<u32>, trace: u64) {
        if !tracing_enabled() {
            return;
        }
        let name_id = *slot.get_or_init(|| intern_span_name(name));
        let recorder = FlightRecorder::global();
        recorder.record(Event {
            t_us: recorder.offset_us(Instant::now()),
            dur_us: 0,
            name_id,
            thread: current_thread_id(),
            depth: DEPTH.with(|d| d.get()),
            trace,
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let recorder = FlightRecorder::global();
        recorder.record(Event {
            t_us: recorder.offset_us(live.start),
            dur_us: live.start.elapsed().as_micros() as u64,
            name_id: live.name_id,
            thread: current_thread_id(),
            depth: live.depth,
            trace: live.trace,
        });
    }
}

/// Open an RAII tracing span named by a string literal; the span closes
/// (and records its wall time) when the returned guard drops.
///
/// ```
/// let _span = dace_obs::span!("featurize");
/// // ... work measured by the span ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __DACE_SPAN_ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
        $crate::SpanGuard::enter($name, &__DACE_SPAN_ID)
    }};
}

/// Record an instant trace marker (zero-duration event) stamped with a
/// trace id — the causal breadcrumbs connecting a request's admission,
/// hand-offs and reply across threads.
///
/// ```
/// let trace = dace_obs::next_trace_id();
/// dace_obs::mark!("request_admit", trace);
/// ```
#[macro_export]
macro_rules! mark {
    ($name:literal, $trace:expr) => {{
        static __DACE_SPAN_ID: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
        $crate::SpanGuard::mark($name, &__DACE_SPAN_ID, $trace)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the global TRACING flag and recorder, so they run
    // under one lock to avoid cross-test interference.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        FlightRecorder::global().snapshot(); // discard stale events
        set_tracing(true);
        let r = f();
        set_tracing(false);
        r
    }

    #[test]
    fn disabled_spans_record_nothing() {
        with_tracing(|| ()); // serialize + clear
        assert!(!tracing_enabled());
        {
            let _s = span!("disabled_span");
        }
        let events = FlightRecorder::global().snapshot_records();
        assert!(events.iter().all(|e| e.name != "disabled_span"));
    }

    #[test]
    fn nested_spans_record_depth_and_order() {
        let events = with_tracing(|| {
            {
                let _outer = span!("outer_span");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = span!("inner_span");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            FlightRecorder::global().snapshot_records()
        });
        let inner = events.iter().find(|e| e.name == "inner_span").unwrap();
        let outer = events.iter().find(|e| e.name == "outer_span").unwrap();
        // Inner closes first, nests one deeper, and fits inside outer.
        assert_eq!(inner.depth, outer.depth + 1);
        assert!(inner.t_us >= outer.t_us);
        assert!(inner.dur_us <= outer.dur_us);
        assert!(outer.dur_us >= 3_000, "outer = {}us", outer.dur_us);
    }

    #[test]
    fn intern_is_idempotent() {
        let a = intern_span_name("obs_intern_test");
        let b = intern_span_name("obs_intern_test");
        assert_eq!(a, b);
        assert_eq!(span_name(a), "obs_intern_test");
        assert_eq!(span_name(u32::MAX), "?");
    }

    #[test]
    fn spans_capture_the_current_trace() {
        let events = with_tracing(|| {
            {
                let _scope = crate::trace::trace_scope(0xbeef);
                let _s = span!("traced_span");
            }
            {
                let _s = span!("untraced_span");
            }
            crate::mark!("traced_mark", 0x77);
            FlightRecorder::global().snapshot_records()
        });
        let traced = events.iter().find(|e| e.name == "traced_span").unwrap();
        assert_eq!(traced.trace, 0xbeef);
        let untraced = events.iter().find(|e| e.name == "untraced_span").unwrap();
        assert_eq!(untraced.trace, 0);
        let mark = events.iter().find(|e| e.name == "traced_mark").unwrap();
        assert_eq!(mark.trace, 0x77);
        assert_eq!(mark.dur_us, 0);
    }

    #[test]
    fn thread_ids_are_distinct() {
        let main_id = current_thread_id();
        let other = std::thread::spawn(current_thread_id).join().unwrap();
        assert_ne!(main_id, other);
        assert_eq!(main_id, current_thread_id());
    }
}
