//! Causal trace ids: lock-free minting plus thread-local propagation.
//!
//! A trace id is minted once per request at admission ([`next_trace_id`]) and
//! carried through every stage that touches the request — queue, batch,
//! worker, fallback, adaptive observe, background retrain — so one request's
//! full story can be reassembled from the flight recorder and the lifecycle
//! journal. Ids are produced by running splitmix64 over an atomic sequence:
//! wait-free, collision-free by construction (the sequence never repeats and
//! splitmix64 is a bijection on `u64`), and well-mixed so ids double as hash
//! keys.
//!
//! Propagation is thread-local: a worker entering a request's context opens a
//! [`TraceScope`] ([`trace_scope`]), every span recorded inside the scope
//! picks up the id via [`current_trace`], and the scope restores the previous
//! id on drop so nested contexts (a retrain thread processing a drift trip,
//! say) unwind correctly. Id `0` is reserved for "no trace".

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The monotone sequence splitmix64 scrambles. Starts at 1 so the first
/// minted id can never be the reserved 0 (splitmix64(0) != 0, but starting
/// above zero keeps the reasoning local).
static TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

/// splitmix64: a bijective mixer on `u64` (Steele, Lea & Flood's fast
/// splittable PRNG finalizer). Distinct inputs give distinct outputs, so
/// driving it from a monotone counter yields unique, well-distributed ids.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mint a fresh process-unique trace id. Wait-free (one `fetch_add`); never
/// returns 0 (the "no trace" sentinel).
#[inline]
pub fn next_trace_id() -> u64 {
    loop {
        let id = splitmix64(TRACE_SEQ.fetch_add(1, Ordering::Relaxed));
        if id != 0 {
            return id;
        }
    }
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The trace id active on this thread (0 when no [`TraceScope`] is open).
#[inline]
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|t| t.get())
}

/// Enter a trace context: spans recorded on this thread until the returned
/// guard drops are stamped with `trace`. Scopes nest — the guard restores
/// whatever id was active before it.
#[inline]
pub fn trace_scope(trace: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|t| t.replace(trace));
    TraceScope { prev }
}

/// RAII guard for a thread-local trace context (see [`trace_scope`]).
#[derive(Debug)]
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|t| t.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let ids: HashSet<u64> = (0..10_000).map(|_| next_trace_id()).collect();
        assert_eq!(ids.len(), 10_000);
        assert!(!ids.contains(&0));
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..2_500).map(|_| next_trace_id()).collect::<Vec<_>>()))
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate trace id {id:#x}");
            }
        }
        assert_eq!(all.len(), 10_000);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_trace(), 0);
        {
            let _outer = trace_scope(7);
            assert_eq!(current_trace(), 7);
            {
                let _inner = trace_scope(9);
                assert_eq!(current_trace(), 9);
            }
            assert_eq!(current_trace(), 7);
        }
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn scope_is_thread_local() {
        let _s = trace_scope(42);
        let other = std::thread::spawn(current_trace).join().unwrap();
        assert_eq!(other, 0);
        assert_eq!(current_trace(), 42);
    }

    #[test]
    fn splitmix_is_a_bijection_probe() {
        // Spot-check injectivity over a contiguous range (full proof is
        // algebraic; this catches transcription errors in the constants).
        let outs: HashSet<u64> = (0..100_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 100_000);
    }
}
