//! Property tests for the histogram bucket layout: the documented
//! "quantiles overestimate by at most 12.5%" invariant, checked across the
//! full range of `u64` magnitudes rather than the handful of values the
//! unit tests pin.

use dace_obs::{bucket_index, bucket_upper, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

/// Values spread over all magnitudes: `mantissa >> (63 - exponent)` puts
/// roughly uniform mass in every octave instead of clustering near 2^64.
fn any_magnitude() -> impl Strategy<Value = u64> {
    (0u32..=63, 0u64..=u64::MAX).prop_map(|(e, m)| m >> (63 - e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn bucket_upper_bounds_every_value(v in any_magnitude()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        let hi = bucket_upper(i);
        prop_assert!(hi >= v, "bucket_upper({i}) = {hi} < {v}");
        // One sub-bucket of slack: ≤ 12.5% relative (plus 1 for tiny values).
        prop_assert!(
            hi as f64 <= v as f64 * 1.125 + 1.0,
            "bucket_upper({i}) = {hi} overshoots {v} by more than 12.5%"
        );
        // Buckets are contiguous: the previous bound excludes v.
        if i > 0 {
            prop_assert!(bucket_upper(i - 1) < v);
        }
    }

    #[test]
    fn bucket_index_is_monotone(a in any_magnitude(), b in any_magnitude()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    #[test]
    fn quantile_estimates_within_relative_error(
        samples in proptest::collection::vec(any_magnitude(), 1..300)
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.max, *samples.iter().max().unwrap());

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (p, est) in [(0.50, snap.p50), (0.95, snap.p95), (0.99, snap.p99)] {
            // The exact sample at the snapshot's quantile rank.
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            prop_assert!(est >= exact, "q{p}: est {est} below exact {exact}");
            prop_assert!(
                est as f64 <= exact as f64 * 1.125 + 1.0,
                "q{p}: est {est} more than 12.5% above exact {exact}"
            );
        }
    }
}
