//! Property tests for the lifecycle journal's crash safety, mirroring the
//! checkpoint properties in `tests/checkpoint_props.rs`.
//!
//! The contract under test: `decode_journal` over *any* corruption of a
//! valid journal — truncation at an arbitrary offset (a torn tail), a
//! single flipped bit anywhere, a multi-byte stomp — returns a **prefix**
//! of the original records, never panics, and never yields a record that
//! differs from what was written. A reader can therefore trust every record
//! it gets back after a crash; at worst it loses the tail.

use dace_obs::journal::journal_fnv1a64;
use dace_obs::{decode_journal, EventJournal, JournalRecord, LifecycleEvent};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A representative journal (every variant family) written once through the
/// real append path, plus its canonical on-disk bytes.
fn fixture() -> &'static (Vec<JournalRecord>, Vec<u8>) {
    static FIX: OnceLock<(Vec<JournalRecord>, Vec<u8>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("dace-journal-props-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        std::fs::remove_file(&path).ok();
        let events = vec![
            LifecycleEvent::ServerStarted {
                workers: 4,
                version: 1,
            },
            LifecycleEvent::DriftTripped {
                baseline_q: 1.25,
                window_q: 7.5,
                samples: 640,
            },
            LifecycleEvent::RetrainStarted { samples: 128 },
            LifecycleEvent::RetrainFailed {
                reason: "window drained empty".to_string(),
            },
            LifecycleEvent::SwapPromoted {
                from: 1,
                to: 2,
                trigger: "drift".to_string(),
                shadow_p90: 1.4,
            },
            LifecycleEvent::ProbationPassed {
                version: 2,
                q_p90: 1.3,
            },
            LifecycleEvent::RollbackFired {
                from: 3,
                to: 2,
                q_p90: 9.0,
                limit: 4.0,
            },
            LifecycleEvent::BreakerOpened {
                error_percent: 55.0,
            },
            LifecycleEvent::BreakerHalfOpen,
            LifecycleEvent::BreakerClosed,
            LifecycleEvent::WorkerRespawned {
                slot: 2,
                consecutive: 1,
            },
            LifecycleEvent::CheckpointRejected {
                reason: "checksum mismatch: header 0102, payload 0304".to_string(),
            },
            LifecycleEvent::Alert {
                slo: "qerr_p90".to_string(),
                fast_burn: 12.0,
                slow_burn: 3.5,
                threshold: 2.0,
            },
            LifecycleEvent::BundleDumped {
                dir: "/tmp/bundle \"quoted\" \\ path".to_string(),
                cause: "breaker_open".to_string(),
            },
        ];
        let records: Vec<JournalRecord> = {
            let j = EventJournal::open(&path).unwrap();
            events
                .into_iter()
                .enumerate()
                .map(|(i, ev)| j.append(0x1000 + i as u64, ev))
                .collect()
        };
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (records, bytes)
    })
}

/// The decode contract for possibly-corrupt bytes: whatever comes back must
/// be an exact prefix of the original records.
fn assert_prefix(bytes: &[u8]) {
    let (canonical, _) = fixture();
    let (decoded, valid_len) = decode_journal(bytes);
    assert!(valid_len <= bytes.len());
    assert!(
        decoded.len() <= canonical.len(),
        "decoded more records than were written"
    );
    for (got, want) in decoded.iter().zip(canonical.iter()) {
        assert_eq!(got, want, "corruption changed a surviving record");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at any offset — a torn tail — yields a clean prefix.
    #[test]
    fn truncation_yields_a_clean_prefix(frac in 0.0f64..1.0) {
        let (canonical, bytes) = fixture();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let prefix = &bytes[..cut.min(bytes.len())];
        assert_prefix(prefix);
        if prefix.len() == bytes.len() {
            let (decoded, n) = decode_journal(prefix);
            prop_assert_eq!(decoded.len(), canonical.len());
            prop_assert_eq!(n, bytes.len());
        }
    }

    /// A single flipped bit anywhere never corrupts a surviving record and
    /// never panics; the damaged frame and everything after it are dropped.
    #[test]
    fn single_bit_flip_never_corrupts_survivors(frac in 0.0f64..1.0, bit in 0u8..8) {
        let (_, bytes) = fixture();
        let pos = (((bytes.len() - 1) as f64) * frac) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        assert_prefix(&corrupt);
    }

    /// Multi-byte stomps obey the same prefix contract.
    #[test]
    fn byte_stomps_yield_a_clean_prefix(frac in 0.0f64..1.0, len in 1usize..64, fill in 0u8..=255) {
        let (_, bytes) = fixture();
        let pos = (((bytes.len() - 1) as f64) * frac) as usize;
        let mut corrupt = bytes.clone();
        let end = (pos + len).min(corrupt.len());
        for b in &mut corrupt[pos..end] {
            *b = fill;
        }
        assert_prefix(&corrupt);
    }

    /// Appending garbage after a valid journal never manufactures records:
    /// the valid records all decode, and nothing beyond them does.
    #[test]
    fn trailing_garbage_is_ignored(garbage in proptest::collection::vec(0u8..=255, 1..256)) {
        let (canonical, bytes) = fixture();
        let mut extended = bytes.clone();
        extended.extend_from_slice(&garbage);
        let (decoded, _) = decode_journal(&extended);
        // The garbage could by chance start with a digit and eat the
        // framing, but it cannot *pass* the checksum, so the canonical
        // prefix is intact and at most the canonical records decode.
        prop_assert_eq!(decoded.len(), canonical.len());
        for (got, want) in decoded.iter().zip(canonical.iter()) {
            prop_assert_eq!(got, want);
        }
    }
}

#[test]
fn framing_checksum_covers_every_payload_byte() {
    let (_, bytes) = fixture();
    // Locate the first frame's JSON payload and verify the declared FNV.
    let text =
        std::str::from_utf8(&bytes[..bytes.iter().position(|&b| b == b'\n').unwrap()]).unwrap();
    let mut parts = text.splitn(3, ' ');
    let len: usize = parts.next().unwrap().parse().unwrap();
    let declared = u64::from_str_radix(parts.next().unwrap(), 16).unwrap();
    let json = parts.next().unwrap();
    assert_eq!(json.len(), len);
    assert_eq!(journal_fnv1a64(json.as_bytes()), declared);
}
