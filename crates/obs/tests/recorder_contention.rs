//! Flight-recorder contention tests: many producers race concurrent
//! snapshot calls on a deliberately small ring. The invariants under test:
//!
//! - **No torn events.** Each event carries a checksum tying its words
//!   together; a snapshot observing a half-written slot would break it.
//! - **Exact accounting.** Every `record` call either lands (drained
//!   exactly once across all snapshots) or reports the drop; the drop
//!   counter equals the number of failed calls exactly.
//! - **Writers never block on readers.** Producers run to completion while
//!   snapshot threads drain continuously; per-producer event order
//!   survives as a subsequence.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use dace_obs::{Event, FlightRecorder};

const PRODUCERS: u64 = 4;
const PER_PRODUCER: u64 = 50_000;
const CAPACITY: usize = 512;

/// Checksum tying all event words together so tearing is detectable.
fn checksum(thread: u32, seq: u64) -> u64 {
    (thread as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seq.wrapping_mul(31))
        .wrapping_add(7)
}

#[test]
fn producers_racing_snapshots_lose_nothing_silently() {
    let recorder = FlightRecorder::with_capacity(CAPACITY);
    let accepted = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let drained: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let (recorder, accepted, rejected) = (&recorder, &accepted, &rejected);
            s.spawn(move || {
                for seq in 0..PER_PRODUCER {
                    let sum = checksum(t as u32, seq);
                    let ok = recorder.record(Event {
                        t_us: seq,
                        dur_us: sum,
                        name_id: 0,
                        thread: t as u32,
                        depth: (seq % 7) as u32,
                        trace: sum.rotate_left(17),
                    });
                    if ok {
                        accepted.fetch_add(1, Ordering::Relaxed);
                    } else {
                        rejected.fetch_add(1, Ordering::Relaxed);
                        // The ring is full: yield so a snapshot thread can
                        // drain it even when cores are oversubscribed —
                        // otherwise spinning producers starve the drainers
                        // and the test never exercises concurrent frees.
                        std::thread::yield_now();
                    }
                }
            });
        }
        // Two snapshot threads race each other and the producers.
        for _ in 0..2 {
            let (recorder, drained, done) = (&recorder, &drained, &done);
            s.spawn(move || loop {
                let batch = recorder.snapshot();
                if !batch.is_empty() {
                    drained.lock().unwrap().extend(batch);
                } else if done.load(Ordering::Acquire) {
                    return;
                }
                std::thread::yield_now();
            });
        }
        // Flip `done` once every record() call has resolved, so the
        // snapshot threads exit only after the last producer write.
        let (accepted, rejected, done) = (&accepted, &rejected, &done);
        s.spawn(move || {
            while accepted.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed)
                < PRODUCERS * PER_PRODUCER
            {
                std::hint::spin_loop();
            }
            done.store(true, Ordering::Release);
        });
    });

    // One final drain for anything left in the ring.
    let mut events = drained.into_inner().unwrap();
    events.extend(recorder.snapshot());

    let accepted = accepted.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    assert_eq!(accepted + rejected, PRODUCERS * PER_PRODUCER);
    // Exact accounting: every accepted event drained exactly once, every
    // rejected one counted exactly once.
    assert_eq!(events.len() as u64, accepted);
    assert_eq!(recorder.dropped(), rejected);
    assert!(recorder.is_empty());

    // No torn events: the checksum must hold for every drained event.
    for ev in &events {
        assert_eq!(
            ev.dur_us,
            checksum(ev.thread, ev.t_us),
            "torn event: {ev:?}"
        );
        assert_eq!(ev.depth as u64, ev.t_us % 7, "torn event: {ev:?}");
        assert_eq!(ev.trace, ev.dur_us.rotate_left(17), "torn event: {ev:?}");
    }

    // Per-producer order survives as a strictly increasing subsequence.
    let mut last = vec![None::<u64>; PRODUCERS as usize];
    for ev in &events {
        let slot = &mut last[ev.thread as usize];
        if let Some(prev) = *slot {
            assert!(
                prev < ev.t_us,
                "producer {} reordered: {prev} then {}",
                ev.thread,
                ev.t_us
            );
        }
        *slot = Some(ev.t_us);
    }

    // Sanity: with a 512-slot ring and 200k attempts the test must have
    // actually exercised both the overflow and the concurrent-drain paths.
    assert!(rejected > 0, "ring never filled; contention not exercised");
    assert!(accepted > CAPACITY as u64, "snapshots never freed space");
}
