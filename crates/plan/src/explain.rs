//! `EXPLAIN ANALYZE`-style pretty printer for plan trees.

use std::fmt::Write as _;

use crate::node::OpPayload;
use crate::tree::{NodeId, PlanTree};

/// Render `tree` in a PostgreSQL-flavoured `EXPLAIN ANALYZE` format.
///
/// ```text
/// GroupAggregate  (cost=241.10 rows=12) (actual time=3.821ms rows=12)
///   -> Hash Join  (cost=190.02 rows=1205) (actual time=3.644ms rows=1187)
///        Cond: t.id = mk.movie_id
///        -> Seq Scan on t  (cost=45.00 rows=1000) (actual time=0.911ms rows=1000)
/// ```
pub fn explain_tree(tree: &PlanTree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), 0, &mut out);
    out
}

fn write_node(tree: &PlanTree, id: NodeId, depth: usize, out: &mut String) {
    let node = tree.node(id);
    let pad = "  ".repeat(depth);
    let arrow = if depth == 0 { "" } else { "-> " };
    let mut head = format!("{pad}{arrow}{}", node.node_type.display_name());
    if let OpPayload::Scan(scan) = &node.payload {
        let _ = write!(head, " on {}", scan.table_name);
    }
    let _ = writeln!(
        out,
        "{head}  (cost={:.2} rows={:.0}) (actual time={:.3}ms rows={:.0})",
        node.est_cost, node.est_rows, node.actual_ms, node.actual_rows
    );
    match &node.payload {
        OpPayload::Join(join) => {
            let _ = writeln!(out, "{pad}     Cond: {}", join.condition);
        }
        OpPayload::Scan(scan) if !scan.predicates.is_empty() => {
            let preds: Vec<String> = scan
                .predicates
                .iter()
                .map(|p| format!("col{} {} @{:.3}", p.column_id, p.op.sql(), p.literal_rank))
                .collect();
            let _ = writeln!(out, "{pad}     Filter: {}", preds.join(" AND "));
        }
        _ => {}
    }
    for &child in &node.children {
        write_node(tree, child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{PlanNode, PredicateInfo, ScanInfo};
    use crate::node_type::NodeType;
    use crate::tree::TreeBuilder;
    use crate::CmpOp;

    #[test]
    fn explain_renders_all_nodes_and_filters() {
        let mut b = TreeBuilder::new();
        let scan = b.leaf(PlanNode::new(
            NodeType::SeqScan,
            OpPayload::Scan(ScanInfo {
                table_id: 0,
                table_name: "title".into(),
                predicates: vec![PredicateInfo {
                    column_id: 3,
                    op: CmpOp::Gt,
                    literal_rank: 0.75,
                    literal_rank_hi: 0.0,
                    est_selectivity: 0.25,
                }],
            }),
        ));
        let root = b.internal(PlanNode::new(NodeType::Limit, OpPayload::Other), vec![scan]);
        let tree = b.finish(root);
        let text = explain_tree(&tree);
        assert!(text.contains("Limit"));
        assert!(text.contains("-> Seq Scan on title"));
        assert!(text.contains("Filter: col3 > @0.750"));
        assert_eq!(text.lines().count(), 3);
    }
}
